package rules

import "testing"

func TestRegistryNames(t *testing.T) {
	want := []string{"kmedian", "majority", "maximum", "mean", "median", "minimum", "voter"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRegistryConstructs(t *testing.T) {
	for _, name := range Names() {
		var p Params
		if name == "kmedian" {
			p = Params{"k": 3}
		}
		r, err := New(name, p)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if r.Samples() < 1 {
			t.Fatalf("New(%q): Samples() = %d", name, r.Samples())
		}
	}
	if r, err := New("kmedian", Params{"k": 3}); err != nil || r.(KMedian).K != 3 {
		t.Fatalf("kmedian k=3: %v %v", r, err)
	}
	if r, err := New("kmedian", nil); err != nil || r.(KMedian).K != 1 {
		t.Fatalf("kmedian default k: %v %v", r, err)
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New("nope", nil); err == nil {
		t.Fatal("unknown rule must error")
	}
	if _, err := New("median", Params{"k": 1}); err == nil {
		t.Fatal("median with parameters must error")
	}
	if _, err := New("kmedian", Params{"k": 0}); err == nil {
		t.Fatal("kmedian k=0 must error")
	}
	if _, err := New("kmedian", Params{"k": 1.5}); err == nil {
		t.Fatal("kmedian fractional k must error")
	}
	if _, err := New("kmedian", Params{"q": 1}); err == nil {
		t.Fatal("kmedian unknown parameter must error")
	}
}

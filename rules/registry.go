package rules

import (
	"fmt"
	"sort"
	"sync"
)

// Params carries the numeric parameters of parameterised rules (KMedian's K,
// for instance) in a JSON-friendly form. Unknown keys are rejected by the
// constructors so a typo in a serialized spec fails loudly instead of
// silently running the default rule.
type Params map[string]float64

// Constructor builds a rule instance from its parameters. Constructors must
// return a fresh value on every call (rules are stateless today, but the
// contract keeps stateful rules possible).
type Constructor func(p Params) (Rule, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Constructor{}
)

// Register adds a named rule constructor to the registry. It panics on
// duplicate names, which would make serialized specs ambiguous.
func Register(name string, c Constructor) {
	if name == "" || c == nil {
		panic("rules: Register with empty name or nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("rules: duplicate registration of %q", name))
	}
	registry[name] = c
}

// New constructs the named rule with the given parameters (nil for
// parameterless rules).
func New(name string, p Params) (Rule, error) {
	regMu.RLock()
	c, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rules: unknown rule %q (known: %v)", name, Names())
	}
	return c(p)
}

// Ref is the serializable reference to a registered rule: its name plus
// its parameters — the "rule" block of run specs.
type Ref struct {
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
}

// New constructs a fresh instance of the referenced rule.
func (r Ref) New() (Rule, error) { return New(r.Name, r.Params) }

// Names returns the registered rule names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// noParams errors when p carries any key — used by parameterless rules.
func noParams(name string, p Params) error {
	for k := range p {
		return fmt.Errorf("rules: %s takes no parameters, got %q", name, k)
	}
	return nil
}

// simple wraps a parameterless rule value as a Constructor.
func simple(name string, r Rule) Constructor {
	return func(p Params) (Rule, error) {
		if err := noParams(name, p); err != nil {
			return nil, err
		}
		return r, nil
	}
}

func init() {
	Register("median", simple("median", Median{}))
	Register("majority", simple("majority", Majority{}))
	Register("minimum", simple("minimum", Minimum{}))
	Register("maximum", simple("maximum", Maximum{}))
	Register("mean", simple("mean", Mean{}))
	Register("voter", simple("voter", Voter{}))
	Register("kmedian", func(p Params) (Rule, error) {
		k := 1
		for key, v := range p {
			if key != "k" {
				return nil, fmt.Errorf("rules: kmedian knows only parameter \"k\", got %q", key)
			}
			if v != float64(int(v)) || int(v) < 1 {
				return nil, fmt.Errorf("rules: kmedian parameter k must be a positive integer, got %v", v)
			}
			k = int(v)
		}
		return KMedian{K: k}, nil
	})
}

// Package rules implements the local update rules studied by the paper:
//
//   - Median — the paper's contribution (Section 1.2): sample two uniform
//     processes and adopt the median of the three values. The power of two
//     choices applied to consensus.
//   - Majority — the two-value specialisation of Median used in Section 3's
//     analysis ("for the two bin-case, the median rule coincides with the
//     majority rule").
//   - Minimum / Maximum — the single-choice baselines from the introduction.
//     They converge in O(log n) rounds without an adversary but are
//     non-stabilizing under even a 1-bounded adversary (see package
//     adversary's Reviver for the attack).
//   - Mean — the averaging rule of Dolev et al. [17] adapted to the gossip
//     model. It converges towards a single number but violates validity:
//     the final value need not be any process's initial value (Section 1.2
//     points out the mean rule "no longer [is] guaranteed to solve the
//     consensus problem").
//   - KMedian — the k-choices generalisation (ablation for the paper's
//     "power of two choices" framing): sample 2k processes and adopt the
//     median of all 2k+1 values.
//   - Voter — adopt a single uniformly sampled value. The classical voter
//     model; needs Θ(n) rounds on the complete graph and serves as the
//     "one choice" contrast.
//
// All rules are stateless and safe for concurrent use.
package rules

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Value is a process value. Alias of the shared model type (an int64).
type Value = model.Value

// Rule is the update-rule contract engines execute; see the consensus
// package for the full protocol description.
type Rule = model.Rule

// Median is the paper's median rule: each round every process i picks two
// processes j, k uniformly and independently at random (possibly itself) and
// updates v_i to median(v_i, v_j, v_k).
type Median struct{}

// Name implements Rule.
func (Median) Name() string { return "median" }

// Samples implements Rule: the median rule contacts two peers.
func (Median) Samples() int { return 2 }

// Update returns median(own, sampled[0], sampled[1]).
func (Median) Update(own Value, sampled []Value) Value {
	a, b, c := own, sampled[0], sampled[1]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Majority adopts the majority value among own and two samples, keeping the
// own value on three-way ties. On two-value states it is exactly Median; it
// is provided separately because Section 3 phrases the two-bin analysis in
// majority terms and because on ≥3 values the two rules genuinely differ
// (majority has no ordering drift; this contrast is measured in the
// rule-comparison example).
type Majority struct{}

// Name implements Rule.
func (Majority) Name() string { return "majority" }

// Samples implements Rule.
func (Majority) Samples() int { return 2 }

// Update returns the value occurring at least twice among {own, s0, s1}, or
// own if all three differ.
func (Majority) Update(own Value, sampled []Value) Value {
	s0, s1 := sampled[0], sampled[1]
	if s0 == s1 {
		return s0
	}
	// s0 != s1: own breaks the tie if it matches either; otherwise keep own.
	return own
}

// Minimum is the introduction's minimum rule: contact one random process and
// keep the smaller value. Fast without an adversary, non-stabilizing with
// one.
type Minimum struct{}

// Name implements Rule.
func (Minimum) Name() string { return "minimum" }

// Samples implements Rule.
func (Minimum) Samples() int { return 1 }

// Update returns min(own, sampled[0]).
func (Minimum) Update(own Value, sampled []Value) Value {
	if sampled[0] < own {
		return sampled[0]
	}
	return own
}

// Maximum is the mirror image of Minimum.
type Maximum struct{}

// Name implements Rule.
func (Maximum) Name() string { return "maximum" }

// Samples implements Rule.
func (Maximum) Samples() int { return 1 }

// Update returns max(own, sampled[0]).
func (Maximum) Update(own Value, sampled []Value) Value {
	if sampled[0] > own {
		return sampled[0]
	}
	return own
}

// Mean is the averaging rule of [17] in the gossip model: adopt the rounded
// arithmetic mean of own and two sampled values. It violates validity — the
// consensus value is generally none of the initial values — which is exactly
// why the paper develops the median rule instead. Rounding is to the nearest
// integer (half away from zero) so the rule stays within int64.
type Mean struct{}

// Name implements Rule.
func (Mean) Name() string { return "mean" }

// Samples implements Rule.
func (Mean) Samples() int { return 2 }

// Update returns round((own + s0 + s1) / 3).
func (Mean) Update(own Value, sampled []Value) Value {
	sum := own + sampled[0] + sampled[1]
	q := sum / 3
	r := sum % 3
	switch {
	case r == 2 || (r == -2):
		if sum > 0 {
			q++
		} else {
			q--
		}
	}
	return q
}

// KMedian generalises the median rule to k pairs of choices: sample 2k
// processes and adopt the median of the 2k+1 values (own included). K = 1
// recovers Median. Larger K converges faster per round at 2k messages per
// process per round; the ablation benchmarks quantify the trade-off.
type KMedian struct {
	// K is the number of choice pairs; must be >= 1.
	K int
}

// NewKMedian returns a KMedian rule, panicking for K < 1.
func NewKMedian(k int) KMedian {
	if k < 1 {
		panic("rules: KMedian needs K >= 1")
	}
	return KMedian{K: k}
}

// Name implements Rule.
func (r KMedian) Name() string { return fmt.Sprintf("median-%dchoices", 2*r.K) }

// Samples implements Rule.
func (r KMedian) Samples() int { return 2 * r.K }

// Update returns the median of own and the 2K sampled values.
func (r KMedian) Update(own Value, sampled []Value) Value {
	if len(sampled) == 2 { // fast path: plain median rule
		return Median{}.Update(own, sampled)
	}
	buf := make([]Value, 0, len(sampled)+1)
	buf = append(buf, own)
	buf = append(buf, sampled...)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[len(buf)/2]
}

// Voter adopts one uniformly sampled value unconditionally — the classical
// single-choice voter model, the paper's "deterministic single choice rule
// would only allow us to implement the minimum or maximum rule" contrast
// made probabilistic.
type Voter struct{}

// Name implements Rule.
func (Voter) Name() string { return "voter" }

// Samples implements Rule.
func (Voter) Samples() int { return 1 }

// Update returns sampled[0].
func (Voter) Update(_ Value, sampled []Value) Value { return sampled[0] }

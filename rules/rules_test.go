package rules

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianBasic(t *testing.T) {
	cases := []struct {
		own  Value
		s    []Value
		want Value
	}{
		{10, []Value{12, 100}, 12}, // the paper's worked example
		{1, []Value{2, 3}, 2},
		{3, []Value{1, 2}, 2},
		{2, []Value{1, 3}, 2},
		{5, []Value{5, 5}, 5},
		{5, []Value{5, 9}, 5},
		{-7, []Value{0, -3}, -3},
	}
	for _, c := range cases {
		if got := (Median{}).Update(c.own, c.s); got != c.want {
			t.Errorf("Median(%d, %v) = %d want %d", c.own, c.s, got, c.want)
		}
	}
}

func TestMedianMeta(t *testing.T) {
	if (Median{}).Name() != "median" || (Median{}).Samples() != 2 {
		t.Fatal("bad metadata")
	}
}

// On two-value states, Median and Majority coincide (Section 3: "for the two
// bin-case, the median rule coincides with the majority rule").
func TestMedianEqualsMajorityOnTwoValues(t *testing.T) {
	vals := []Value{1, 2}
	for _, own := range vals {
		for _, s0 := range vals {
			for _, s1 := range vals {
				m := (Median{}).Update(own, []Value{s0, s1})
				j := (Majority{}).Update(own, []Value{s0, s1})
				if m != j {
					t.Errorf("median %d != majority %d on (%d; %d,%d)", m, j, own, s0, s1)
				}
			}
		}
	}
}

func TestMajorityTieKeepsOwn(t *testing.T) {
	if got := (Majority{}).Update(5, []Value{1, 9}); got != 5 {
		t.Fatalf("three-way tie: got %d want 5", got)
	}
	if got := (Majority{}).Update(5, []Value{9, 9}); got != 9 {
		t.Fatalf("pair: got %d want 9", got)
	}
	if got := (Majority{}).Update(5, []Value{5, 9}); got != 5 {
		t.Fatalf("own+one: got %d want 5", got)
	}
}

func TestMinimumMaximum(t *testing.T) {
	if got := (Minimum{}).Update(5, []Value{3}); got != 3 {
		t.Fatalf("min: %d", got)
	}
	if got := (Minimum{}).Update(3, []Value{5}); got != 3 {
		t.Fatalf("min keep: %d", got)
	}
	if got := (Maximum{}).Update(5, []Value{3}); got != 5 {
		t.Fatalf("max keep: %d", got)
	}
	if got := (Maximum{}).Update(3, []Value{5}); got != 5 {
		t.Fatalf("max: %d", got)
	}
	if (Minimum{}).Samples() != 1 || (Maximum{}).Samples() != 1 {
		t.Fatal("samples")
	}
}

func TestMeanRounding(t *testing.T) {
	cases := []struct {
		own  Value
		s    []Value
		want Value
	}{
		{0, []Value{0, 0}, 0},
		{1, []Value{1, 1}, 1},
		{0, []Value{0, 3}, 1},
		{0, []Value{1, 1}, 1},  // 2/3 rounds to 1
		{0, []Value{0, 1}, 0},  // 1/3 rounds to 0
		{0, []Value{0, -1}, 0}, // -1/3 rounds to 0
		{0, []Value{-1, -1}, -1},
		{10, []Value{20, 30}, 20},
	}
	for _, c := range cases {
		if got := (Mean{}).Update(c.own, c.s); got != c.want {
			t.Errorf("Mean(%d, %v) = %d want %d", c.own, c.s, got, c.want)
		}
	}
}

func TestKMedianOneIsMedian(t *testing.T) {
	k := NewKMedian(1)
	if k.Samples() != 2 {
		t.Fatalf("samples %d", k.Samples())
	}
	for own := Value(0); own < 4; own++ {
		for a := Value(0); a < 4; a++ {
			for b := Value(0); b < 4; b++ {
				if k.Update(own, []Value{a, b}) != (Median{}).Update(own, []Value{a, b}) {
					t.Fatalf("KMedian(1) != Median on (%d,%d,%d)", own, a, b)
				}
			}
		}
	}
}

func TestKMedianLarger(t *testing.T) {
	k := NewKMedian(2)
	if k.Samples() != 4 {
		t.Fatalf("samples %d", k.Samples())
	}
	// median of {5, 1, 2, 8, 9} = 5
	if got := k.Update(5, []Value{1, 2, 8, 9}); got != 5 {
		t.Fatalf("got %d want 5", got)
	}
	// median of {0, 1, 1, 9, 9} = 1
	if got := k.Update(0, []Value{1, 1, 9, 9}); got != 1 {
		t.Fatalf("got %d want 1", got)
	}
}

func TestKMedianPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKMedian(0)
}

func TestVoter(t *testing.T) {
	if got := (Voter{}).Update(5, []Value{3}); got != 3 {
		t.Fatalf("voter: %d", got)
	}
	if (Voter{}).Samples() != 1 {
		t.Fatal("samples")
	}
}

func TestNames(t *testing.T) {
	names := map[string]Rule{
		"median":           Median{},
		"majority":         Majority{},
		"minimum":          Minimum{},
		"maximum":          Maximum{},
		"mean":             Mean{},
		"voter":            Voter{},
		"median-4choices":  NewKMedian(2),
		"median-10choices": NewKMedian(5),
	}
	for want, r := range names {
		if r.Name() != want {
			t.Errorf("Name() = %q want %q", r.Name(), want)
		}
	}
}

// Property: every rule except Mean outputs one of its inputs (validity at
// the kernel level).
func TestQuickValidityOfSelectingRules(t *testing.T) {
	selecting := []Rule{Median{}, Majority{}, Minimum{}, Maximum{}, Voter{}, NewKMedian(2)}
	f := func(own Value, s0, s1, s2, s3 Value) bool {
		for _, r := range selecting {
			s := []Value{s0, s1, s2, s3}[:r.Samples()]
			got := r.Update(own, s)
			found := got == own
			for _, v := range s {
				if got == v {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Median output is between min and max of its three inputs.
func TestQuickMedianBetween(t *testing.T) {
	f := func(own, a, b Value) bool {
		got := (Median{}).Update(own, []Value{a, b})
		xs := []Value{own, a, b}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return got == xs[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean output lies within [min, max] of the inputs (contraction),
// for inputs small enough not to overflow.
func TestQuickMeanContraction(t *testing.T) {
	f := func(ownRaw, aRaw, bRaw int32) bool {
		own, a, b := Value(ownRaw), Value(aRaw), Value(bRaw)
		got := (Mean{}).Update(own, []Value{a, b})
		lo, hi := own, own
		for _, v := range []Value{a, b} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: KMedian is permutation-invariant in its samples.
func TestQuickKMedianSymmetric(t *testing.T) {
	k := NewKMedian(2)
	f := func(own, a, b, c, d Value) bool {
		x := k.Update(own, []Value{a, b, c, d})
		y := k.Update(own, []Value{d, c, b, a})
		z := k.Update(own, []Value{b, d, a, c})
		return x == y && y == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

package multidim

import (
	"testing"

	"repro/internal/rng"
)

func TestCountEngineBuildsSortedDistribution(t *testing.T) {
	pts := []Point{{2, 1}, {1, 2}, {2, 1}, {1, 2}, {1, 2}, {3, 0}}
	e := NewCountEngine(pts, nil, 1, CountOptions{})
	tuples, counts := e.Dist()
	if e.N() != 6 || e.Dim() != 2 || e.Support() != 3 {
		t.Fatalf("shape: n=%d dim=%d support=%d", e.N(), e.Dim(), e.Support())
	}
	want := []Point{{1, 2}, {2, 1}, {3, 0}}
	wantCounts := []int64{3, 2, 1}
	for i := range want {
		if !tuples[i].Equal(want[i]) || counts[i] != wantCounts[i] {
			t.Fatalf("bin %d: %v x%d, want %v x%d", i, tuples[i], counts[i], want[i], wantCounts[i])
		}
	}
}

func TestCountEngineConvergesScalar(t *testing.T) {
	// d = 1 with a small value range: the count engine's home turf. The
	// dynamics must converge with full tuple validity, like the scalar
	// median rule.
	for seed := uint64(1); seed <= 5; seed++ {
		e := NewCountEngine(RandomPoints(2000, 1, 4, seed), nil, seed, CountOptions{MaxRounds: 2000})
		res := e.Run()
		if !res.Consensus {
			t.Fatalf("seed %d: no consensus in %d rounds", seed, res.Rounds)
		}
		if !res.TupleValid || !res.CoordValid {
			t.Fatalf("seed %d: scalar run must be valid, got %+v", seed, res)
		}
		if res.WinnerCount != 2000 {
			t.Fatalf("seed %d: winner holds %d/2000", seed, res.WinnerCount)
		}
	}
}

func TestCountEngineDeterministicInSeed(t *testing.T) {
	pts := RandomPoints(500, 2, 3, 9)
	a := NewCountEngine(pts, nil, 42, CountOptions{}).Run()
	b := NewCountEngine(pts, nil, 42, CountOptions{}).Run()
	if a.Rounds != b.Rounds || !a.Winner.Equal(b.Winner) || a.WinnerCount != b.WinnerCount {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCountEngineConsensusIsFixedPoint(t *testing.T) {
	// A single-tuple start mirrors the per-process engine: one (no-op)
	// step, then the consensus stop.
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{3, 7}
	}
	e := NewCountEngine(pts, nil, 1, CountOptions{})
	res := e.Run()
	if !res.Consensus || res.Rounds != 1 || !res.Winner.Equal(Point{3, 7}) {
		t.Fatalf("fixed point mishandled: %+v", res)
	}
	if !res.TupleValid || !res.CoordValid {
		t.Fatalf("validity lost on fixed point: %+v", res)
	}
}

func TestCountEngineObserverCadence(t *testing.T) {
	var rounds []int
	e := NewCountEngine(RandomPoints(300, 2, 3, 5), nil, 5, CountOptions{
		MaxRounds: 500,
		Observer: func(round int, tuples []Point, counts []int64) {
			rounds = append(rounds, round)
			if len(tuples) != len(counts) || len(tuples) == 0 {
				t.Fatalf("round %d: ragged distribution (%d tuples, %d counts)", round, len(tuples), len(counts))
			}
		},
	})
	res := e.Run()
	if len(rounds) != res.Rounds {
		t.Fatalf("observer called %d times for %d rounds", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("observer round %d at position %d", r, i)
		}
	}
}

func TestCountEngineStateIsolation(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {3, 3}}
	e := NewCountEngine(pts, nil, 1, CountOptions{})
	pts[0][0] = 99
	tuples, _ := e.Dist()
	for _, p := range tuples {
		if p[0] == 99 {
			t.Fatal("count engine aliases caller storage")
		}
	}
}

func TestCountEnginePanics(t *testing.T) {
	assertPanics(t, "empty", func() { NewCountEngine(nil, nil, 1, CountOptions{}) })
	assertPanics(t, "zero-dim", func() { NewCountEngine([]Point{{}}, nil, 1, CountOptions{}) })
	assertPanics(t, "ragged", func() {
		NewCountEngine([]Point{{1, 2}, {1}}, nil, 1, CountOptions{})
	})
}

func TestDistPlurality(t *testing.T) {
	tuples := []Point{{1, 1}, {2, 2}, {3, 3}}
	counts := []int64{4, 4, 2}
	w, c := DistPlurality(tuples, counts)
	// First maximal count in sorted order wins: the smaller tuple.
	if !w.Equal(Point{1, 1}) || c != 4 {
		t.Fatalf("plurality %v x%d", w, c)
	}
}

// processOnlyAdversary implements Adversary but not CountAdversary, so
// auto-selection must keep it on the per-process engine.
type processOnlyAdversary struct{}

func (processOnlyAdversary) Budget(n int) int                                             { return 1 }
func (processOnlyAdversary) Corrupt(round int, state, allowed []Point, g *rng.Xoshiro256) {}

func TestPickEngine(t *testing.T) {
	countAdv := &NoiseAdversary{T: 1}
	cases := []struct {
		n, support int64
		adv        Adversary
		want       string
	}{
		{1000, 4, nil, EngineCount},
		{1000, 4, countAdv, EngineCount},                 // count-aware adversary keeps count
		{1000, 4, processOnlyAdversary{}, EngineProcess}, // process-only adversary forces per-process
		{100, 50, nil, EngineProcess},                    // support too large relative to n
		{64, 4, nil, EngineCount},                        // boundary: 4·16 = 64
		{63, 4, nil, EngineProcess},                      // just under the boundary
		{10, 10, nil, EngineProcess},                     // all-distinct worst case
		{1000, 0, nil, EngineProcess},                    // unknown support resolves to process
		{1 << 40, 1000, nil, EngineCount},                // huge n: no overflow in the bound check
	}
	for _, c := range cases {
		if got := PickEngine(c.n, c.support, c.adv); got != c.want {
			t.Errorf("PickEngine(%d, %d, %T) = %s, want %s", c.n, c.support, c.adv, got, c.want)
		}
	}
}

// TestCountEngineStepAllocs pins the count engine's zero-allocation round
// loop in both update regimes — the block-multinomial mode (huge n) and
// the per-sample mode (small n) — with the count-level noise adversary in
// the loop: after warmup, a steady-state Step must not touch the heap.
func TestCountEngineStepAllocs(t *testing.T) {
	tuples := []Point{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	for _, tc := range []struct {
		name string
		per  int64
	}{
		{"blocks", 250_000_000}, // n = 10⁹ ≫ 32·k³: block-multinomial rounds
		{"sampled", 250},        // small n: per-sample rounds
	} {
		t.Run(tc.name, func(t *testing.T) {
			counts := []int64{tc.per, tc.per, tc.per, tc.per}
			eng := NewCountEngineDist(tuples, counts, &NoiseAdversary{T: 2}, 1, CountOptions{})
			for i := 0; i < 8; i++ {
				eng.Step()
			}
			if avg := testing.AllocsPerRun(50, func() { eng.Step() }); avg != 0 {
				t.Fatalf("steady-state %s round allocates (%v allocs/round)", tc.name, avg)
			}
		})
	}
}

package multidim

import (
	"fmt"
	"sort"

	"repro/internal/randx"
	"repro/internal/rng"
)

// This file implements the count-level engine for the coordinate-wise
// median dynamics: the d-dimensional analogue of the scalar
// consensus.EngineCount. A process's update depends only on its own tuple
// and the tuple *distribution* (processes are exchangeable), so the
// population can be represented as counts over distinct tuples — O(k·d)
// memory for k distinct tuples instead of the per-process engine's O(n·d).
// For small value ranges (k ≪ n) this unlocks populations the per-process
// engine cannot hold, which is exactly the regime the paper's Section 5
// average-case model lives in.
//
// Sampling stays hypergeometric-free and statistically identical to the
// per-process engine: every ball draws its two peers independently and
// uniformly from the pre-round distribution (with replacement) via an
// alias table, two draws per ball per round, just as Engine.Step draws two
// uniform indices. The engines therefore share one trajectory distribution
// — the differential tests in differential_test.go pin that equivalence.

// CountOptions configures a CountEngine.
type CountOptions struct {
	// MaxRounds caps the run; 0 means DefaultMaxRounds.
	MaxRounds int
	// Observer, when non-nil, receives the tuple distribution after every
	// round: the distinct tuples in lexicographic order and their counts.
	// The slices and tuples are only valid during the call (the engine is
	// free to reuse them); observers must copy what they keep.
	Observer func(round int, tuples []Point, counts []int64)
}

// CountEngine runs the coordinate-wise median dynamics on the tuple
// distribution. It supports no adversary: the Adversary contract rewrites
// individual processes, which the count representation cannot express
// (mirroring the scalar engines, where only count-aware adversaries run
// at count level; multidim has none registered).
type CountEngine struct {
	tuples  []Point // distinct live tuples, lexicographically sorted
	counts  []int64 // counts[i] processes hold tuples[i]; all > 0
	n       int64
	dim     int
	initial []Point // distinct initial tuples, for validity accounting
	g       *rng.Xoshiro256
	opts    CountOptions
	round   int
	scratch Point
	keyBuf  []byte
}

// NewCountEngine builds a count-level engine over the distribution of the
// given points (the per-process population the spec describes; the engine
// only stores its distinct tuples).
func NewCountEngine(points []Point, seed uint64, opts CountOptions) *CountEngine {
	if len(points) == 0 {
		panic("multidim: empty population")
	}
	dim := len(points[0])
	if dim == 0 {
		panic("multidim: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("multidim: point %d has dimension %d, want %d", i, len(p), dim))
		}
	}
	tuples, counts := distOf(points, dim)
	return newCountEngineFromDist(tuples, counts, int64(len(points)), seed, opts)
}

// newCountEngineFromDist builds the engine directly over an
// already-bucketed sorted distribution, taking ownership of tuples and
// counts — the spec layer's auto-selection path computes the distribution
// anyway, so it must not be rebuilt here.
func newCountEngineFromDist(tuples []Point, counts []int64, n int64, seed uint64, opts CountOptions) *CountEngine {
	dim := len(tuples[0])
	initial := make([]Point, len(tuples))
	for i, p := range tuples {
		initial[i] = p.Clone()
	}
	return &CountEngine{
		tuples:  tuples,
		counts:  counts,
		n:       n,
		dim:     dim,
		initial: initial,
		g:       rng.NewXoshiro256(seed),
		opts:    opts,
		scratch: make(Point, dim),
		keyBuf:  make([]byte, 0, 8*dim),
	}
}

// centry is one accumulator bin: a representative tuple and its count.
type centry struct {
	rep   Point
	count int64
}

// distOf buckets points into a sorted (tuples, counts) distribution.
func distOf(points []Point, dim int) ([]Point, []int64) {
	entries := make(map[string]*centry, 16)
	buf := make([]byte, 0, 8*dim)
	for _, p := range points {
		buf = appendPointKey(buf[:0], p)
		e := entries[string(buf)]
		if e == nil {
			e = &centry{rep: p.Clone()}
			entries[string(buf)] = e
		}
		e.count++
	}
	return sortedDist(entries)
}

// sortedDist flattens an accumulator map into the lexicographically
// sorted (tuples, counts) pair — shared by the initial bucketing and the
// per-round rebuild.
func sortedDist(entries map[string]*centry) ([]Point, []int64) {
	bins := make([]*centry, 0, len(entries))
	for _, e := range entries {
		bins = append(bins, e)
	}
	sort.Slice(bins, func(i, j int) bool { return pointLess(bins[i].rep, bins[j].rep) })
	tuples := make([]Point, len(bins))
	counts := make([]int64, len(bins))
	for i, e := range bins {
		tuples[i] = e.rep
		counts[i] = e.count
	}
	return tuples, counts
}

// pointLess is the lexicographic coordinate order — the deterministic
// tuple order the observer stream and plurality tie-break use.
func pointLess(p, q Point) bool {
	for i := range p {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// N returns the population size.
func (e *CountEngine) N() int64 { return e.n }

// Dim returns the common dimension.
func (e *CountEngine) Dim() int { return e.dim }

// Round returns the number of executed rounds.
func (e *CountEngine) Round() int { return e.round }

// Dist returns the live distribution; callers must not modify it.
func (e *CountEngine) Dist() ([]Point, []int64) { return e.tuples, e.counts }

// Support returns the number of distinct live tuples.
func (e *CountEngine) Support() int { return len(e.tuples) }

// Step executes one synchronous round: every process applies the
// coordinate-wise median of its own tuple and two tuples drawn
// independently and uniformly from the pre-round distribution.
func (e *CountEngine) Step() {
	e.stepSampled()
	e.round++
}

func (e *CountEngine) stepSampled() {
	if len(e.tuples) == 1 {
		return // consensus is a fixed point of the median dynamics
	}
	weights := make([]float64, len(e.counts))
	for i, k := range e.counts {
		weights[i] = float64(k)
	}
	alias := randx.NewAlias(weights)
	acc := make(map[string]*centry, len(e.tuples))
	for bi, cnt := range e.counts {
		own := e.tuples[bi]
		for b := int64(0); b < cnt; b++ {
			a := e.tuples[alias.Draw(e.g)]
			c := e.tuples[alias.Draw(e.g)]
			CoordMedian(e.scratch, own, a, c)
			e.keyBuf = appendPointKey(e.keyBuf[:0], e.scratch)
			ent := acc[string(e.keyBuf)]
			if ent == nil {
				ent = &centry{rep: e.scratch.Clone()}
				acc[string(e.keyBuf)] = ent
			}
			ent.count++
		}
	}
	e.tuples, e.counts = sortedDist(acc)
}

// Run steps until consensus or the round cap and returns the Result,
// mirroring the per-process Engine.Run loop (observer after every executed
// round, stop at the single-tuple fixed point).
func (e *CountEngine) Run() Result {
	maxRounds := e.opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	for e.round < maxRounds {
		e.Step()
		if e.opts.Observer != nil {
			e.opts.Observer(e.round, e.tuples, e.counts)
		}
		if len(e.tuples) == 1 {
			break
		}
	}
	return e.result()
}

func (e *CountEngine) result() Result {
	winner, count := DistPlurality(e.tuples, e.counts)
	return Result{
		Rounds:      e.round,
		Consensus:   count == e.n,
		Winner:      winner.Clone(),
		WinnerCount: int(count),
		TupleValid:  containsPoint(e.initial, winner),
		CoordValid:  coordsValid(e.initial, winner),
	}
}

// DistPlurality returns the most frequent tuple of a (tuples, counts)
// distribution and its count. With lexicographically sorted tuples the
// first maximal count wins, so ties resolve to the smallest tuple —
// deterministic, like Plurality's state-order tie-break. The winner
// aliases a tuple in the slice.
func DistPlurality(tuples []Point, counts []int64) (Point, int64) {
	var winner Point
	var best int64 = -1
	for i, c := range counts {
		if c > best {
			winner, best = tuples[i], c
		}
	}
	return winner, best
}

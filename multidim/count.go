package multidim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/randx"
	"repro/internal/rng"
)

// This file implements the count-level engine for the coordinate-wise
// median dynamics: the d-dimensional analogue of the scalar
// consensus.EngineCount. A process's update depends only on its own tuple
// and the tuple *distribution* (processes are exchangeable), so the
// population can be represented as counts over distinct tuples — O(k·d)
// memory for k distinct tuples instead of the per-process engine's O(n·d).
// For small value ranges (k ≪ n) this unlocks populations the per-process
// engine cannot hold, which is exactly the regime the paper's Section 5
// average-case model lives in.
//
// Two exact round updates share one trajectory distribution with the
// per-process engine:
//
//   - Per-ball sampling: every ball draws its two peers independently and
//     uniformly from the pre-round distribution (with replacement) via an
//     alias table, two draws per ball per round, just as Engine.Step draws
//     two uniform indices. O(n) time per round.
//   - Block multinomial: each bin's count is split over the first sampled
//     peer with one exact randx.Multinomial draw, each block again over the
//     second peer, and every (own, a, b) group moves to CoordMedian(own,
//     a, b) in one shot. The two-stage conditional split is exactly the
//     joint multinomial over ordered peer pairs, so the round update is
//     distributed identically to per-ball sampling — but costs O(k³)
//     binomial draws, independent of n. This is what makes n = 10⁹ rounds
//     run in microseconds.
//
// The engine picks the cheaper mode each round from (n, live support) —
// a deterministic function of the trajectory, so runs stay reproducible —
// and both modes accumulate into engine-owned reusable workspaces (slot
// store, weights, alias table, multinomial blocks), so a steady-state
// round performs zero heap allocations (see TestCountEngineStepAllocs).

// CountAdversary is the count-level T-bounded adversary contract: the
// d-dimensional analogue of model.CountAdversary. CorruptCounts may move up
// to Budget(n) balls between bins of the (tuples, counts) distribution,
// restricted to tuples from allowed (the distinct initial tuples, per the
// paper's signed-values assumption). Implementations must treat the passed
// tuples as read-only — corruption is expressed by adjusting counts and
// appending (tuple, count) pairs for bins not yet present — and must
// preserve the total ball count. The returned slices may be the inputs,
// extended.
type CountAdversary interface {
	// Budget is the per-round corruption allowance.
	Budget(n int) int
	// CorruptCounts rewrites the distribution under the budget.
	CorruptCounts(round int, tuples []Point, counts []int64, allowed []Point, g *rng.Xoshiro256) ([]Point, []int64)
}

// CountOptions configures a CountEngine.
type CountOptions struct {
	// MaxRounds caps the run; 0 means DefaultMaxRounds.
	MaxRounds int
	// Observer, when non-nil, receives the tuple distribution after every
	// round: the distinct tuples in lexicographic order and their counts.
	// The slices and tuples are only valid during the call (the engine is
	// free to reuse them); observers must copy what they keep.
	Observer func(round int, tuples []Point, counts []int64)
}

// blockRoundFactor weighs the block-multinomial round (≤ k² multinomial
// splits, each O(k) binomial draws) against per-ball sampling (n alias
// pairs): one binomial draw plus the block bookkeeping costs roughly this
// many alias draws, so blocks win once n exceeds blockRoundFactor·k³.
const blockRoundFactor = 32

// CountEngine runs the coordinate-wise median dynamics on the tuple
// distribution. Adversaries run at count level through the CountAdversary
// contract (the per-process Adversary contract rewrites individual
// processes, which the count representation cannot express).
//
// Internally every distinct tuple ever seen is interned into a slot; the
// live distribution is the sorted slice of slots with a positive count.
// Slots, counts, sampling tables and observer views are all engine-owned
// reusable workspaces: once the reachable tuple set has been seen, a round
// allocates nothing.
type CountEngine struct {
	n       int64
	dim     int
	adv     CountAdversary
	g       *rng.Xoshiro256
	opts    CountOptions
	round   int
	initial []Point // distinct initial tuples: validity + adversary domain

	// Slot store: every distinct tuple ever seen, interned once.
	index map[string]int32 // point key → slot
	reps  []Point          // slot → representative tuple
	cur   []int64          // slot → live count (zero for dead slots)
	nxt   []int64          // slot → next-round accumulator (all zero between rounds)
	live  []int32          // slots with cur > 0, sorted by tuple order
	tch   []int32          // slots with nxt > 0, in first-touch order

	// Round workspaces.
	weights    []float64 // parallel to live
	alias      randx.Alias
	out1, out2 []int64 // multinomial blocks, parallel to live
	scratch    Point
	keyBuf     []byte
	sorter     slotSorter

	// Flattened live views (observer, adversary, Dist).
	viewTuples []Point
	viewCounts []int64
}

// slotSorter sorts a slot slice by the represented tuple order.
type slotSorter struct {
	slots []int32
	reps  []Point
}

func (s *slotSorter) Len() int { return len(s.slots) }
func (s *slotSorter) Less(i, j int) bool {
	return pointLess(s.reps[s.slots[i]], s.reps[s.slots[j]])
}
func (s *slotSorter) Swap(i, j int) { s.slots[i], s.slots[j] = s.slots[j], s.slots[i] }

// NewCountEngine builds a count-level engine over the distribution of the
// given points (the per-process population the spec describes; the engine
// only stores its distinct tuples). The adversary may be nil.
func NewCountEngine(points []Point, adv CountAdversary, seed uint64, opts CountOptions) *CountEngine {
	if len(points) == 0 {
		panic("multidim: empty population")
	}
	dim := len(points[0])
	if dim == 0 {
		panic("multidim: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("multidim: point %d has dimension %d, want %d", i, len(p), dim))
		}
	}
	tuples, counts := distOf(points, dim)
	return NewCountEngineDist(tuples, counts, adv, seed, opts)
}

// NewCountEngineDist builds the engine directly over a (tuples, counts)
// distribution — the distribution-level entry point the count-native init
// builders feed, never materializing a per-process point slice. Counts must
// be positive and tuples distinct with a common dimension; any order is
// accepted (the engine sorts internally). The tuples are cloned, so the
// caller keeps ownership of its slices.
func NewCountEngineDist(tuples []Point, counts []int64, adv CountAdversary, seed uint64, opts CountOptions) *CountEngine {
	if len(tuples) == 0 {
		panic("multidim: empty population")
	}
	if len(tuples) != len(counts) {
		panic("multidim: tuples/counts length mismatch")
	}
	dim := len(tuples[0])
	if dim == 0 {
		panic("multidim: zero-dimensional points")
	}
	e := &CountEngine{
		dim:     dim,
		adv:     adv,
		g:       rng.NewXoshiro256(seed),
		opts:    opts,
		index:   make(map[string]int32, len(tuples)),
		scratch: make(Point, dim),
		keyBuf:  make([]byte, 0, 8*dim),
	}
	for i, p := range tuples {
		if len(p) != dim {
			panic(fmt.Sprintf("multidim: tuple %d has dimension %d, want %d", i, len(p), dim))
		}
		c := counts[i]
		if c <= 0 {
			panic(fmt.Sprintf("multidim: tuple %d has non-positive count %d", i, c))
		}
		slot := e.intern(p)
		if e.cur[slot] != 0 {
			panic(fmt.Sprintf("multidim: duplicate tuple %v in distribution", p))
		}
		e.cur[slot] = c
		e.live = append(e.live, slot)
		e.n += c
	}
	e.sortLive()
	e.initial = make([]Point, len(e.live))
	for i, s := range e.live {
		e.initial[i] = e.reps[s]
	}
	return e
}

// intern returns the slot of p, creating one (with a cloned representative)
// on first sight. Steady-state calls are pure map lookups: the string(buf)
// key conversion does not allocate.
//
//consensus:hotpath
func (e *CountEngine) intern(p Point) int32 {
	e.keyBuf = appendPointKey(e.keyBuf[:0], p)
	if slot, ok := e.index[string(e.keyBuf)]; ok {
		return slot
	}
	slot := int32(len(e.reps))
	e.index[string(e.keyBuf)] = slot
	e.reps = append(e.reps, p.Clone())
	e.cur = append(e.cur, 0)
	e.nxt = append(e.nxt, 0)
	return slot
}

//consensus:hotpath
func (e *CountEngine) sortLive() {
	e.sorter.slots, e.sorter.reps = e.live, e.reps
	sort.Sort(&e.sorter)
}

// centry is one accumulator bin: a representative tuple and its count.
type centry struct {
	rep   Point
	count int64
}

// distOf buckets points into a sorted (tuples, counts) distribution.
func distOf(points []Point, dim int) ([]Point, []int64) {
	entries := make(map[string]*centry, 16)
	buf := make([]byte, 0, 8*dim)
	for _, p := range points {
		buf = appendPointKey(buf[:0], p)
		e := entries[string(buf)]
		if e == nil {
			e = &centry{rep: p.Clone()}
			entries[string(buf)] = e
		}
		e.count++
	}
	return sortedDist(entries)
}

// sortedDist flattens an accumulator map into the lexicographically
// sorted (tuples, counts) pair.
func sortedDist(entries map[string]*centry) ([]Point, []int64) {
	bins := make([]*centry, 0, len(entries))
	for _, e := range entries {
		bins = append(bins, e)
	}
	sort.Slice(bins, func(i, j int) bool { return pointLess(bins[i].rep, bins[j].rep) })
	tuples := make([]Point, len(bins))
	counts := make([]int64, len(bins))
	for i, e := range bins {
		tuples[i] = e.rep
		counts[i] = e.count
	}
	return tuples, counts
}

// pointLess is the lexicographic coordinate order — the deterministic
// tuple order the observer stream and plurality tie-break use.
func pointLess(p, q Point) bool {
	for i := range p {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// N returns the population size.
func (e *CountEngine) N() int64 { return e.n }

// Dim returns the common dimension.
func (e *CountEngine) Dim() int { return e.dim }

// Round returns the number of executed rounds.
func (e *CountEngine) Round() int { return e.round }

// Dist returns the live distribution in lexicographic tuple order. The
// slices and tuples are engine-owned views, valid until the next Step or
// Reset; callers must not modify them.
func (e *CountEngine) Dist() ([]Point, []int64) {
	e.refreshViews()
	return e.viewTuples, e.viewCounts
}

// Support returns the number of distinct live tuples.
func (e *CountEngine) Support() int { return len(e.live) }

// Reset rewinds the engine to round zero on a new (tuples, counts)
// distribution, reusing every internal workspace — repeated experiments
// over one engine allocate only when a never-seen tuple appears. The RNG
// stream is NOT rewound (each reset continues the stream), the initial
// tuple set for validity accounting is replaced, and counts must be
// positive with tuples distinct and of the engine's dimension.
func (e *CountEngine) Reset(tuples []Point, counts []int64) {
	if len(tuples) == 0 || len(tuples) != len(counts) {
		panic("multidim: Reset with empty or mismatched distribution")
	}
	for _, s := range e.live {
		e.cur[s] = 0
	}
	e.live = e.live[:0]
	e.n = 0
	for i, p := range tuples {
		if len(p) != e.dim {
			panic(fmt.Sprintf("multidim: tuple %d has dimension %d, want %d", i, len(p), e.dim))
		}
		c := counts[i]
		if c <= 0 {
			panic(fmt.Sprintf("multidim: tuple %d has non-positive count %d", i, c))
		}
		slot := e.intern(p)
		if e.cur[slot] != 0 {
			panic(fmt.Sprintf("multidim: duplicate tuple %v in distribution", p))
		}
		e.cur[slot] = c
		e.live = append(e.live, slot)
		e.n += c
	}
	e.sortLive()
	e.initial = e.initial[:0]
	for _, s := range e.live {
		e.initial = append(e.initial, e.reps[s])
	}
	e.round = 0
}

// refreshViews rebuilds the flattened live (tuples, counts) view into the
// reusable view buffers.
//
//consensus:hotpath
func (e *CountEngine) refreshViews() {
	e.viewTuples = e.viewTuples[:0]
	e.viewCounts = e.viewCounts[:0]
	for _, s := range e.live {
		e.viewTuples = append(e.viewTuples, e.reps[s])
		e.viewCounts = append(e.viewCounts, e.cur[s])
	}
}

// Step executes one synchronous round: adversary first (the Section 1.1
// timing), then every process applies the coordinate-wise median of its own
// tuple and two tuples drawn independently and uniformly from the pre-round
// distribution.
//
//consensus:hotpath
func (e *CountEngine) Step() {
	if e.adv != nil {
		e.applyAdversary()
	}
	if len(e.live) > 1 {
		// Single-tuple states are a fixed point of the median dynamics;
		// skip the update (and its randomness) exactly like the scalar
		// count engine.
		if float64(e.n) >= blockRoundFactor*math.Pow(float64(len(e.live)), 3) {
			e.stepBlocks()
		} else {
			e.stepSampled()
		}
		e.commit()
	}
	e.round++
}

// rebuildWeights refreshes the live-parallel sampling weights (counts as
// float64 — peers are uniform over processes, so tuples weigh by count).
//
//consensus:hotpath
func (e *CountEngine) rebuildWeights() {
	e.weights = e.weights[:0]
	for _, s := range e.live {
		e.weights = append(e.weights, float64(e.cur[s]))
	}
}

// bump adds c balls to slot's next-round bin, tracking first touches.
//
//consensus:hotpath
func (e *CountEngine) bump(slot int32, c int64) {
	if e.nxt[slot] == 0 {
		e.tch = append(e.tch, slot)
	}
	e.nxt[slot] += c
}

// stepSampled is the per-ball round: two alias draws per ball. O(n) time.
//
//consensus:hotpath
func (e *CountEngine) stepSampled() {
	e.rebuildWeights()
	e.alias.Rebuild(e.weights)
	for _, s := range e.live {
		own := e.reps[s]
		for b := int64(0); b < e.cur[s]; b++ {
			a := e.reps[e.live[e.alias.Draw(e.g)]]
			c := e.reps[e.live[e.alias.Draw(e.g)]]
			CoordMedian(e.scratch, own, a, c)
			e.bump(e.intern(e.scratch), 1)
		}
	}
}

// stepBlocks is the block-multinomial round: split each bin over the first
// peer with one exact multinomial draw, each block over the second peer,
// and move every (own, a, b) group at once. O(k³) time, independent of n.
//
//consensus:hotpath
func (e *CountEngine) stepBlocks() {
	e.rebuildWeights()
	k := len(e.live)
	if cap(e.out1) < k {
		e.out1 = make([]int64, k)
		e.out2 = make([]int64, k)
	}
	out1, out2 := e.out1[:k], e.out2[:k]
	for _, s := range e.live {
		own := e.reps[s]
		randx.Multinomial(e.g, e.cur[s], e.weights, out1)
		for ai, ca := range out1 {
			if ca == 0 {
				continue
			}
			a := e.reps[e.live[ai]]
			randx.Multinomial(e.g, ca, e.weights, out2)
			for bi, cb := range out2 {
				if cb == 0 {
					continue
				}
				CoordMedian(e.scratch, own, a, e.reps[e.live[bi]])
				e.bump(e.intern(e.scratch), cb)
			}
		}
	}
}

// commit swaps the accumulated next-round counts in as the live
// distribution, restoring the all-zero accumulator invariant.
//
//consensus:hotpath
func (e *CountEngine) commit() {
	for _, s := range e.live {
		e.cur[s] = 0
	}
	e.cur, e.nxt = e.nxt, e.cur
	e.live, e.tch = e.tch, e.live[:0]
	e.sortLive()
}

// applyAdversary flattens the live distribution, lets the adversary rewrite
// it, and re-interns the result.
func (e *CountEngine) applyAdversary() {
	e.refreshViews()
	tuples, counts := e.adv.CorruptCounts(e.round, e.viewTuples, e.viewCounts, e.initial, e.g)
	for _, s := range e.live {
		e.cur[s] = 0
	}
	e.live = e.live[:0]
	var n int64
	for i, p := range tuples {
		c := counts[i]
		if c < 0 {
			panic(fmt.Sprintf("multidim: adversary produced negative count %d for tuple %v", c, p))
		}
		if c == 0 {
			continue
		}
		slot := e.intern(p)
		if e.cur[slot] == 0 {
			e.live = append(e.live, slot)
		}
		e.cur[slot] += c
		n += c
	}
	if n != e.n {
		panic(fmt.Sprintf("multidim: adversary changed the population (%d -> %d)", e.n, n))
	}
	e.sortLive()
	// Keep grown adversary-extended buffers for the next round's views.
	e.viewTuples, e.viewCounts = tuples[:0], counts[:0]
}

// Run steps until consensus or the round cap and returns the Result,
// mirroring the per-process Engine.Run loop: observer after every executed
// round, stop at the single-tuple fixed point — but, like the per-process
// engine, never stop early under an adversary (momentary agreement is not
// stable when states can be rewritten next round).
func (e *CountEngine) Run() Result {
	maxRounds := e.opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	for e.round < maxRounds {
		e.Step()
		if e.opts.Observer != nil {
			e.refreshViews()
			e.opts.Observer(e.round, e.viewTuples, e.viewCounts)
		}
		if e.adv == nil && len(e.live) == 1 {
			break
		}
	}
	return e.result()
}

func (e *CountEngine) result() Result {
	e.refreshViews()
	winner, count := DistPlurality(e.viewTuples, e.viewCounts)
	return Result{
		Rounds:      e.round,
		Consensus:   count == e.n,
		Winner:      winner.Clone(),
		WinnerCount: int(count),
		TupleValid:  containsPoint(e.initial, winner),
		CoordValid:  coordsValid(e.initial, winner),
	}
}

// DistPlurality returns the most frequent tuple of a (tuples, counts)
// distribution and its count. With lexicographically sorted tuples the
// first maximal count wins, so ties resolve to the smallest tuple —
// deterministic, like Plurality's state-order tie-break. The winner
// aliases a tuple in the slice.
//
//consensus:hotpath
func DistPlurality(tuples []Point, counts []int64) (Point, int64) {
	var winner Point
	var best int64 = -1
	for i, c := range counts {
		if c > best {
			winner, best = tuples[i], c
		}
	}
	return winner, best
}

// CorruptCounts implements CountAdversary for the noise strategy: each of
// the T corruptions rewrites one uniformly chosen ball with a uniformly
// chosen initial tuple — distributionally identical to the per-process
// Corrupt, expressed as count moves.
func (a *NoiseAdversary) CorruptCounts(round int, tuples []Point, counts []int64, allowed []Point, g *rng.Xoshiro256) ([]Point, []int64) {
	var n int64
	for _, c := range counts {
		n += c
	}
	for k := 0; k < a.T && n > 0; k++ {
		// Victim ball uniform over processes = bin weighted by count.
		t := int64(g.Uint64n(uint64(n)))
		vi := 0
		for t >= counts[vi] {
			t -= counts[vi]
			vi++
		}
		src := allowed[g.Intn(len(allowed))]
		counts[vi]--
		tuples, counts = addTupleCount(tuples, counts, src, 1)
	}
	return tuples, counts
}

// addTupleCount adds c balls to p's bin, appending a new bin when p is not
// yet present. Linear in the support — fine for the small-k regime the
// count engine lives in.
func addTupleCount(tuples []Point, counts []int64, p Point, c int64) ([]Point, []int64) {
	for i, q := range tuples {
		if q.Equal(p) {
			counts[i] += c
			return tuples, counts
		}
	}
	return append(tuples, p), append(counts, c)
}

package multidim

// Differential tests: the per-process Engine and the count-level
// CountEngine implement one protocol, so every invariant the model gives
// — population conservation, coordinate containment in the initial
// coordinate sets, convergence — must hold for both, and their round
// counts must agree in distribution. These tests are the contract that
// lets "engine": "auto" switch between them without changing what a spec
// means.

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// coordSets collects, per dimension, the set of initial coordinate values.
func coordSets(pts []Point) []map[int64]bool {
	d := len(pts[0])
	sets := make([]map[int64]bool, d)
	for j := range sets {
		sets[j] = make(map[int64]bool)
	}
	for _, p := range pts {
		for j, v := range p {
			sets[j][v] = true
		}
	}
	return sets
}

func TestDifferentialConservationAndCoordContainment(t *testing.T) {
	const n, d, m = 400, 2, 4
	pts := RandomPoints(n, d, m, 11)
	sets := coordSets(pts)

	checkPoint := func(t *testing.T, round int, p Point) {
		t.Helper()
		for j, v := range p {
			if !sets[j][v] {
				t.Fatalf("round %d: coordinate %d value %d not in the initial coordinate set", round, j, v)
			}
		}
	}

	// Count engine: every round must conserve the total population and
	// keep every live tuple's coordinates inside the initial per-dimension
	// value sets.
	ce := NewCountEngine(pts, nil, 21, CountOptions{
		MaxRounds: 2000,
		Observer: func(round int, tuples []Point, counts []int64) {
			var total int64
			for i, c := range counts {
				if c <= 0 {
					t.Fatalf("round %d: non-positive count %d", round, c)
				}
				total += c
				checkPoint(t, round, tuples[i])
			}
			if total != n {
				t.Fatalf("round %d: population %d, want %d", round, total, n)
			}
		},
	})
	if res := ce.Run(); !res.Consensus {
		t.Fatalf("count engine did not converge: %+v", res)
	}

	// Per-process engine: same invariants over the state vector.
	pe := NewEngine(pts, nil, 22, Options{
		MaxRounds: 2000,
		Observer: func(round int, state []Point) {
			if len(state) != n {
				t.Fatalf("round %d: %d processes, want %d", round, len(state), n)
			}
			for _, p := range state {
				checkPoint(t, round, p)
			}
		},
	})
	if res := pe.Run(); !res.Consensus {
		t.Fatalf("per-process engine did not converge: %+v", res)
	}
}

func TestDifferentialSingleTupleState(t *testing.T) {
	// A single-tuple start is deterministic: both engines must stop after
	// one (no-op) round at consensus on exactly that tuple.
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{5, -3, 8}
	}
	pres := NewEngine(pts, nil, 7, Options{}).Run()
	cres := NewCountEngine(pts, nil, 7, CountOptions{}).Run()
	for name, res := range map[string]Result{"process": pres, "count": cres} {
		if !res.Consensus || res.Rounds != 1 || !res.Winner.Equal(Point{5, -3, 8}) ||
			res.WinnerCount != 64 || !res.TupleValid || !res.CoordValid {
			t.Fatalf("%s engine on single-tuple state: %+v", name, res)
		}
	}
}

func TestDifferentialTwoTupleState(t *testing.T) {
	// Two-tuple starts: each coordinate runs the scalar two-value median
	// dynamics, so both engines must reach consensus, with every winner
	// coordinate drawn from the two initial tuples.
	a, b := Point{1, 10}, Point{4, 2}
	pts := make([]Point, 120)
	for i := range pts {
		if i < 60 {
			pts[i] = a.Clone()
		} else {
			pts[i] = b.Clone()
		}
	}
	sets := coordSets(pts)
	for seed := uint64(1); seed <= 5; seed++ {
		pres := NewEngine(pts, nil, seed, Options{MaxRounds: 4000}).Run()
		cres := NewCountEngine(pts, nil, seed, CountOptions{MaxRounds: 4000}).Run()
		for name, res := range map[string]Result{"process": pres, "count": cres} {
			if !res.Consensus {
				t.Fatalf("seed %d: %s engine did not converge: %+v", seed, name, res)
			}
			if !res.CoordValid {
				t.Fatalf("seed %d: %s engine lost coordinate validity: %+v", seed, name, res)
			}
			for j, v := range res.Winner {
				if !sets[j][v] {
					t.Fatalf("seed %d: %s winner coordinate %d = %d outside {%d, %d}",
						seed, name, j, v, a[j], b[j])
				}
			}
		}
	}
}

func TestDifferentialMeanRoundsAgree(t *testing.T) {
	// Statistical equivalence: over ≥30 seeds the engines' mean
	// convergence rounds must agree within the same tolerance the scalar
	// ball/count equivalence tests use. Different engines consume
	// randomness differently, so per-seed trajectories differ; the
	// distribution must not.
	const n, d, m, seeds = 600, 2, 4, 30
	var process, count []float64
	for seed := uint64(1); seed <= seeds; seed++ {
		pts := RandomPoints(n, d, m, seed)
		pr := NewEngine(pts, nil, seed, Options{MaxRounds: 4000}).Run()
		cr := NewCountEngine(pts, nil, seed+1000, CountOptions{MaxRounds: 4000}).Run()
		if !pr.Consensus || !cr.Consensus {
			t.Fatalf("seed %d: convergence disagreement: process %+v vs count %+v", seed, pr, cr)
		}
		process = append(process, float64(pr.Rounds))
		count = append(count, float64(cr.Rounds))
	}
	mp, mc := stats.Mean(process), stats.Mean(count)
	if math.Abs(mp-mc) > 0.35*(mp+mc)/2+2 {
		t.Fatalf("process %.2f vs count %.2f mean rounds", mp, mc)
	}
	t.Logf("mean rounds: process %.2f, count %.2f", mp, mc)
}

// TestDifferentialDistinctInitCounts: the count-native distinct builder
// must produce exactly the distribution that materializing the points and
// bucketing them does — distinct init is deterministic, so this is
// byte-for-byte equality, not a statistical check.
func TestDifferentialDistinctInitCounts(t *testing.T) {
	spec := InitSpec{Kind: "distinct", N: 500, D: 3}
	tuples, counts, err := BuildInitCounts(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := BuildInit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantT, wantC := distOf(pts, 3)
	if len(tuples) != len(wantT) {
		t.Fatalf("support %d, want %d", len(tuples), len(wantT))
	}
	for i := range tuples {
		if !tuples[i].Equal(wantT[i]) || counts[i] != wantC[i] {
			t.Fatalf("bin %d: (%v, %d), want (%v, %d)", i, tuples[i], counts[i], wantT[i], wantC[i])
		}
	}
}

// TestDifferentialRandomInitCounts: the count-native random builder draws
// one multinomial over the m^d cells instead of n·d coordinate draws, so
// at equal seed the realizations differ — but the distributions must not.
// Both builds are multinomial(n, uniform over cells) samples; every cell
// of both must sit within a 6σ band of n/cells, and the two builds must
// agree with each other within the two-sample band.
func TestDifferentialRandomInitCounts(t *testing.T) {
	const n, d, m = 1_000_000, 2, 4
	cells := 16 // m^d
	spec := InitSpec{Kind: "random", N: n, D: d, M: m, Seed: 9}
	tuples, counts, err := BuildInitCounts(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := BuildInit(spec)
	if err != nil {
		t.Fatal(err)
	}
	bTuples, bCounts := distOf(pts, d)
	if len(tuples) != cells || len(bTuples) != cells {
		t.Fatalf("support: count-native %d, bucketed %d, want %d (n ≫ cells: every cell occupied)", len(tuples), len(bTuples), cells)
	}
	p := 1.0 / float64(cells)
	sigma := math.Sqrt(n * p * (1 - p))
	var total int64
	for i := range tuples {
		if !tuples[i].Equal(bTuples[i]) {
			t.Fatalf("cell %d: %v vs bucketed %v", i, tuples[i], bTuples[i])
		}
		total += counts[i]
		if dev := math.Abs(float64(counts[i]) - n*p); dev > 6*sigma {
			t.Fatalf("cell %v: count-native count %d deviates %.0f from %0.f (6σ = %.0f)", tuples[i], counts[i], dev, n*p, 6*sigma)
		}
		// Independent draws of the same multinomial: the difference has
		// variance 2·n·p·(1-p).
		if dev := math.Abs(float64(counts[i] - bCounts[i])); dev > 6*math.Sqrt2*sigma {
			t.Fatalf("cell %v: count-native %d vs bucketed %d (6σ₂ = %.0f)", tuples[i], counts[i], bCounts[i], 6*math.Sqrt2*sigma)
		}
	}
	if total != n {
		t.Fatalf("count-native total %d, want %d", total, n)
	}
}

// TestDifferentialAdversaryMeanRounds: the count-level noise adversary
// must be the same strategy as the per-process one, just expressed as
// count moves — so over ≥30 seeds the mean first-consensus round of
// process-engine-with-Corrupt and count-engine-with-CorruptCounts runs
// must agree in distribution (adversarial runs never stop early; first
// consensus is read through the observers).
func TestDifferentialAdversaryMeanRounds(t *testing.T) {
	const n, d, m, seeds, maxRounds = 600, 2, 4, 30, 4000
	var process, count []float64
	for seed := uint64(1); seed <= seeds; seed++ {
		pts := RandomPoints(n, d, m, seed)
		first := maxRounds
		pr := NewEngine(pts, &NoiseAdversary{T: 1}, seed, Options{MaxRounds: maxRounds, Observer: func(round int, state []Point) {
			if first == maxRounds {
				if _, c, _ := Plurality(state); c == n {
					first = round
				}
			}
		}})
		pr.Run()
		if first == maxRounds {
			t.Fatalf("seed %d: process run never reached consensus", seed)
		}
		process = append(process, float64(first))

		first = maxRounds
		cr := NewCountEngine(pts, &NoiseAdversary{T: 1}, seed+1000, CountOptions{MaxRounds: maxRounds, Observer: func(round int, tuples []Point, counts []int64) {
			if first == maxRounds && len(tuples) == 1 {
				first = round
			}
		}})
		cr.Run()
		if first == maxRounds {
			t.Fatalf("seed %d: count run never reached consensus", seed)
		}
		count = append(count, float64(first))
	}
	mp, mc := stats.Mean(process), stats.Mean(count)
	if math.Abs(mp-mc) > 0.35*(mp+mc)/2+2 {
		t.Fatalf("process %.2f vs count %.2f mean first-consensus rounds", mp, mc)
	}
	t.Logf("mean first-consensus rounds under noise: process %.2f, count %.2f", mp, mc)
}

package multidim

// Differential tests: the per-process Engine and the count-level
// CountEngine implement one protocol, so every invariant the model gives
// — population conservation, coordinate containment in the initial
// coordinate sets, convergence — must hold for both, and their round
// counts must agree in distribution. These tests are the contract that
// lets "engine": "auto" switch between them without changing what a spec
// means.

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// coordSets collects, per dimension, the set of initial coordinate values.
func coordSets(pts []Point) []map[int64]bool {
	d := len(pts[0])
	sets := make([]map[int64]bool, d)
	for j := range sets {
		sets[j] = make(map[int64]bool)
	}
	for _, p := range pts {
		for j, v := range p {
			sets[j][v] = true
		}
	}
	return sets
}

func TestDifferentialConservationAndCoordContainment(t *testing.T) {
	const n, d, m = 400, 2, 4
	pts := RandomPoints(n, d, m, 11)
	sets := coordSets(pts)

	checkPoint := func(t *testing.T, round int, p Point) {
		t.Helper()
		for j, v := range p {
			if !sets[j][v] {
				t.Fatalf("round %d: coordinate %d value %d not in the initial coordinate set", round, j, v)
			}
		}
	}

	// Count engine: every round must conserve the total population and
	// keep every live tuple's coordinates inside the initial per-dimension
	// value sets.
	ce := NewCountEngine(pts, 21, CountOptions{
		MaxRounds: 2000,
		Observer: func(round int, tuples []Point, counts []int64) {
			var total int64
			for i, c := range counts {
				if c <= 0 {
					t.Fatalf("round %d: non-positive count %d", round, c)
				}
				total += c
				checkPoint(t, round, tuples[i])
			}
			if total != n {
				t.Fatalf("round %d: population %d, want %d", round, total, n)
			}
		},
	})
	if res := ce.Run(); !res.Consensus {
		t.Fatalf("count engine did not converge: %+v", res)
	}

	// Per-process engine: same invariants over the state vector.
	pe := NewEngine(pts, nil, 22, Options{
		MaxRounds: 2000,
		Observer: func(round int, state []Point) {
			if len(state) != n {
				t.Fatalf("round %d: %d processes, want %d", round, len(state), n)
			}
			for _, p := range state {
				checkPoint(t, round, p)
			}
		},
	})
	if res := pe.Run(); !res.Consensus {
		t.Fatalf("per-process engine did not converge: %+v", res)
	}
}

func TestDifferentialSingleTupleState(t *testing.T) {
	// A single-tuple start is deterministic: both engines must stop after
	// one (no-op) round at consensus on exactly that tuple.
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{5, -3, 8}
	}
	pres := NewEngine(pts, nil, 7, Options{}).Run()
	cres := NewCountEngine(pts, 7, CountOptions{}).Run()
	for name, res := range map[string]Result{"process": pres, "count": cres} {
		if !res.Consensus || res.Rounds != 1 || !res.Winner.Equal(Point{5, -3, 8}) ||
			res.WinnerCount != 64 || !res.TupleValid || !res.CoordValid {
			t.Fatalf("%s engine on single-tuple state: %+v", name, res)
		}
	}
}

func TestDifferentialTwoTupleState(t *testing.T) {
	// Two-tuple starts: each coordinate runs the scalar two-value median
	// dynamics, so both engines must reach consensus, with every winner
	// coordinate drawn from the two initial tuples.
	a, b := Point{1, 10}, Point{4, 2}
	pts := make([]Point, 120)
	for i := range pts {
		if i < 60 {
			pts[i] = a.Clone()
		} else {
			pts[i] = b.Clone()
		}
	}
	sets := coordSets(pts)
	for seed := uint64(1); seed <= 5; seed++ {
		pres := NewEngine(pts, nil, seed, Options{MaxRounds: 4000}).Run()
		cres := NewCountEngine(pts, seed, CountOptions{MaxRounds: 4000}).Run()
		for name, res := range map[string]Result{"process": pres, "count": cres} {
			if !res.Consensus {
				t.Fatalf("seed %d: %s engine did not converge: %+v", seed, name, res)
			}
			if !res.CoordValid {
				t.Fatalf("seed %d: %s engine lost coordinate validity: %+v", seed, name, res)
			}
			for j, v := range res.Winner {
				if !sets[j][v] {
					t.Fatalf("seed %d: %s winner coordinate %d = %d outside {%d, %d}",
						seed, name, j, v, a[j], b[j])
				}
			}
		}
	}
}

func TestDifferentialMeanRoundsAgree(t *testing.T) {
	// Statistical equivalence: over ≥30 seeds the engines' mean
	// convergence rounds must agree within the same tolerance the scalar
	// ball/count equivalence tests use. Different engines consume
	// randomness differently, so per-seed trajectories differ; the
	// distribution must not.
	const n, d, m, seeds = 600, 2, 4, 30
	var process, count []float64
	for seed := uint64(1); seed <= seeds; seed++ {
		pts := RandomPoints(n, d, m, seed)
		pr := NewEngine(pts, nil, seed, Options{MaxRounds: 4000}).Run()
		cr := NewCountEngine(pts, seed+1000, CountOptions{MaxRounds: 4000}).Run()
		if !pr.Consensus || !cr.Consensus {
			t.Fatalf("seed %d: convergence disagreement: process %+v vs count %+v", seed, pr, cr)
		}
		process = append(process, float64(pr.Rounds))
		count = append(count, float64(cr.Rounds))
	}
	mp, mc := stats.Mean(process), stats.Mean(count)
	if math.Abs(mp-mc) > 0.35*(mp+mc)/2+2 {
		t.Fatalf("process %.2f vs count %.2f mean rounds", mp, mc)
	}
	t.Logf("mean rounds: process %.2f, count %.2f", mp, mc)
}

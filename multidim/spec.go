package multidim

import (
	"fmt"

	"repro/engine"
	"repro/internal/model"
)

// This file registers the coordinate-wise median dynamics as the
// "multidim" spec kind of the engine plugin API (package engine).

// Spec is the multidim kind's spec payload: a point-set generator
// reference and an optional adversary reference, both resolved through
// this package's registries.
type Spec struct {
	// Init describes the initial point set (see InitKinds).
	Init InitSpec `json:"init,omitzero"`
	// Adversary optionally references a registered strategy (nil = none;
	// see AdversaryNames).
	Adversary *AdversaryRef `json:"adversary,omitempty"`
}

// AdversaryRef is the serializable reference to a registered multidim
// adversary.
type AdversaryRef struct {
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
}

// Normalize implements engine.Payload.
func (s *Spec) Normalize() {
	s.Init = NormalizeInit(s.Init)
	if s.Adversary != nil && len(s.Adversary.Params) == 0 {
		s.Adversary.Params = nil
	}
}

// Validate implements engine.Payload.
func (s *Spec) Validate() error {
	if err := CheckInit(s.Init); err != nil {
		return err
	}
	if a := s.Adversary; a != nil {
		if _, err := NewAdversary(a.Name, a.Params); err != nil {
			return err
		}
	}
	return nil
}

// Population implements engine.Payload.
func (s *Spec) Population() int64 { return InitSize(s.Init) }

// Run implements engine.Payload.
func (s *Spec) Run(ctx engine.RunContext) (engine.Result, error) {
	pts, err := BuildInit(s.Init)
	if err != nil {
		return engine.Result{}, err
	}
	var adv Adversary
	if a := s.Adversary; a != nil {
		adv, err = NewAdversary(a.Name, a.Params)
		if err != nil {
			return engine.Result{}, err
		}
	}
	n := int64(len(pts))
	emit := func(round int, state []Point) {
		winner, count, support := Plurality(state)
		ctx.Observe(engine.Record{
			Round: round, N: n, Support: support,
			LeaderCount: int64(count),
			LeaderPoint: append([]int64(nil), winner...),
		})
	}
	eng := NewEngine(pts, adv, ctx.Seed, Options{
		MaxRounds: ctx.MaxRounds,
		Observer:  emit,
	})
	emit(0, eng.State())
	out := eng.Run()
	reason := model.StopMaxRounds
	if out.Consensus {
		reason = model.StopConsensus
	}
	tv, cv := out.TupleValid, out.CoordValid
	return engine.Result{
		Rounds:      out.Rounds,
		Reason:      reason.String(),
		WinnerCount: int64(out.WinnerCount),
		WinnerPoint: append([]int64(nil), out.Winner...),
		TupleValid:  &tv,
		CoordValid:  &cv,
	}, nil
}

// ApplyAxis implements engine.AxisApplier.
func (s *Spec) ApplyAxis(param string, v float64) error {
	iv, err := engine.IntAxis(param, v)
	if err != nil {
		return err
	}
	switch param {
	case "n":
		s.Init.N = iv
	case "m":
		s.Init.M = iv
	case "d":
		s.Init.D = iv
	default:
		return fmt.Errorf("multidim: unknown batch axis %q", param)
	}
	return nil
}

// FollowSeed implements engine.SeedFollower for the random point set.
func (s *Spec) FollowSeed(seed uint64) {
	if s.Init.Kind == "random" {
		s.Init.Seed = seed
	}
}

// multidimEngine registers the kind.
type multidimEngine struct{}

func (multidimEngine) NewPayload() engine.Payload { return &Spec{} }

func (multidimEngine) Descriptor() engine.Descriptor {
	return engine.Descriptor{
		Kind:    "multidim",
		Summary: "coordinate-wise median dynamics on d-dimensional points (the paper's Section 6 future work)",
		Params: []engine.Param{
			{Name: "init.kind", Type: "string", Enum: InitKinds(), Doc: "initial point-set generator"},
			{Name: "init.n", Type: "int", Min: engine.Bound(1), Doc: "population size"},
			{Name: "init.d", Type: "int", Min: engine.Bound(1), Default: "1", Doc: "point dimension"},
			{Name: "init.m", Type: "int", Doc: "per-coordinate value range for random (0 = n)"},
			{Name: "init.seed", Type: "uint", Doc: "seed of randomized generators (random)"},
			{Name: "adversary.name", Type: "string", Enum: AdversaryNames(), Doc: "adversary strategy (omit the block for none)"},
			{Name: "adversary.params", Type: "object", Doc: "strategy parameters (numeric, strategy-specific)"},
			{Name: "adversary.params.t", Type: "int", Min: engine.Bound(0), Doc: "per-round budget of the noise strategy"},
		},
		Axes: []string{"n", "m", "d"},
	}
}

func init() { engine.Register(multidimEngine{}) }

package multidim

import (
	"fmt"

	"repro/engine"
	"repro/internal/model"
)

// This file registers the coordinate-wise median dynamics as the
// "multidim" spec kind of the engine plugin API (package engine).

// Spec is the multidim kind's spec payload: a point-set generator
// reference, an optional adversary reference — both resolved through this
// package's registries — and the engine selector.
type Spec struct {
	// Init describes the initial point set (see InitKinds).
	Init InitSpec `json:"init,omitzero"`
	// Adversary optionally references a registered strategy (nil = none;
	// see AdversaryNames).
	Adversary *AdversaryRef `json:"adversary,omitempty"`
	// Engine selects the simulator by name: auto (the default), process
	// (exact per-process, every adversary) or count (distribution over
	// distinct tuples, O(k·d) memory, count-aware adversaries). "auto"
	// stays "auto" in the canonical encoding — the cache key must not
	// depend on which engine auto resolves to.
	Engine string `json:"engine,omitempty"`
}

// Engine names of the multidim kind (see EngineNames).
const (
	// EngineAuto picks count when the spec-level distinct-tuple support
	// bound is small relative to n and the adversary (if any) runs at
	// count level, process otherwise.
	EngineAuto = "auto"
	// EngineProcess is the exact per-process engine (multidim.Engine).
	EngineProcess = "process"
	// EngineCount is the count-level engine (multidim.CountEngine).
	EngineCount = "count"
)

// EngineNames returns the multidim engine names in sorted order.
func EngineNames() []string { return []string{EngineAuto, EngineCount, EngineProcess} }

// CountSupportFactor is auto-selection's support threshold: the count
// engine wins once each distinct tuple is shared by CountSupportFactor
// processes on average (its per-round accumulator then stays well below
// the per-process engine's O(n·d) state).
const CountSupportFactor = 16

// PickEngine resolves "auto" for a population of n processes whose
// distinct-tuple support is bounded by support (the InitSupport spec-level
// bound — never a materialized count, so auto-selection costs O(1)): count
// when the support bound is small relative to n (support·CountSupportFactor
// ≤ n) and the adversary, if any, runs at count level (CountCompatible),
// process otherwise. support ≤ 0 means unknown, which resolves to process.
// Deterministic in its inputs, so every run of one spec picks the same
// engine.
func PickEngine(n, support int64, adv Adversary) string {
	if support > 0 && support <= n/CountSupportFactor && CountCompatible(adv) {
		return EngineCount
	}
	return EngineProcess
}

// CountCompatible reports whether the adversary can run on the count
// engine: nil, or an implementation of the CountAdversary contract.
func CountCompatible(adv Adversary) bool {
	if adv == nil {
		return true
	}
	_, ok := adv.(CountAdversary)
	return ok
}

// AdversaryRef is the serializable reference to a registered multidim
// adversary.
type AdversaryRef struct {
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
}

// Normalize implements engine.Payload.
func (s *Spec) Normalize() {
	s.Init = NormalizeInit(s.Init)
	if s.Adversary != nil && len(s.Adversary.Params) == 0 {
		s.Adversary.Params = nil
	}
	if s.Engine == "" {
		s.Engine = EngineAuto
	}
}

// Validate implements engine.Payload.
func (s *Spec) Validate() error {
	if err := CheckInit(s.Init); err != nil {
		return err
	}
	var adv Adversary
	if a := s.Adversary; a != nil {
		var err error
		adv, err = NewAdversary(a.Name, a.Params)
		if err != nil {
			return err
		}
	}
	switch s.Engine {
	case "", EngineAuto, EngineProcess:
	case EngineCount:
		if adv != nil && !CountCompatible(adv) {
			return fmt.Errorf("multidim: adversary %q has no count-level implementation (CountAdversary); use engine %q or %q", s.Adversary.Name, EngineProcess, EngineAuto)
		}
	default:
		return fmt.Errorf("multidim: unknown engine %q (known: %v)", s.Engine, EngineNames())
	}
	return nil
}

// Population implements engine.Payload.
func (s *Spec) Population() int64 { return InitSize(s.Init) }

// MaterializedSize implements engine.Materializer: runs landing on the
// count engine hold the distribution over at most InitSupport distinct
// tuples — O(k·d) memory, independent of n — which is what admission
// control should charge for. The engine resolves exactly as Run resolves
// it, so admission and execution always agree.
func (s *Spec) MaterializedSize() int64 {
	n := InitSize(s.Init)
	var adv Adversary
	if a := s.Adversary; a != nil {
		var err error
		adv, err = NewAdversary(a.Name, a.Params)
		if err != nil {
			return n
		}
	}
	selected := s.Engine
	if selected == "" || selected == EngineAuto {
		selected = PickEngine(n, InitSupport(s.Init), adv)
	}
	if selected == EngineCount && CountCompatible(adv) {
		if k := InitSupport(s.Init); k > 0 && k < n {
			return k
		}
	}
	return n
}

// Run implements engine.Payload. The engine selector resolves here:
// "auto" picks through PickEngine on the spec-level (n, support-bound)
// pair, which is deterministic in the spec, so a cached result and a fresh
// run of the same spec always took the same engine — and the count path
// builds its start state with BuildInitCounts, so a count (or
// auto-resolved-to-count) run never materializes the O(n·d) point slice;
// only the process engine falls back to BuildInit.
func (s *Spec) Run(ctx engine.RunContext) (engine.Result, error) {
	var adv Adversary
	var err error
	if a := s.Adversary; a != nil {
		adv, err = NewAdversary(a.Name, a.Params)
		if err != nil {
			return engine.Result{}, err
		}
	}
	selected := s.Engine
	if selected == "" || selected == EngineAuto {
		selected = PickEngine(InitSize(s.Init), InitSupport(s.Init), adv)
	}
	var out Result
	switch selected {
	case EngineCount:
		if !CountCompatible(adv) {
			return engine.Result{}, fmt.Errorf("multidim: adversary %q has no count-level implementation (CountAdversary)", s.Adversary.Name)
		}
		tuples, counts, err := BuildInitCounts(s.Init)
		if err != nil {
			return engine.Result{}, err
		}
		var countAdv CountAdversary
		if adv != nil {
			countAdv = adv.(CountAdversary)
		}
		out = s.runCount(ctx, tuples, counts, countAdv)
	case EngineProcess:
		pts, err := BuildInit(s.Init)
		if err != nil {
			return engine.Result{}, err
		}
		out = s.runProcess(ctx, pts, adv)
	default:
		return engine.Result{}, fmt.Errorf("multidim: unknown engine %q (known: %v)", selected, EngineNames())
	}
	reason := model.StopMaxRounds
	if out.Consensus {
		reason = model.StopConsensus
	}
	tv, cv := out.TupleValid, out.CoordValid
	return engine.Result{
		Rounds:      out.Rounds,
		Reason:      reason.String(),
		WinnerCount: int64(out.WinnerCount),
		WinnerPoint: append([]int64(nil), out.Winner...),
		TupleValid:  &tv,
		CoordValid:  &cv,
	}, nil
}

// runProcess executes the per-process engine, reporting per-round state
// summaries through the RunContext observer (the cancellation point).
func (s *Spec) runProcess(ctx engine.RunContext, pts []Point, adv Adversary) Result {
	n := int64(len(pts))
	emit := func(round int, state []Point) {
		winner, count, support := Plurality(state)
		ctx.Observe(engine.Record{
			Round: round, N: n, Support: support,
			LeaderCount: int64(count),
			LeaderPoint: append([]int64(nil), winner...),
		})
	}
	eng := NewEngine(pts, adv, ctx.Seed, Options{
		MaxRounds: ctx.MaxRounds,
		Observer:  emit,
	})
	emit(0, eng.State())
	return eng.Run()
}

// runCount executes the count-level engine over the count-native initial
// distribution. Round records are built straight from the tuple counts —
// O(support) per round, never rematerializing per-process state — and the
// observer still fires every round, so mid-run cancellation
// (DELETE /v1/runs) keeps working.
func (s *Spec) runCount(ctx engine.RunContext, tuples []Point, counts []int64, adv CountAdversary) Result {
	var n int64
	for _, c := range counts {
		n += c
	}
	emit := func(round int, tuples []Point, counts []int64) {
		winner, count := DistPlurality(tuples, counts)
		ctx.Observe(engine.Record{
			Round: round, N: n, Support: len(tuples),
			LeaderCount: count,
			LeaderPoint: append([]int64(nil), winner...),
		})
	}
	eng := NewCountEngineDist(tuples, counts, adv, ctx.Seed, CountOptions{
		MaxRounds: ctx.MaxRounds,
		Observer:  emit,
	})
	emit(0, tuples, counts)
	return eng.Run()
}

// ApplyAxis implements engine.AxisApplier.
func (s *Spec) ApplyAxis(param string, v float64) error {
	iv, err := engine.IntAxis(param, v)
	if err != nil {
		return err
	}
	switch param {
	case "n":
		s.Init.N = iv
	case "m":
		s.Init.M = iv
	case "d":
		s.Init.D = iv
	default:
		return fmt.Errorf("multidim: unknown batch axis %q", param)
	}
	return nil
}

// FollowSeed implements engine.SeedFollower for the random point set.
func (s *Spec) FollowSeed(seed uint64) {
	if s.Init.Kind == "random" {
		s.Init.Seed = seed
	}
}

// multidimEngine registers the kind.
type multidimEngine struct{}

func (multidimEngine) NewPayload() engine.Payload { return &Spec{} }

func (multidimEngine) Descriptor() engine.Descriptor {
	return engine.Descriptor{
		Kind:    "multidim",
		Summary: "coordinate-wise median dynamics on d-dimensional points (the paper's Section 6 future work)",
		Params: []engine.Param{
			{Name: "init.kind", Type: "string", Enum: InitKinds(), Doc: "initial point-set generator"},
			{Name: "init.n", Type: "int", Min: engine.Bound(1), Doc: "population size"},
			{Name: "init.d", Type: "int", Min: engine.Bound(1), Default: "1", Doc: "point dimension"},
			{Name: "init.m", Type: "int", Doc: "per-coordinate value range for random (0 = n)"},
			{Name: "init.seed", Type: "uint", Doc: "seed of randomized generators (random)"},
			{Name: "adversary.name", Type: "string", Enum: AdversaryNames(), Doc: "adversary strategy (omit the block for none)"},
			{Name: "adversary.params", Type: "object", Doc: "strategy parameters (numeric, strategy-specific)"},
			{Name: "adversary.params.t", Type: "int", Min: engine.Bound(0), Doc: "per-round budget of the noise strategy"},
			{Name: "engine", Type: "string", Default: EngineAuto, Enum: EngineNames(), Doc: "simulator: process (exact per-process), count (distribution over distinct tuples, O(k·d) memory, count-aware adversaries) or auto (count when the spec-level support bound is small relative to n and the adversary, if any, runs at count level)"},
		},
		Axes:    []string{"n", "m", "d"},
		Example: []byte(`{"init":{"kind":"random","n":64,"d":2,"m":2,"seed":3}}`),
	}
}

func init() { engine.Register(multidimEngine{}) }

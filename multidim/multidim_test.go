package multidim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestMedian3(t *testing.T) {
	cases := []struct {
		a, b, c, want int64
	}{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 3, 1, 2}, {2, 1, 3, 2},
		{1, 1, 1, 1}, {1, 1, 2, 1}, {2, 1, 1, 1}, {1, 2, 1, 1},
		{-5, 0, 5, 0}, {math.MaxInt64, math.MinInt64, 0, 0},
	}
	for _, c := range cases {
		if got := median3(c.a, c.b, c.c); got != c.want {
			t.Errorf("median3(%d,%d,%d) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestMedian3Property(t *testing.T) {
	// The median is one of its arguments, and at least one argument lies
	// on each side.
	f := func(a, b, c int64) bool {
		m := median3(a, b, c)
		if m != a && m != b && m != c {
			return false
		}
		le, ge := 0, 0
		for _, v := range []int64{a, b, c} {
			if v <= m {
				le++
			}
			if v >= m {
				ge++
			}
		}
		return le >= 2 && ge >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoordMedianMatchesScalar(t *testing.T) {
	f := func(own, a, b [4]int64) bool {
		dst := make(Point, 4)
		CoordMedian(dst, Point(own[:]), Point(a[:]), Point(b[:]))
		for i := 0; i < 4; i++ {
			if dst[i] != median3(own[i], a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoordMedianAliasesOwn(t *testing.T) {
	own := Point{5, 5, 5}
	a := Point{1, 9, 5}
	b := Point{9, 1, 7}
	CoordMedian(own, own, a, b)
	want := Point{5, 5, 5}
	if !own.Equal(want) {
		t.Fatalf("in-place CoordMedian = %v, want %v", own, want)
	}
}

func TestPointCloneEqual(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("clone shares storage")
	}
	if p.Equal(Point{1, 2}) {
		t.Fatal("points of different dimension compare equal")
	}
}

func TestDistinctPointsShape(t *testing.T) {
	const n, d = 7, 3
	pts := DistinctPoints(n, d)
	if len(pts) != n {
		t.Fatalf("got %d points", len(pts))
	}
	// Every coordinate must be a permutation of 1..n.
	for j := 0; j < d; j++ {
		seen := make(map[int64]bool)
		for _, p := range pts {
			seen[p[j]] = true
		}
		for v := int64(1); v <= n; v++ {
			if !seen[v] {
				t.Fatalf("coordinate %d missing value %d", j, v)
			}
		}
	}
	// All tuples distinct.
	for i := range pts {
		for k := i + 1; k < len(pts); k++ {
			if pts[i].Equal(pts[k]) {
				t.Fatalf("points %d and %d equal", i, k)
			}
		}
	}
}

func TestRandomPointsDeterministicAndInRange(t *testing.T) {
	a := RandomPoints(50, 3, 8, 42)
	b := RandomPoints(50, 3, 8, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("RandomPoints not deterministic in seed")
		}
		for _, v := range a[i] {
			if v < 1 || v > 8 {
				t.Fatalf("coordinate %d out of [1,8]", v)
			}
		}
	}
	c := RandomPoints(50, 3, 8, 43)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical points")
	}
}

func TestEngineConvergesScalar(t *testing.T) {
	// d = 1 recovers the paper's median rule: O(log n) convergence and
	// tuple validity always.
	for seed := uint64(1); seed <= 5; seed++ {
		e := NewEngine(DistinctPoints(500, 1), nil, seed, Options{MaxRounds: 2000})
		res := e.Run()
		if !res.Consensus {
			t.Fatalf("seed %d: no consensus in %d rounds", seed, res.Rounds)
		}
		if !res.TupleValid || !res.CoordValid {
			t.Fatalf("seed %d: scalar run must be valid, got %+v", seed, res)
		}
		if res.Rounds > 200 {
			t.Fatalf("seed %d: %d rounds for n=500 is not logarithmic", seed, res.Rounds)
		}
	}
}

func TestEngineConvergesHighDim(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		e := NewEngine(RandomPoints(400, d, 16, uint64(d)), nil, uint64(100+d), Options{MaxRounds: 4000})
		res := e.Run()
		if !res.Consensus {
			t.Fatalf("d=%d: no consensus in %d rounds", d, res.Rounds)
		}
		if !res.CoordValid {
			t.Fatalf("d=%d: coordinates of winner must be initial coordinate values", d)
		}
		if res.Rounds > 400 {
			t.Fatalf("d=%d: %d rounds for n=400 is not logarithmic-ish", d, res.Rounds)
		}
	}
}

func TestTupleValidityBreaksInHighDim(t *testing.T) {
	// With spread-out tuples the coordinate-wise median fabricates a
	// tuple nobody proposed in a noticeable fraction of runs. We count
	// over seeds; the scalar case must stay valid in every run.
	fabricated := 0
	const runs = 20
	for seed := uint64(0); seed < runs; seed++ {
		e := NewEngine(DistinctPoints(300, 4), nil, seed, Options{MaxRounds: 4000})
		res := e.Run()
		if !res.Consensus {
			t.Fatalf("seed %d: no consensus", seed)
		}
		if !res.CoordValid {
			t.Fatal("coordinate validity must hold without adversary")
		}
		if !res.TupleValid {
			fabricated++
		}
	}
	if fabricated == 0 {
		t.Fatal("expected at least one fabricated tuple in 20 runs at d=4; the validity-degradation phenomenon is gone")
	}
	t.Logf("fabricated tuples: %d/%d runs", fabricated, runs)
}

func TestMonotoneCouplingPerCoordinate(t *testing.T) {
	// Lemma 17 lifted: applying a monotone map f to one coordinate of the
	// initial state commutes with the dynamics under shared randomness.
	const n, d, rounds = 120, 3, 25
	f := func(v int64) int64 { return 3*v + 7 } // strictly monotone
	base := DistinctPoints(n, d)
	mapped := make([]Point, n)
	for i, p := range base {
		q := p.Clone()
		q[1] = f(q[1])
		mapped[i] = q
	}
	e1 := NewEngine(base, nil, 99, Options{})
	e2 := NewEngine(mapped, nil, 99, Options{})
	for r := 0; r < rounds; r++ {
		e1.Step()
		e2.Step()
		for i := range e1.State() {
			p, q := e1.State()[i], e2.State()[i]
			if q[0] != p[0] || q[2] != p[2] {
				t.Fatalf("round %d: unmapped coordinates diverged", r)
			}
			if q[1] != f(p[1]) {
				t.Fatalf("round %d ball %d: coordinate 1 is %d, want f(%d)=%d",
					r, i, q[1], p[1], f(p[1]))
			}
		}
	}
}

func TestNoiseAdversaryBudgetAndRecovery(t *testing.T) {
	adv := &NoiseAdversary{T: 5}
	if adv.Budget(1000) != 5 {
		t.Fatal("budget mismatch")
	}
	// Under continuous noise the plurality still captures almost all
	// processes.
	e := NewEngine(RandomPoints(2000, 2, 5, 7), adv, 7, Options{MaxRounds: 300})
	res := e.Run()
	if res.WinnerCount < 2000-10*adv.T {
		t.Fatalf("winner holds only %d/2000 under T=%d noise", res.WinnerCount, adv.T)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	var rounds []int
	e := NewEngine(RandomPoints(100, 2, 4, 3), nil, 3, Options{
		MaxRounds: 500,
		Observer: func(round int, state []Point) {
			rounds = append(rounds, round)
			if len(state) != 100 {
				t.Fatalf("observer got %d points", len(state))
			}
		},
	})
	res := e.Run()
	if len(rounds) != res.Rounds {
		t.Fatalf("observer called %d times for %d rounds", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("observer round %d at position %d", r, i)
		}
	}
}

func TestEnginePanics(t *testing.T) {
	assertPanics(t, "empty", func() { NewEngine(nil, nil, 1, Options{}) })
	assertPanics(t, "zero-dim", func() { NewEngine([]Point{{}}, nil, 1, Options{}) })
	assertPanics(t, "ragged", func() {
		NewEngine([]Point{{1, 2}, {1}}, nil, 1, Options{})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestEngineStateIsolation(t *testing.T) {
	// The engine must not alias the caller's points.
	pts := []Point{{1, 1}, {2, 2}, {3, 3}}
	e := NewEngine(pts, nil, 1, Options{})
	pts[0][0] = 99
	if e.State()[0][0] == 99 {
		t.Fatal("engine aliases caller storage")
	}
}

func TestPluralityAndValidityHelpers(t *testing.T) {
	state := []Point{{1, 2}, {1, 2}, {3, 4}}
	w, c := plurality(state)
	if !w.Equal(Point{1, 2}) || c != 2 {
		t.Fatalf("plurality = %v x%d", w, c)
	}
	if !containsPoint(state, Point{3, 4}) || containsPoint(state, Point{1, 4}) {
		t.Fatal("containsPoint wrong")
	}
	if !coordsValid(state, Point{3, 2}) {
		t.Fatal("coordsValid should accept mixed tuple")
	}
	if coordsValid(state, Point{5, 2}) {
		t.Fatal("coordsValid should reject unseen coordinate")
	}
}

func BenchmarkStepDim(b *testing.B) {
	for _, d := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			e := NewEngine(RandomPoints(10_000, d, 32, 1), nil, 1, Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

package multidim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/randx"
	"repro/internal/rng"
)

// This file is the package's registration surface, mirroring the
// rules/adversary/consensus pattern: serializable names for initial point
// sets and adversary strategies, so the service layer can reconstruct a
// multidim run from a JSON spec without hard-coding every family.

// InitSpec is the serializable description of an initial point set: a
// generator kind plus the union of the parameters the built-in generators
// take. Unused fields are zero and omitted from JSON.
type InitSpec struct {
	// Kind selects the generator (see InitKinds).
	Kind string `json:"kind"`
	// N is the population size.
	N int `json:"n,omitempty"`
	// D is the point dimension (0 means 1).
	D int `json:"d,omitempty"`
	// M is the per-coordinate value range for random (0 means n).
	M int `json:"m,omitempty"`
	// Seed drives randomized generators (random).
	Seed uint64 `json:"seed,omitempty"`
}

// InitGenerator materializes an initial point set from its spec. Check,
// Normalize and Size mirror consensus.InitGenerator: validation without the
// O(n·d) allocation, canonical spec rewriting for stable hashing, and
// population reporting for admission control.
//
// GenerateCounts, when non-nil, builds the initial state directly at the
// distribution level — sorted distinct tuples with positive counts — so the
// count engine starts without ever materializing the O(n·d) point slice.
// Support, when non-nil, reports an upper bound on the number of distinct
// tuples the spec realizes, computable from the spec alone; engine
// auto-selection uses it in place of a materialized support count.
type InitGenerator struct {
	Generate       func(s InitSpec) ([]Point, error)
	GenerateCounts func(s InitSpec) ([]Point, []int64, error)
	Check          func(s InitSpec) error
	Normalize      func(s InitSpec) InitSpec
	Size           func(s InitSpec) int64
	Support        func(s InitSpec) int64
}

var (
	initMu       sync.RWMutex
	initRegistry = map[string]InitGenerator{}
)

// RegisterInit adds a named point-set generator, panicking on duplicates.
func RegisterInit(kind string, g InitGenerator) {
	if kind == "" || g.Generate == nil {
		panic("multidim: RegisterInit with empty kind or nil generator")
	}
	initMu.Lock()
	defer initMu.Unlock()
	if _, dup := initRegistry[kind]; dup {
		panic(fmt.Sprintf("multidim: duplicate init registration of %q", kind))
	}
	initRegistry[kind] = g
}

func initFor(kind string) (InitGenerator, error) {
	initMu.RLock()
	g, ok := initRegistry[kind]
	initMu.RUnlock()
	if !ok {
		return InitGenerator{}, fmt.Errorf("multidim: unknown init kind %q (known: %v)", kind, InitKinds())
	}
	return g, nil
}

// BuildInit materializes the point set described by s.
func BuildInit(s InitSpec) ([]Point, error) {
	g, err := initFor(s.Kind)
	if err != nil {
		return nil, err
	}
	return g.Generate(s)
}

// BuildInitCounts materializes the distribution described by s — sorted
// distinct tuples and their positive counts — without building the
// per-process point slice when the generator is count-native. Generators
// without a GenerateCounts hook fall back to materialize-and-bucket.
func BuildInitCounts(s InitSpec) ([]Point, []int64, error) {
	g, err := initFor(s.Kind)
	if err != nil {
		return nil, nil, err
	}
	if g.GenerateCounts != nil {
		return g.GenerateCounts(s)
	}
	pts, err := g.Generate(s)
	if err != nil {
		return nil, nil, err
	}
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("multidim: init %q generated an empty population", s.Kind)
	}
	tuples, counts := distOf(pts, len(pts[0]))
	return tuples, counts, nil
}

// InitSupport reports an upper bound on the number of distinct tuples the
// init spec realizes, computed from the spec alone (no O(n·d) pre-pass).
// 0 means unknown (unregistered kind or no Support hook), which engine
// auto-selection treats as "too large for the count engine".
func InitSupport(s InitSpec) int64 {
	g, err := initFor(s.Kind)
	if err != nil || g.Support == nil {
		return 0
	}
	return g.Support(s)
}

// CheckInit validates an init spec without materializing the points.
func CheckInit(s InitSpec) error {
	g, err := initFor(s.Kind)
	if err != nil {
		return err
	}
	if g.Check != nil {
		return g.Check(s)
	}
	_, err = g.Generate(s)
	return err
}

// NormalizeInit rewrites an init spec to its canonical form. Unknown kinds
// pass through unchanged (their error surfaces in CheckInit/BuildInit).
func NormalizeInit(s InitSpec) InitSpec {
	g, err := initFor(s.Kind)
	if err != nil || g.Normalize == nil {
		return s
	}
	return g.Normalize(s)
}

// InitSize reports the population an init spec would materialize, without
// allocating it. 0 means unknown.
func InitSize(s InitSpec) int64 {
	g, err := initFor(s.Kind)
	if err != nil || g.Size == nil {
		return 0
	}
	return g.Size(s)
}

// InitKinds returns the registered init kinds in sorted order.
func InitKinds() []string {
	initMu.RLock()
	defer initMu.RUnlock()
	out := make([]string, 0, len(initRegistry))
	for kind := range initRegistry {
		out = append(out, kind)
	}
	sort.Strings(out)
	return out
}

func checkShape(s InitSpec) error {
	if s.N <= 0 {
		return fmt.Errorf("multidim: init %q needs n > 0, got %d", s.Kind, s.N)
	}
	if s.D < 0 {
		return fmt.Errorf("multidim: init %q needs d >= 0, got %d", s.Kind, s.D)
	}
	return nil
}

// dimOf resolves the dimension default (0 means 1).
func dimOf(s InitSpec) int {
	if s.D <= 0 {
		return 1
	}
	return s.D
}

// clampM resolves the random generator's value range (0 or > n means n).
func clampM(s InitSpec) int {
	if s.M <= 0 || s.M > s.N {
		return s.N
	}
	return s.M
}

// maxCountCells bounds the dense m^d cell array the count-native random
// generator draws its one multinomial over. Beyond it the distinct-tuple
// support is too large for the count representation anyway, so the builder
// falls back to materialize-and-bucket.
const maxCountCells = 1 << 22

// randomCells returns the number of cells m^d of the random generator's
// tuple domain, or 0 when it exceeds maxCountCells (including overflow).
func randomCells(d, m int) int64 {
	cells := int64(1)
	for j := 0; j < d; j++ {
		cells *= int64(m)
		if cells > maxCountCells {
			return 0
		}
	}
	return cells
}

// randomSupport is the spec-level support bound of the random generator:
// at most n distinct tuples, and at most m^d.
func randomSupport(s InitSpec) int64 {
	n := int64(s.N)
	if cells := randomCells(dimOf(s), clampM(s)); cells > 0 && cells < n {
		return cells
	}
	return n
}

// randomCounts draws the random initial distribution at count level: one
// exact multinomial over the m^d uniform cells, then a sparse enumeration
// of the non-empty cells in lexicographic order. O(m^d·d) memory, never
// O(n·d) — the distribution a bucketed RandomPoints draw would realize,
// as one draw. (The realization differs from RandomPoints at equal seed —
// the RNG is consumed differently — but the distribution is identical;
// see the init differential tests.)
func randomCounts(s InitSpec) ([]Point, []int64, error) {
	if err := checkShape(s); err != nil {
		return nil, nil, err
	}
	d, m := dimOf(s), clampM(s)
	cells := randomCells(d, m)
	if cells == 0 {
		// Domain too large for the dense draw: bucket the point set.
		tuples, counts := distOf(RandomPoints(s.N, d, m, s.Seed), d)
		return tuples, counts, nil
	}
	g := rng.NewXoshiro256(s.Seed)
	probs := make([]float64, cells)
	for i := range probs {
		probs[i] = 1
	}
	out := make([]int64, cells)
	randx.Multinomial(g, int64(s.N), probs, out)
	var tuples []Point
	var counts []int64
	for idx, c := range out {
		if c == 0 {
			continue
		}
		// Decode the cell index most-significant coordinate first, so
		// enumeration order is lexicographic tuple order.
		p := make(Point, d)
		rem := int64(idx)
		for j := d - 1; j >= 0; j-- {
			p[j] = rem%int64(m) + 1
			rem /= int64(m)
		}
		tuples = append(tuples, p)
		counts = append(counts, c)
	}
	return tuples, counts, nil
}

// distinctCounts assigns the all-distinct worst case directly: every
// DistinctPoints tuple with count 1, already in lexicographic order (the
// first coordinate of point i is i+1), skipping the bucketing map entirely.
func distinctCounts(s InitSpec) ([]Point, []int64, error) {
	if err := checkShape(s); err != nil {
		return nil, nil, err
	}
	tuples := DistinctPoints(s.N, dimOf(s))
	counts := make([]int64, len(tuples))
	for i := range counts {
		counts[i] = 1
	}
	return tuples, counts, nil
}

func init() {
	RegisterInit("random", InitGenerator{
		Check:   checkShape,
		Size:    func(s InitSpec) int64 { return int64(s.N) },
		Support: randomSupport,
		Normalize: func(s InitSpec) InitSpec {
			return InitSpec{Kind: s.Kind, N: s.N, D: dimOf(s), M: clampM(s), Seed: s.Seed}
		},
		Generate: func(s InitSpec) ([]Point, error) {
			if err := checkShape(s); err != nil {
				return nil, err
			}
			return RandomPoints(s.N, dimOf(s), clampM(s), s.Seed), nil
		},
		GenerateCounts: randomCounts,
	})
	RegisterInit("distinct", InitGenerator{
		Check:   checkShape,
		Size:    func(s InitSpec) int64 { return int64(s.N) },
		Support: func(s InitSpec) int64 { return int64(s.N) },
		Normalize: func(s InitSpec) InitSpec {
			return InitSpec{Kind: s.Kind, N: s.N, D: dimOf(s)}
		},
		Generate: func(s InitSpec) ([]Point, error) {
			if err := checkShape(s); err != nil {
				return nil, err
			}
			return DistinctPoints(s.N, dimOf(s)), nil
		},
		GenerateCounts: distinctCounts,
	})
}

// Params carries the numeric parameters of adversary strategies in a
// JSON-friendly form. Constructors reject unknown keys.
type Params map[string]float64

// AdvConstructor builds a fresh adversary from its parameters.
type AdvConstructor func(p Params) (Adversary, error)

var (
	advMu       sync.RWMutex
	advRegistry = map[string]AdvConstructor{}
)

// RegisterAdversary adds a named strategy constructor, panicking on
// duplicates.
func RegisterAdversary(name string, c AdvConstructor) {
	if name == "" || c == nil {
		panic("multidim: RegisterAdversary with empty name or nil constructor")
	}
	advMu.Lock()
	defer advMu.Unlock()
	if _, dup := advRegistry[name]; dup {
		panic(fmt.Sprintf("multidim: duplicate adversary registration of %q", name))
	}
	advRegistry[name] = c
}

// NewAdversary constructs the named adversary with the given parameters.
func NewAdversary(name string, p Params) (Adversary, error) {
	advMu.RLock()
	c, ok := advRegistry[name]
	advMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("multidim: unknown adversary %q (known: %v)", name, AdversaryNames())
	}
	return c(p)
}

// AdversaryNames returns the registered strategy names in sorted order.
func AdversaryNames() []string {
	advMu.RLock()
	defer advMu.RUnlock()
	out := make([]string, 0, len(advRegistry))
	for name := range advRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterAdversary("noise", func(p Params) (Adversary, error) {
		t := 1
		for key, v := range p {
			if key != "t" {
				return nil, fmt.Errorf("multidim: noise knows only parameter \"t\", got %q", key)
			}
			if v != float64(int(v)) || int(v) < 0 {
				return nil, fmt.Errorf("multidim: noise parameter t must be a non-negative integer, got %v", v)
			}
			t = int(v)
		}
		return &NoiseAdversary{T: t}, nil
	})
}

package multidim

import (
	"reflect"
	"strings"
	"testing"

	"repro/engine"
)

func TestSpecEngineValidation(t *testing.T) {
	good := []Spec{
		{Init: InitSpec{Kind: "random", N: 10}},
		{Init: InitSpec{Kind: "random", N: 10}, Engine: EngineAuto},
		{Init: InitSpec{Kind: "random", N: 10}, Engine: EngineProcess},
		{Init: InitSpec{Kind: "random", N: 10}, Engine: EngineCount},
		{Init: InitSpec{Kind: "random", N: 10}, Engine: EngineAuto,
			Adversary: &AdversaryRef{Name: "noise"}},
		// noise runs at count level (CountAdversary), so count+noise is valid.
		{Init: InitSpec{Kind: "random", N: 10}, Engine: EngineCount,
			Adversary: &AdversaryRef{Name: "noise"}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d must validate, got %v", i, err)
		}
	}
	bad := []Spec{
		{Init: InitSpec{Kind: "random", N: 10}, Engine: "warp"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d must be rejected", i)
		}
	}
}

func TestSpecNormalizeMakesAutoExplicit(t *testing.T) {
	s := &Spec{Init: InitSpec{Kind: "random", N: 10}}
	s.Normalize()
	if s.Engine != EngineAuto {
		t.Fatalf("engine normalized to %q, want %q", s.Engine, EngineAuto)
	}
	// Normalize must not resolve auto to a concrete engine: the canonical
	// form (and hence the cache key) is independent of the selection.
	s.Normalize()
	if s.Engine != EngineAuto {
		t.Fatalf("re-normalize changed engine to %q", s.Engine)
	}
}

// execute runs a multidim spec through the registry dispatcher, capturing
// the round records.
func execute(t *testing.T, payload *Spec, seed uint64, maxRounds int) (engine.Result, []engine.Record) {
	t.Helper()
	var recs []engine.Record
	res, err := engine.Execute(engine.Spec{Kind: "multidim", Seed: seed, MaxRounds: maxRounds, Payload: payload},
		func(r engine.Record) { recs = append(recs, r) }, nil)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res, recs
}

func TestSpecAutoPicksCountTrajectory(t *testing.T) {
	// n=2000 over ≤2 distinct scalar values: auto must resolve to the
	// count engine, so with a shared explicit seed the auto and count runs
	// are the same trajectory, record for record.
	init := InitSpec{Kind: "random", N: 2000, D: 1, M: 2, Seed: 9}
	autoRes, autoRecs := execute(t, &Spec{Init: init, Engine: EngineAuto}, 5, 0)
	countRes, countRecs := execute(t, &Spec{Init: init, Engine: EngineCount}, 5, 0)
	if !reflect.DeepEqual(autoRes, countRes) {
		t.Fatalf("auto and count runs diverged:\n%+v\n%+v", autoRes, countRes)
	}
	if !reflect.DeepEqual(autoRecs, countRecs) {
		t.Fatalf("auto and count record streams diverged (%d vs %d records)", len(autoRecs), len(countRecs))
	}
	if len(autoRecs) != autoRes.Rounds+1 || autoRecs[0].Round != 0 {
		t.Fatalf("count path emitted %d records for %d rounds", len(autoRecs), autoRes.Rounds)
	}
	for _, rec := range autoRecs {
		if rec.N != 2000 || rec.Support < 1 || len(rec.LeaderPoint) != 1 || rec.LeaderCount < 1 {
			t.Fatalf("malformed distribution-level record: %+v", rec)
		}
	}
}

func TestSpecAutoWithCountAdversaryUsesCount(t *testing.T) {
	// noise implements the count-level contract, so auto no longer degrades
	// to the O(n·d) process engine at tiny support; with a shared seed the
	// auto and count trajectories coincide.
	init := InitSpec{Kind: "random", N: 640, D: 1, M: 2, Seed: 3}
	adv := &AdversaryRef{Name: "noise", Params: Params{"t": 2}}
	autoRes, _ := execute(t, &Spec{Init: init, Engine: EngineAuto, Adversary: adv}, 7, 50)
	countRes, _ := execute(t, &Spec{Init: init, Engine: EngineCount, Adversary: adv}, 7, 50)
	if !reflect.DeepEqual(autoRes, countRes) {
		t.Fatalf("auto and count runs diverged:\n%+v\n%+v", autoRes, countRes)
	}
}

func TestSpecCountEngineCancels(t *testing.T) {
	// The count path reports every round through the shared observer hook,
	// so cancellation unwinds it mid-run.
	init := InitSpec{Kind: "random", N: 4000, D: 2, M: 2, Seed: 1}
	calls := 0
	_, err := engine.Execute(engine.Spec{Kind: "multidim", Seed: 2, Payload: &Spec{Init: init, Engine: EngineCount}},
		nil, func() bool { calls++; return calls > 2 })
	if err != engine.ErrCancelled {
		t.Fatalf("cancelled count run returned %v", err)
	}
}

func TestSpecRunRejectsUnknownEngine(t *testing.T) {
	// Run guards the selector itself (Validate normally catches this
	// first, but Run must not silently fall through).
	s := &Spec{Init: InitSpec{Kind: "random", N: 10}, Engine: "warp"}
	_, err := s.Run(engine.RunContext{Seed: 1, Observe: func(engine.Record) {}})
	if err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("unknown engine in Run: %v", err)
	}
}

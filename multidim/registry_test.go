package multidim

import "testing"

// TestInitRegistryCoverage builds and normalizes every registered kind.
func TestInitRegistryCoverage(t *testing.T) {
	for _, kind := range InitKinds() {
		spec := InitSpec{Kind: kind, N: 20, D: 3, M: 5, Seed: 7}
		if err := CheckInit(spec); err != nil {
			t.Fatalf("%s: check: %v", kind, err)
		}
		pts, err := BuildInit(spec)
		if err != nil {
			t.Fatalf("%s: build: %v", kind, err)
		}
		if len(pts) != 20 || len(pts[0]) != 3 {
			t.Fatalf("%s: built %dx%d, want 20x3", kind, len(pts), len(pts[0]))
		}
		if InitSize(spec) != 20 {
			t.Fatalf("%s: size %d, want 20", kind, InitSize(spec))
		}
		norm := NormalizeInit(spec)
		if norm.Kind != kind || norm.N != 20 || norm.D != 3 {
			t.Fatalf("%s: normalize mangled the spec: %+v", kind, norm)
		}
		// Normalization is idempotent.
		if NormalizeInit(norm) != norm {
			t.Fatalf("%s: normalize not idempotent", kind)
		}
	}
}

// TestInitDefaults: d defaults to 1, random's m defaults to n, and the
// defaulted and explicit forms normalize identically.
func TestInitDefaults(t *testing.T) {
	implied := NormalizeInit(InitSpec{Kind: "random", N: 10, Seed: 3})
	explicit := NormalizeInit(InitSpec{Kind: "random", N: 10, D: 1, M: 10, Seed: 3})
	if implied != explicit {
		t.Fatalf("defaults must normalize explicit: %+v vs %+v", implied, explicit)
	}
	// distinct ignores m and seed.
	d := NormalizeInit(InitSpec{Kind: "distinct", N: 10, M: 99, Seed: 3})
	if d != (InitSpec{Kind: "distinct", N: 10, D: 1}) {
		t.Fatalf("distinct normalization kept irrelevant fields: %+v", d)
	}
}

// TestInitErrors rejects malformed and unknown specs.
func TestInitErrors(t *testing.T) {
	bad := []InitSpec{
		{Kind: "random"},
		{Kind: "random", N: -1},
		{Kind: "distinct", N: 0},
		{Kind: "warp", N: 10},
	}
	for i, spec := range bad {
		if err := CheckInit(spec); err == nil {
			t.Errorf("bad init %d validated: %+v", i, spec)
		}
		if _, err := BuildInit(spec); err == nil {
			t.Errorf("bad init %d built: %+v", i, spec)
		}
	}
}

// TestAdversaryRegistry constructs every registered strategy and rejects
// unknown names and parameters.
func TestAdversaryRegistry(t *testing.T) {
	for _, name := range AdversaryNames() {
		adv, err := NewAdversary(name, Params{"t": 3})
		if err != nil || adv == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if adv.Budget(100) != 3 {
			t.Fatalf("%s: budget %d, want 3", name, adv.Budget(100))
		}
	}
	if _, err := NewAdversary("nope", nil); err == nil {
		t.Fatal("unknown adversary must error")
	}
	if _, err := NewAdversary("noise", Params{"z": 1}); err == nil {
		t.Fatal("unknown parameter must error")
	}
	if _, err := NewAdversary("noise", Params{"t": 1.5}); err == nil {
		t.Fatal("fractional budget must error")
	}
}

// TestPlurality pins the deterministic support/winner accounting.
func TestPlurality(t *testing.T) {
	state := []Point{{1, 1}, {2, 2}, {1, 1}, {3, 3}}
	w, c, support := Plurality(state)
	if !w.Equal(Point{1, 1}) || c != 2 || support != 3 {
		t.Fatalf("Plurality = %v/%d/%d, want [1 1]/2/3", w, c, support)
	}
	// Ties resolve to the first holder, deterministically.
	tied := []Point{{5}, {4}, {5}, {4}}
	w, c, support = Plurality(tied)
	if !w.Equal(Point{5}) || c != 2 || support != 2 {
		t.Fatalf("tie broke to %v/%d/%d, want first holder [5]/2/2", w, c, support)
	}
}

// TestPluralityEmptyState: the exported API tolerates empty input.
func TestPluralityEmptyState(t *testing.T) {
	w, c, support := Plurality(nil)
	if w != nil || c != 0 || support != 0 {
		t.Fatalf("Plurality(nil) = %v/%d/%d, want nil/0/0", w, c, support)
	}
}

// Package multidim explores the paper's stated future work (Section 6):
// the behaviour of the median dynamics on higher-dimensional values. "It
// would be very interesting though probably very challenging to prove a
// time bound of O(log n) also for higher dimensions."
//
// The natural candidate generalisation — the one the one-dimensional rule
// specialises from — is the coordinate-wise median: each process samples
// two uniform peers and, independently in every coordinate, adopts the
// median of the three coordinate values. This package implements that rule
// with its own per-process engine and the instrumentation needed to
// measure two questions empirically:
//
//  1. Speed: does convergence stay O(log n) as the dimension d grows?
//     (Measured: yes — rounds grow additively, roughly one extra round
//     per doubling of d, because the slowest of d coupled one-dimensional
//     processes governs, and d log-time processes have a log d spread.)
//  2. Validity: the coordinate-wise median of three points is generally
//     *none of the three points*, so the d-dimensional rule can stabilize
//     on a value no process initially held — validity degrades with d.
//     (Measured: the consensus point's coordinates are always initial
//     coordinate values, but the tuple is fabricated for d ≥ 2 with
//     probability growing in d. Lemma 17's monotone-coupling argument
//     survives per coordinate, which is exactly why each coordinate still
//     converges; it is only the tuple-level validity that breaks.)
//
// The package is self-contained rather than an instance of internal/core
// because Value there is a scalar by design (the paper's protocol) and
// widening it to slices would tax the scalar hot path every engine shares.
package multidim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rng"
)

// Point is a d-dimensional process value. All points in one run must have
// equal dimension.
type Point []int64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q agree in every coordinate.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as a tuple.
func (p Point) String() string { return fmt.Sprint([]int64(p)) }

// CoordMedian writes the coordinate-wise median of (own, a, b) into dst.
// dst must have the common dimension; own/a/b are not modified. dst may
// alias own.
//
//consensus:hotpath
func CoordMedian(dst, own, a, b Point) {
	for i := range dst {
		dst[i] = median3(own[i], a[i], b[i])
	}
}

func median3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Adversary is the T-bounded adversary contract for d-dimensional states:
// it may rewrite up to its budget of points per round, restricted to the
// initial point set (the signed-values assumption carries over: a corrupted
// process must present some initially-proposed tuple).
type Adversary interface {
	// Budget is the per-round corruption allowance.
	Budget(n int) int
	// Corrupt may overwrite up to Budget(len(state)) entries of state
	// with clones of points from allowed.
	Corrupt(round int, state []Point, allowed []Point, g *rng.Xoshiro256)
}

// Options configures an Engine.
type Options struct {
	// MaxRounds caps the run; 0 means the package default (1 << 16).
	MaxRounds int
	// Observer, when non-nil, receives the state after every round. The
	// slice and its points are reused; observers must copy what they keep.
	Observer func(round int, state []Point)
}

// DefaultMaxRounds is the round cap when Options.MaxRounds is zero.
const DefaultMaxRounds = 1 << 16

// Result reports a run's outcome.
type Result struct {
	// Rounds executed.
	Rounds int
	// Consensus reports whether all processes ended on one point.
	Consensus bool
	// Winner is the final plurality point.
	Winner Point
	// WinnerCount is the number of processes holding Winner.
	WinnerCount int
	// TupleValid reports whether Winner equals one of the initial points.
	TupleValid bool
	// CoordValid reports whether every coordinate of Winner appeared as
	// that coordinate of some initial point (always true for the
	// coordinate-wise median absent adversarial new values).
	CoordValid bool
}

// Engine runs the coordinate-wise median dynamics on n d-dimensional
// points with synchronous (double-buffered) rounds, matching the paper's
// model in every respect except the value domain.
type Engine struct {
	state, next []Point
	initial     []Point // the initial point set, for validity accounting
	dim         int
	adv         Adversary
	g           *rng.Xoshiro256
	opts        Options
	round       int
}

// NewEngine builds an engine over a copy of the given points.
func NewEngine(points []Point, adv Adversary, seed uint64, opts Options) *Engine {
	if len(points) == 0 {
		panic("multidim: empty population")
	}
	dim := len(points[0])
	if dim == 0 {
		panic("multidim: zero-dimensional points")
	}
	state := make([]Point, len(points))
	next := make([]Point, len(points))
	initial := make([]Point, len(points))
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("multidim: point %d has dimension %d, want %d", i, len(p), dim))
		}
		state[i] = p.Clone()
		next[i] = make(Point, dim)
		initial[i] = p.Clone()
	}
	return &Engine{
		state:   state,
		next:    next,
		initial: initial,
		dim:     dim,
		adv:     adv,
		g:       rng.NewXoshiro256(seed),
		opts:    opts,
	}
}

// Dim returns the common dimension.
func (e *Engine) Dim() int { return e.dim }

// Round returns the number of executed rounds.
func (e *Engine) Round() int { return e.round }

// State returns the live state; callers must not modify it.
func (e *Engine) State() []Point { return e.state }

// Step executes one synchronous round: adversary first (the Section 1.1
// timing), then every process applies the coordinate-wise median of itself
// and two uniform samples of the *pre-round* state.
func (e *Engine) Step() {
	if e.adv != nil {
		e.adv.Corrupt(e.round, e.state, e.initial, e.g)
	}
	n := len(e.state)
	for i := range e.state {
		a := e.state[e.g.Intn(n)]
		b := e.state[e.g.Intn(n)]
		CoordMedian(e.next[i], e.state[i], a, b)
	}
	e.state, e.next = e.next, e.state
	e.round++
}

// Run steps until consensus or the round cap and returns the Result.
func (e *Engine) Run() Result {
	maxRounds := e.opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	for e.round < maxRounds {
		e.Step()
		if e.opts.Observer != nil {
			e.opts.Observer(e.round, e.state)
		}
		if e.adv == nil && e.isConsensus() {
			break
		}
	}
	return e.result()
}

func (e *Engine) isConsensus() bool {
	first := e.state[0]
	for _, p := range e.state[1:] {
		if !p.Equal(first) {
			return false
		}
	}
	return true
}

func (e *Engine) result() Result {
	winner, count := plurality(e.state)
	return Result{
		Rounds:      e.round,
		Consensus:   count == len(e.state),
		Winner:      winner.Clone(),
		WinnerCount: count,
		TupleValid:  containsPoint(e.initial, winner),
		CoordValid:  coordsValid(e.initial, winner),
	}
}

// plurality returns the most frequent point and its count.
func plurality(state []Point) (Point, int) {
	w, c, _ := Plurality(state)
	return w, c
}

// appendPointKey appends p's raw coordinate bytes to buf — the map key
// both Plurality and the count engine bucket tuples under. The encoding is
// injective for a fixed dimension, which is all a hash key needs.
//
//consensus:hotpath
func appendPointKey(buf []byte, p Point) []byte {
	for _, v := range p {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// Plurality returns the most frequent point, its count and the number of
// distinct points in state. Ties resolve to the point whose holder appears
// first, so the result is deterministic in state order — the property the
// service layer's cache-determinism guarantee rests on. The returned
// winner aliases a point in state; callers that outlive the round must
// Clone it. Points are keyed by their raw coordinate bytes (one lookup per
// process, one small allocation per distinct point), cheap enough to call
// once per observed round.
func Plurality(state []Point) (winner Point, count, support int) {
	if len(state) == 0 {
		return nil, 0, 0
	}
	type entry struct {
		rep   Point
		count int
	}
	entries := make(map[string]*entry, len(state))
	buf := make([]byte, 0, 8*len(state[0]))
	best := -1
	for _, p := range state {
		buf = appendPointKey(buf[:0], p)
		// The string(buf) lookup does not allocate; only a first-seen
		// point materializes a durable key.
		e := entries[string(buf)]
		if e == nil {
			e = &entry{rep: p}
			entries[string(buf)] = e
		}
		e.count++
		if e.count > best {
			best = e.count
			winner = e.rep
		}
	}
	return winner, best, len(entries)
}

func containsPoint(set []Point, p Point) bool {
	for _, q := range set {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

// coordsValid reports whether each coordinate of p equals that coordinate
// of some point in set.
func coordsValid(set []Point, p Point) bool {
	for i, v := range p {
		found := false
		for _, q := range set {
			if q[i] == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// RandomPoints builds n points with each coordinate drawn uniformly from
// [1, m] — the average-case model of Section 5 lifted to d dimensions.
// Deterministic in seed.
func RandomPoints(n, d, m int, seed uint64) []Point {
	g := rng.NewXoshiro256(seed)
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			p[j] = int64(g.Intn(m)) + 1
		}
		pts[i] = p
	}
	return pts
}

// DistinctPoints builds the d-dimensional analogue of the all-distinct
// worst case: point i is (i+1, i+1, ..., i+1) rotated by coordinate so
// that every coordinate still carries n distinct values but tuples are
// maximally spread: coordinate j of point i is ((i+j) mod n) + 1.
func DistinctPoints(n, d int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			p[j] = int64((i+j)%n) + 1
		}
		pts[i] = p
	}
	return pts
}

// NoiseAdversary rewrites up to its budget of uniformly chosen processes
// with uniformly chosen initial points — the d-dimensional RandomNoise.
type NoiseAdversary struct {
	// T is the fixed per-round budget.
	T int
}

// Budget implements Adversary.
func (a *NoiseAdversary) Budget(n int) int { return a.T }

// Corrupt implements Adversary.
func (a *NoiseAdversary) Corrupt(round int, state []Point, allowed []Point, g *rng.Xoshiro256) {
	for k := 0; k < a.T; k++ {
		i := g.Intn(len(state))
		src := allowed[g.Intn(len(allowed))]
		copy(state[i], src)
	}
}

// Quickstart: the median rule in five lines, then the same protocol under
// the paper's √n-bounded adversary.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The first run starts from the worst case — every process holds a distinct
// value — and reaches exact consensus in O(log n) rounds (Theorem 1). The
// second run adds a balancing adversary that rewrites √n process states
// every round; perfect consensus is now impossible, so the run stops at the
// paper's almost stable consensus: all but O(√n) processes agree and stay
// agreed (Theorem 2/3).
package main

import (
	"fmt"
	"math"

	"repro/adversary"
	"repro/consensus"
	"repro/rules"
)

func main() {
	const n = 100_000

	// --- 1. No adversary: exact consensus from the worst-case start. ---
	res := consensus.Run(consensus.Config{
		Values: consensus.AllDistinct(n), // processes 1..n hold values 1..n
		Rule:   rules.Median{},
		Seed:   1,
	})
	fmt.Printf("no adversary:   %v\n", res)
	fmt.Printf("                log2(n) = %.1f — note rounds = O(log n)\n\n",
		math.Log2(n))

	// --- 2. √n-bounded adversary: almost stable consensus. -------------
	// Budget 0.5·√n: Theorem 2's "T ≤ √n" carries the usual hidden
	// constant — the drift of Lemma 15 must beat the adversary's per-round
	// erasure (Lemma 16 chooses "the constant c large enough"). At full
	// strength the balancer wins for a polynomially long time; the
	// tightness experiment (E5 in EXPERIMENTS.md) measures exactly that
	// crossover.
	adv := adversary.NewBalancer(adversary.Sqrt(0.5), 1, 2)
	res = consensus.Run(consensus.Config{
		Values:      consensus.TwoValue(n, n/2, 1, 2), // perfectly split
		Rule:        rules.Median{},
		Adversary:   adv,
		AlmostSlack: 3 * int(math.Sqrt(n)), // the paper's O(T) slack
		Seed:        1,
	})
	fmt.Printf("with adversary: %v\n", res)
	fmt.Printf("                adversary rewrites %d states/round; %d processes (>= n - O(sqrt n)) agree\n",
		adv.Budget(n), res.WinnerCount)

	// --- 3. Watching a run round by round. ------------------------------
	fmt.Println("\nround-by-round (n=1000, all distinct):")
	consensus.Run(consensus.Config{
		Values: consensus.AllDistinct(1000),
		Rule:   rules.Median{},
		Seed:   7,
		Observer: func(round int, vals []consensus.Value, counts []int64) {
			var distinct int
			var top int64
			for _, c := range counts {
				if c > 0 {
					distinct++
				}
				if c > top {
					top = c
				}
			}
			fmt.Printf("  round %2d: %4d distinct values, plurality %4d/1000\n",
				round, distinct, top)
		},
	})
}

// Sensor fusion: stabilizing consensus as state consolidation under
// Byzantine sensors — the "consolidation of replicated states or
// information" application the paper's introduction motivates.
//
// Run with:
//
//	go run ./examples/sensorfusion
//
// A field of n sensors each hold an integer reading of the same physical
// quantity (milli-degrees). Readings are noisy, and a coalition of faulty
// sensors — modelled as the paper's T-bounded adversary — keeps rewriting
// its members' states to an outlier value, trying to drag the network
// towards it. The sensors run the median rule: every round each contacts
// two random peers and adopts the median of the three readings.
//
// Two properties of the median rule matter here and are demonstrated:
//
//  1. Validity. The stabilized value is one of the *initial* readings
//     (the paper's consensus requirement). The mean rule, by contrast,
//     synthesizes a value nobody measured — and worse, the adversary can
//     drag the mean arbitrarily far, while the median's stabilized value
//     stays near the true plurality.
//  2. Almost stability under attack. With T ≤ √n corrupt sensors, all but
//     O(T) honest sensors agree on one genuine reading and stay there
//     (Theorem 2) — no cryptography, two messages per sensor per round.
package main

import (
	"fmt"
	"math"
	"sort"

	"repro/adversary"
	"repro/consensus"
	"repro/rules"
)

const (
	nSensors    = 40_000
	trueTempMdC = 21_500 // 21.5°C in milli-degrees
	noiseMdC    = 300    // sensor noise: ±0.3°C, quantized to 25 mdC steps
	outlierMdC  = 95_000 // the value faulty sensors push (95°C — "fire!")
)

func main() {
	readings := makeReadings()
	sort.Slice(readings, func(i, j int) bool { return readings[i] < readings[j] })
	trueMedian := readings[len(readings)/2]
	fmt.Printf("%d sensors, true value %d mdC, initial reading median %d mdC\n",
		nSensors, trueTempMdC, trueMedian)

	// The fault coalition: every round it rewrites the states of up to
	// 0.5·√n sensors to the hottest initial reading it can find (the
	// adversary is restricted to the initial value set — readings are
	// signed by the sensors' secure element, per the paper's model).
	budget := adversary.Sqrt(0.5)
	fmt.Printf("fault coalition rewrites up to %d sensor states per round\n\n",
		budget(nSensors))

	for _, tc := range []struct {
		name string
		rule consensus.Rule
	}{
		{"median (the paper's rule)", rules.Median{}},
		{"mean   (Dolev et al. [17])", rules.Mean{}},
	} {
		vals := make([]consensus.Value, len(readings))
		copy(vals, readings)
		res := consensus.Run(consensus.Config{
			Values:      vals,
			Rule:        tc.rule,
			Adversary:   pushHigh(budget),
			AlmostSlack: 3 * int(math.Sqrt(nSensors)),
			MaxRounds:   4_000,
			Seed:        42,
			Engine:      consensus.EngineBall,
		})
		valid := isInitialReading(readings, res.Winner)
		fmt.Printf("%s\n", tc.name)
		fmt.Printf("  stabilized on %d mdC after %d rounds (%d/%d sensors)\n",
			res.Winner, res.Rounds, res.WinnerCount, nSensors)
		fmt.Printf("  genuine reading: %v;  error vs truth: %+d mdC\n\n",
			valid, res.Winner-trueTempMdC)
	}

	fmt.Println("The median rule lands on a reading some sensor actually took,")
	fmt.Println("within the noise band of the truth. The mean rule is dragged by")
	fmt.Println("the coalition's re-injected outliers and synthesizes a value no")
	fmt.Println("sensor measured — exactly the validity failure Section 1.2 notes.")
}

// makeReadings builds the initial noisy readings: a deterministic,
// reproducible spread of quantized noise around the true value, plus a few
// honest outliers (a sensor in the sun, one in shade).
func makeReadings() []consensus.Value {
	readings := make([]consensus.Value, nSensors)
	state := uint64(0x5EED)
	for i := range readings {
		// xorshift64 noise, quantized to 25 mdC steps.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		noise := int64(state%(2*noiseMdC)) - noiseMdC
		readings[i] = trueTempMdC + (noise/25)*25
	}
	// Honest outliers and the adversary's anchor value. The coalition can
	// only write initial values, so one genuinely hot reading must exist.
	readings[0] = outlierMdC
	readings[1] = trueTempMdC - 4_000
	return readings
}

// pushHigh builds the fault coalition: rewrite budget-many sensors to the
// largest allowed (initial) value each round.
func pushHigh(budget adversary.BudgetFunc) consensus.Adversary {
	return adversary.NewFunc("push-high", budget,
		func(round int, state []consensus.Value, allowed []consensus.Value, r consensus.Rand) {
			hottest := allowed[len(allowed)-1]
			t := budget(len(state))
			for k := 0; k < t; k++ {
				state[r.Intn(len(state))] = hottest
			}
		})
}

func isInitialReading(sortedReadings []consensus.Value, v consensus.Value) bool {
	i := sort.Search(len(sortedReadings), func(i int) bool { return sortedReadings[i] >= v })
	return i < len(sortedReadings) && sortedReadings[i] == v
}

// Rule comparison: every update rule in the library, head to head, on the
// workloads the paper uses to motivate the median rule.
//
// Run with:
//
//	go run ./examples/rulecomparison
//
// Three scenarios, five repetitions each:
//
//  1. Worst case, no adversary: n processes with n distinct *gapped*
//     values (i·1000). Every stabilizing rule converges; speed differs,
//     and the gaps expose validity violations — a rule that synthesizes
//     values (the mean rule) lands between initial values. The
//     single-choice voter model is the "one choice" baseline that makes
//     the power of *two* choices visible; the majority rule stalls because
//     with all-distinct values two samples almost never agree.
//  2. The introduction's attack: a 1-bounded reviver adversary waits for
//     near-agreement and then resurrects the minimum value. Run over a
//     fixed horizon, we count how often the plurality value flips: the
//     minimum rule re-catches the epidemic after every revival
//     (non-stabilizing), the median rule absorbs each revival.
//  3. √n-bounded balancer on an even two-value split: the stabilizing
//     rules reach almost stable consensus; the table reports rounds.
//
// The summary table reports mean rounds (capped), the fraction of runs
// that stabilized, and validity (final value ∈ initial values).
package main

import (
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"repro/adversary"
	"repro/consensus"
	"repro/rules"
)

const (
	n         = 20_000
	reps      = 5
	maxRounds = 1_500
	horizon   = 400 // fixed horizon for the reviver scenario
)

func main() {
	ruleSet := []consensus.Rule{
		rules.Median{},
		rules.NewKMedian(2),
		rules.Majority{},
		rules.Minimum{},
		rules.Voter{},
		rules.Mean{},
	}

	scenario1(ruleSet)
	scenario2(ruleSet)
	scenario3(ruleSet)

	fmt.Println("Reading the tables: without an adversary the minimum rule is as")
	fmt.Println("fast as the median rule — but one revived value makes it re-run")
	fmt.Println("the whole epidemic, forever (scenario 2's flip counts). The mean")
	fmt.Println("rule converges but synthesizes a value nobody proposed (validity).")
	fmt.Println("The voter model needs Θ(n) rounds; majority stalls on distinct")
	fmt.Println("values. The median rule is the only two-message rule that is fast,")
	fmt.Println("stabilizing and valid — the power of two choices.")
}

// scenario1: worst case, no adversary, gapped all-distinct values.
func scenario1(ruleSet []consensus.Rule) {
	fmt.Printf("== worst case, no adversary (n distinct values i*1000)  n=%d, %d reps, cap %d ==\n\n",
		n, reps, maxRounds)
	base := make([]consensus.Value, n)
	for i := range base {
		base[i] = consensus.Value(i+1) * 1000
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 3, ' ', 0)
	fmt.Fprintln(w, "rule\tmsgs/round\tmean rounds\tstabilized\tvalidity")
	for _, rule := range ruleSet {
		var rounds, stab, valid float64
		for rep := 0; rep < reps; rep++ {
			vals := make([]consensus.Value, n)
			copy(vals, base)
			res := consensus.Run(consensus.Config{
				Values:    vals,
				Rule:      rule,
				Seed:      uint64(rep + 1),
				MaxRounds: maxRounds,
			})
			rounds += float64(res.Rounds)
			if res.Reason != consensus.StopMaxRounds {
				stab++
			}
			if res.Winner%1000 == 0 && res.Winner >= 1000 && res.Winner <= int64(n)*1000 {
				valid++
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.0f%%\t%.0f%%\n",
			rule.Name(), rule.Samples(), rounds/reps, 100*stab/reps, 100*valid/reps)
	}
	w.Flush()
	fmt.Println()
}

// scenario2: the introduction's attack, verbatim. Initially T = √n
// processes hold value 1 and the rest hold 2. The adversary (a) erases all
// the 1s in round 0, (b) sits silent while the system looks perfectly
// settled on 2, and (c) injects a single 1 after the delay. A rule is
// stabilizing only if the state that looked stable *was* stable.
func scenario2(ruleSet []consensus.Rule) {
	t := int(math.Sqrt(n))
	delay := 200
	fmt.Printf("== intro attack: erase value 1 at round 0, revive one copy at round %d ==\n", delay+1)
	fmt.Printf("   (n=%d, T=%d, fixed horizon %d rounds, %d reps)\n\n", n, t, horizon, reps)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 3, ' ', 0)
	fmt.Fprintln(w, "rule\tplurality flips\tlast flip round\tfinal dissenters")
	for _, rule := range ruleSet {
		var flips, lastFlip, tail float64
		for rep := 0; rep < reps; rep++ {
			f, lf, fin := introAttackRun(rule, t, delay, uint64(100+rep))
			flips += f
			lastFlip += lf
			tail += fin
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.0f\t%.1f\n",
			rule.Name(), flips/reps, lastFlip/reps, tail/reps)
	}
	w.Flush()
	fmt.Println()
	fmt.Println("   The minimum rule's plurality collapses ~15 rounds after the")
	fmt.Println("   round-201 revival — after 200 rounds of apparent consensus.")
	fmt.Println("   Since the adversary may delay arbitrarily long, no time bound")
	fmt.Println("   exists: the minimum rule is non-stabilizing. The median rule")
	fmt.Println("   absorbs the same revival without a single flip.")
	fmt.Println()
}

// introAttackRun executes one fixed-horizon run under the introduction's
// erase-then-revive adversary; it reports plurality flips, the round of the
// last flip, and the final minority mass.
func introAttackRun(rule consensus.Rule, t, delay int, seed uint64) (flips, lastFlip, finalMinority float64) {
	attack := adversary.NewFunc("intro-attack", adversary.Fixed(t),
		func(round int, state []consensus.Value, allowed []consensus.Value, r consensus.Rand) {
			switch {
			case round == 0:
				// Erase: rewrite every holder of value 1 (≤ T of them).
				erased := 0
				for i, v := range state {
					if v == 1 {
						state[i] = 2
						erased++
						if erased == t {
							break
						}
					}
				}
			case round == delay+1:
				// Revive a single copy of value 1.
				state[r.Intn(len(state))] = 1
			}
		})
	var last consensus.Value
	var flipCount, lastFlipRound int
	var lastMinority int64
	consensus.Run(consensus.Config{
		Values:    consensus.TwoValue(n, t, 1, 2),
		Rule:      rule,
		Adversary: attack,
		Seed:      seed,
		MaxRounds: horizon,
		Window:    horizon + 1, // disable early stopping: observe the full horizon
		Engine:    consensus.EngineBall,
		Observer: func(round int, vals []consensus.Value, counts []int64) {
			var best consensus.Value
			var bestC, total int64 = -1, 0
			for i, c := range counts {
				total += c
				if c > bestC {
					best, bestC = vals[i], c
				}
			}
			if round > 0 && best != last {
				flipCount++
				lastFlipRound = round
			}
			last = best
			lastMinority = total - bestC
		},
	})
	return float64(flipCount), float64(lastFlipRound), float64(lastMinority)
}

// scenario3: almost stable consensus against the balancing adversary.
func scenario3(ruleSet []consensus.Rule) {
	fmt.Printf("== 0.5*sqrt(n) balancer on an even two-value split  n=%d, %d reps, cap %d ==\n\n",
		n, reps, maxRounds)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 3, ' ', 0)
	fmt.Fprintln(w, "rule\tmsgs/round\tmean rounds\tstabilized")
	for _, rule := range ruleSet {
		var rounds, stab float64
		for rep := 0; rep < reps; rep++ {
			res := consensus.Run(consensus.Config{
				Values:      consensus.TwoValue(n, n/2, 1, 2),
				Rule:        rule,
				Adversary:   adversary.NewBalancer(adversary.Sqrt(0.5), 1, 2),
				AlmostSlack: 3 * int(math.Sqrt(n)),
				Seed:        uint64(200 + rep),
				MaxRounds:   maxRounds,
				Engine:      consensus.EngineBall,
			})
			rounds += float64(res.Rounds)
			if res.Reason != consensus.StopMaxRounds {
				stab++
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.0f%%\n",
			rule.Name(), rule.Samples(), rounds/reps, 100*stab/reps)
	}
	w.Flush()
	fmt.Println()
}

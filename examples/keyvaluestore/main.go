// Replicated key-value store: anti-entropy version reconciliation on the
// paper's actual network model — the synchronous, anonymous, completely
// connected message-passing system with logarithmic per-round contact
// budgets (Section 1.1).
//
// Run with:
//
//	go run ./examples/keyvaluestore
//
// A cluster of n replicas each hold a version identifier for one hot key.
// A network partition has healed and left the cluster split between several
// divergent versions; in addition, a low-rate corruption source (bit-rot,
// misbehaving nodes, operators poking at state) keeps resurrecting stale
// versions — the self-stabilization problem: the protocol must converge
// from *any* state, and re-converge after every perturbation, without any
// node ever being aware that consensus has been reached (stabilizing
// consensus, Angluin–Fischer–Jiang [1]).
//
// Each replica runs the median rule over version IDs via gossip: per round
// it sends value requests to two uniformly random peers, answers at most
// O(log n) requests itself (overloaded replicas drop the excess — here the
// drop choice is adversarial, the worst case the paper allows), and adopts
// the median of its own and the two fetched versions.
//
// The demo measures what a storage operator cares about: rounds to
// re-convergence, messages per replica per round, request-drop rate under
// the cap, and behaviour when a fraction of fetches is lost.
package main

import (
	"fmt"
	"math"

	"repro/adversary"
	"repro/consensus"
	"repro/rules"
)

const nReplicas = 8_192

func main() {
	// Post-partition state: three divergent versions with skewed support,
	// plus a long tail of stale versions on individual replicas.
	versions := make([]consensus.Value, 0, nReplicas)
	for i := 0; i < nReplicas*45/100; i++ {
		versions = append(versions, 7001) // side A of the partition
	}
	for i := 0; i < nReplicas*35/100; i++ {
		versions = append(versions, 7002) // side B
	}
	for i := 0; i < nReplicas*15/100; i++ {
		versions = append(versions, 6990) // laggards
	}
	for v := consensus.Value(6800); len(versions) < nReplicas; v++ {
		versions = append(versions, v) // stale tail, all distinct
	}

	fmt.Printf("cluster of %d replicas, %d distinct versions after partition heal\n\n",
		nReplicas, countDistinct(versions))

	// --- 1. Clean reconciliation on the message-passing model. ---------
	res := consensus.Run(consensus.Config{
		Values: clone(versions),
		Rule:   rules.Median{},
		Seed:   2024,
		Engine: consensus.EngineGossip,
	})
	perReplica := float64(res.Messages.RequestsSent) / float64(nReplicas) / float64(max(res.Rounds, 1))
	fmt.Printf("reconciliation: %v\n", res)
	fmt.Printf("  requests/replica/round: %.2f   dropped: %d (%.4f%%)   max in-degree: %d\n\n",
		perReplica, res.Messages.RequestsDropped,
		100*float64(res.Messages.RequestsDropped)/float64(res.Messages.RequestsSent),
		res.Messages.MaxInDegree)

	// --- 2. Tight request caps: overloaded replicas drop requests. -----
	fmt.Println("under request-cap pressure (adversarial drop selection):")
	for _, capFactor := range []float64{4, 1, 0.5} {
		r := consensus.Run(consensus.Config{
			Values: clone(versions),
			Rule:   rules.Median{},
			Seed:   2025,
			Engine: consensus.EngineGossip,
			Gossip: consensus.GossipConfig{CapFactor: capFactor},
		})
		fmt.Printf("  cap %.1f·log2(n): %3d rounds, drop rate %6.3f%%\n",
			capFactor, r.Rounds,
			100*float64(r.Messages.RequestsDropped)/float64(r.Messages.RequestsSent))
	}

	// --- 3. Continuous low-rate corruption: almost stable consensus. ---
	// A T-bounded corruption source keeps flipping √n replicas per round
	// back to stale versions. The cluster still pins all but O(√n)
	// replicas to one version, forever — and every individual corruption
	// is healed within a few rounds.
	noise := adversary.NewRandomNoise(adversary.Sqrt(0.5))
	res = consensus.Run(consensus.Config{
		Values:      clone(versions),
		Rule:        rules.Median{},
		Adversary:   noise,
		AlmostSlack: 3 * int(math.Sqrt(nReplicas)),
		MaxRounds:   10_000,
		Seed:        2026,
		Engine:      consensus.EngineGossip,
	})
	fmt.Printf("\nwith continuous corruption of %d replicas/round: %v\n", noise.Budget(nReplicas), res)
	fmt.Printf("  (almost stable consensus: >= n − 3·sqrt(n) = %d replicas pinned)\n",
		nReplicas-3*int(math.Sqrt(nReplicas)))
}

func countDistinct(vals []consensus.Value) int {
	seen := make(map[consensus.Value]bool, len(vals))
	for _, v := range vals {
		seen[v] = true
	}
	return len(seen)
}

func clone(vals []consensus.Value) []consensus.Value {
	out := make([]consensus.Value, len(vals))
	copy(out, vals)
	return out
}

// Swarm rendezvous: the paper's two Section 6 open questions — higher
// dimensions and robustness — exercised together on one scenario.
//
// Run with:
//
//	go run ./examples/swarmrendezvous
//
// A swarm of n autonomous drones must agree on a single 3-D rendezvous
// waypoint. Each drone proposes the waypoint it currently considers best
// (integer grid coordinates). There is no leader, no identifiers and no
// global view — exactly the paper's anonymous gossip model. Every round
// each drone queries two random peers and moves its proposal to the
// coordinate-wise median (package multidim, the natural d-dimensional
// generalisation the paper's conclusion poses).
//
// Part 1 measures the open question directly: convergence speed versus
// dimension, and the tuple-validity price — the agreed waypoint has every
// coordinate from some proposal, but the full tuple may be fabricated (a
// point nobody proposed). For rendezvous that is acceptable — the median
// waypoint is centrally located by construction — but it is exactly the
// validity loss that makes the d-dimensional problem "challenging" in the
// paper's sense.
//
// Part 2 stresses the scalar protocol the paper analyses (agreeing on a
// single rendezvous altitude) under the conclusion's robustness question
// (package robust): fully asynchronous activations, lossy radio links,
// and crashed drones that still answer queries with stale proposals.
package main

import (
	"fmt"

	"repro/multidim"
	"repro/robust"
)

const nDrones = 4_096

func main() {
	partDimensions()
	partRobustness()
}

func partDimensions() {
	fmt.Println("== part 1: 3-D waypoint agreement (coordinate-wise median) ==")
	fmt.Println()
	// Proposals spread over a 1 km³ grid (metres), clustered around two
	// candidate staging areas plus stragglers.
	pts := make([]multidim.Point, 0, nDrones)
	for i := 0; i < nDrones; i++ {
		var p multidim.Point
		switch {
		case i < nDrones*55/100: // cluster A
			p = multidim.Point{250 + int64(i%40), 300 + int64(i%25), 80 + int64(i%10)}
		case i < nDrones*90/100: // cluster B
			p = multidim.Point{700 + int64(i%30), 650 + int64(i%35), 120 + int64(i%12)}
		default: // stragglers anywhere
			p = multidim.Point{int64(i) % 1000, int64(i*7) % 1000, int64(i*3) % 200}
		}
		pts = append(pts, p)
	}
	e := multidim.NewEngine(pts, nil, 7, multidim.Options{MaxRounds: 4000})
	res := e.Run()
	fmt.Printf("%d drones agreed on waypoint %v after %d rounds\n",
		res.WinnerCount, res.Winner, res.Rounds)
	fmt.Printf("  consensus: %v   coordinates all proposed: %v   exact tuple proposed: %v\n",
		res.Consensus, res.CoordValid, res.TupleValid)
	fmt.Println()

	// The open question's empirical answer: dimension sweep.
	fmt.Println("dimension sweep (n=2000, maximally spread proposals, 5 seeds):")
	fmt.Println("  d   rounds   tuple-valid")
	for _, d := range []int{1, 2, 4, 8} {
		var rounds, valid float64
		for seed := uint64(1); seed <= 5; seed++ {
			r := multidim.NewEngine(multidim.DistinctPoints(2000, d), nil, seed,
				multidim.Options{MaxRounds: 4000}).Run()
			rounds += float64(r.Rounds)
			if r.TupleValid {
				valid++
			}
		}
		fmt.Printf("  %d   %5.1f    %3.0f%%\n", d, rounds/5, 100*valid/5)
	}
	fmt.Println()
	fmt.Println("Rounds stay logarithmic as d grows (the conclusion's conjecture,")
	fmt.Println("measured); what degrades is tuple validity — the price of the")
	fmt.Println("coordinate-wise generalisation.")
	fmt.Println()
}

func partRobustness() {
	fmt.Println("== part 2: altitude agreement under real-world conditions ==")
	fmt.Println()
	// Scalar proposals: preferred altitudes in metres, 40 distinct bands.
	altitudes := make([]robust.Value, nDrones)
	for i := range altitudes {
		altitudes[i] = int64(80 + 5*(i%40))
	}
	fmt.Println("  scenario                                parallel time   agreed   dissenters")
	for _, tc := range []struct {
		name string
		opts robust.Options
	}{
		{"asynchronous, clean", robust.Options{}},
		{"30% radio loss", robust.Options{LossProb: 0.3}},
		{"64 crashed (stale answers)", robust.Options{Crashes: 64}},
		{"64 crashed (silent)", robust.Options{Crashes: 64, Silent: true}},
		{"30% loss + 64 silent crashes", robust.Options{LossProb: 0.3, Crashes: 64, Silent: true}},
	} {
		res := robust.NewEngine(altitudes, tc.opts, 42).Run()
		fmt.Printf("  %-38s  %8.1f      %5d      %5d\n",
			tc.name, res.ParallelTime, res.WinnerCount, res.Dissenters)
	}
	fmt.Println()
	fmt.Println("Asynchrony costs a small constant over the synchronous O(log n);")
	fmt.Println("loss degrades gracefully; crashed drones never block the live")
	fmt.Println("swarm and bound the final disagreement — the almost-stable")
	fmt.Println("picture with T = crash count, with zero coordination machinery.")
}

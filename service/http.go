package service

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/engine"
)

// Handler returns the service's HTTP JSON API:
//
//	POST   /v1/runs             submit a Spec, returns the JobView
//	GET    /v1/runs             list jobs
//	GET    /v1/runs/{id}        job state incl. result when done
//	DELETE /v1/runs/{id}        request cancellation
//	GET    /v1/runs/{id}/stream round-by-round records as NDJSON; follows
//	                            a live run until it finishes
//	POST   /v1/batches          submit a BatchRequest grid; streams one
//	                            BatchCellRecord per cell as NDJSON
//	GET    /v1/engines          discovery: every registered spec kind's
//	                            engine.Descriptor (param schema, batch
//	                            axes), sorted by kind
//	GET    /v1/healthz          liveness probe
//	GET    /v1/metrics          MetricsSnapshot counters (JSON by default;
//	                            Prometheus text format when the Accept
//	                            header asks for text/plain or OpenMetrics),
//	                            persistent-store counters included when a
//	                            Store is configured (records loaded/
//	                            appended, bytes, compactions)
//
// Errors are returned as {"error": "..."} with conventional status codes
// (400 invalid spec, 401 missing/bad bearer token on mutating endpoints
// when Options.AuthToken is set, 404 unknown job, 409 cancelling a
// finished job, 413 oversized body, 429 rate-limited submit, 503 full
// queue or closed service). Submit endpoints enforce Options.MaxBodyBytes
// and, when configured, the Options.SubmitRate token bucket.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.requireAuth(s.handleSubmit))
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.requireAuth(s.handleCancel))
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/batches", s.requireAuth(s.handleBatch))
	mux.HandleFunc("GET /v1/engines", handleEngines)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

// handleEngines serves the engine registry's descriptors — the discovery
// document clients use to generate per-kind flags and validate specs
// before submitting.
func handleEngines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"engines": engine.Descriptors()})
}

// requireAuth guards a mutating endpoint with the configured bearer token.
// Without Options.AuthToken the guard is a no-op; with it, requests must
// carry "Authorization: Bearer <token>" or they get 401. Read-only
// endpoints stay open either way.
func (s *Service) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.AuthToken == "" {
			h(w, r)
			return
		}
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.opts.AuthToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="consensusd"`)
			writeError(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
			return
		}
		h(w, r)
	}
}

// admitSubmit applies the submit-endpoint protections: the token-bucket
// rate limit (429) and the request body cap (decode errors become 413).
// It reports whether the request may proceed.
func (s *Service) admitSubmit(w http.ResponseWriter, r *http.Request) bool {
	if !s.limiter.allow() {
		s.metrics.rateLimited.Add(1)
		// Hint the time one token takes to refill, so compliant clients
		// retrying on schedule can actually succeed at low rates.
		retry := 1
		if s.opts.SubmitRate > 0 && s.opts.SubmitRate < 1 {
			retry = int(math.Ceil(1 / s.opts.SubmitRate))
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, errors.New("submit rate limit exceeded, retry later"))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	return true
}

// decodeStatus maps a request-decoding error to its HTTP status.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admitSubmit(w, r) {
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid spec JSON: %w", err))
		return
	}
	view, err := s.Submit(spec)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.admitSubmit(w, r) {
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid batch JSON: %w", err))
		return
	}
	cells, err := s.ExpandBatch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Batch-Cells", strconv.Itoa(len(cells)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Errors mid-stream cannot change the status code any more; dropping
	// the connection (returning) is the only honest signal left.
	_ = s.RunBatch(r.Context(), cells, func(rec BatchCellRecord) error {
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		snap.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// wantsPrometheus negotiates the metrics representation: JSON stays the
// default (and explicit application/json always wins), while Prometheus
// scrapers — which advertise text/plain or OpenMetrics — get the text
// exposition format.
func wantsPrometheus(accept string) bool {
	if accept == "" || strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	// Hold the job itself, not its id: a follower must see the full
	// stream even if the job is evicted from the history mid-stream.
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		recs, terminal, notify := j.recordsFrom(next)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
		next += len(recs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

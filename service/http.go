package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP JSON API:
//
//	POST   /v1/runs             submit a Spec, returns the JobView
//	GET    /v1/runs             list jobs
//	GET    /v1/runs/{id}        job state incl. result when done
//	DELETE /v1/runs/{id}        request cancellation
//	GET    /v1/runs/{id}/stream round-by-round records as NDJSON; follows
//	                            a live run until it finishes
//	GET    /v1/healthz          liveness probe
//	GET    /v1/metrics          MetricsSnapshot counters
//
// Errors are returned as {"error": "..."} with conventional status codes
// (400 invalid spec, 404 unknown job, 409 cancelling a finished job,
// 503 full queue or closed service).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid spec JSON: %w", err))
		return
	}
	view, err := s.Submit(spec)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	// Hold the job itself, not its id: a follower must see the full
	// stream even if the job is evicted from the history mid-stream.
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		recs, terminal, notify := j.recordsFrom(next)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
		next += len(recs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

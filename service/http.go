package service

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/engine"
	"repro/obs"
)

// Handler returns the service's HTTP JSON API:
//
//	POST   /v1/runs             submit a Spec, returns the JobView
//	GET    /v1/runs             list jobs
//	GET    /v1/runs/{id}        job state incl. result when done
//	DELETE /v1/runs/{id}        request cancellation
//	GET    /v1/runs/{id}/stream round-by-round records as NDJSON; follows
//	                            a live run until it finishes
//	POST   /v1/batches          submit a BatchRequest grid; streams one
//	                            BatchCellRecord per cell as NDJSON
//	GET    /v1/engines          discovery: every registered spec kind's
//	                            engine.Descriptor (param schema, batch
//	                            axes), sorted by kind
//	GET    /v1/events           live job/store lifecycle events as NDJSON
//	                            (obs.Event lines); ?replay=N prepends up
//	                            to N recent events from the ring buffer
//	GET    /v1/healthz          liveness probe
//	GET    /v1/metrics          the metric catalogue (JSON by default;
//	                            Prometheus text format when the Accept
//	                            header asks for text/plain or OpenMetrics
//	                            — both render from one registry walk),
//	                            persistent-store counters included when a
//	                            Store is configured (records loaded/
//	                            appended, bytes, compactions)
//
// Every response carries an X-Request-Id header — propagated from the
// request's own X-Request-Id when present, generated otherwise — and the
// same id is recorded on submitted jobs, their events and the structured
// access log (Options.Logger).
//
// Errors are returned as {"error": "..."} with conventional status codes
// (400 invalid spec, 401 missing/bad bearer token on mutating endpoints
// when Options.AuthToken is set, 404 unknown job, 409 cancelling a
// finished job, 413 oversized body, 429 rate-limited submit, 503 full
// queue or closed service). Submit endpoints enforce Options.MaxBodyBytes
// and, when configured, the Options.SubmitRate token bucket.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.requireAuth(s.handleSubmit))
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.requireAuth(s.handleCancel))
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/batches", s.requireAuth(s.handleBatch))
	mux.HandleFunc("GET /v1/engines", handleEngines)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s.instrument(mux)
}

// instrument is the middleware in front of the mux: it assigns or
// propagates the X-Request-Id (echoed on the response and carried in the
// request context for SubmitCtx), captures the response status, observes
// the request in the route/status-labeled latency histogram and writes
// one structured access-log line.
func (s *Service) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		// ServeMux.ServeHTTP records the matched pattern on the request
		// itself (Go 1.23+), so the route label is read after dispatch.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.metrics.httpDuration.With(route, strconv.Itoa(status)).ObserveDuration(elapsed)
		s.logger.Info("http request", "method", r.Method, "route", route,
			"path", r.URL.Path, "status", status,
			"duration_ms", float64(elapsed.Microseconds())/1000, "request_id", reqID)
	})
}

// statusWriter captures the response status for the access log and the
// latency histogram. It passes Flush through so the NDJSON streaming
// endpoints keep flushing per line through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleEngines serves the engine registry's descriptors — the discovery
// document clients use to generate per-kind flags and validate specs
// before submitting — and the spec-codec version this binary speaks, so a
// client can detect a codec bump before submitting under stale keys.
func handleEngines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"engines":      engine.Descriptors(),
		"spec_version": engine.SpecVersion,
	})
}

// requireAuth guards a mutating endpoint with the configured credentials.
// With neither Options.AuthToken nor Options.Quotas set the guard is a
// no-op; otherwise requests must carry "Authorization: Bearer <token>"
// matching AuthToken or one of the quota tokens, or they get 401. A quota
// token's per-token bucket rides the request context into admitSubmit.
// Read-only endpoints stay open either way.
func (s *Service) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.AuthToken == "" && len(s.quotas) == 0 {
			h(w, r)
			return
		}
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if ok && s.opts.AuthToken != "" &&
			subtle.ConstantTimeCompare([]byte(tok), []byte(s.opts.AuthToken)) == 1 {
			h(w, r)
			return
		}
		if ok {
			if b, found := s.lookupQuota(tok); found {
				h(w, r.WithContext(withQuotaBucket(r.Context(), b)))
				return
			}
		}
		w.Header().Set("WWW-Authenticate", `Bearer realm="consensusd"`)
		writeError(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
	}
}

// admitSubmit applies the submit-endpoint protections: the token-bucket
// rate limit (429) — the authenticated token's own quota bucket when one
// rode in on the context, the shared limiter otherwise — and the request
// body cap (decode errors become 413). It reports whether the request may
// proceed.
func (s *Service) admitSubmit(w http.ResponseWriter, r *http.Request) bool {
	limiter := s.limiter
	if b, ok := quotaBucketFrom(r.Context()); ok {
		limiter = b
	}
	if !limiter.allow() {
		s.metrics.rateLimited.Add(1)
		// Hint the bucket's actual deficit — after a drained burst the
		// next token can be several periods out — clamped to >= 1s, so
		// compliant clients retrying on schedule can actually succeed.
		retry := 1
		if d := limiter.retryAfter(); d > time.Second {
			retry = int(math.Ceil(d.Seconds()))
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, errors.New("submit rate limit exceeded, retry later"))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	return true
}

// decodeStatus maps a request-decoding error to its HTTP status.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admitSubmit(w, r) {
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid spec JSON: %w", err))
		return
	}
	view, err := s.SubmitCtx(r.Context(), spec)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.admitSubmit(w, r) {
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid batch JSON: %w", err))
		return
	}
	cells, err := s.ExpandBatch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Batch-Cells", strconv.Itoa(len(cells)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Errors mid-stream cannot change the status code any more; dropping
	// the connection (returning) is the only honest signal left.
	_ = s.RunBatch(r.Context(), cells, func(rec BatchCellRecord) error {
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleMetrics serves both metric representations from the same registry
// walk (obs.Registry.Gather), so the JSON and Prometheus views cannot
// drift apart.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.WriteMetricsText(w)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsJSON())
}

// handleEvents streams the live event bus as NDJSON: one obs.Event per
// line, flushed per event, until the client disconnects or the service
// closes. ?replay=N prepends up to N buffered events from the ring so a
// follower can catch up on recent history. A consumer that cannot keep up
// has events dropped rather than slowing the service; sequence-number gaps
// reveal the loss.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	replay := 0
	if v := r.URL.Query().Get("replay"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid replay %q", v))
			return
		}
		replay = n
	}
	buf := 256
	if replay > buf {
		buf = replay
	}
	sub := s.Events(buf, replay)
	if sub == nil {
		writeError(w, http.StatusServiceUnavailable, ErrClosed)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// wantsPrometheus negotiates the metrics representation: JSON stays the
// default (and explicit application/json always wins), while Prometheus
// scrapers — which advertise text/plain or OpenMetrics — get the text
// exposition format.
func wantsPrometheus(accept string) bool {
	if accept == "" || strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	// Hold the job itself, not its id: a follower must see the full
	// stream even if the job is evicted from the history mid-stream.
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		recs, terminal, notify := j.recordsFrom(next)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
		next += len(recs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Package service turns the consensus library into an embeddable
// simulation-as-a-service subsystem: serializable run specs, a job store
// with a bounded worker pool, a result cache keyed by the canonical spec
// hash, a batch/grid expander and an HTTP JSON API (see Handler). The
// cmd/consensusd daemon and cmd/consensusctl client are thin wrappers
// around this package.
//
// Specs, results and execution all come from the engine plugin API
// (package engine): a Spec is an engine.Spec — a kind-discriminated
// envelope whose decode, validation, canonical hash and execution dispatch
// through the engine registry. This package contains no per-kind code at
// all; importing the family packages below is what populates the registry:
//
//   - "median" (the default): the paper's scalar dynamics (package
//     consensus; payload consensus.Spec).
//   - "gossip": the full message-passing network model with named drop
//     selectors (internal/gossip; payload gossip.Spec).
//   - "multidim": the coordinate-wise median dynamics on d-dimensional
//     points (package multidim; payload multidim.Spec).
//   - "robust": the asynchronous faulty execution (package robust;
//     payload robust.Spec).
//   - "exact": the closed-form two-bin Markov chain — analytic absorption
//     times, win probabilities and the per-round absorption CDF with no
//     simulation behind them (internal/exact; payload exact.Spec).
//
// GET /v1/engines serves each kind's engine.Descriptor, so clients can
// discover the registered kinds and their parameter schemas instead of
// hard-coding them. Adding a family is an engine.Register call in its
// package plus an import here — no service code changes.
//
// Canonical hashing: Normalize fills defaulted fields, the envelope codec
// orders keys lexicographically, and Hash is the SHA-256 of that canonical
// encoding. Two specs describing the same run therefore share a hash,
// which is the cache key and the seed-derivation input for seedless specs.
package service

import (
	"repro/adversary"
	"repro/consensus"
	"repro/engine"
	"repro/internal/exact"
	"repro/internal/gossip"
	"repro/multidim"
	"repro/robust"
	"repro/rules"
)

// Spec kinds — the discriminants of the registered engine families. The
// authoritative list is engine.Kinds(); these constants name the built-ins.
const (
	// KindMedian is the scalar dynamics of the paper ("" normalizes to it).
	KindMedian = "median"
	// KindGossip is the message-passing network model with named drop
	// selectors.
	KindGossip = "gossip"
	// KindMultidim is the coordinate-wise median on d-dimensional points.
	KindMultidim = "multidim"
	// KindRobust is the asynchronous execution with loss and crash faults.
	KindRobust = "robust"
	// KindExact is the analytic two-bin Markov chain: closed-form
	// absorption statistics, no simulation.
	KindExact = "exact"
)

// Kinds returns the registered spec kinds in sorted order.
func Kinds() []string { return engine.Kinds() }

// Spec is the serializable description of one simulation run: the
// engine.Spec envelope (kind, seed, max_rounds) plus the kind's payload,
// flattened into one JSON object. See package engine for the codec,
// normalization, validation and hashing rules.
type Spec = engine.Spec

// Payload aliases engine.Payload: the typed per-kind spec body.
type Payload = engine.Payload

// The built-in kinds' payload and reference types, re-exported so service
// callers can construct specs without importing every family package.
type (
	// MedianSpec is the median kind's payload.
	MedianSpec = consensus.Spec
	// GossipSpec is the gossip kind's payload.
	GossipSpec = gossip.Spec
	// MultidimSpec is the multidim kind's payload.
	MultidimSpec = multidim.Spec
	// MultidimAdversarySpec references a registered multidim adversary.
	MultidimAdversarySpec = multidim.AdversaryRef
	// RobustSpec is the robust kind's payload.
	RobustSpec = robust.Spec
	// ExactSpec is the exact kind's payload.
	ExactSpec = exact.Spec
	// InitSpec is the scalar initial-state description shared by the
	// median, gossip and robust kinds.
	InitSpec = consensus.InitSpec
	// RuleSpec references a registered rule plus its parameters.
	RuleSpec = rules.Ref
	// AdversarySpec references a registered adversary strategy, its
	// budget family and its parameters.
	AdversarySpec = adversary.Ref
)

// DeriveSeed maps a canonical spec hash to a run seed via the splitmix64
// finalizer, so seedless specs get a deterministic, well-mixed seed.
func DeriveSeed(hash string) uint64 { return engine.DeriveSeed(hash) }

// Package service turns the consensus library into an embeddable
// simulation-as-a-service subsystem: serializable run specs, a job store
// with a bounded worker pool, a result cache keyed by the canonical spec
// hash, and an HTTP JSON API (see Handler). The cmd/consensusd daemon and
// cmd/consensusctl client are thin wrappers around this package.
//
// A Spec is the JSON form of a consensus.Config. Rules, adversaries,
// engines, timings and initial states are referenced by registry name
// (rules.New, adversary.New, consensus.EngineByName, consensus.BuildInit),
// so every strategy the library grows becomes submittable over the wire
// without touching this package.
//
// Canonical hashing: Normalize fills defaulted fields, json.Marshal orders
// struct fields deterministically and map keys lexicographically, and Hash
// is the SHA-256 of that canonical encoding. Two specs describing the same
// run therefore share a hash, which is the cache key and the seed-derivation
// input for seedless specs.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/rng"
	"repro/rules"
)

// Spec is the serializable description of one simulation run.
type Spec struct {
	// Init describes the initial state (see consensus.InitKinds).
	Init consensus.InitSpec `json:"init"`
	// Rule references a registered update rule (see rules.Names).
	Rule RuleSpec `json:"rule"`
	// Adversary optionally references a registered strategy (nil = none).
	Adversary *AdversarySpec `json:"adversary,omitempty"`
	// Seed makes the run reproducible. 0 means "derive from the spec
	// hash" (see DeriveSeed), so seedless specs are still deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds caps the run (0 = engine default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// AlmostSlack enables almost-stable detection (see consensus.Config).
	AlmostSlack int `json:"almost_slack,omitempty"`
	// Window is the stability window (0 = default).
	Window int `json:"window,omitempty"`
	// Timing is the adversary hook point: "before-round" (default) or
	// "after-choices".
	Timing string `json:"timing,omitempty"`
	// Engine selects the simulator by name (see consensus.EngineNames);
	// "" and "auto" both mean automatic selection.
	Engine string `json:"engine,omitempty"`
	// Workers parallelises the ball engine (0/1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Gossip configures the gossip engine (ignored otherwise).
	Gossip *GossipSpec `json:"gossip,omitempty"`
}

// RuleSpec references a registered rule plus its parameters.
type RuleSpec struct {
	Name   string       `json:"name"`
	Params rules.Params `json:"params,omitempty"`
}

// AdversarySpec references a registered adversary strategy, its budget
// family and its parameters.
type AdversarySpec struct {
	Name   string               `json:"name"`
	Budget adversary.BudgetSpec `json:"budget"`
	Params adversary.Params     `json:"params,omitempty"`
}

// GossipSpec carries the serializable gossip-engine knobs. The adversarial
// drop Selector of consensus.GossipConfig is a function value and therefore
// not spec-addressable; submit such runs through the library API.
type GossipSpec struct {
	CapFactor float64 `json:"cap_factor,omitempty"`
}

// Normalize returns a copy with defaulted fields made explicit and empty
// parameter maps dropped, so equivalent specs share one canonical encoding.
func (s Spec) Normalize() Spec {
	s.Init = consensus.NormalizeInit(s.Init)
	if s.Engine == "" {
		s.Engine = "auto"
	}
	if s.Timing == "" {
		s.Timing = "before-round"
	}
	if len(s.Rule.Params) == 0 {
		s.Rule.Params = nil
	}
	if s.Adversary != nil {
		a := *s.Adversary
		if len(a.Params) == 0 {
			a.Params = nil
		}
		s.Adversary = &a
	}
	if s.Gossip != nil && *s.Gossip == (GossipSpec{}) {
		s.Gossip = nil
	}
	if s.Workers == 1 {
		s.Workers = 0
	}
	return s
}

// Validate checks that every registry reference resolves and the init spec
// is well-formed, without materializing the O(n) initial state — it is safe
// to call on every API request.
func (s Spec) Validate() error {
	if err := consensus.CheckInit(s.Init); err != nil {
		return err
	}
	_, err := s.components()
	return err
}

// Canonical returns the canonical JSON encoding of the normalized spec —
// the byte string the hash, cache and seed derivation are defined over.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s.Normalize())
}

// Hash returns the canonical spec hash as a hex string.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return fmt.Sprintf("%x", sum[:]), nil
}

// DeriveSeed maps a canonical spec hash to a run seed via the splitmix64
// finalizer, so seedless specs get a deterministic, well-mixed seed.
func DeriveSeed(hash string) uint64 {
	sum := sha256.Sum256([]byte(hash))
	return rng.Mix64(binary.LittleEndian.Uint64(sum[:8]))
}

// EffectiveSeed returns the seed a run of this spec will actually use.
func (s Spec) EffectiveSeed() (uint64, error) {
	if s.Seed != 0 {
		return s.Seed, nil
	}
	h, err := s.Hash()
	if err != nil {
		return 0, err
	}
	return DeriveSeed(h), nil
}

// Config materializes the spec into a runnable consensus.Config with a
// fresh rule and adversary instance (adversaries carry per-run state) and
// the effective seed filled in.
func (s Spec) Config() (consensus.Config, error) {
	cfg, err := s.components()
	if err != nil {
		return consensus.Config{}, err
	}
	cfg.Values, err = consensus.BuildInit(s.Init)
	if err != nil {
		return consensus.Config{}, err
	}
	cfg.Seed, err = s.EffectiveSeed()
	if err != nil {
		return consensus.Config{}, err
	}
	return cfg, nil
}

// components resolves every registry reference except the initial state
// (Config fills Values; Validate deliberately leaves them empty).
func (s Spec) components() (consensus.Config, error) {
	rule, err := rules.New(s.Rule.Name, s.Rule.Params)
	if err != nil {
		return consensus.Config{}, err
	}
	var adv consensus.Adversary
	if s.Adversary != nil {
		adv, err = adversary.New(s.Adversary.Name, s.Adversary.Budget, s.Adversary.Params)
		if err != nil {
			return consensus.Config{}, err
		}
	}
	engine, err := consensus.EngineByName(s.Engine)
	if err != nil {
		return consensus.Config{}, err
	}
	timing, err := consensus.TimingByName(s.Timing)
	if err != nil {
		return consensus.Config{}, err
	}
	if s.MaxRounds < 0 || s.AlmostSlack < 0 || s.Window < 0 || s.Workers < 0 {
		return consensus.Config{}, fmt.Errorf("service: negative max_rounds, almost_slack, window or workers")
	}
	cfg := consensus.Config{
		Rule:        rule,
		Adversary:   adv,
		MaxRounds:   s.MaxRounds,
		AlmostSlack: s.AlmostSlack,
		Window:      s.Window,
		Timing:      timing,
		Engine:      engine,
		Workers:     s.Workers,
	}
	if s.Gossip != nil {
		cfg.Gossip = consensus.GossipConfig{CapFactor: s.Gossip.CapFactor}
	}
	return cfg, nil
}

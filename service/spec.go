// Package service turns the consensus library into an embeddable
// simulation-as-a-service subsystem: serializable run specs, a job store
// with a bounded worker pool, a result cache keyed by the canonical spec
// hash, a batch/grid expander and an HTTP JSON API (see Handler). The
// cmd/consensusd daemon and cmd/consensusctl client are thin wrappers
// around this package.
//
// A Spec is a discriminated union over the repo's simulation families,
// selected by Kind:
//
//   - "median" (the default): the paper's scalar dynamics, the JSON form
//     of a consensus.Config. Rules, adversaries, engines, timings and
//     initial states are referenced by registry name (rules.New,
//     adversary.New, consensus.EngineByName, consensus.BuildInit).
//   - "multidim": the coordinate-wise median dynamics on d-dimensional
//     points (package multidim), with its own init and adversary
//     registries (multidim.BuildInit, multidim.NewAdversary).
//   - "robust": the asynchronous faulty execution (package robust),
//     reusing the scalar init registry plus loss/crash/mode knobs.
//
// Every family satisfies the same engine contract — a per-round observer
// that doubles as the cancellation point, plus normalized registry-name
// construction — so every run in the repo is submittable, hashable,
// cacheable and streamable over the wire.
//
// Canonical hashing: Normalize fills defaulted fields, json.Marshal orders
// struct fields deterministically and map keys lexicographically, and Hash
// is the SHA-256 of that canonical encoding. Two specs describing the same
// run therefore share a hash, which is the cache key and the seed-derivation
// input for seedless specs.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/rng"
	"repro/multidim"
	"repro/robust"
	"repro/rules"
)

// Spec kinds — the discriminant of the Spec union.
const (
	// KindMedian is the scalar dynamics of the paper ("" normalizes to it).
	KindMedian = "median"
	// KindMultidim is the coordinate-wise median on d-dimensional points.
	KindMultidim = "multidim"
	// KindRobust is the asynchronous execution with loss and crash faults.
	KindRobust = "robust"
)

// Kinds returns the spec kinds in sorted order.
func Kinds() []string { return []string{KindMedian, KindMultidim, KindRobust} }

// Spec is the serializable description of one simulation run.
type Spec struct {
	// Kind selects the simulation family: "median" (default when empty),
	// "multidim" or "robust". Every other field belongs to one family;
	// Validate rejects specs that mix them.
	Kind string `json:"kind,omitempty"`
	// Init describes the scalar initial state (median and robust kinds;
	// see consensus.InitKinds).
	Init consensus.InitSpec `json:"init,omitzero"`
	// Rule references a registered update rule (median kind only; see
	// rules.Names). The multidim and robust engines hard-code their rule.
	Rule RuleSpec `json:"rule,omitzero"`
	// Adversary optionally references a registered strategy (median kind;
	// nil = none).
	Adversary *AdversarySpec `json:"adversary,omitempty"`
	// Seed makes the run reproducible. 0 means "derive from the spec
	// hash" (see DeriveSeed), so seedless specs are still deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds caps the run (0 = engine default). The robust kind counts
	// parallel rounds: the step cap is MaxRounds·n.
	MaxRounds int `json:"max_rounds,omitempty"`
	// AlmostSlack enables almost-stable detection (median kind; see
	// consensus.Config).
	AlmostSlack int `json:"almost_slack,omitempty"`
	// Window is the stability window (median kind; 0 = default).
	Window int `json:"window,omitempty"`
	// Timing is the adversary hook point: "before-round" (default) or
	// "after-choices" (median kind).
	Timing string `json:"timing,omitempty"`
	// Engine selects the simulator by name (median kind; see
	// consensus.EngineNames); "" and "auto" both mean automatic selection.
	Engine string `json:"engine,omitempty"`
	// Workers parallelises the ball engine (median kind; 0/1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Gossip configures the gossip engine (ignored otherwise).
	Gossip *GossipSpec `json:"gossip,omitempty"`
	// Multidim carries the multidim kind's payload.
	Multidim *MultidimSpec `json:"multidim,omitempty"`
	// Robust carries the robust kind's payload (nil normalizes to the
	// fault-free asynchronous run).
	Robust *RobustSpec `json:"robust,omitempty"`
}

// RuleSpec references a registered rule plus its parameters.
type RuleSpec struct {
	Name   string       `json:"name"`
	Params rules.Params `json:"params,omitempty"`
}

// AdversarySpec references a registered adversary strategy, its budget
// family and its parameters.
type AdversarySpec struct {
	Name   string               `json:"name"`
	Budget adversary.BudgetSpec `json:"budget"`
	Params adversary.Params     `json:"params,omitempty"`
}

// GossipSpec carries the serializable gossip-engine knobs. The adversarial
// drop Selector of consensus.GossipConfig is a function value and therefore
// not spec-addressable; submit such runs through the library API.
type GossipSpec struct {
	CapFactor float64 `json:"cap_factor,omitempty"`
}

// MultidimSpec carries the multidim kind's payload: a point-set generator
// reference and an optional adversary reference, both resolved through the
// multidim package's registries.
type MultidimSpec struct {
	// Init describes the initial point set (see multidim.InitKinds).
	Init multidim.InitSpec `json:"init"`
	// Adversary optionally references a registered strategy (nil = none;
	// see multidim.AdversaryNames).
	Adversary *MultidimAdversarySpec `json:"adversary,omitempty"`
}

// MultidimAdversarySpec references a registered multidim adversary.
type MultidimAdversarySpec struct {
	Name   string          `json:"name"`
	Params multidim.Params `json:"params,omitempty"`
}

// RobustSpec carries the robust kind's payload. The initial values come
// from the scalar init registry (Spec.Init).
type RobustSpec struct {
	// LossProb is the independent per-sample loss probability in [0,1].
	LossProb float64 `json:"loss_prob,omitempty"`
	// Crashes freezes that many uniformly chosen processes before the
	// first step.
	Crashes int `json:"crashes,omitempty"`
	// Mode is the crash fault model: "responsive" (default) or "silent"
	// (see robust.Modes).
	Mode string `json:"mode,omitempty"`
}

// kind resolves the family discriminant ("" means median).
func (s Spec) kind() string {
	if s.Kind == "" {
		return KindMedian
	}
	return s.Kind
}

// Normalize returns a copy with defaulted fields made explicit and empty
// parameter maps dropped, so equivalent specs share one canonical encoding.
// Fields belonging to other families pass through untouched — Validate, not
// Normalize, rejects them.
func (s Spec) Normalize() Spec {
	s.Kind = s.kind()
	switch s.Kind {
	case KindMultidim:
		if s.Multidim != nil {
			m := *s.Multidim
			m.Init = multidim.NormalizeInit(m.Init)
			if m.Adversary != nil {
				a := *m.Adversary
				if len(a.Params) == 0 {
					a.Params = nil
				}
				m.Adversary = &a
			}
			s.Multidim = &m
		}
		return s
	case KindRobust:
		s.Init = consensus.NormalizeInit(s.Init)
		r := RobustSpec{}
		if s.Robust != nil {
			r = *s.Robust
		}
		if r.Mode == "" {
			r.Mode = robust.ModeResponsive
		}
		s.Robust = &r
		return s
	}
	s.Init = consensus.NormalizeInit(s.Init)
	if s.Engine == "" {
		s.Engine = "auto"
	}
	if s.Timing == "" {
		s.Timing = "before-round"
	}
	if len(s.Rule.Params) == 0 {
		s.Rule.Params = nil
	}
	if s.Adversary != nil {
		a := *s.Adversary
		if len(a.Params) == 0 {
			a.Params = nil
		}
		s.Adversary = &a
	}
	if s.Gossip != nil && *s.Gossip == (GossipSpec{}) {
		s.Gossip = nil
	}
	if s.Workers == 1 {
		s.Workers = 0
	}
	return s
}

// Validate checks that every registry reference resolves, the init spec is
// well-formed and no field of a foreign family is set, without materializing
// the O(n) initial state — it is safe to call on every API request.
func (s Spec) Validate() error {
	if s.MaxRounds < 0 {
		return fmt.Errorf("service: negative max_rounds")
	}
	switch s.kind() {
	case KindMultidim:
		return s.validateMultidim()
	case KindRobust:
		return s.validateRobust()
	case KindMedian:
		if s.Multidim != nil || s.Robust != nil {
			return fmt.Errorf("service: median specs take no multidim/robust payload")
		}
		if err := consensus.CheckInit(s.Init); err != nil {
			return err
		}
		_, err := s.components()
		return err
	default:
		return fmt.Errorf("service: unknown spec kind %q (known: %v)", s.Kind, Kinds())
	}
}

// scalarFieldsUnset rejects median-family fields on multidim specs, where
// they have no meaning and would make equivalent runs hash differently.
func (s Spec) scalarFieldsUnset() error {
	i := s.Init
	if i.Kind != "" || i.N != 0 || i.M != 0 || i.NLow != 0 ||
		i.Low != 0 || i.High != 0 || i.Seed != 0 || len(i.Counts) != 0 {
		return fmt.Errorf("service: %s specs take no scalar init (use the family payload)", s.kind())
	}
	return s.medianKnobsUnset()
}

// medianKnobsUnset rejects the knobs only the scalar engines interpret.
func (s Spec) medianKnobsUnset() error {
	switch {
	case s.Rule.Name != "" || len(s.Rule.Params) != 0:
		return fmt.Errorf("service: %s runs hard-code their rule; leave rule unset", s.kind())
	case s.Adversary != nil:
		return fmt.Errorf("service: %s specs reference adversaries through their family payload", s.kind())
	case s.Gossip != nil, s.Engine != "", s.Timing != "",
		s.Workers != 0, s.AlmostSlack != 0, s.Window != 0:
		return fmt.Errorf("service: %s specs take no engine/timing/workers/slack/window/gossip fields", s.kind())
	}
	return nil
}

func (s Spec) validateMultidim() error {
	if s.Robust != nil {
		return fmt.Errorf("service: multidim specs take no robust payload")
	}
	if err := s.scalarFieldsUnset(); err != nil {
		return err
	}
	if s.Multidim == nil {
		return fmt.Errorf("service: multidim specs need a multidim payload")
	}
	if err := multidim.CheckInit(s.Multidim.Init); err != nil {
		return err
	}
	if a := s.Multidim.Adversary; a != nil {
		if _, err := multidim.NewAdversary(a.Name, a.Params); err != nil {
			return err
		}
	}
	return nil
}

func (s Spec) validateRobust() error {
	if s.Multidim != nil {
		return fmt.Errorf("service: robust specs take no multidim payload")
	}
	if err := s.medianKnobsUnset(); err != nil {
		return err
	}
	if err := consensus.CheckInit(s.Init); err != nil {
		return err
	}
	r := RobustSpec{}
	if s.Robust != nil {
		r = *s.Robust
	}
	silent, err := robust.ModeByName(r.Mode)
	if err != nil {
		return err
	}
	// The init size may be unknown (0) for kinds without a Size hook; the
	// engine's own construction check then catches a bad crash count.
	n := consensus.InitSize(s.Init)
	if n > 0 {
		return robust.Check(int(n), robust.Options{
			LossProb: r.LossProb, Crashes: r.Crashes, Silent: silent,
		})
	}
	if r.LossProb < 0 || r.LossProb > 1 {
		return fmt.Errorf("robust: LossProb %v outside [0,1]", r.LossProb)
	}
	if r.Crashes < 0 {
		return fmt.Errorf("robust: negative Crashes %d", r.Crashes)
	}
	return nil
}

// Population reports the population the spec would materialize, for
// admission control. 0 means unknown.
func (s Spec) Population() int64 {
	if s.kind() == KindMultidim {
		if s.Multidim == nil {
			return 0
		}
		return multidim.InitSize(s.Multidim.Init)
	}
	return consensus.InitSize(s.Init)
}

// Canonical returns the canonical JSON encoding of the normalized spec —
// the byte string the hash, cache and seed derivation are defined over.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s.Normalize())
}

// Hash returns the canonical spec hash as a hex string.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return fmt.Sprintf("%x", sum[:]), nil
}

// DeriveSeed maps a canonical spec hash to a run seed via the splitmix64
// finalizer, so seedless specs get a deterministic, well-mixed seed.
func DeriveSeed(hash string) uint64 {
	sum := sha256.Sum256([]byte(hash))
	return rng.Mix64(binary.LittleEndian.Uint64(sum[:8]))
}

// EffectiveSeed returns the seed a run of this spec will actually use.
func (s Spec) EffectiveSeed() (uint64, error) {
	if s.Seed != 0 {
		return s.Seed, nil
	}
	h, err := s.Hash()
	if err != nil {
		return 0, err
	}
	return DeriveSeed(h), nil
}

// Config materializes a median-kind spec into a runnable consensus.Config
// with a fresh rule and adversary instance (adversaries carry per-run
// state) and the effective seed filled in. Other kinds run through Execute,
// which dispatches to their own engines.
func (s Spec) Config() (consensus.Config, error) {
	if k := s.kind(); k != KindMedian {
		return consensus.Config{}, fmt.Errorf("service: %s specs have no consensus.Config; run them through Execute", k)
	}
	cfg, err := s.components()
	if err != nil {
		return consensus.Config{}, err
	}
	cfg.Values, err = consensus.BuildInit(s.Init)
	if err != nil {
		return consensus.Config{}, err
	}
	cfg.Seed, err = s.EffectiveSeed()
	if err != nil {
		return consensus.Config{}, err
	}
	return cfg, nil
}

// components resolves every registry reference except the initial state
// (Config fills Values; Validate deliberately leaves them empty).
func (s Spec) components() (consensus.Config, error) {
	rule, err := rules.New(s.Rule.Name, s.Rule.Params)
	if err != nil {
		return consensus.Config{}, err
	}
	var adv consensus.Adversary
	if s.Adversary != nil {
		adv, err = adversary.New(s.Adversary.Name, s.Adversary.Budget, s.Adversary.Params)
		if err != nil {
			return consensus.Config{}, err
		}
	}
	engine, err := consensus.EngineByName(s.Engine)
	if err != nil {
		return consensus.Config{}, err
	}
	timing, err := consensus.TimingByName(s.Timing)
	if err != nil {
		return consensus.Config{}, err
	}
	if s.MaxRounds < 0 || s.AlmostSlack < 0 || s.Window < 0 || s.Workers < 0 {
		return consensus.Config{}, fmt.Errorf("service: negative max_rounds, almost_slack, window or workers")
	}
	cfg := consensus.Config{
		Rule:        rule,
		Adversary:   adv,
		MaxRounds:   s.MaxRounds,
		AlmostSlack: s.AlmostSlack,
		Window:      s.Window,
		Timing:      timing,
		Engine:      engine,
		Workers:     s.Workers,
	}
	if s.Gossip != nil {
		cfg.Gossip = consensus.GossipConfig{CapFactor: s.Gossip.CapFactor}
	}
	return cfg, nil
}

package service

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/adversary"
	"repro/multidim"
)

func medianTemplate() Spec {
	return Spec{Kind: KindMedian, Seed: 1, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue"},
		Rule: RuleSpec{Name: "median"},
	}}
}

// medianPayload unwraps a cell's median payload.
func medianPayload(t *testing.T, s Spec) *MedianSpec {
	t.Helper()
	p, ok := s.Payload.(*MedianSpec)
	if !ok {
		t.Fatalf("payload is %T, want *MedianSpec", s.Payload)
	}
	return p
}

// TestExpandBatchGrid: a 2-axis grid expands as a cartesian product, last
// axis fastest, each cell canonical and hashed.
func TestExpandBatchGrid(t *testing.T) {
	req := BatchRequest{
		Template: medianTemplate(),
		Axes: []Axis{
			{Param: "n", Values: []float64{100, 200}},
			{Param: "seed", Values: []float64{1, 2, 3}},
		},
	}
	cells, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	wantParams := [][]float64{{100, 1}, {100, 2}, {100, 3}, {200, 1}, {200, 2}, {200, 3}}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i || c.Rep != 0 {
			t.Fatalf("cell %d has index %d rep %d", i, c.Index, c.Rep)
		}
		if !reflect.DeepEqual(c.Params, wantParams[i]) {
			t.Fatalf("cell %d params %v, want %v", i, c.Params, wantParams[i])
		}
		if medianPayload(t, c.Spec).Init.N != int(wantParams[i][0]) || c.Spec.Seed != uint64(wantParams[i][1]) {
			t.Fatalf("cell %d spec not patched: %+v", i, c.Spec)
		}
		if c.SpecHash == "" || seen[c.SpecHash] {
			t.Fatalf("cell %d hash missing or duplicated", i)
		}
		// The expander's fast-path hash must agree with Spec.Hash — they
		// are the same cache key.
		if h, err := c.Spec.Hash(); err != nil || h != c.SpecHash {
			t.Fatalf("cell %d fast-path hash %s != Spec.Hash %s (%v)", i, c.SpecHash, h, err)
		}
		seen[c.SpecHash] = true
		if err := c.Spec.Validate(); err != nil {
			t.Fatalf("cell %d invalid: %v", i, err)
		}
	}
}

// TestExpandBatchZip: zipped axes advance together — one grid dimension of
// L correlated points, varying slowest — instead of multiplying.
func TestExpandBatchZip(t *testing.T) {
	req := BatchRequest{
		Template: Spec{Kind: KindRobust, Seed: 1, Payload: &RobustSpec{
			Init: InitSpec{Kind: "twovalue"},
		}},
		Axes: []Axis{{Param: "seed", Values: []float64{1, 2}}},
		Zip: []Axis{
			{Param: "n", Values: []float64{100, 1000}},
			{Param: "crashes", Values: []float64{1, 10}},
		},
	}
	cells, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 cartesian points × 2 zip points; zip varies slowest.
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	wantParams := [][]float64{{1, 100, 1}, {2, 100, 1}, {1, 1000, 10}, {2, 1000, 10}}
	for i, c := range cells {
		if !reflect.DeepEqual(c.Params, wantParams[i]) {
			t.Fatalf("cell %d params %v, want %v", i, c.Params, wantParams[i])
		}
		p := c.Spec.Payload.(*RobustSpec)
		if p.Init.N != int(wantParams[i][1]) || p.Crashes != int(wantParams[i][2]) {
			t.Fatalf("cell %d zip not applied: %+v", i, p)
		}
	}
	// Unequal zip lengths are rejected.
	req.Zip[1].Values = []float64{1}
	if _, err := ExpandBatch(req, BatchLimits{}); err == nil {
		t.Fatal("unequal zip lengths must be rejected")
	}
}

// TestExpandBatchDerive: derived fields compute per-cell parameters from
// the cell's own axis values — the adversarial-sweep shape (n-dependent
// almost_slack) that used to force an explicit spec list.
func TestExpandBatchDerive(t *testing.T) {
	tmpl := medianTemplate()
	tmpl.Payload.(*MedianSpec).Adversary = &AdversarySpec{
		Name: "balancer", Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
	}
	req := BatchRequest{
		Template: tmpl,
		Axes:     []Axis{{Param: "n", Values: []float64{100, 10000}}},
		Derive: []DeriveRule{
			{Param: "almost_slack", From: "n", Func: "sqrt", Factor: 3},
		},
	}
	cells, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	for i, wantSlack := range []int{int(math.Trunc(3 * 10)), int(math.Trunc(3 * 100))} {
		if got := medianPayload(t, cells[i].Spec).AlmostSlack; got != wantSlack {
			t.Fatalf("cell %d slack %d, want %d", i, got, wantSlack)
		}
	}
	// Derive sources must be axes of the same request.
	bad := req
	bad.Derive = []DeriveRule{{Param: "almost_slack", From: "m", Func: "sqrt"}}
	if _, err := ExpandBatch(bad, BatchLimits{}); err == nil {
		t.Fatal("derive from a non-axis param must be rejected")
	}
	bad.Derive = []DeriveRule{{Param: "almost_slack", From: "n", Func: "warp"}}
	if _, err := ExpandBatch(bad, BatchLimits{}); err == nil {
		t.Fatal("unknown derive func must be rejected")
	}
	bad.Derive = []DeriveRule{{Param: "n", From: "n"}}
	if _, err := ExpandBatch(bad, BatchLimits{}); err == nil {
		t.Fatal("deriving an axis param must be rejected")
	}
}

// TestExpandBatchRejectsForeignPayload: a template whose payload belongs
// to another family must fail expansion (Submit rejects it too) — the
// cell clone must not silently truncate it into a valid-looking spec of
// the wrong family.
func TestExpandBatchRejectsForeignPayload(t *testing.T) {
	req := BatchRequest{
		Template: Spec{Kind: KindRobust, Payload: &MedianSpec{
			Init: InitSpec{Kind: "twovalue", N: 100},
			Rule: RuleSpec{Name: "voter"},
		}},
		Axes: []Axis{{Param: "seed", Values: []float64{1, 2}}},
	}
	if _, err := ExpandBatch(req, BatchLimits{}); err == nil {
		t.Fatal("foreign template payload must fail batch expansion")
	}
}

// TestExpandBatchReps: repetitions get deterministic derived seeds — the
// same request expands to byte-identical cells every time — and distinct
// reps get distinct seeds.
func TestExpandBatchReps(t *testing.T) {
	req := BatchRequest{
		Template: medianTemplate(),
		Axes:     []Axis{{Param: "n", Values: []float64{100, 200}}},
		Reps:     3,
	}
	a, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	if len(a) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(a))
	}
	seeds := map[uint64]bool{}
	for _, c := range a {
		if c.Spec.Seed == 0 || seeds[c.Spec.Seed] {
			t.Fatalf("rep seeds must be distinct and non-zero: %+v", c.Spec)
		}
		seeds[c.Spec.Seed] = true
	}
}

// TestExpandBatchSeedAxisNoCollision: grid points of a seed axis whose raw
// values differ by exactly (j−i)·reps must still derive distinct rep seeds
// (the base is pre-mixed), so no grid point silently collapses into
// another's cached cells.
func TestExpandBatchSeedAxisNoCollision(t *testing.T) {
	tmpl := medianTemplate()
	tmpl.Payload.(*MedianSpec).Init.N = 100
	req := BatchRequest{
		Template: tmpl,
		Axes:     []Axis{{Param: "seed", Values: []float64{5, 3}}},
		Reps:     2,
	}
	cells, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	hashes := map[string]bool{}
	for _, c := range cells {
		if hashes[c.SpecHash] {
			t.Fatalf("seed axis collided: duplicate cell %+v", c)
		}
		hashes[c.SpecHash] = true
	}
}

// TestExpandBatchSeedFollowsInit: seed-consuming init kinds follow the
// derived rep seed (engine.SeedFollower), so repetitions draw distinct
// initial states.
func TestExpandBatchSeedFollowsInit(t *testing.T) {
	req := BatchRequest{
		Template: Spec{Seed: 9, Payload: &MedianSpec{
			Init: InitSpec{Kind: "uniform", M: 4},
			Rule: RuleSpec{Name: "median"},
		}},
		Axes: []Axis{{Param: "n", Values: []float64{100}}},
		Reps: 2,
	}
	cells, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if got := medianPayload(t, c.Spec).Init.Seed; got != c.Spec.Seed {
			t.Fatalf("uniform init seed %d must follow run seed %d", got, c.Spec.Seed)
		}
	}
	if medianPayload(t, cells[0].Spec).Init.Seed == medianPayload(t, cells[1].Spec).Init.Seed {
		t.Fatal("reps must draw distinct initial states")
	}
}

// TestExpandBatchMultidim patches the multidim payload's n and d.
func TestExpandBatchMultidim(t *testing.T) {
	req := BatchRequest{
		Template: Spec{Kind: KindMultidim, Seed: 1, Payload: &MultidimSpec{
			Init: multidim.InitSpec{Kind: "distinct"},
		}},
		Axes: []Axis{
			{Param: "n", Values: []float64{50, 60}},
			{Param: "d", Values: []float64{1, 4}},
		},
	}
	cells, err := ExpandBatch(req, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	last := cells[3].Spec.Payload.(*MultidimSpec)
	if last.Init.N != 60 || last.Init.D != 4 {
		t.Fatalf("multidim payload not patched: %+v", last)
	}
	// The template must not have been mutated by the expansion.
	tmpl := req.Template.Payload.(*MultidimSpec)
	if tmpl.Init.N != 0 || tmpl.Init.D != 0 {
		t.Fatalf("expansion leaked into the template: %+v", tmpl)
	}
}

// TestExpandBatchSpecsMode: explicit spec lists expand with reps too.
func TestExpandBatchSpecsMode(t *testing.T) {
	s1 := medianTemplate()
	s1.Payload.(*MedianSpec).Init.N = 100
	s2 := medianTemplate()
	s2.Payload.(*MedianSpec).Init.N = 200
	cells, err := ExpandBatch(BatchRequest{Specs: []Spec{s1, s2}, Reps: 2}, BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	if medianPayload(t, cells[0].Spec).Init.N != 100 || medianPayload(t, cells[2].Spec).Init.N != 200 {
		t.Fatalf("specs-mode order wrong: %+v", cells)
	}
}

// TestExpandBatchErrors covers the rejection paths.
func TestExpandBatchErrors(t *testing.T) {
	tmpl := medianTemplate()
	ballTmpl := medianTemplate()
	ballTmpl.Payload.(*MedianSpec).Engine = "ball"
	cases := []struct {
		name   string
		req    BatchRequest
		limits BatchLimits
	}{
		{"unknown param", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "warp", Values: []float64{1}}}}, BatchLimits{}},
		{"empty axis", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n"}}}, BatchLimits{}},
		{"duplicate axis", BatchRequest{Template: tmpl, Axes: []Axis{
			{Param: "n", Values: []float64{10}}, {Param: "n", Values: []float64{20}}}}, BatchLimits{}},
		{"non-integer n", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n", Values: []float64{100.5}}}}, BatchLimits{}},
		{"cell cap", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n", Values: []float64{100, 200}}}, Reps: 3}, BatchLimits{MaxCells: 4}},
		// A huge reps must be rejected up front — not overflow the cell
		// count past the caps into a giant allocation.
		{"reps overflow", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n", Values: []float64{100, 200}}}, Reps: 1 << 30}, BatchLimits{MaxCells: 4096}},
		{"reps overflow unlimited", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n", Values: []float64{100, 200}}}, Reps: 1 << 30}, BatchLimits{}},
		{"hard cap without limits", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "seed", Values: make([]float64, 2048)}}, Reps: 1024}, BatchLimits{}},
		{"zip cap", BatchRequest{Template: tmpl,
			Axes: []Axis{{Param: "seed", Values: make([]float64, 2048)}},
			Zip:  []Axis{{Param: "n", Values: make([]float64, 2048)}}}, BatchLimits{}},
		// The cap charges materialized size: a twovalue template would
		// resolve to the count engine and materialize only 2 states, so
		// pin the per-process engine to make the population bite.
		{"materialized-size cap", BatchRequest{Template: ballTmpl, Axes: []Axis{{Param: "n", Values: []float64{100000}}}}, BatchLimits{MaxN: 1000}},
		{"invalid cell", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n", Values: []float64{0}}}}, BatchLimits{}},
		{"axes and specs", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "n", Values: []float64{10}}}, Specs: []Spec{tmpl}}, BatchLimits{}},
		{"derive and specs", BatchRequest{Derive: []DeriveRule{{Param: "almost_slack", From: "n"}}, Specs: []Spec{tmpl}}, BatchLimits{}},
		{"d on median", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "d", Values: []float64{2}}}}, BatchLimits{}},
		{"budget_factor without adversary", BatchRequest{Template: tmpl, Axes: []Axis{{Param: "budget_factor", Values: []float64{2}}}}, BatchLimits{}},
	}
	for _, c := range cases {
		if _, err := ExpandBatch(c.req, c.limits); err == nil {
			t.Errorf("%s: expansion must fail", c.name)
		}
	}
}

// TestRunBatchDedupes: identical cells coalesce in flight and the second
// identical batch is served entirely from the cache.
func TestRunBatchDedupes(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	defer s.Close()
	req := BatchRequest{
		Template: medianTemplate(),
		Axes: []Axis{
			{Param: "n", Values: []float64{300, 400}},
			{Param: "seed", Values: []float64{1, 2}},
		},
	}
	cells, err := s.ExpandBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	var first []BatchCellRecord
	if err := s.RunBatch(context.Background(), cells, func(r BatchCellRecord) error {
		first = append(first, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(first) != 4 {
		t.Fatalf("emitted %d records, want 4", len(first))
	}
	for i, r := range first {
		if r.Index != i || r.Status != StatusDone || r.Result == nil {
			t.Fatalf("bad record %d: %+v", i, r)
		}
	}
	var second []BatchCellRecord
	if err := s.RunBatch(context.Background(), cells, func(r BatchCellRecord) error {
		second = append(second, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if !r.CacheHit {
			t.Fatalf("second batch cell %d must be a cache hit: %+v", i, r)
		}
		if !reflect.DeepEqual(r.Result, first[i].Result) {
			t.Fatalf("cached cell %d result differs", i)
		}
	}
	m := s.Metrics()
	if m.BatchesRun != 2 || m.BatchCellsExpanded != 8 || m.BatchCellsCached != 4 {
		t.Fatalf("batch metrics: %+v", m)
	}
}

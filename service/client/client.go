// Package client is a small typed client for the service HTTP API, shared
// by cmd/consensusctl and usable as a library for programmatic submission.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/engine"
	"repro/obs"
	"repro/service"
)

// Client talks to a consensusd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8645".
	BaseURL string
	// Token, when non-empty, is sent as "Authorization: Bearer <Token>"
	// on every request — required by servers started with -auth-token
	// (consensusctl reads it from $CONSENSUS_TOKEN).
	Token string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the given base URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is the decoded {"error": ...} body of a non-2xx response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// newRequest builds a request against the server, attaching the bearer
// token when configured.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return req, nil
}

func decodeError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &apiError{Status: resp.StatusCode, Msg: msg}
}

// Submit posts a spec and returns the created (or cache-answered) job.
func (c *Client) Submit(ctx context.Context, spec service.Spec) (service.JobView, error) {
	var v service.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs", spec, &v)
	return v, err
}

// Get fetches a job's current state.
func (c *Client) Get(ctx context.Context, id string) (service.JobView, error) {
	var v service.JobView
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &v)
	return v, err
}

// List fetches all jobs.
func (c *Client) List(ctx context.Context) ([]service.JobView, error) {
	var v struct {
		Runs []service.JobView `json:"runs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &v)
	return v.Runs, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobView, error) {
	var v service.JobView
	err := c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, &v)
	return v, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (service.MetricsSnapshot, error) {
	var v service.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &v)
	return v, err
}

// Health probes /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Engines fetches the server's engine discovery document: one descriptor
// per registered spec kind, sorted by kind.
func (c *Client) Engines(ctx context.Context) ([]engine.Descriptor, error) {
	var v struct {
		Engines []engine.Descriptor `json:"engines"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/engines", nil, &v)
	return v.Engines, err
}

// Stream follows a job's round-by-round NDJSON stream, invoking fn per
// record until the stream ends (job finished) or fn returns an error.
func (c *Client) Stream(ctx context.Context, id string, fn func(service.RoundRecord) error) error {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/runs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec service.RoundRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Events follows the server's live event stream (GET /v1/events),
// invoking fn per event until the stream ends (server shutdown), the
// context is cancelled, or fn returns an error. replay > 0 asks the
// server to prepend up to that many recent events from its ring buffer.
// Gaps in Event.Seq mean the client was too slow and events were dropped
// server-side.
func (c *Client) Events(ctx context.Context, replay int, fn func(obs.Event) error) error {
	path := "/v1/events"
	if replay > 0 {
		path += "?replay=" + strconv.Itoa(replay)
	}
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("bad event line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Batch submits a BatchRequest and invokes fn for every cell record the
// server streams back, in cell order, until the batch finishes or fn
// returns an error.
func (c *Client) Batch(ctx context.Context, breq service.BatchRequest, fn func(service.BatchCellRecord) error) error {
	buf, err := json.Marshal(breq)
	if err != nil {
		return err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/batches", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	got := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec service.BatchCellRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("bad batch stream line: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		got++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// A server-side abort mid-batch still ends the chunked body cleanly;
	// the announced cell count is the only truncation signal left.
	if want, err := strconv.Atoi(resp.Header.Get("X-Batch-Cells")); err == nil && got != want {
		return fmt.Errorf("batch stream truncated: got %d of %d cells", got, want)
	}
	return nil
}

// Wait polls a job until it reaches a terminal status, then returns its
// final state. poll <= 0 defaults to 100ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobView, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			return v, err
		}
		switch v.Status {
		case service.StatusDone, service.StatusFailed, service.StatusCancelled:
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

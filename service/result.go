package service

import (
	"repro/engine"
	"repro/service/store"
)

// RunResult is the serializable outcome of a run of any spec kind, plus
// the effective seed the run used, so any cached result can be reproduced.
// It is an alias of engine.Result: the scalar fields (Winner, WinnerCount)
// are shared by every family, the optional fields carry each family's
// extra telemetry.
type RunResult = engine.Result

// MessageStats is the gossip kind's message-level telemetry.
type MessageStats = engine.MessageStats

// RoundRecord is one line of a run's round-by-round NDJSON stream: the
// distribution summary the engines report through their Observe hook (an
// alias of engine.Record). The engines observe the state once before the
// first round and once after every executed round, so a run of R rounds
// yields R+1 records and record 0 is the initial state.
type RoundRecord = engine.Record

// RunRecord pairs a spec with its result — the machine-readable record the
// API returns and cmd/sweep -json emits.
type RunRecord struct {
	Spec     Spec      `json:"spec"`
	SpecHash string    `json:"spec_hash"`
	Result   RunResult `json:"result"`
}

// StoredRun is the persisted form of one completed run — the record the
// Store backend commits on finish and replays on startup (an alias of
// store.Run, the unit of the file store's CRC-framed log). It carries the
// cache entry (spec hash, result, round records) plus the job metadata
// needed to resurrect the run in the history.
type StoredRun = store.Run

// ErrCancelled is returned by Execute when the cancelled callback fired.
var ErrCancelled = engine.ErrCancelled

// Execute runs a spec of any registered kind synchronously, dispatching
// through the engine registry. observe, when non-nil, receives one
// RoundRecord per executed round. cancelled, when non-nil, is polled once
// per round (through the engines' shared observer hook, their per-round
// cancellation point); returning true aborts the run with ErrCancelled.
// Any engine panic is converted into an error so a bad spec can never take
// down the serving process.
func Execute(spec Spec, observe func(RoundRecord), cancelled func() bool) (RunResult, error) {
	return engine.Execute(spec, observe, cancelled)
}

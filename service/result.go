package service

import (
	"errors"
	"fmt"

	"repro/consensus"
)

// RunResult is the serializable form of a consensus.Result plus the
// effective seed the run used, so any cached result can be reproduced.
type RunResult struct {
	Rounds      int           `json:"rounds"`
	Reason      string        `json:"reason"`
	Winner      int64         `json:"winner"`
	WinnerCount int64         `json:"winner_count"`
	StableSince int           `json:"stable_since"`
	Seed        uint64        `json:"seed"`
	Messages    *MessageStats `json:"messages,omitempty"`
}

// MessageStats mirrors consensus.MessageStats for gossip-engine runs.
type MessageStats struct {
	RequestsSent    int64 `json:"requests_sent"`
	RequestsDropped int64 `json:"requests_dropped"`
	MaxInDegree     int   `json:"max_in_degree"`
}

// RoundRecord is one line of a run's round-by-round NDJSON stream: the
// distribution summary the engines report through the Observer hook. The
// engines observe the state once before the first round and once after
// every executed round, so a run of R rounds yields R+1 records and record
// 0 is the initial state.
type RoundRecord struct {
	// Round is the number of rounds executed before this snapshot.
	Round int `json:"round"`
	// N is the population size.
	N int64 `json:"n"`
	// Support is the number of distinct values still alive.
	Support int `json:"support"`
	// Leader is the current plurality value; LeaderCount its population.
	Leader      int64 `json:"leader"`
	LeaderCount int64 `json:"leader_count"`
}

// RunRecord pairs a spec with its result — the machine-readable record the
// API returns and cmd/sweep -json emits.
type RunRecord struct {
	Spec     Spec      `json:"spec"`
	SpecHash string    `json:"spec_hash"`
	Result   RunResult `json:"result"`
}

// ErrCancelled is returned by Execute when the cancelled callback fired.
var ErrCancelled = errors.New("service: run cancelled")

// cancelSignal is the panic sentinel the observer uses to unwind a running
// engine; Execute recovers it. The engines have no cancellation hook of
// their own, but the ball/count/two-bin engines call the observer every
// round, which is exactly the granularity a cancel needs. Gossip-engine
// runs ignore observers and therefore only cancel while still queued.
type cancelSignal struct{}

// Execute runs a spec synchronously. observe, when non-nil, receives one
// RoundRecord per executed round (ball/count/two-bin engines). cancelled,
// when non-nil, is polled once per round; returning true aborts the run
// with ErrCancelled. Any engine panic (e.g. an invalid engine/state
// combination that Validate cannot see) is converted into an error so a
// bad spec can never take down the serving process.
func Execute(spec Spec, observe func(RoundRecord), cancelled func() bool) (res RunResult, err error) {
	cfg, err := spec.Config()
	if err != nil {
		return RunResult{}, err
	}
	n := int64(len(cfg.Values))
	// The observer is installed unconditionally: engine auto-selection
	// depends on whether an observer is present, so a run must not change
	// engine (and hence trajectory) based on whether anyone is watching.
	// Every Execute caller — service workers, sweep cells, tests — gets
	// the same engine and the same result for the same spec.
	cfg.Observer = func(round int, vals []consensus.Value, counts []int64) {
		if cancelled != nil && cancelled() {
			panic(cancelSignal{})
		}
		if observe == nil {
			return
		}
		rec := RoundRecord{Round: round, N: n, Support: len(vals)}
		for i, c := range counts {
			if c > rec.LeaderCount {
				rec.Leader, rec.LeaderCount = vals[i], c
			}
		}
		observe(rec)
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(cancelSignal); ok {
				err = ErrCancelled
				return
			}
			err = fmt.Errorf("service: run panicked: %v", r)
		}
	}()
	out := consensus.Run(cfg)
	res = RunResult{
		Rounds:      out.Rounds,
		Reason:      out.Reason.String(),
		Winner:      out.Winner,
		WinnerCount: out.WinnerCount,
		StableSince: out.StableSince,
		Seed:        cfg.Seed,
	}
	if out.Messages != (consensus.MessageStats{}) {
		res.Messages = &MessageStats{
			RequestsSent:    out.Messages.RequestsSent,
			RequestsDropped: out.Messages.RequestsDropped,
			MaxInDegree:     out.Messages.MaxInDegree,
		}
	}
	return res, nil
}

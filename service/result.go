package service

import (
	"errors"
	"fmt"

	"repro/consensus"
	"repro/multidim"
	"repro/robust"
)

// RunResult is the serializable outcome of a run of any spec kind, plus the
// effective seed the run used, so any cached result can be reproduced. The
// scalar fields (Winner, WinnerCount) are shared by every family; the
// optional fields carry each family's extra telemetry.
type RunResult struct {
	// Rounds is the number of (parallel, for robust runs) rounds executed.
	Rounds      int    `json:"rounds"`
	Reason      string `json:"reason"`
	Winner      int64  `json:"winner"`
	WinnerCount int64  `json:"winner_count"`
	StableSince int    `json:"stable_since"`
	Seed        uint64 `json:"seed"`
	// Messages holds gossip-engine telemetry (median kind).
	Messages *MessageStats `json:"messages,omitempty"`
	// WinnerPoint is the winning tuple of a multidim run (Winner is 0).
	WinnerPoint []int64 `json:"winner_point,omitempty"`
	// TupleValid / CoordValid report multidim validity (see
	// multidim.Result).
	TupleValid *bool `json:"tuple_valid,omitempty"`
	CoordValid *bool `json:"coord_valid,omitempty"`
	// Steps and ParallelTime report robust-run timing (Rounds is the
	// parallel time rounded up).
	Steps        int     `json:"steps,omitempty"`
	ParallelTime float64 `json:"parallel_time,omitempty"`
	// Dissenters counts processes (crashed included) not holding Winner
	// at the end of a robust run.
	Dissenters int `json:"dissenters,omitempty"`
}

// MessageStats mirrors consensus.MessageStats for gossip-engine runs.
type MessageStats struct {
	RequestsSent    int64 `json:"requests_sent"`
	RequestsDropped int64 `json:"requests_dropped"`
	MaxInDegree     int   `json:"max_in_degree"`
}

// RoundRecord is one line of a run's round-by-round NDJSON stream: the
// distribution summary the engines report through their Observer hook. The
// engines observe the state once before the first round and once after
// every executed round, so a run of R rounds yields R+1 records and record
// 0 is the initial state.
type RoundRecord struct {
	// Round is the number of rounds executed before this snapshot
	// (parallel rounds, for robust runs).
	Round int `json:"round"`
	// N is the population size.
	N int64 `json:"n"`
	// Support is the number of distinct values (tuples, for multidim
	// runs) still alive.
	Support int `json:"support"`
	// Leader is the current plurality value; LeaderCount its population.
	Leader      int64 `json:"leader"`
	LeaderCount int64 `json:"leader_count"`
	// LeaderPoint is the plurality tuple of a multidim run (Leader is 0).
	LeaderPoint []int64 `json:"leader_point,omitempty"`
}

// RunRecord pairs a spec with its result — the machine-readable record the
// API returns and cmd/sweep -json emits.
type RunRecord struct {
	Spec     Spec      `json:"spec"`
	SpecHash string    `json:"spec_hash"`
	Result   RunResult `json:"result"`
}

// ErrCancelled is returned by Execute when the cancelled callback fired.
var ErrCancelled = errors.New("service: run cancelled")

// cancelSignal is the panic sentinel the observer uses to unwind a running
// engine; Execute recovers it. The engines have no cancellation hook of
// their own, but every family's engine calls its observer once per round,
// which is exactly the granularity a cancel needs.
type cancelSignal struct{}

// checkCancel polls the cancellation callback and unwinds the engine when
// it fires — the shared per-round cancellation point of every executor.
func checkCancel(cancelled func() bool) {
	if cancelled != nil && cancelled() {
		panic(cancelSignal{})
	}
}

// Execute runs a spec of any kind synchronously. observe, when non-nil,
// receives one RoundRecord per executed round. cancelled, when non-nil, is
// polled once per round; returning true aborts the run with ErrCancelled.
// Any engine panic (e.g. an invalid engine/state combination that Validate
// cannot see) is converted into an error so a bad spec can never take down
// the serving process.
func Execute(spec Spec, observe func(RoundRecord), cancelled func() bool) (res RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(cancelSignal); ok {
				err = ErrCancelled
				return
			}
			err = fmt.Errorf("service: run panicked: %v", r)
		}
	}()
	spec = spec.Normalize()
	switch spec.Kind {
	case KindMultidim:
		return executeMultidim(spec, observe, cancelled)
	case KindRobust:
		return executeRobust(spec, observe, cancelled)
	default:
		return executeMedian(spec, observe, cancelled)
	}
}

// executeMedian runs the scalar dynamics through consensus.Run.
func executeMedian(spec Spec, observe func(RoundRecord), cancelled func() bool) (RunResult, error) {
	cfg, err := spec.Config()
	if err != nil {
		return RunResult{}, err
	}
	n := int64(len(cfg.Values))
	// The observer is installed unconditionally: engine auto-selection
	// depends on whether an observer is present, so a run must not change
	// engine (and hence trajectory) based on whether anyone is watching.
	// Every Execute caller — service workers, sweep cells, tests — gets
	// the same engine and the same result for the same spec.
	cfg.Observer = func(round int, vals []consensus.Value, counts []int64) {
		checkCancel(cancelled)
		if observe == nil {
			return
		}
		rec := RoundRecord{Round: round, N: n, Support: len(vals)}
		for i, c := range counts {
			if c > rec.LeaderCount {
				rec.Leader, rec.LeaderCount = vals[i], c
			}
		}
		observe(rec)
	}
	out := consensus.Run(cfg)
	res := RunResult{
		Rounds:      out.Rounds,
		Reason:      out.Reason.String(),
		Winner:      out.Winner,
		WinnerCount: out.WinnerCount,
		StableSince: out.StableSince,
		Seed:        cfg.Seed,
	}
	if out.Messages != (consensus.MessageStats{}) {
		res.Messages = &MessageStats{
			RequestsSent:    out.Messages.RequestsSent,
			RequestsDropped: out.Messages.RequestsDropped,
			MaxInDegree:     out.Messages.MaxInDegree,
		}
	}
	return res, nil
}

// executeMultidim runs the coordinate-wise median dynamics.
func executeMultidim(spec Spec, observe func(RoundRecord), cancelled func() bool) (RunResult, error) {
	if spec.Multidim == nil {
		return RunResult{}, fmt.Errorf("service: multidim specs need a multidim payload")
	}
	pts, err := multidim.BuildInit(spec.Multidim.Init)
	if err != nil {
		return RunResult{}, err
	}
	var adv multidim.Adversary
	if a := spec.Multidim.Adversary; a != nil {
		adv, err = multidim.NewAdversary(a.Name, a.Params)
		if err != nil {
			return RunResult{}, err
		}
	}
	seed, err := spec.EffectiveSeed()
	if err != nil {
		return RunResult{}, err
	}
	n := int64(len(pts))
	emit := func(round int, state []multidim.Point) {
		checkCancel(cancelled)
		if observe == nil {
			return
		}
		winner, count, support := multidim.Plurality(state)
		observe(RoundRecord{
			Round: round, N: n, Support: support,
			LeaderCount: int64(count),
			LeaderPoint: append([]int64(nil), winner...),
		})
	}
	eng := multidim.NewEngine(pts, adv, seed, multidim.Options{
		MaxRounds: spec.MaxRounds,
		Observer:  emit,
	})
	emit(0, eng.State())
	out := eng.Run()
	reason := consensus.StopMaxRounds
	if out.Consensus {
		reason = consensus.StopConsensus
	}
	tv, cv := out.TupleValid, out.CoordValid
	return RunResult{
		Rounds:      out.Rounds,
		Reason:      reason.String(),
		WinnerCount: int64(out.WinnerCount),
		WinnerPoint: append([]int64(nil), out.Winner...),
		TupleValid:  &tv,
		CoordValid:  &cv,
		Seed:        seed,
	}, nil
}

// executeRobust runs the asynchronous faulty execution. MaxRounds counts
// parallel rounds (n activations each), the unit the round records use.
func executeRobust(spec Spec, observe func(RoundRecord), cancelled func() bool) (RunResult, error) {
	vals, err := consensus.BuildInit(spec.Init)
	if err != nil {
		return RunResult{}, err
	}
	r := RobustSpec{}
	if spec.Robust != nil {
		r = *spec.Robust
	}
	silent, err := robust.ModeByName(r.Mode)
	if err != nil {
		return RunResult{}, err
	}
	seed, err := spec.EffectiveSeed()
	if err != nil {
		return RunResult{}, err
	}
	n := len(vals)
	emit := func(round int, state []robust.Value) {
		checkCancel(cancelled)
		if observe == nil {
			return
		}
		rec := RoundRecord{Round: round, N: int64(n)}
		counts := make(map[robust.Value]int64, 16)
		for _, v := range state {
			counts[v]++
		}
		rec.Support = len(counts)
		for v, c := range counts {
			if c > rec.LeaderCount || (c == rec.LeaderCount && v < rec.Leader) {
				rec.Leader, rec.LeaderCount = v, c
			}
		}
		observe(rec)
	}
	maxSteps := 0
	if spec.MaxRounds > 0 {
		maxSteps = spec.MaxRounds * n
	}
	eng := robust.NewEngine(vals, robust.Options{
		LossProb: r.LossProb,
		Crashes:  r.Crashes,
		Silent:   silent,
		MaxSteps: maxSteps,
		Observer: emit,
	}, seed)
	out := eng.Run()
	reason := consensus.StopMaxRounds
	if out.Consensus {
		reason = consensus.StopConsensus
	}
	return RunResult{
		Rounds:       (out.Steps + n - 1) / n,
		Reason:       reason.String(),
		Winner:       out.Winner,
		WinnerCount:  int64(out.WinnerCount),
		Steps:        out.Steps,
		ParallelTime: out.ParallelTime,
		Dissenters:   out.Dissenters,
		Seed:         seed,
	}, nil
}

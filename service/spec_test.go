package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/adversary"
	"repro/consensus"
	"repro/engine"
	"repro/multidim"
	"repro/robust"
	"repro/rules"
)

// medianSpec wraps a median payload in its envelope.
func medianSpec(seed uint64, p MedianSpec) Spec {
	return Spec{Kind: KindMedian, Seed: seed, Payload: &p}
}

// ruleParamsFor supplies the parameters a registered rule needs to build.
func ruleParamsFor(name string) rules.Params {
	if name == "kmedian" {
		return rules.Params{"k": 2}
	}
	return nil
}

// advParamsFor supplies the parameters a registered adversary needs.
func advParamsFor(name string) adversary.Params {
	switch name {
	case "balancer":
		return adversary.Params{"low": 1, "high": 2}
	case "reviver":
		return adversary.Params{"target": 1, "delay": 2}
	case "flipper":
		return adversary.Params{"a": 1, "b": 2}
	case "hider":
		return adversary.Params{"held": 1}
	default:
		return nil
	}
}

// TestSpecRoundTripRules JSON round-trips a spec for every registered rule
// and checks the canonical hash survives the trip.
func TestSpecRoundTripRules(t *testing.T) {
	for _, name := range rules.Names() {
		spec := medianSpec(3, MedianSpec{
			Init: InitSpec{Kind: "uniform", N: 100, M: 4, Seed: 7},
			Rule: RuleSpec{Name: name, Params: ruleParamsFor(name)},
		})
		roundTrip(t, "rule "+name, spec)
	}
}

// TestSpecRoundTripAdversaries does the same for every registered adversary.
func TestSpecRoundTripAdversaries(t *testing.T) {
	for _, name := range adversary.Names() {
		spec := medianSpec(3, MedianSpec{
			Init: InitSpec{Kind: "twovalue", N: 100},
			Rule: RuleSpec{Name: "median"},
			Adversary: &AdversarySpec{
				Name:   name,
				Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
				Params: advParamsFor(name),
			},
		})
		roundTrip(t, "adversary "+name, spec)
	}
}

// TestSpecRoundTripEngines does the same for every engine the median kind
// exposes (gossip is a kind of its own now and is rejected here).
func TestSpecRoundTripEngines(t *testing.T) {
	for _, name := range []string{"auto", "ball", "count", "twobin"} {
		spec := medianSpec(3, MedianSpec{
			Init:   InitSpec{Kind: "twovalue", N: 64},
			Rule:   RuleSpec{Name: "median"},
			Engine: name,
		})
		roundTrip(t, "engine "+name, spec)
	}
}

// TestSpecRoundTripGossip round-trips the gossip kind across every named
// selector form and a non-default rule.
func TestSpecRoundTripGossip(t *testing.T) {
	for _, selector := range []string{"", "fair", "drop-value:1", "drop-value:-7"} {
		spec := Spec{Kind: KindGossip, Seed: 3, Payload: &GossipSpec{
			Init:     InitSpec{Kind: "twovalue", N: 64},
			Selector: selector,
		}}
		roundTrip(t, "gossip selector "+selector, spec)
	}
	spec := Spec{Kind: KindGossip, Seed: 3, Payload: &GossipSpec{
		Init:      InitSpec{Kind: "uniform", N: 64, M: 4, Seed: 5},
		Rule:      RuleSpec{Name: "voter"},
		CapFactor: 2.5,
		Adversary: &AdversarySpec{Name: "balancer",
			Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
			Params: advParamsFor("balancer")},
		AlmostSlack: 8,
	}}
	roundTrip(t, "gossip full", spec)
}

func roundTrip(t *testing.T, label string, spec Spec) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("%s: validate: %v", label, err)
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	var back Spec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("%s: unmarshal: %v", label, err)
	}
	if !reflect.DeepEqual(spec.Normalize(), back.Normalize()) {
		t.Fatalf("%s: round trip changed the spec:\n  in:  %+v\n  out: %+v", label, spec, back)
	}
	h1, err := spec.Hash()
	if err != nil {
		t.Fatalf("%s: hash: %v", label, err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatalf("%s: hash after round trip: %v", label, err)
	}
	if h1 != h2 {
		t.Fatalf("%s: hash changed across JSON round trip: %s != %s", label, h1, h2)
	}
}

// TestCanonicalHash pins the normalization rules: defaulted fields do not
// change the hash, while semantically different specs do.
func TestCanonicalHash(t *testing.T) {
	base := medianSpec(5, MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	})
	explicit := medianSpec(5, MedianSpec{
		Init:    InitSpec{Kind: "twovalue", N: 100},
		Rule:    RuleSpec{Name: "median", Params: rules.Params{}},
		Engine:  "auto",
		Timing:  "before-round",
		Workers: 1, // one worker == sequential == the default
	})
	h1 := mustHash(t, base)
	if h2 := mustHash(t, explicit); h1 != h2 {
		t.Fatalf("defaulted and explicit specs must hash equal: %s != %s", h1, h2)
	}
	// The implied kind canonicalizes to the explicit default kind.
	implied := base
	implied.Kind = ""
	if mustHash(t, implied) != h1 {
		t.Fatal("implied and explicit median kind must hash equal")
	}

	other := base
	other.Seed = 6
	if mustHash(t, other) == h1 {
		t.Fatal("different seeds must hash differently")
	}
	otherRule := medianSpec(5, MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "voter"},
	})
	if mustHash(t, otherRule) == h1 {
		t.Fatal("different rules must hash differently")
	}

	// Init defaults canonicalize too: spelling out twovalue's implied
	// n_low/low/high (or uniform's clamped m) must not change the hash.
	explicitInit := medianSpec(5, MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100, NLow: 50, Low: 1, High: 2},
		Rule: RuleSpec{Name: "median"},
	})
	if mustHash(t, explicitInit) != h1 {
		t.Fatal("implied and explicit twovalue defaults must hash equal")
	}
	u1 := medianSpec(0, MedianSpec{Init: InitSpec{Kind: "uniform", N: 50, Seed: 3}, Rule: RuleSpec{Name: "median"}})
	u2 := medianSpec(0, MedianSpec{Init: InitSpec{Kind: "uniform", N: 50, M: 50, Seed: 3}, Rule: RuleSpec{Name: "median"}})
	if mustHash(t, u1) != mustHash(t, u2) {
		t.Fatal("uniform m=0 and m=n must hash equal")
	}
}

// TestSpecRoundTripMultidim round-trips a multidim spec for every
// registered init kind and adversary strategy.
func TestSpecRoundTripMultidim(t *testing.T) {
	for _, kind := range multidim.InitKinds() {
		spec := Spec{Kind: KindMultidim, Seed: 3, Payload: &MultidimSpec{
			Init: multidim.InitSpec{Kind: kind, N: 64, D: 2, Seed: 7},
		}}
		roundTrip(t, "multidim init "+kind, spec)
	}
	for _, name := range multidim.AdversaryNames() {
		spec := Spec{Kind: KindMultidim, Seed: 3, Payload: &MultidimSpec{
			Init:      multidim.InitSpec{Kind: "distinct", N: 64, D: 3},
			Adversary: &MultidimAdversarySpec{Name: name, Params: multidim.Params{"t": 2}},
		}}
		roundTrip(t, "multidim adversary "+name, spec)
	}
}

// TestSpecRoundTripRobust round-trips a robust spec for every registered
// mode and every scalar init kind.
func TestSpecRoundTripRobust(t *testing.T) {
	for _, mode := range robust.Modes() {
		spec := Spec{Kind: KindRobust, Seed: 3, Payload: &RobustSpec{
			Init:     InitSpec{Kind: "twovalue", N: 100},
			LossProb: 0.25, Crashes: 5, Mode: mode,
		}}
		roundTrip(t, "robust mode "+mode, spec)
	}
	for _, kind := range consensus.InitKinds() {
		init := InitSpec{Kind: kind, N: 100, Seed: 5}
		if kind == "blocks" {
			init = InitSpec{Kind: kind, Counts: []int64{60, 40}}
		}
		spec := Spec{Kind: KindRobust, Seed: 3, Payload: &RobustSpec{Init: init}}
		roundTrip(t, "robust init "+kind, spec)
	}
}

// TestCanonicalHashKinds pins the union's normalization rules: families
// hash apart, and each family's defaulted payload fields hash like their
// explicit forms.
func TestCanonicalHashKinds(t *testing.T) {
	base := medianSpec(5, MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	})
	robustSpec := Spec{Kind: KindRobust, Seed: 5, Payload: &RobustSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
	}}
	if mustHash(t, robustSpec) == mustHash(t, base) {
		t.Fatal("robust and median specs over the same init must hash differently")
	}
	// A defaulted mode and the explicit responsive mode describe the same
	// run.
	explicitRobust := Spec{Kind: KindRobust, Seed: 5, Payload: &RobustSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Mode: "responsive",
	}}
	if mustHash(t, robustSpec) != mustHash(t, explicitRobust) {
		t.Fatal("implied and explicit default robust payloads must hash equal")
	}

	// Gossip defaults canonicalize: "" selector means fair, "" rule means
	// median.
	g1 := Spec{Kind: KindGossip, Seed: 5, Payload: &GossipSpec{Init: InitSpec{Kind: "twovalue", N: 100}}}
	g2 := Spec{Kind: KindGossip, Seed: 5, Payload: &GossipSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"}, Selector: "fair",
	}}
	if mustHash(t, g1) != mustHash(t, g2) {
		t.Fatal("implied and explicit gossip defaults must hash equal")
	}
	g3 := Spec{Kind: KindGossip, Seed: 5, Payload: &GossipSpec{
		Init: InitSpec{Kind: "twovalue", N: 100}, Selector: "drop-value:1",
	}}
	if mustHash(t, g3) == mustHash(t, g1) {
		t.Fatal("different selectors must hash differently")
	}

	// Multidim init defaults canonicalize: d=0 means 1, m=0 means n.
	m1 := Spec{Kind: KindMultidim, Seed: 5, Payload: &MultidimSpec{Init: multidim.InitSpec{Kind: "random", N: 50}}}
	m2 := Spec{Kind: KindMultidim, Seed: 5, Payload: &MultidimSpec{Init: multidim.InitSpec{Kind: "random", N: 50, D: 1, M: 50}}}
	if mustHash(t, m1) != mustHash(t, m2) {
		t.Fatal("implied and explicit multidim init defaults must hash equal")
	}
	m3 := Spec{Kind: KindMultidim, Seed: 5, Payload: &MultidimSpec{Init: multidim.InitSpec{Kind: "random", N: 50, D: 2}}}
	if mustHash(t, m1) == mustHash(t, m3) {
		t.Fatal("different dimensions must hash differently")
	}

	// Exact defaults canonicalize: "" init means point, start 0 means n/2.
	e1 := Spec{Kind: KindExact, Seed: 5, Payload: &ExactSpec{N: 50}}
	e2 := Spec{Kind: KindExact, Seed: 5, Payload: &ExactSpec{N: 50, Init: "point", Start: 25}}
	if mustHash(t, e1) != mustHash(t, e2) {
		t.Fatal("implied and explicit exact defaults must hash equal")
	}
	e3 := Spec{Kind: KindExact, Seed: 5, Payload: &ExactSpec{N: 50, Start: 10}}
	if mustHash(t, e1) == mustHash(t, e3) {
		t.Fatal("different exact start states must hash differently")
	}
}

// TestGoldenHashes pins the canonical encoding and hash of one
// representative spec per kind. The registry-dispatched codec defines the
// cache key and the derived seed of every submitted run — an accidental
// codec change would silently invalidate caches and change seedless
// trajectories, so any diff here must be deliberate (and released with
// migration notes). PR 10 bumped these deliberately: the canonical
// encoding now carries the spec-codec version ("v", engine.SpecVersion),
// so every key changed at once and store records persisted under the
// pre-version codec are preserved opaquely instead of orphaned silently
// (see TestSpecVersionMigration in service/store).
func TestGoldenHashes(t *testing.T) {
	cases := []struct {
		kind      string
		spec      Spec
		canonical string
		hash      string
	}{
		{
			kind: KindMedian,
			spec: medianSpec(1, MedianSpec{
				Init: InitSpec{Kind: "twovalue", N: 1000},
				Rule: RuleSpec{Name: "median"},
			}),
			canonical: `{"engine":"auto","init":{"kind":"twovalue","n":1000,"n_low":500,"low":1,"high":2},"kind":"median","rule":{"name":"median"},"seed":1,"timing":"before-round","v":1}`,
			hash:      "e325e5f4b99e541c70d83d865e5c34cbf82079a60275e9bdc99a8ec6bd2ff55d",
		},
		{
			kind: KindGossip,
			spec: Spec{Kind: KindGossip, Seed: 1, Payload: &GossipSpec{
				Init:     InitSpec{Kind: "twovalue", N: 1000},
				Selector: "drop-value:2",
			}},
			canonical: `{"init":{"kind":"twovalue","n":1000,"n_low":500,"low":1,"high":2},"kind":"gossip","rule":{"name":"median"},"seed":1,"selector":"drop-value:2","v":1}`,
			hash:      "7614ea03853c6b7fca21373eb5c830734b7ee9b7da66a441f0e215a3bda46f0b",
		},
		{
			// The engine selector is canonical since PR 4 ("" → "auto",
			// never resolved to a concrete engine), so this encoding —
			// and the hash-derived seed — changed deliberately there.
			kind: KindMultidim,
			spec: Spec{Kind: KindMultidim, Seed: 1, Payload: &MultidimSpec{
				Init: multidim.InitSpec{Kind: "random", N: 1000, D: 2, M: 8, Seed: 1},
			}},
			canonical: `{"engine":"auto","init":{"kind":"random","n":1000,"d":2,"m":8,"seed":1},"kind":"multidim","seed":1,"v":1}`,
			hash:      "797893f2676833426266a1ddb6f522aa88cef559fe822f937e6a25456fbfbd00",
		},
		{
			// An explicit count-level engine is part of the cache key: a
			// count-engine run and a process-engine run of the same init
			// are different runs.
			kind: KindMultidim + "/count",
			spec: Spec{Kind: KindMultidim, Seed: 1, Payload: &MultidimSpec{
				Init:   multidim.InitSpec{Kind: "random", N: 100000, D: 2, M: 4, Seed: 1},
				Engine: multidim.EngineCount,
			}},
			canonical: `{"engine":"count","init":{"kind":"random","n":100000,"d":2,"m":4,"seed":1},"kind":"multidim","seed":1,"v":1}`,
			hash:      "4ecd26d739254389ba175ed0a7845cec92b76cdb5a96de92e151821a527400b0",
		},
		{
			// A billion-process count-path spec: the hash (and the seed
			// derived from it) must stay byte-stable however the huge-n
			// hot path evolves, and "auto" must stay symbolic even though
			// the run resolves to the count engine. This is the spec the
			// acceptance e2e (TestBillionCountEndToEndHTTP) runs.
			kind: KindMultidim + "/billion",
			spec: Spec{Kind: KindMultidim, Seed: 1, Payload: &MultidimSpec{
				Init:      multidim.InitSpec{Kind: "random", N: 1_000_000_000, D: 2, M: 2, Seed: 3},
				Adversary: &MultidimAdversarySpec{Name: "noise"},
			}},
			canonical: `{"adversary":{"name":"noise"},"engine":"auto","init":{"kind":"random","n":1000000000,"d":2,"m":2,"seed":3},"kind":"multidim","seed":1,"v":1}`,
			hash:      "305d2bfd1a080c5b3e53350a4691b8dbe9ddb32a36967d4523aefd672ede75b9",
		},
		{
			kind: KindRobust,
			spec: Spec{Kind: KindRobust, Seed: 1, Payload: &RobustSpec{
				Init:     InitSpec{Kind: "twovalue", N: 1000},
				LossProb: 0.1, Crashes: 10,
			}},
			canonical: `{"crashes":10,"init":{"kind":"twovalue","n":1000,"n_low":500,"low":1,"high":2},"kind":"robust","loss_prob":0.1,"mode":"responsive","seed":1,"v":1}`,
			hash:      "9db86eacc226f41e76a2c96dcb00497ad720faae4186a06296ba0702fd667fc5",
		},
		{
			// The analytic kind: its result never depends on the seed, but
			// the seed still participates in the cache key like every other
			// envelope field — two exact specs differing only in seed are
			// two store entries with byte-identical results.
			kind:      KindExact,
			spec:      Spec{Kind: KindExact, Seed: 1, Payload: &ExactSpec{N: 64, Start: 16}},
			canonical: `{"init":"point","kind":"exact","n":64,"seed":1,"start":16,"v":1}`,
			hash:      "85315fbb4fc54b589411bc116dc107e2dfbda019b85ffcaeda7918d2cc6a72bf",
		},
	}
	for _, c := range cases {
		canonical, err := c.spec.Canonical()
		if err != nil {
			t.Fatalf("%s: canonical: %v", c.kind, err)
		}
		if string(canonical) != c.canonical {
			t.Errorf("%s canonical encoding changed:\n got  %s\n want %s", c.kind, canonical, c.canonical)
		}
		h, err := c.spec.Hash()
		if err != nil {
			t.Fatalf("%s: hash: %v", c.kind, err)
		}
		if h != c.hash {
			t.Errorf("%s golden hash changed: got %s, want %s", c.kind, h, c.hash)
		}
	}
}

// TestMultidimEngineAutoCanonical: "engine": "auto" is itself the
// canonical form — Normalize makes it explicit but never resolves it to
// the concrete engine auto will pick, so the cache key of an auto spec is
// independent of the selection rule (tightening PickEngine later must not
// invalidate cached results), while an explicit engine choice is a
// different run with a different key.
func TestMultidimEngineAutoCanonical(t *testing.T) {
	implied := Spec{Kind: KindMultidim, Seed: 5, Payload: &MultidimSpec{
		Init: multidim.InitSpec{Kind: "random", N: 50}}}
	explicit := Spec{Kind: KindMultidim, Seed: 5, Payload: &MultidimSpec{
		Init: multidim.InitSpec{Kind: "random", N: 50}, Engine: multidim.EngineAuto}}
	if mustHash(t, implied) != mustHash(t, explicit) {
		t.Fatal("implied and explicit auto engines must hash equal")
	}
	c, err := explicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(c), `"engine":"auto"`) {
		t.Fatalf("canonical form must keep engine auto symbolic, got %s", c)
	}
	for _, resolved := range []string{multidim.EngineCount, multidim.EngineProcess} {
		s := Spec{Kind: KindMultidim, Seed: 5, Payload: &MultidimSpec{
			Init: multidim.InitSpec{Kind: "random", N: 50}, Engine: resolved}}
		if mustHash(t, s) == mustHash(t, explicit) {
			t.Fatalf("engine %q must hash differently from auto", resolved)
		}
	}
}

// TestValidateKindMixing rejects specs whose payload belongs to another
// family — the strict registry-dispatched decode surfaces them as
// unknown-field errors — plus unknown kinds and the retired engine name.
func TestValidateKindMixing(t *testing.T) {
	bad := []Spec{
		// median spec with a foreign payload
		{Kind: KindMedian, Payload: &RobustSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Crashes: 1}},
		// multidim with a scalar payload, without its payload entirely, or
		// with a bad adversary
		{Kind: KindMultidim, Payload: &MedianSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "median"}}},
		{Kind: KindMultidim},
		{Kind: KindMultidim, Payload: &MultidimSpec{
			Init:      multidim.InitSpec{Kind: "distinct", N: 10},
			Adversary: &MultidimAdversarySpec{Name: "nope"}}},
		// robust with median knobs or bad payloads
		{Kind: KindRobust, Payload: &MedianSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "median"}}},
		{Kind: KindRobust, Payload: &RobustSpec{Init: InitSpec{Kind: "twovalue", N: 10}, LossProb: 1.5}},
		{Kind: KindRobust, Payload: &RobustSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Crashes: 10}},
		{Kind: KindRobust, Payload: &RobustSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Mode: "quantum"}},
		// gossip with a bad selector or foreign payload
		{Kind: KindGossip, Payload: &GossipSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Selector: "warp"}},
		{Kind: KindGossip, Payload: &GossipSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Selector: "drop-value:x"}},
		{Kind: KindGossip, Payload: &MedianSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "median"}, Engine: "ball"}},
		// the retired median engine name points at the gossip kind
		{Kind: KindMedian, Payload: &MedianSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "median"}, Engine: "gossip"}},
		// unknown kind
		{Kind: "tetrahedral"},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad kind-mix spec %d validated: %+v", i, spec)
		}
	}
}

// TestSpecDecodeStrict: the codec rejects fields the spec's kind does not
// define — cross-family payload fields included — instead of dropping them.
func TestSpecDecodeStrict(t *testing.T) {
	bad := []string{
		`{"init":{"kind":"twovalue","n":10},"rule":{"name":"median"},"loss_prob":0.5}`,
		`{"kind":"robust","init":{"kind":"twovalue","n":10},"rule":{"name":"median"}}`,
		`{"kind":"multidim","init":{"kind":"distinct","n":10},"selector":"fair"}`,
		`{"kind":"gossip","init":{"kind":"twovalue","n":10},"engine":"ball"}`,
		`{"kind":"warp"}`,
		`{"init":{"kind":"twovalue","n":10},"rule":{"name":"median"},"maxrounds":5}`,
	}
	for _, raw := range bad {
		var spec Spec
		if err := json.Unmarshal([]byte(raw), &spec); err == nil {
			t.Errorf("foreign/unknown field decoded silently: %s", raw)
		}
	}
	// The error names the kind whose schema rejected the field.
	var spec Spec
	err := json.Unmarshal([]byte(`{"kind":"gossip","engine":"ball"}`), &spec)
	if err == nil || !strings.Contains(err.Error(), "gossip") {
		t.Fatalf("decode error must name the kind: %v", err)
	}
}

// TestExecuteMultidimDeterminism: same multidim spec, same result and
// record stream — the cache-determinism contract for the kind.
func TestExecuteMultidimDeterminism(t *testing.T) {
	spec := Spec{Kind: KindMultidim, Seed: 11, Payload: &MultidimSpec{
		Init: multidim.InitSpec{Kind: "random", N: 400, D: 2, M: 8, Seed: 11},
	}}
	var recs1, recs2 []RoundRecord
	res1, err := Execute(spec, func(r RoundRecord) { recs1 = append(recs1, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Execute(spec, func(r RoundRecord) { recs2 = append(recs2, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("multidim runs diverged: %+v vs %+v", res1, res2)
	}
	if !reflect.DeepEqual(recs1, recs2) {
		t.Fatal("multidim record streams diverged")
	}
	if res1.Reason != "consensus" || len(res1.WinnerPoint) != 2 || res1.WinnerCount != 400 {
		t.Fatalf("unexpected multidim result: %+v", res1)
	}
	if len(recs1) != res1.Rounds+1 {
		t.Fatalf("got %d records, want %d", len(recs1), res1.Rounds+1)
	}
	if recs1[0].Round != 0 || recs1[0].N != 400 || len(recs1[0].LeaderPoint) != 2 {
		t.Fatalf("bad initial record: %+v", recs1[0])
	}
}

// TestExecuteRobustDeterminism: the robust kind is deterministic too, and
// reports parallel-time rounds with one record per round.
func TestExecuteRobustDeterminism(t *testing.T) {
	spec := Spec{Kind: KindRobust, Seed: 13, Payload: &RobustSpec{
		Init:     InitSpec{Kind: "twovalue", N: 600},
		LossProb: 0.1, Crashes: 6, Mode: "silent",
	}}
	var recs []RoundRecord
	res1, err := Execute(spec, func(r RoundRecord) { recs = append(recs, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Execute(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("robust runs diverged: %+v vs %+v", res1, res2)
	}
	if res1.Reason != "consensus" || res1.Steps == 0 || res1.Steps != res1.Rounds*600 {
		t.Fatalf("unexpected robust result: %+v", res1)
	}
	if len(recs) != res1.Rounds+1 {
		t.Fatalf("got %d records, want %d", len(recs), res1.Rounds+1)
	}
	if recs[0].Round != 0 || recs[0].Support != 2 {
		t.Fatalf("bad initial record: %+v", recs[0])
	}
}

// TestExecuteGossipDeterminism: the first-class gossip kind runs
// deterministically, reports message telemetry, and an adversarial
// drop-value selector changes the trajectory while staying deterministic.
func TestExecuteGossipDeterminism(t *testing.T) {
	fair := Spec{Kind: KindGossip, Seed: 7, Payload: &GossipSpec{
		Init:      InitSpec{Kind: "twovalue", N: 400},
		CapFactor: 0.3, // tight capacity so drops actually happen
	}}
	var recs1, recs2 []RoundRecord
	res1, err := Execute(fair, func(r RoundRecord) { recs1 = append(recs1, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Execute(fair, func(r RoundRecord) { recs2 = append(recs2, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) || !reflect.DeepEqual(recs1, recs2) {
		t.Fatalf("gossip runs diverged: %+v vs %+v", res1, res2)
	}
	if res1.Reason != "consensus" || res1.WinnerCount != 400 {
		t.Fatalf("unexpected gossip result: %+v", res1)
	}
	if res1.Messages == nil || res1.Messages.RequestsSent == 0 {
		t.Fatalf("gossip result must carry message telemetry: %+v", res1)
	}
	if len(recs1) != res1.Rounds+1 {
		t.Fatalf("got %d records, want %d", len(recs1), res1.Rounds+1)
	}

	adversarial := Spec{Kind: KindGossip, Seed: 7, Payload: &GossipSpec{
		Init:      InitSpec{Kind: "twovalue", N: 400},
		CapFactor: 0.3,
		Selector:  "drop-value:1",
	}}
	advRes, err := Execute(adversarial, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if advRes.Messages == nil || advRes.Messages.RequestsDropped == 0 {
		t.Fatalf("tight capacity must drop requests: %+v", advRes.Messages)
	}
	again, err := Execute(adversarial, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(advRes, again) {
		t.Fatal("adversarial gossip run is not deterministic")
	}
}

func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSeedDerivation: seedless specs still run deterministically, with a
// seed derived from the canonical hash.
func TestSeedDerivation(t *testing.T) {
	spec := Spec{Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	}}
	s1, err := spec.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := spec.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == 0 || s1 != s2 {
		t.Fatalf("derived seed must be stable and non-zero, got %d and %d", s1, s2)
	}
	seeded := spec
	seeded.Seed = 42
	s3, err := seeded.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 42 {
		t.Fatalf("explicit seed must win, got %d", s3)
	}
}

// TestSpecValidateErrors rejects unknown registry references and bad
// parameters.
func TestSpecValidateErrors(t *testing.T) {
	median := func(p MedianSpec) Spec { return Spec{Payload: &p} }
	bad := []Spec{
		median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "nope"}}),
		median(MedianSpec{Init: InitSpec{Kind: "nope", N: 100}, Rule: RuleSpec{Name: "median"}}),
		median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 0}, Rule: RuleSpec{Name: "median"}}),
		median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median", Params: rules.Params{"z": 1}}}),
		median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, Engine: "warp"}),
		median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, Timing: "never"}),
		median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"},
			Adversary: &AdversarySpec{Name: "balancer", Budget: adversary.BudgetSpec{Kind: "cubic", Factor: 1}}}),
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	negative := median(MedianSpec{Init: InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}})
	negative.MaxRounds = -1
	if err := negative.Validate(); err == nil {
		t.Error("negative max_rounds validated")
	}
}

// TestExecuteConverges runs a small median-rule spec end to end.
func TestExecuteConverges(t *testing.T) {
	spec := medianSpec(1, MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 1000},
		Rule: RuleSpec{Name: "median"},
	})
	var rounds []RoundRecord
	res, err := Execute(spec, func(r RoundRecord) { rounds = append(rounds, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "consensus" {
		t.Fatalf("expected consensus, got %+v", res)
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Fatalf("winner %d not an initial value", res.Winner)
	}
	if res.WinnerCount != 1000 {
		t.Fatalf("winner count %d != n", res.WinnerCount)
	}
	// R rounds yield R+1 records: the initial state plus one per round.
	if len(rounds) != res.Rounds+1 {
		t.Fatalf("got %d round records, want %d", len(rounds), res.Rounds+1)
	}
	for i, r := range rounds {
		if r.Round != i || r.N != 1000 || r.Support < 1 || r.Support > 2 || r.LeaderCount < 500 {
			t.Fatalf("bad round record %d: %+v", i, r)
		}
	}
	// Determinism: same spec, same trajectory.
	res2, err := Execute(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("identical specs diverged: %+v vs %+v", res, res2)
	}
}

// TestExecuteBadEngineCombination: an invalid engine/state pairing must
// surface as an error, not a panic.
func TestExecuteBadEngineCombination(t *testing.T) {
	spec := medianSpec(1, MedianSpec{
		Init:   InitSpec{Kind: "distinct", N: 100}, // 100 distinct values
		Rule:   RuleSpec{Name: "median"},
		Engine: "twobin", // needs <= 2 values
	})
	if _, err := Execute(spec, nil, nil); err == nil {
		t.Fatal("expected an error for twobin on 100 distinct values")
	}
}

// TestEngineDescriptors: the registry serves one self-describing
// descriptor per kind, sorted by kind and stable across calls (the
// enum lists come from the live registries, not registration order).
func TestEngineDescriptors(t *testing.T) {
	ds := engine.Descriptors()
	if len(ds) < 4 {
		t.Fatalf("expected at least 4 registered kinds, got %d", len(ds))
	}
	kinds := make([]string, len(ds))
	for i, d := range ds {
		kinds[i] = d.Kind
	}
	want := []string{KindExact, KindGossip, KindMedian, KindMultidim, KindRobust}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("descriptor kinds %v, want sorted %v", kinds, want)
	}
	if !reflect.DeepEqual(ds, engine.Descriptors()) {
		t.Fatal("descriptors must be stable across calls")
	}
	for _, d := range ds {
		if d.Summary == "" || len(d.Params) == 0 {
			t.Fatalf("kind %s descriptor is not self-describing: %+v", d.Kind, d)
		}
		if (d.Kind == KindMedian) != d.Default {
			t.Fatalf("exactly the median kind must be the default, got %+v", d)
		}
	}
}

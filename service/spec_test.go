package service

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/adversary"
	"repro/consensus"
	"repro/rules"
)

// ruleParamsFor supplies the parameters a registered rule needs to build.
func ruleParamsFor(name string) rules.Params {
	if name == "kmedian" {
		return rules.Params{"k": 2}
	}
	return nil
}

// advParamsFor supplies the parameters a registered adversary needs.
func advParamsFor(name string) adversary.Params {
	switch name {
	case "balancer":
		return adversary.Params{"low": 1, "high": 2}
	case "reviver":
		return adversary.Params{"target": 1, "delay": 2}
	case "flipper":
		return adversary.Params{"a": 1, "b": 2}
	case "hider":
		return adversary.Params{"held": 1}
	default:
		return nil
	}
}

// TestSpecRoundTripRules JSON round-trips a spec for every registered rule
// and checks the canonical hash survives the trip.
func TestSpecRoundTripRules(t *testing.T) {
	for _, name := range rules.Names() {
		spec := Spec{
			Init: consensus.InitSpec{Kind: "uniform", N: 100, M: 4, Seed: 7},
			Rule: RuleSpec{Name: name, Params: ruleParamsFor(name)},
			Seed: 3,
		}
		roundTrip(t, "rule "+name, spec)
	}
}

// TestSpecRoundTripAdversaries does the same for every registered adversary.
func TestSpecRoundTripAdversaries(t *testing.T) {
	for _, name := range adversary.Names() {
		spec := Spec{
			Init: consensus.InitSpec{Kind: "twovalue", N: 100},
			Rule: RuleSpec{Name: "median"},
			Adversary: &AdversarySpec{
				Name:   name,
				Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
				Params: advParamsFor(name),
			},
			Seed: 3,
		}
		roundTrip(t, "adversary "+name, spec)
	}
}

// TestSpecRoundTripEngines does the same for every registered engine name.
func TestSpecRoundTripEngines(t *testing.T) {
	for _, name := range consensus.EngineNames() {
		spec := Spec{
			Init:   consensus.InitSpec{Kind: "twovalue", N: 64},
			Rule:   RuleSpec{Name: "median"},
			Engine: name,
			Seed:   3,
		}
		roundTrip(t, "engine "+name, spec)
	}
}

func roundTrip(t *testing.T, label string, spec Spec) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("%s: validate: %v", label, err)
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	var back Spec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("%s: unmarshal: %v", label, err)
	}
	if !reflect.DeepEqual(spec.Normalize(), back.Normalize()) {
		t.Fatalf("%s: round trip changed the spec:\n  in:  %+v\n  out: %+v", label, spec, back)
	}
	h1, err := spec.Hash()
	if err != nil {
		t.Fatalf("%s: hash: %v", label, err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatalf("%s: hash after round trip: %v", label, err)
	}
	if h1 != h2 {
		t.Fatalf("%s: hash changed across JSON round trip: %s != %s", label, h1, h2)
	}
	if _, err := back.Config(); err != nil {
		t.Fatalf("%s: config after round trip: %v", label, err)
	}
}

// TestCanonicalHash pins the normalization rules: defaulted fields do not
// change the hash, while semantically different specs do.
func TestCanonicalHash(t *testing.T) {
	base := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
		Seed: 5,
	}
	explicit := base
	explicit.Engine = "auto"
	explicit.Timing = "before-round"
	explicit.Rule.Params = rules.Params{}
	explicit.Workers = 1 // one worker == sequential == the default

	h1 := mustHash(t, base)
	h2 := mustHash(t, explicit)
	if h1 != h2 {
		t.Fatalf("defaulted and explicit specs must hash equal: %s != %s", h1, h2)
	}

	other := base
	other.Seed = 6
	if mustHash(t, other) == h1 {
		t.Fatal("different seeds must hash differently")
	}
	otherRule := base
	otherRule.Rule = RuleSpec{Name: "voter"}
	if mustHash(t, otherRule) == h1 {
		t.Fatal("different rules must hash differently")
	}

	// Init defaults canonicalize too: spelling out twovalue's implied
	// n_low/low/high (or uniform's clamped m) must not change the hash.
	explicitInit := base
	explicitInit.Init = consensus.InitSpec{Kind: "twovalue", N: 100, NLow: 50, Low: 1, High: 2}
	if mustHash(t, explicitInit) != h1 {
		t.Fatal("implied and explicit twovalue defaults must hash equal")
	}
	u1 := Spec{Init: consensus.InitSpec{Kind: "uniform", N: 50, Seed: 3}, Rule: RuleSpec{Name: "median"}}
	u2 := Spec{Init: consensus.InitSpec{Kind: "uniform", N: 50, M: 50, Seed: 3}, Rule: RuleSpec{Name: "median"}}
	if mustHash(t, u1) != mustHash(t, u2) {
		t.Fatal("uniform m=0 and m=n must hash equal")
	}
}

func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSeedDerivation: seedless specs still run deterministically, with a
// seed derived from the canonical hash.
func TestSeedDerivation(t *testing.T) {
	spec := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	}
	s1, err := spec.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := spec.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == 0 || s1 != s2 {
		t.Fatalf("derived seed must be stable and non-zero, got %d and %d", s1, s2)
	}
	seeded := spec
	seeded.Seed = 42
	s3, err := seeded.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 42 {
		t.Fatalf("explicit seed must win, got %d", s3)
	}
}

// TestSpecValidateErrors rejects unknown registry references and bad
// parameters.
func TestSpecValidateErrors(t *testing.T) {
	bad := []Spec{
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "nope"}},
		{Init: consensus.InitSpec{Kind: "nope", N: 100}, Rule: RuleSpec{Name: "median"}},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 0}, Rule: RuleSpec{Name: "median"}},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median", Params: rules.Params{"z": 1}}},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, Engine: "warp"},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, Timing: "never"},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, MaxRounds: -1},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"},
			Adversary: &AdversarySpec{Name: "balancer", Budget: adversary.BudgetSpec{Kind: "cubic", Factor: 1}}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

// TestExecuteConverges runs a small median-rule spec end to end.
func TestExecuteConverges(t *testing.T) {
	spec := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 1000},
		Rule: RuleSpec{Name: "median"},
		Seed: 1,
	}
	var rounds []RoundRecord
	res, err := Execute(spec, func(r RoundRecord) { rounds = append(rounds, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "consensus" {
		t.Fatalf("expected consensus, got %+v", res)
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Fatalf("winner %d not an initial value", res.Winner)
	}
	if res.WinnerCount != 1000 {
		t.Fatalf("winner count %d != n", res.WinnerCount)
	}
	// R rounds yield R+1 records: the initial state plus one per round.
	if len(rounds) != res.Rounds+1 {
		t.Fatalf("got %d round records, want %d", len(rounds), res.Rounds+1)
	}
	for i, r := range rounds {
		if r.Round != i || r.N != 1000 || r.Support < 1 || r.Support > 2 || r.LeaderCount < 500 {
			t.Fatalf("bad round record %d: %+v", i, r)
		}
	}
	// Determinism: same spec, same trajectory.
	res2, err := Execute(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Fatalf("identical specs diverged: %+v vs %+v", res, res2)
	}
}

// TestExecuteBadEngineCombination: an invalid engine/state pairing must
// surface as an error, not a panic.
func TestExecuteBadEngineCombination(t *testing.T) {
	spec := Spec{
		Init:   consensus.InitSpec{Kind: "distinct", N: 100}, // 100 distinct values
		Rule:   RuleSpec{Name: "median"},
		Engine: "twobin", // needs <= 2 values
		Seed:   1,
	}
	if _, err := Execute(spec, nil, nil); err == nil {
		t.Fatal("expected an error for twobin on 100 distinct values")
	}
}

package service

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/adversary"
	"repro/consensus"
	"repro/multidim"
	"repro/robust"
	"repro/rules"
)

// ruleParamsFor supplies the parameters a registered rule needs to build.
func ruleParamsFor(name string) rules.Params {
	if name == "kmedian" {
		return rules.Params{"k": 2}
	}
	return nil
}

// advParamsFor supplies the parameters a registered adversary needs.
func advParamsFor(name string) adversary.Params {
	switch name {
	case "balancer":
		return adversary.Params{"low": 1, "high": 2}
	case "reviver":
		return adversary.Params{"target": 1, "delay": 2}
	case "flipper":
		return adversary.Params{"a": 1, "b": 2}
	case "hider":
		return adversary.Params{"held": 1}
	default:
		return nil
	}
}

// TestSpecRoundTripRules JSON round-trips a spec for every registered rule
// and checks the canonical hash survives the trip.
func TestSpecRoundTripRules(t *testing.T) {
	for _, name := range rules.Names() {
		spec := Spec{
			Init: consensus.InitSpec{Kind: "uniform", N: 100, M: 4, Seed: 7},
			Rule: RuleSpec{Name: name, Params: ruleParamsFor(name)},
			Seed: 3,
		}
		roundTrip(t, "rule "+name, spec)
	}
}

// TestSpecRoundTripAdversaries does the same for every registered adversary.
func TestSpecRoundTripAdversaries(t *testing.T) {
	for _, name := range adversary.Names() {
		spec := Spec{
			Init: consensus.InitSpec{Kind: "twovalue", N: 100},
			Rule: RuleSpec{Name: "median"},
			Adversary: &AdversarySpec{
				Name:   name,
				Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
				Params: advParamsFor(name),
			},
			Seed: 3,
		}
		roundTrip(t, "adversary "+name, spec)
	}
}

// TestSpecRoundTripEngines does the same for every registered engine name.
func TestSpecRoundTripEngines(t *testing.T) {
	for _, name := range consensus.EngineNames() {
		spec := Spec{
			Init:   consensus.InitSpec{Kind: "twovalue", N: 64},
			Rule:   RuleSpec{Name: "median"},
			Engine: name,
			Seed:   3,
		}
		roundTrip(t, "engine "+name, spec)
	}
}

func roundTrip(t *testing.T, label string, spec Spec) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatalf("%s: validate: %v", label, err)
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	var back Spec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("%s: unmarshal: %v", label, err)
	}
	if !reflect.DeepEqual(spec.Normalize(), back.Normalize()) {
		t.Fatalf("%s: round trip changed the spec:\n  in:  %+v\n  out: %+v", label, spec, back)
	}
	h1, err := spec.Hash()
	if err != nil {
		t.Fatalf("%s: hash: %v", label, err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatalf("%s: hash after round trip: %v", label, err)
	}
	if h1 != h2 {
		t.Fatalf("%s: hash changed across JSON round trip: %s != %s", label, h1, h2)
	}
	// Only the median kind materializes a consensus.Config; the other
	// families dispatch through Execute.
	if k := spec.Normalize().Kind; k == KindMedian {
		if _, err := back.Config(); err != nil {
			t.Fatalf("%s: config after round trip: %v", label, err)
		}
	}
}

// TestCanonicalHash pins the normalization rules: defaulted fields do not
// change the hash, while semantically different specs do.
func TestCanonicalHash(t *testing.T) {
	base := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
		Seed: 5,
	}
	explicit := base
	explicit.Engine = "auto"
	explicit.Timing = "before-round"
	explicit.Rule.Params = rules.Params{}
	explicit.Workers = 1 // one worker == sequential == the default

	h1 := mustHash(t, base)
	h2 := mustHash(t, explicit)
	if h1 != h2 {
		t.Fatalf("defaulted and explicit specs must hash equal: %s != %s", h1, h2)
	}

	other := base
	other.Seed = 6
	if mustHash(t, other) == h1 {
		t.Fatal("different seeds must hash differently")
	}
	otherRule := base
	otherRule.Rule = RuleSpec{Name: "voter"}
	if mustHash(t, otherRule) == h1 {
		t.Fatal("different rules must hash differently")
	}

	// Init defaults canonicalize too: spelling out twovalue's implied
	// n_low/low/high (or uniform's clamped m) must not change the hash.
	explicitInit := base
	explicitInit.Init = consensus.InitSpec{Kind: "twovalue", N: 100, NLow: 50, Low: 1, High: 2}
	if mustHash(t, explicitInit) != h1 {
		t.Fatal("implied and explicit twovalue defaults must hash equal")
	}
	u1 := Spec{Init: consensus.InitSpec{Kind: "uniform", N: 50, Seed: 3}, Rule: RuleSpec{Name: "median"}}
	u2 := Spec{Init: consensus.InitSpec{Kind: "uniform", N: 50, M: 50, Seed: 3}, Rule: RuleSpec{Name: "median"}}
	if mustHash(t, u1) != mustHash(t, u2) {
		t.Fatal("uniform m=0 and m=n must hash equal")
	}
}

// TestSpecRoundTripMultidim round-trips a multidim spec for every
// registered init kind and adversary strategy.
func TestSpecRoundTripMultidim(t *testing.T) {
	for _, kind := range multidim.InitKinds() {
		spec := Spec{
			Kind:     KindMultidim,
			Seed:     3,
			Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: kind, N: 64, D: 2, Seed: 7}},
		}
		roundTrip(t, "multidim init "+kind, spec)
	}
	for _, name := range multidim.AdversaryNames() {
		spec := Spec{
			Kind: KindMultidim,
			Seed: 3,
			Multidim: &MultidimSpec{
				Init:      multidim.InitSpec{Kind: "distinct", N: 64, D: 3},
				Adversary: &MultidimAdversarySpec{Name: name, Params: multidim.Params{"t": 2}},
			},
		}
		roundTrip(t, "multidim adversary "+name, spec)
	}
}

// TestSpecRoundTripRobust round-trips a robust spec for every registered
// mode and every scalar init kind.
func TestSpecRoundTripRobust(t *testing.T) {
	for _, mode := range robust.Modes() {
		spec := Spec{
			Kind:   KindRobust,
			Init:   consensus.InitSpec{Kind: "twovalue", N: 100},
			Seed:   3,
			Robust: &RobustSpec{LossProb: 0.25, Crashes: 5, Mode: mode},
		}
		roundTrip(t, "robust mode "+mode, spec)
	}
	for _, kind := range consensus.InitKinds() {
		init := consensus.InitSpec{Kind: kind, N: 100, Seed: 5}
		if kind == "blocks" {
			init = consensus.InitSpec{Kind: kind, Counts: []int64{60, 40}}
		}
		spec := Spec{Kind: KindRobust, Init: init, Seed: 3}
		roundTrip(t, "robust init "+kind, spec)
	}
}

// TestCanonicalHashKinds pins the union's normalization rules: the implied
// median kind and the explicit one hash equal, families hash apart, and
// each family's defaulted payload fields hash like their explicit forms.
func TestCanonicalHashKinds(t *testing.T) {
	base := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
		Seed: 5,
	}
	explicit := base
	explicit.Kind = KindMedian
	if mustHash(t, base) != mustHash(t, explicit) {
		t.Fatal("implied and explicit median kind must hash equal")
	}

	robustSpec := Spec{Kind: KindRobust, Init: base.Init, Seed: 5}
	if mustHash(t, robustSpec) == mustHash(t, base) {
		t.Fatal("robust and median specs over the same init must hash differently")
	}
	// A nil robust payload and the explicit fault-free responsive payload
	// describe the same run.
	explicitRobust := robustSpec
	explicitRobust.Robust = &RobustSpec{Mode: "responsive"}
	if mustHash(t, robustSpec) != mustHash(t, explicitRobust) {
		t.Fatal("nil and explicit default robust payloads must hash equal")
	}

	// Multidim init defaults canonicalize: d=0 means 1, m=0 means n.
	m1 := Spec{Kind: KindMultidim, Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: "random", N: 50}}, Seed: 5}
	m2 := Spec{Kind: KindMultidim, Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: "random", N: 50, D: 1, M: 50}}, Seed: 5}
	if mustHash(t, m1) != mustHash(t, m2) {
		t.Fatal("implied and explicit multidim init defaults must hash equal")
	}
	m3 := Spec{Kind: KindMultidim, Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: "random", N: 50, D: 2}}, Seed: 5}
	if mustHash(t, m1) == mustHash(t, m3) {
		t.Fatal("different dimensions must hash differently")
	}
}

// TestValidateKindMixing rejects specs that mix family fields.
func TestValidateKindMixing(t *testing.T) {
	bad := []Spec{
		// median spec with a foreign payload
		{Init: consensus.InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "median"},
			Robust: &RobustSpec{}},
		// multidim with scalar init / rule / engine
		{Kind: KindMultidim, Init: consensus.InitSpec{Kind: "twovalue", N: 10},
			Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: "distinct", N: 10}}},
		{Kind: KindMultidim, Rule: RuleSpec{Name: "median"},
			Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: "distinct", N: 10}}},
		{Kind: KindMultidim, Engine: "ball",
			Multidim: &MultidimSpec{Init: multidim.InitSpec{Kind: "distinct", N: 10}}},
		// multidim without its payload, or with a bad adversary
		{Kind: KindMultidim},
		{Kind: KindMultidim, Multidim: &MultidimSpec{
			Init:      multidim.InitSpec{Kind: "distinct", N: 10},
			Adversary: &MultidimAdversarySpec{Name: "nope"}}},
		// robust with median knobs or bad payloads
		{Kind: KindRobust, Init: consensus.InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "median"}},
		{Kind: KindRobust, Init: consensus.InitSpec{Kind: "twovalue", N: 10}, AlmostSlack: 3},
		{Kind: KindRobust, Init: consensus.InitSpec{Kind: "twovalue", N: 10},
			Robust: &RobustSpec{LossProb: 1.5}},
		{Kind: KindRobust, Init: consensus.InitSpec{Kind: "twovalue", N: 10},
			Robust: &RobustSpec{Crashes: 10}},
		{Kind: KindRobust, Init: consensus.InitSpec{Kind: "twovalue", N: 10},
			Robust: &RobustSpec{Mode: "quantum"}},
		// unknown kind
		{Kind: "tetrahedral", Init: consensus.InitSpec{Kind: "twovalue", N: 10}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad kind-mix spec %d validated: %+v", i, spec)
		}
	}
}

// TestExecuteMultidimDeterminism: same multidim spec, same result and
// record stream — the cache-determinism contract for the new kind.
func TestExecuteMultidimDeterminism(t *testing.T) {
	spec := Spec{
		Kind: KindMultidim,
		Seed: 11,
		Multidim: &MultidimSpec{
			Init: multidim.InitSpec{Kind: "random", N: 400, D: 2, M: 8, Seed: 11},
		},
	}
	var recs1, recs2 []RoundRecord
	res1, err := Execute(spec, func(r RoundRecord) { recs1 = append(recs1, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Execute(spec, func(r RoundRecord) { recs2 = append(recs2, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("multidim runs diverged: %+v vs %+v", res1, res2)
	}
	if !reflect.DeepEqual(recs1, recs2) {
		t.Fatal("multidim record streams diverged")
	}
	if res1.Reason != "consensus" || len(res1.WinnerPoint) != 2 || res1.WinnerCount != 400 {
		t.Fatalf("unexpected multidim result: %+v", res1)
	}
	if len(recs1) != res1.Rounds+1 {
		t.Fatalf("got %d records, want %d", len(recs1), res1.Rounds+1)
	}
	if recs1[0].Round != 0 || recs1[0].N != 400 || len(recs1[0].LeaderPoint) != 2 {
		t.Fatalf("bad initial record: %+v", recs1[0])
	}
}

// TestExecuteRobustDeterminism: the robust kind is deterministic too, and
// reports parallel-time rounds with one record per round.
func TestExecuteRobustDeterminism(t *testing.T) {
	spec := Spec{
		Kind:   KindRobust,
		Init:   consensus.InitSpec{Kind: "twovalue", N: 600},
		Seed:   13,
		Robust: &RobustSpec{LossProb: 0.1, Crashes: 6, Mode: "silent"},
	}
	var recs []RoundRecord
	res1, err := Execute(spec, func(r RoundRecord) { recs = append(recs, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Execute(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("robust runs diverged: %+v vs %+v", res1, res2)
	}
	if res1.Reason != "consensus" || res1.Steps == 0 || res1.Steps != res1.Rounds*600 {
		t.Fatalf("unexpected robust result: %+v", res1)
	}
	if len(recs) != res1.Rounds+1 {
		t.Fatalf("got %d records, want %d", len(recs), res1.Rounds+1)
	}
	if recs[0].Round != 0 || recs[0].Support != 2 {
		t.Fatalf("bad initial record: %+v", recs[0])
	}
}

func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSeedDerivation: seedless specs still run deterministically, with a
// seed derived from the canonical hash.
func TestSeedDerivation(t *testing.T) {
	spec := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	}
	s1, err := spec.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := spec.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == 0 || s1 != s2 {
		t.Fatalf("derived seed must be stable and non-zero, got %d and %d", s1, s2)
	}
	seeded := spec
	seeded.Seed = 42
	s3, err := seeded.EffectiveSeed()
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 42 {
		t.Fatalf("explicit seed must win, got %d", s3)
	}
}

// TestSpecValidateErrors rejects unknown registry references and bad
// parameters.
func TestSpecValidateErrors(t *testing.T) {
	bad := []Spec{
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "nope"}},
		{Init: consensus.InitSpec{Kind: "nope", N: 100}, Rule: RuleSpec{Name: "median"}},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 0}, Rule: RuleSpec{Name: "median"}},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median", Params: rules.Params{"z": 1}}},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, Engine: "warp"},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, Timing: "never"},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"}, MaxRounds: -1},
		{Init: consensus.InitSpec{Kind: "twovalue", N: 100}, Rule: RuleSpec{Name: "median"},
			Adversary: &AdversarySpec{Name: "balancer", Budget: adversary.BudgetSpec{Kind: "cubic", Factor: 1}}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

// TestExecuteConverges runs a small median-rule spec end to end.
func TestExecuteConverges(t *testing.T) {
	spec := Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 1000},
		Rule: RuleSpec{Name: "median"},
		Seed: 1,
	}
	var rounds []RoundRecord
	res, err := Execute(spec, func(r RoundRecord) { rounds = append(rounds, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "consensus" {
		t.Fatalf("expected consensus, got %+v", res)
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Fatalf("winner %d not an initial value", res.Winner)
	}
	if res.WinnerCount != 1000 {
		t.Fatalf("winner count %d != n", res.WinnerCount)
	}
	// R rounds yield R+1 records: the initial state plus one per round.
	if len(rounds) != res.Rounds+1 {
		t.Fatalf("got %d round records, want %d", len(rounds), res.Rounds+1)
	}
	for i, r := range rounds {
		if r.Round != i || r.N != 1000 || r.Support < 1 || r.Support > 2 || r.LeaderCount < 500 {
			t.Fatalf("bad round record %d: %+v", i, r)
		}
	}
	// Determinism: same spec, same trajectory.
	res2, err := Execute(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("identical specs diverged: %+v vs %+v", res, res2)
	}
}

// TestExecuteBadEngineCombination: an invalid engine/state pairing must
// surface as an error, not a panic.
func TestExecuteBadEngineCombination(t *testing.T) {
	spec := Spec{
		Init:   consensus.InitSpec{Kind: "distinct", N: 100}, // 100 distinct values
		Rule:   RuleSpec{Name: "median"},
		Engine: "twobin", // needs <= 2 values
		Seed:   1,
	}
	if _, err := Execute(spec, nil, nil); err == nil {
		t.Fatal("expected an error for twobin on 100 distinct values")
	}
}

package service

import (
	"sync"
	"time"
)

// tokenBucket is a minimal token-bucket rate limiter for the HTTP submit
// endpoints: rate tokens per second, bucket capped at burst. A nil bucket
// (rate 0) admits everything.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket returns nil when rate <= 0 (rate limiting disabled).
func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfter reports how long until the next whole token refills — the
// bucket's actual deficit, not a flat guess. A drained burst means the
// next token can be several periods out even at rates >= 1; callers clamp
// the Retry-After hint to >= 1s themselves. Zero for a nil (disabled) or
// currently-admitting bucket.
func (b *tokenBucket) retryAfter() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// refillLocked credits tokens for the time since the last refill; callers
// hold b.mu.
func (b *tokenBucket) refillLocked() {
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

package service

import (
	"sync"
	"time"
)

// tokenBucket is a minimal token-bucket rate limiter for the HTTP submit
// endpoints: rate tokens per second, bucket capped at burst. A nil bucket
// (rate 0) admits everything.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket returns nil when rate <= 0 (rate limiting disabled).
func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

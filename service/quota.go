package service

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
)

// Quota is one bearer token's submit budget: Rate requests per second
// with a burst of Burst. Tokens in Options.Quotas authenticate the
// mutating endpoints like Options.AuthToken does, but each meters its own
// bucket instead of sharing the global Options.SubmitRate limiter.
type Quota struct {
	Rate  float64 `json:"rate"`
	Burst int     `json:"burst"`
}

// LoadQuotaFile reads a token → Quota map from a JSON file:
//
//	{"team-a-token": {"rate": 5, "burst": 10},
//	 "batch-token":  {"rate": 0.5, "burst": 2}}
//
// consensusd loads this behind the -quota-file flag.
func LoadQuotaFile(path string) (map[string]Quota, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var quotas map[string]Quota
	if err := json.Unmarshal(data, &quotas); err != nil {
		return nil, fmt.Errorf("service: quota file %s: %w", path, err)
	}
	for tok, q := range quotas {
		if tok == "" {
			return nil, fmt.Errorf("service: quota file %s: empty token", path)
		}
		if q.Rate <= 0 {
			return nil, fmt.Errorf("service: quota file %s: token %q needs a positive rate", path, tok)
		}
	}
	return quotas, nil
}

// lookupQuota resolves a bearer token to its per-token bucket. Every
// configured token is compared in constant time so the scan's timing does
// not narrow down which token prefix matched.
func (s *Service) lookupQuota(tok string) (*tokenBucket, bool) {
	var match *tokenBucket
	for t, b := range s.quotas {
		if subtle.ConstantTimeCompare([]byte(tok), []byte(t)) == 1 {
			match = b
		}
	}
	return match, match != nil
}

// quotaBucketKey carries the authenticated token's bucket from requireAuth
// to admitSubmit on the request context.
type quotaBucketKey struct{}

func withQuotaBucket(ctx context.Context, b *tokenBucket) context.Context {
	return context.WithValue(ctx, quotaBucketKey{}, b)
}

func quotaBucketFrom(ctx context.Context) (*tokenBucket, bool) {
	b, ok := ctx.Value(quotaBucketKey{}).(*tokenBucket)
	return b, ok
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/obs"
)

func obsSpec(seed uint64) Spec {
	return Spec{Seed: seed, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 2000},
		Rule: RuleSpec{Name: "median"},
	}}
}

// TestRunTimingRecorded: a finished job's result carries the lifecycle
// timing breakdown, and a cache hit serves the original run's timing.
func TestRunTimingRecorded(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	defer s.Close()
	first, err := s.Submit(obsSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, first.ID)
	if final.Status != StatusDone || final.Result == nil {
		t.Fatalf("run failed: %+v", final)
	}
	tm := final.Result.Timing
	if tm == nil {
		t.Fatal("finished run has no Timing")
	}
	if tm.RunSeconds < 0 || tm.QueueWaitSeconds < 0 {
		t.Fatalf("negative timing: %+v", tm)
	}
	if tm.TotalSeconds+1e-9 < tm.RunSeconds {
		t.Fatalf("total %.9fs < run %.9fs", tm.TotalSeconds, tm.RunSeconds)
	}
	if tm.RecordsEmitted != final.Records {
		t.Fatalf("timing records %d, view records %d", tm.RecordsEmitted, final.Records)
	}
	if final.Result.Rounds > 0 && tm.RunSeconds > 0 && tm.RoundsPerSec <= 0 {
		t.Fatalf("rounds/sec not derived: %+v", tm)
	}
	second, err := s.Submit(obsSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Result == nil || second.Result.Timing == nil {
		t.Fatalf("cache hit lost the timing: %+v", second)
	}
	if *second.Result.Timing != *tm {
		t.Fatalf("cache hit timing %+v, want the original run's %+v", second.Result.Timing, tm)
	}
}

// TestMetricsExpositionLint drives the service over HTTP, then runs the
// Prometheus text exposition through the obs.Lint parser: every family
// must have a paired HELP/TYPE, no duplicate names or samples, coherent
// histograms — and the per-kind latency histograms promised by the API
// must actually be there.
func TestMetricsExpositionLint(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submitRun(t, srv.URL, obsSpec(3))
	// One unmatched route, so the "unmatched" label value is linted too.
	resp, err := http.Get(srv.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A small batch populates the batch counters and a second spec kind.
	if err := s.RunBatch(context.Background(), mustExpand(t, s, BatchRequest{
		Template: obsSpec(0),
		Axes:     []Axis{{Param: "seed", Values: []float64{1, 2}}},
	}), func(BatchCellRecord) error { return nil }); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if errs := obs.Lint(bytes.NewReader(body)); len(errs) != 0 {
		t.Fatalf("exposition lint failed:\n%v\n---\n%s", errs, text)
	}
	for _, want := range []string{
		`consensusd_run_duration_seconds_bucket{kind="median",le="+Inf"}`,
		`consensusd_run_duration_seconds_count{kind="median"}`,
		"consensusd_run_queue_wait_seconds_count",
		`consensusd_rounds_per_run_count{kind="median"}`,
		`consensusd_rounds_total{kind="median"}`,
		`consensusd_http_request_duration_seconds_bucket{route="POST /v1/runs",status="202",le=`,
		`route="unmatched"`,
		"consensusd_build_info{",
		"consensusd_uptime_seconds",
		"consensusd_events_published_total",
		"# TYPE consensusd_jobs_submitted_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Cross-format consistency: the JSON view renders from the same walk,
	// so the scalar counters and the histogram counts must agree.
	var m map[string]any
	jresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(jresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if _, ok := m["jobs_submitted"]; !ok {
		t.Error("JSON view lost jobs_submitted")
	}
	hist, ok := m["run_duration_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("JSON view has no run_duration_seconds histogram: %T", m["run_duration_seconds"])
	}
	med, ok := hist["kind=median"].(map[string]any)
	if !ok {
		t.Fatalf("run_duration_seconds has no kind=median sample: %v", hist)
	}
	count, _ := med["count"].(float64)
	wantRuns := m["jobs_completed"].(float64) - m["cache_hits"].(float64)
	if count != wantRuns {
		t.Errorf("run_duration count %v, want %v (completed minus cache hits)", count, wantRuns)
	}
}

func mustExpand(t *testing.T, s *Service, req BatchRequest) []BatchCell {
	t.Helper()
	cells, err := s.ExpandBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func submitRun(t *testing.T, baseURL string, spec Spec) JobView {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/runs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRequestIDMiddleware: a client-supplied X-Request-Id is echoed on the
// response, recorded on the job, and a missing one is generated.
func TestRequestIDMiddleware(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	buf, _ := json.Marshal(obsSpec(5))
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/runs", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-abc-123" {
		t.Fatalf("response X-Request-Id = %q, want the propagated req-abc-123", got)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.RequestID != "req-abc-123" {
		t.Fatalf("job request_id = %q, want req-abc-123", v.RequestID)
	}
	if got, err := s.Get(v.ID); err != nil || got.RequestID != "req-abc-123" {
		t.Fatalf("job lost its request id: %+v, %v", got, err)
	}

	// Without a client id, the middleware generates one.
	resp2, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("generated X-Request-Id = %q, want 16 hex chars", got)
	}
}

// TestEventsStreamE2E subscribes to GET /v1/events over HTTP, submits a
// run, and must observe its complete lifecycle — submitted, started, done,
// in that order, all carrying the submission's request id.
func TestEventsStreamE2E(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	events := make(chan obs.Event, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev obs.Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				events <- ev
			}
		}
	}()
	// Give the subscription a moment to attach before submitting, so the
	// lifecycle is live-streamed, not replayed.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().EventSubscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("event subscriber never attached")
		}
		time.Sleep(2 * time.Millisecond)
	}

	buf, _ := json.Marshal(obsSpec(7))
	sreq, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/runs", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	sreq.Header.Set("X-Request-Id", "evt-req-1")
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(sresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()

	var seen []string
	var lastSeq uint64
	timeout := time.After(10 * time.Second)
	for len(seen) == 0 || seen[len(seen)-1] != "job.done" {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream closed early; saw %v", seen)
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("sequence numbers not increasing: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Job != view.ID {
				continue
			}
			if ev.RequestID != "evt-req-1" {
				t.Fatalf("event %s lost the request id: %+v", ev.Type, ev)
			}
			if ev.Kind != "median" {
				t.Fatalf("event %s lost the kind: %+v", ev.Type, ev)
			}
			seen = append(seen, ev.Type)
		case <-timeout:
			t.Fatalf("lifecycle incomplete after 10s; saw %v", seen)
		}
	}
	want := []string{"job.submitted", "job.started", "job.done"}
	if len(seen) != len(want) {
		t.Fatalf("lifecycle events %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("lifecycle events %v, want %v", seen, want)
		}
	}

	// Disconnecting must detach the subscriber.
	cancel()
	deadline = time.Now().Add(5 * time.Second)
	for s.Metrics().EventSubscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber still attached after disconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEventsSlowConsumer: a subscriber that never reads loses events —
// counted on the subscriber and on the bus-wide dropped counter — while
// the service keeps running at full speed.
func TestEventsSlowConsumer(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	defer s.Close()
	sub := s.Events(1, 0) // deliberately tiny buffer, never read
	if sub == nil {
		t.Fatal("subscribe failed")
	}
	defer sub.Close()
	for i := 0; i < 8; i++ {
		v, err := s.Submit(obsSpec(uint64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, v.ID)
	}
	if sub.Dropped() == 0 {
		t.Fatal("slow consumer lost no events despite a 1-event buffer")
	}
	m := s.Metrics()
	if m.EventsDropped != sub.Dropped() {
		t.Fatalf("events_dropped = %d, subscriber dropped %d", m.EventsDropped, sub.Dropped())
	}
	if m.EventsPublished == 0 {
		t.Fatal("events_published stayed 0")
	}
}

// TestEventsReplay: ?replay=N serves recent ring-buffer history to a
// subscriber that attaches after the fact.
func TestEventsReplay(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	v := submitRun(t, srv.URL, obsSpec(42))
	waitDone(t, s, v.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/events?replay=64", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	types := map[string]bool{}
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Job == v.ID {
			types[ev.Type] = true
		}
		if types["job.submitted"] && types["job.started"] && types["job.done"] {
			return
		}
	}
	t.Fatalf("replay missed lifecycle events: %v", types)
}

// TestEventsBadReplay rejects a malformed replay parameter.
func TestEventsBadReplay(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/events?replay=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replay=bogus returned %d, want 400", resp.StatusCode)
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug turns

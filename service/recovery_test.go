package service_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/service"
)

// crashDir makes TestCrashRecoveryE2E span real process boundaries: CI
// runs the service test package twice with the same directory, so the
// second invocation reopens a store written — and streams captured — by a
// previous process. Unset, the test covers the same flow in-process with
// a TempDir.
var crashDir = flag.String("crashdir", "", "shared directory for cross-process crash-recovery (CI runs the package twice against it)")

// recoverySpecs is one spec per registered kind, seeded and seedless,
// small enough to finish in milliseconds but long enough to stream
// several records.
var recoverySpecs = []string{
	`{"kind":"median","seed":11,"init":{"kind":"twovalue","n":4000},"rule":{"name":"median"}}`,
	`{"kind":"median","init":{"kind":"twovalue","n":1500},"rule":{"name":"kmedian","params":{"k":2}}}`, // seedless: seed derived from the hash
	`{"kind":"gossip","seed":5,"init":{"kind":"twovalue","n":400},"selector":"drop-value:1"}`,
	`{"kind":"multidim","seed":3,"init":{"kind":"random","n":256,"d":2,"m":3,"seed":9}}`,
	`{"kind":"robust","seed":7,"init":{"kind":"twovalue","n":200},"loss_prob":0.1}`,
}

// postSpec submits a raw spec body and decodes the JobView.
func postSpec(t *testing.T, url, spec string) service.JobView {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d: %s", spec, resp.StatusCode, body)
	}
	var view service.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("submit response %s: %v", body, err)
	}
	return view
}

// streamBytes fetches a run's raw NDJSON stream — the byte-for-byte unit
// of the recovery assertions.
func streamBytes(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/runs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

func waitTerminal(t *testing.T, url, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var view service.JobView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("poll %s: %v", body, err)
		}
		switch view.Status {
		case service.StatusDone:
			return view
		case service.StatusFailed, service.StatusCancelled:
			t.Fatalf("run %s ended %s: %s", id, view.Status, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("run did not finish in time")
	return service.JobView{}
}

func getMetrics(t *testing.T, url string) service.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCrashRecoveryE2E is the acceptance test for the persistent store:
// submit one run per kind against a file-backed service, stop it, reopen
// a fresh service on the same path, and require that resubmitting the
// identical specs is answered entirely from the reloaded cache — born
// done, cache_hit true, no re-execution — with NDJSON streams matching
// the pre-restart streams byte for byte.
func TestCrashRecoveryE2E(t *testing.T) {
	dir := *crashDir
	if dir == "" {
		dir = t.TempDir()
	}
	storePath := filepath.Join(dir, "runs.store")
	streamsDir := filepath.Join(dir, "streams")
	firstProcess := true
	if *crashDir != "" {
		if _, err := os.Stat(storePath); err == nil {
			firstProcess = false // a previous invocation populated the store
		}
	}

	if firstProcess {
		streams := populateAndRestart(t, storePath)
		// Persist the expected streams for a later process (CI mode).
		if err := os.MkdirAll(streamsDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, b := range streams {
			if err := os.WriteFile(filepath.Join(streamsDir, fmt.Sprintf("%d.ndjson", i)), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}

	// Second process (CI): the store and the expected streams were written
	// by a different test-binary invocation.
	want := make([][]byte, len(recoverySpecs))
	for i := range recoverySpecs {
		b, err := os.ReadFile(filepath.Join(streamsDir, fmt.Sprintf("%d.ndjson", i)))
		if err != nil {
			t.Fatalf("first invocation left no expected stream: %v", err)
		}
		want[i] = b
	}
	verifyReloaded(t, storePath, want)
}

// populateAndRestart runs phase one and the in-process restart: execute
// every recovery spec against a store-backed service, capture the
// streams, close the service, reopen the same path and verify the
// reloaded cache serves everything. Returns the captured streams.
func populateAndRestart(t *testing.T, storePath string) [][]byte {
	s := newHTTPService(t, service.Options{Workers: 2, StorePath: storePath})
	ts := httptest.NewServer(s.Handler())
	streams := make([][]byte, len(recoverySpecs))
	ids := make([]string, len(recoverySpecs))
	for i, spec := range recoverySpecs {
		view := postSpec(t, ts.URL, spec)
		if view.CacheHit {
			t.Fatalf("first submission of spec %d cannot be a cache hit", i)
		}
		ids[i] = view.ID
	}
	for i := range recoverySpecs {
		final := waitTerminal(t, ts.URL, ids[i])
		if final.Result == nil {
			t.Fatalf("run %d finished without a result", i)
		}
		streams[i] = streamBytes(t, ts.URL, ids[i])
		if len(bytes.TrimSpace(streams[i])) == 0 {
			t.Fatalf("run %d streamed nothing", i)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.StoreRecordsAppended != int64(len(recoverySpecs)) {
		t.Fatalf("store_records_appended = %d, want %d", m.StoreRecordsAppended, len(recoverySpecs))
	}
	if m.StoreAppendErrors != 0 {
		t.Fatalf("store_append_errors = %d", m.StoreAppendErrors)
	}
	// Stop the daemon. Close drains workers and fsyncs the store; the
	// crash-mid-append case is covered by the store package's truncation
	// and bit-flip recovery tests.
	ts.Close()
	s.Close()

	verifyReloaded(t, storePath, streams)
	return streams
}

// storeFrameSizes walks the raw store file (16-byte header, then frames
// of 4B length + 4B CRC + payload) and returns each frame's on-disk size.
func storeFrameSizes(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for off := 16; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		sizes = append(sizes, int64(8+n))
		off += 8 + n
	}
	return sizes
}

// TestRetentionRestartE2E is the acceptance test for retention GC across a
// restart: a store populated with one run per kind is reopened under a
// -store-max-bytes budget sized to keep only the newest two records. The
// daemon must come up with the store trimmed to the budget, serve the
// retained runs as born-done cache hits, and re-run the dropped ones.
// With -crashdir the populated store comes from a different process.
func TestRetentionRestartE2E(t *testing.T) {
	// Source store: the shared crashdir one when a previous invocation (or
	// process) populated it, else populate our own. Either way the
	// retention phase runs against a private copy so the shared fixture
	// stays intact for other tests.
	src := filepath.Join(*crashDir, "runs.store")
	if *crashDir == "" {
		dir := t.TempDir()
		src = filepath.Join(dir, "runs.store")
		populateAndRestart(t, src)
	} else if _, err := os.Stat(src); err != nil {
		src = filepath.Join(t.TempDir(), "runs.store")
		populateAndRestart(t, src)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "runs.store")
	if err := os.WriteFile(storePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sizes := storeFrameSizes(t, storePath)
	if len(sizes) < len(recoverySpecs) {
		t.Fatalf("store holds %d frames, want >= %d", len(sizes), len(recoverySpecs))
	}
	// Budget exactly the newest two frames. MaxBytes keeps the newest-first
	// suffix that fits, so everything older is dropped at open.
	const keep = 2
	var budget int64
	for _, sz := range sizes[len(sizes)-keep:] {
		budget += sz
	}
	dropped := int64(len(sizes) - keep)

	s := newHTTPService(t, service.Options{Workers: 2, StorePath: storePath, StoreMaxBytes: budget})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Map each recovery spec to its canonical hash via a throwaway
	// in-memory service — hashes are canonical, so they match the
	// store-backed service's.
	hashOf := make(map[string]int, len(recoverySpecs))
	{
		tmp := newHTTPService(t, service.Options{Workers: 2})
		tts := httptest.NewServer(tmp.Handler())
		for i, spec := range recoverySpecs {
			hashOf[postSpec(t, tts.URL, spec).SpecHash] = i
		}
		tts.Close()
		tmp.Close()
	}

	m := getMetrics(t, ts.URL)
	if m.StoreRecordsLoaded != keep {
		t.Fatalf("store_records_loaded = %d under budget %d, want %d", m.StoreRecordsLoaded, budget, keep)
	}
	if m.StoreGCRecordsDropped != dropped {
		t.Fatalf("store_gc_records_dropped = %d, want %d", m.StoreGCRecordsDropped, dropped)
	}
	if m.StoreGCCompactions < 1 {
		t.Fatalf("store_gc_compactions = %d, want >= 1", m.StoreGCCompactions)
	}
	fi, err := os.Stat(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if framed := fi.Size() - 16; framed > budget {
		t.Fatalf("store framed region %d bytes exceeds budget %d after GC", framed, budget)
	}

	// The reloaded history identifies which runs survived the budget.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Runs []service.JobView `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Runs) != keep {
		t.Fatalf("reloaded history lists %d runs under budget, want %d", len(listed.Runs), keep)
	}
	retained := map[int]bool{}
	for _, v := range listed.Runs {
		i, ok := hashOf[v.SpecHash]
		if !ok {
			t.Fatalf("reloaded run %s has unknown spec hash %s", v.ID, v.SpecHash)
		}
		retained[i] = true
	}

	// Retained specs first: they must be born-done cache hits. Submitting
	// them first matters — a cache hit appends nothing, while the re-runs
	// below push the store back over budget and background GC then evicts
	// the oldest entries again.
	for i, spec := range recoverySpecs {
		if !retained[i] {
			continue
		}
		view := postSpec(t, ts.URL, spec)
		if !view.CacheHit || view.Status != service.StatusDone || view.Result == nil {
			t.Fatalf("retained spec %d must be a born-done cache hit: %+v", i, view)
		}
	}
	// The dropped specs re-run and are committed again — the store stays
	// the single source of truth for the next restart.
	for i, spec := range recoverySpecs {
		if retained[i] {
			continue
		}
		view := postSpec(t, ts.URL, spec)
		if view.CacheHit {
			t.Fatalf("dropped spec %d served from cache after GC", i)
		}
		waitTerminal(t, ts.URL, view.ID)
	}
	if m = getMetrics(t, ts.URL); m.StoreRecordsAppended != dropped {
		t.Fatalf("store_records_appended = %d after re-runs, want %d", m.StoreRecordsAppended, dropped)
	}
	// The re-run appends overflow the budget and kick background GC. Its
	// steady state is framed <= budget + compaction threshold (default
	// budget/4): excess below the threshold does not trigger a rewrite.
	slack := budget / 4
	if slack < 1 {
		slack = 1
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err = os.Stat(storePath); err != nil {
			t.Fatal(err)
		}
		if fi.Size()-16 <= budget+slack {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store framed region %d bytes never settled under budget+threshold %d",
				fi.Size()-16, budget+slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verifyReloaded opens a fresh service on an existing store and asserts
// that identical submissions are served from the reloaded cache without
// re-running, byte-identical streams included.
func verifyReloaded(t *testing.T, storePath string, want [][]byte) {
	s := newHTTPService(t, service.Options{Workers: 2, StorePath: storePath})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	m := getMetrics(t, ts.URL)
	if m.StoreRecordsLoaded < int64(len(recoverySpecs)) {
		t.Fatalf("store_records_loaded = %d, want >= %d", m.StoreRecordsLoaded, len(recoverySpecs))
	}

	// The job history survived the restart: the pre-restart runs are
	// listed, done, with their results.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Runs []service.JobView `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Runs) < len(recoverySpecs) {
		t.Fatalf("reloaded history lists %d runs, want >= %d", len(listed.Runs), len(recoverySpecs))
	}
	preIDs := map[string]bool{}
	for _, v := range listed.Runs {
		preIDs[v.ID] = true
		if v.Status != service.StatusDone || v.Result == nil {
			t.Fatalf("reloaded job %s not done-with-result: %+v", v.ID, v)
		}
	}

	for i, spec := range recoverySpecs {
		view := postSpec(t, ts.URL, spec)
		if !view.CacheHit || view.Status != service.StatusDone || view.Result == nil {
			t.Fatalf("spec %d after restart must be a born-done cache hit: %+v", i, view)
		}
		if preIDs[view.ID] {
			t.Fatalf("fresh submission reused reloaded job id %s", view.ID)
		}
		if got := streamBytes(t, ts.URL, view.ID); !bytes.Equal(got, want[i]) {
			t.Fatalf("spec %d stream changed across restart:\n got  %d bytes: %.200s\n want %d bytes: %.200s",
				i, len(got), got, len(want[i]), want[i])
		}
	}

	m = getMetrics(t, ts.URL)
	if m.CacheHits < int64(len(recoverySpecs)) {
		t.Fatalf("cache_hits = %d after resubmission, want >= %d", m.CacheHits, len(recoverySpecs))
	}
	// Nothing re-ran: the cache-hit path never touches a worker, so no
	// record was re-appended to the store by this process.
	if m.StoreRecordsAppended != 0 {
		t.Fatalf("store_records_appended = %d after pure cache hits, want 0", m.StoreRecordsAppended)
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/rng"
)

// BatchRequest is the wire form of a parameter sweep: either a template
// spec plus grid axes (expanded server-side, internal/experiment style) or
// an explicit list of pre-built cell specs. Exactly one of Axes and Specs
// may be non-empty; Reps applies to both.
type BatchRequest struct {
	// Template is the spec every grid cell starts from (axes-mode only).
	Template Spec `json:"template,omitzero"`
	// Axes are expanded as a cartesian product, last axis fastest; each
	// value patches the template field named by Param.
	Axes []Axis `json:"axes,omitempty"`
	// Specs lists explicit cell specs instead of a grid.
	Specs []Spec `json:"specs,omitempty"`
	// Reps repeats every cell with derived per-repetition seeds
	// (0 = 1). See ExpandBatch for the derivation.
	Reps int `json:"reps,omitempty"`
}

// Axis is one sweep dimension: a parameter name and its values.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// batchParams names the template fields an Axis may patch.
var batchParams = map[string]bool{
	"n": true, "m": true, "d": true, "n_low": true, "k": true,
	"seed": true, "max_rounds": true, "almost_slack": true,
	"budget_factor": true, "loss_prob": true, "crashes": true,
}

// BatchCell is one expanded cell of a batch: its grid coordinates and the
// canonical spec it will run.
type BatchCell struct {
	// Index is the cell's position in expansion order.
	Index int `json:"index"`
	// Rep is the repetition number within the grid point.
	Rep int `json:"rep"`
	// Params echoes the axis values that produced the cell (axes-mode).
	Params []float64 `json:"params,omitempty"`
	// Spec is the normalized cell spec; SpecHash its canonical hash.
	Spec     Spec   `json:"spec"`
	SpecHash string `json:"spec_hash"`
}

// BatchCellRecord is one line of the batch NDJSON stream: a cell plus the
// outcome of its run.
type BatchCellRecord struct {
	BatchCell
	// JobID is the job that ran (or had already run) the cell.
	JobID  string `json:"job_id,omitempty"`
	Status Status `json:"status"`
	// CacheHit marks cells answered from the result cache; Coalesced
	// marks cells absorbed by an identical cell earlier in the batch.
	CacheHit  bool       `json:"cache_hit,omitempty"`
	Coalesced bool       `json:"coalesced,omitempty"`
	Result    *RunResult `json:"result,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// BatchLimits bounds batch expansion. Zero values mean unlimited.
type BatchLimits struct {
	// MaxCells caps the number of expanded cells (reps included).
	MaxCells int
	// MaxN caps the population any single cell may materialize.
	MaxN int64
}

// ExpandBatch expands a batch request into canonical, validated cells:
// the cartesian product of the axes applied to the template (or the
// explicit spec list), times Reps repetitions.
//
// Repetition seeding is deterministic so batches are cache-stable: with
// Reps == 1 the cell seeds are left exactly as the template/axes produced
// them, and with Reps > 1 repetition r of cell i runs with seed
// Mix64(Mix64(base) + i·Reps + r), where base is the cell's post-axis
// seed, or a seed derived from the template hash when zero. Pre-mixing
// the base keeps a seed axis from colliding across grid points (raw bases
// differing by exactly (j−i)·Reps would otherwise derive identical rep
// seeds). Init kinds that consume their own seed (uniform, random) follow
// the run seed, mirroring cmd/sweep's historical behavior.
func ExpandBatch(req BatchRequest, limits BatchLimits) ([]BatchCell, error) {
	// maxCells is the absolute expansion ceiling, applied before any
	// multiplication so attacker-sized axes/reps can neither overflow the
	// cell count nor drive a huge allocation; BatchLimits.MaxCells can
	// only tighten it.
	const maxCells = 1 << 20
	reps := req.Reps
	if reps <= 0 {
		reps = 1
	}
	if reps > maxCells {
		return nil, fmt.Errorf("service: batch reps %d exceeds the limit %d", reps, maxCells)
	}
	if len(req.Axes) > 0 && len(req.Specs) > 0 {
		return nil, fmt.Errorf("service: batch request sets both axes and specs")
	}
	points := 1
	for _, ax := range req.Axes {
		if ax.Param == "" || !batchParams[ax.Param] {
			return nil, fmt.Errorf("service: unknown batch axis param %q", ax.Param)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("service: batch axis %q has no values", ax.Param)
		}
		if points > maxCells/len(ax.Values) {
			return nil, fmt.Errorf("service: batch grid too large")
		}
		points *= len(ax.Values)
	}
	if len(req.Specs) > 0 {
		points = len(req.Specs)
	}
	// points, reps <= 2^20 each, so the product cannot overflow.
	total := points * reps
	if total > maxCells {
		return nil, fmt.Errorf("service: batch expands to %d cells, the limit is %d", total, maxCells)
	}
	if limits.MaxCells > 0 && total > limits.MaxCells {
		return nil, fmt.Errorf("service: batch expands to %d cells, server limit is %d", total, limits.MaxCells)
	}

	// base seeds the rep derivation for cells whose own seed is zero.
	base := req.Template.Seed
	if base == 0 {
		h, err := req.Template.Hash()
		if err != nil {
			return nil, err
		}
		base = DeriveSeed(h)
	}

	cells := make([]BatchCell, 0, total)
	for point := 0; point < points; point++ {
		var spec Spec
		var params []float64
		if len(req.Specs) > 0 {
			spec = req.Specs[point]
		} else {
			spec = req.Template
			var err error
			if spec, params, err = applyAxes(spec, req.Axes, point); err != nil {
				return nil, err
			}
		}
		for rep := 0; rep < reps; rep++ {
			cell := spec
			if reps > 1 {
				s := cell.Seed
				if s == 0 {
					s = base
				}
				cell = withSeed(cell, rng.Mix64(rng.Mix64(s)+uint64(point)*uint64(reps)+uint64(rep)))
			}
			cell = cell.Normalize()
			if err := cell.Validate(); err != nil {
				return nil, fmt.Errorf("service: batch cell %d: %w", len(cells), err)
			}
			if n := cell.Population(); limits.MaxN > 0 && n > limits.MaxN {
				return nil, fmt.Errorf("service: batch cell %d: population %d exceeds the server limit %d", len(cells), n, limits.MaxN)
			}
			hash, err := cell.Hash()
			if err != nil {
				return nil, err
			}
			cells = append(cells, BatchCell{
				Index:    len(cells),
				Rep:      rep,
				Params:   params,
				Spec:     cell,
				SpecHash: hash,
			})
		}
	}
	return cells, nil
}

// applyAxes patches the template with point's coordinates in the cartesian
// product of the axes (last axis fastest) and returns the patched spec plus
// the coordinate tuple.
func applyAxes(spec Spec, axes []Axis, point int) (Spec, []float64, error) {
	spec = spec.clone()
	params := make([]float64, len(axes))
	stride := 1
	for i := len(axes) - 1; i >= 0; i-- {
		v := axes[i].Values[(point/stride)%len(axes[i].Values)]
		params[i] = v
		stride *= len(axes[i].Values)
		if err := applyParam(&spec, axes[i].Param, v); err != nil {
			return Spec{}, nil, err
		}
	}
	return spec, params, nil
}

// intValue rejects non-integral axis values for integer parameters.
func intValue(param string, v float64) (int, error) {
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("service: batch axis %q needs integer values, got %v", param, v)
	}
	return int(v), nil
}

// applyParam patches one named field of the spec, dispatching on the
// spec's kind where the same name lives in different places.
func applyParam(spec *Spec, param string, v float64) error {
	kind := spec.kind()
	multi := kind == KindMultidim
	if multi && spec.Multidim == nil {
		spec.Multidim = &MultidimSpec{}
	}
	switch param {
	case "n":
		n, err := intValue(param, v)
		if err != nil {
			return err
		}
		if multi {
			spec.Multidim.Init.N = n
		} else {
			spec.Init.N = n
		}
	case "m":
		m, err := intValue(param, v)
		if err != nil {
			return err
		}
		if multi {
			spec.Multidim.Init.M = m
		} else {
			spec.Init.M = m
		}
	case "d":
		if !multi {
			return fmt.Errorf("service: batch axis \"d\" applies only to multidim specs")
		}
		d, err := intValue(param, v)
		if err != nil {
			return err
		}
		spec.Multidim.Init.D = d
	case "n_low":
		nl, err := intValue(param, v)
		if err != nil {
			return err
		}
		spec.Init.NLow = nl
	case "k":
		k, err := intValue(param, v)
		if err != nil {
			return err
		}
		if spec.Rule.Params == nil {
			spec.Rule.Params = map[string]float64{}
		}
		spec.Rule.Params["k"] = float64(k)
	case "seed":
		s, err := intValue(param, v)
		if err != nil {
			return err
		}
		*spec = withSeed(*spec, uint64(s))
	case "max_rounds":
		mr, err := intValue(param, v)
		if err != nil {
			return err
		}
		spec.MaxRounds = mr
	case "almost_slack":
		as, err := intValue(param, v)
		if err != nil {
			return err
		}
		spec.AlmostSlack = as
	case "budget_factor":
		if spec.Adversary == nil {
			return fmt.Errorf("service: batch axis \"budget_factor\" needs a template adversary")
		}
		spec.Adversary.Budget.Factor = v
	case "loss_prob":
		if spec.Robust == nil {
			spec.Robust = &RobustSpec{}
		}
		spec.Robust.LossProb = v
	case "crashes":
		c, err := intValue(param, v)
		if err != nil {
			return err
		}
		if spec.Robust == nil {
			spec.Robust = &RobustSpec{}
		}
		spec.Robust.Crashes = c
	default:
		return fmt.Errorf("service: unknown batch axis param %q", param)
	}
	return nil
}

// withSeed sets the run seed and keeps seed-consuming init kinds in step
// with it, so repetitions draw distinct initial states the way cmd/sweep
// always has.
func withSeed(spec Spec, seed uint64) Spec {
	spec = spec.clone()
	spec.Seed = seed
	switch spec.kind() {
	case KindMultidim:
		if spec.Multidim != nil && spec.Multidim.Init.Kind == "random" {
			spec.Multidim.Init.Seed = seed
		}
	default:
		if spec.Init.Kind == "uniform" {
			spec.Init.Seed = seed
		}
	}
	return spec
}

// clone deep-copies the spec's pointer and map fields so patching one cell
// can never leak into the template or a sibling cell.
func (s Spec) clone() Spec {
	if s.Adversary != nil {
		a := *s.Adversary
		a.Params = cloneMap(a.Params)
		s.Adversary = &a
	}
	if s.Gossip != nil {
		g := *s.Gossip
		s.Gossip = &g
	}
	if s.Multidim != nil {
		m := *s.Multidim
		if m.Adversary != nil {
			ma := *m.Adversary
			ma.Params = cloneMap(ma.Params)
			m.Adversary = &ma
		}
		s.Multidim = &m
	}
	if s.Robust != nil {
		r := *s.Robust
		s.Robust = &r
	}
	s.Rule.Params = cloneMap(s.Rule.Params)
	s.Init.Counts = append([]int64(nil), s.Init.Counts...)
	return s
}

func cloneMap[M ~map[string]float64](m M) M {
	if m == nil {
		return nil
	}
	out := make(M, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ExpandBatch expands a request under the service's admission limits.
func (s *Service) ExpandBatch(req BatchRequest) ([]BatchCell, error) {
	return ExpandBatch(req, BatchLimits{MaxCells: s.opts.MaxBatchCells, MaxN: s.opts.MaxN})
}

// RunBatch runs expanded cells through the worker pool and emits one
// BatchCellRecord per cell, in cell order, as each finishes. Identical
// cells dedupe automatically: against the result cache (CacheHit) and
// against in-flight runs (Coalesced for duplicates within the batch).
// Submission applies backpressure — a full queue delays the batch instead
// of failing it. RunBatch returns early only on context cancellation, a
// closed service, or an emit error.
func (s *Service) RunBatch(ctx context.Context, cells []BatchCell, emit func(BatchCellRecord) error) error {
	s.metrics.batchesRun.Add(1)
	s.metrics.batchCellsExpanded.Add(int64(len(cells)))
	type outcome struct {
		cell BatchCell
		job  *Job
		view JobView
		err  error
	}
	// The submitter races ahead of the in-order emitter so the worker pool
	// stays saturated. The buffer is bounded — a million-cell sweep must
	// not pre-allocate a million outcome slots; the emitter always drains,
	// so a blocked send just pauses submission.
	buffer := len(cells)
	if buffer > 256 {
		buffer = 256
	}
	ch := make(chan outcome, buffer)
	go func() {
		defer close(ch)
		for _, c := range cells {
			// Stop submitting the moment the caller is gone — a
			// disconnected batch must not keep feeding the worker pool.
			if ctx.Err() != nil {
				return
			}
			j, view, err := s.submitWithRetry(ctx, c.Spec)
			ch <- outcome{cell: c, job: j, view: view, err: err}
			if err != nil && (errors.Is(err, ErrClosed) || ctx.Err() != nil) {
				return
			}
		}
	}()
	seen := make(map[string]bool, len(cells))
	emitted := 0
	for o := range ch {
		rec := BatchCellRecord{BatchCell: o.cell}
		if o.err != nil {
			if errors.Is(o.err, ErrClosed) || ctx.Err() != nil {
				return o.err
			}
			rec.Status = StatusFailed
			rec.Error = o.err.Error()
		} else {
			rec.JobID = o.view.ID
			rec.CacheHit = o.view.CacheHit
			if o.view.CacheHit {
				s.metrics.batchCellsCached.Add(1)
			}
			if seen[o.view.ID] {
				rec.Coalesced = true
				s.metrics.batchCellsCoalesced.Add(1)
			}
			seen[o.view.ID] = true
			final, err := waitTerminal(ctx, o.job)
			if err != nil {
				return err
			}
			rec.Status = final.Status
			rec.Result = final.Result
			rec.Error = final.Error
		}
		if err := emit(rec); err != nil {
			return err
		}
		emitted++
	}
	if emitted < len(cells) {
		return ctx.Err()
	}
	return nil
}

// submitWithRetry submits a cell, waiting out a full queue instead of
// shedding it — batches are deliberate bulk work, not interactive load.
func (s *Service) submitWithRetry(ctx context.Context, spec Spec) (*Job, JobView, error) {
	for {
		j, view, err := s.submit(spec)
		if !errors.Is(err, ErrQueueFull) {
			return j, view, err
		}
		select {
		case <-ctx.Done():
			return nil, JobView{}, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// waitTerminal blocks until the job reaches a terminal state. It holds the
// *Job directly so history eviction mid-batch cannot orphan the wait.
func waitTerminal(ctx context.Context, j *Job) (JobView, error) {
	for {
		j.mu.Lock()
		terminal := j.status.terminal()
		notify := j.notify
		j.mu.Unlock()
		if terminal {
			return j.view(), nil
		}
		select {
		case <-ctx.Done():
			return JobView{}, ctx.Err()
		case <-notify:
		}
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/adversary"
	"repro/engine"
	"repro/internal/rng"
	"repro/obs"
)

// BatchRequest is the wire form of a parameter sweep: either a template
// spec plus grid axes (expanded server-side, internal/experiment style) or
// an explicit list of pre-built cell specs. Exactly one of the grid fields
// (Axes/Zip/Derive) and Specs may be used; Reps applies to both.
//
// Which parameters a kind accepts as axes is part of its engine descriptor
// (GET /v1/engines, Descriptor.Axes); the envelope axes "seed" and
// "max_rounds" work for every kind.
type BatchRequest struct {
	// Template is the spec every grid cell starts from (grid-mode only).
	Template Spec `json:"template,omitzero"`
	// Axes are expanded as a cartesian product, last axis fastest; each
	// value patches the template field named by Param.
	Axes []Axis `json:"axes,omitempty"`
	// Zip axes advance together instead of multiplying: all must have
	// the same length L, contributing one grid dimension of L points
	// (varying slowest). They express correlated parameters — e.g.
	// n paired with a hand-picked per-n crash count — that a cartesian
	// product cannot.
	Zip []Axis `json:"zip,omitempty"`
	// Derive computes per-cell parameters from the cell's own axis
	// values — e.g. an n-dependent almost_slack for adversarial sweeps —
	// so derived fields no longer force an explicit spec list.
	Derive []DeriveRule `json:"derive,omitempty"`
	// Specs lists explicit cell specs instead of a grid.
	Specs []Spec `json:"specs,omitempty"`
	// Reps repeats every cell with derived per-repetition seeds
	// (0 = 1). See ExpandBatch for the derivation.
	Reps int `json:"reps,omitempty"`
}

// Axis is one sweep dimension: a parameter name and its values.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// DeriveRule computes one cell parameter from an axis value of the same
// cell: target = Factor · f(from), where f is named by Func. "sqrt" and
// "sqrtlog" are the integer-valued adversary budget families themselves
// (adversary.Sqrt/SqrtLog: the scaled value truncates toward zero), so a
// derived slack of {func: "sqrt", factor: 3} is exactly the budget
// ⌊3·√n⌋; "log2" truncates the same way; "linear" applies raw, for
// float-valued targets.
type DeriveRule struct {
	// Param names the target parameter (any axis-patchable param of the
	// template's kind).
	Param string `json:"param"`
	// From names the source axis or zip param the cell value is read from.
	From string `json:"from"`
	// Func is the derivation: "linear" (default), "sqrt", "sqrtlog" or
	// "log2".
	Func string `json:"func,omitempty"`
	// Factor scales the derived value (0 = 1).
	Factor float64 `json:"factor,omitempty"`
}

// value computes the derived parameter from the source axis value.
func (d DeriveRule) value(x float64) (float64, error) {
	f := d.Factor
	if f == 0 {
		f = 1
	}
	switch d.Func {
	case "", "linear":
		return f * x, nil
	case "sqrt", "sqrtlog":
		// The adversary package owns these families; resolving through
		// BudgetSpec keeps derive rules and budgets from ever diverging.
		bf, err := adversary.BudgetSpec{Kind: d.Func, Factor: f}.Func()
		if err != nil {
			return 0, err
		}
		return float64(bf(int(x))), nil
	case "log2":
		if x < 1 {
			return 0, nil
		}
		return math.Trunc(f * math.Log2(x)), nil
	default:
		return 0, fmt.Errorf("service: unknown derive func %q (known: linear, log2, sqrt, sqrtlog)", d.Func)
	}
}

// BatchCell is one expanded cell of a batch: its grid coordinates and the
// canonical spec it will run.
type BatchCell struct {
	// Index is the cell's position in expansion order.
	Index int `json:"index"`
	// Rep is the repetition number within the grid point.
	Rep int `json:"rep"`
	// Params echoes the axis values that produced the cell (grid-mode;
	// cartesian axes first, then zip axes).
	Params []float64 `json:"params,omitempty"`
	// Spec is the normalized cell spec; SpecHash its canonical hash.
	Spec     Spec   `json:"spec"`
	SpecHash string `json:"spec_hash"`
}

// BatchCellRecord is one line of the batch NDJSON stream: a cell plus the
// outcome of its run.
type BatchCellRecord struct {
	BatchCell
	// JobID is the job that ran (or had already run) the cell.
	JobID  string `json:"job_id,omitempty"`
	Status Status `json:"status"`
	// CacheHit marks cells answered from the result cache; Coalesced
	// marks cells absorbed by an identical cell earlier in the batch.
	CacheHit  bool       `json:"cache_hit,omitempty"`
	Coalesced bool       `json:"coalesced,omitempty"`
	Result    *RunResult `json:"result,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// BatchLimits bounds batch expansion. Zero values mean unlimited.
type BatchLimits struct {
	// MaxCells caps the number of expanded cells (reps included).
	MaxCells int
	// MaxN caps the population any single cell may materialize.
	MaxN int64
}

// grid is the validated shape of a batch request's axes/zip/derive fields.
type grid struct {
	axes   []Axis
	zip    []Axis
	derive []DeriveRule
	cart   int // cartesian points (product of axes lengths)
	zipLen int // zip points (1 when no zip axes)
}

// buildGrid validates the grid fields against the template's kind (axis
// names must be descriptor axes or the shared seed/max_rounds) and the
// expansion ceiling.
func buildGrid(req BatchRequest, maxCells int) (grid, error) {
	g := grid{axes: req.Axes, zip: req.Zip, derive: req.Derive, cart: 1, zipLen: 1}
	seen := map[string]bool{}
	checkAxis := func(ax Axis, where string) error {
		switch {
		case ax.Param == "" || !req.Template.AxisOK(ax.Param):
			return fmt.Errorf("service: unknown batch %s param %q for kind %s", where, ax.Param, specKind(req.Template))
		case seen[ax.Param]:
			return fmt.Errorf("service: batch %s param %q appears twice", where, ax.Param)
		case len(ax.Values) == 0:
			return fmt.Errorf("service: batch %s %q has no values", where, ax.Param)
		}
		seen[ax.Param] = true
		return nil
	}
	for _, ax := range g.axes {
		if err := checkAxis(ax, "axis"); err != nil {
			return grid{}, err
		}
		if g.cart > maxCells/len(ax.Values) {
			return grid{}, fmt.Errorf("service: batch grid too large")
		}
		g.cart *= len(ax.Values)
	}
	for i, ax := range g.zip {
		if err := checkAxis(ax, "zip axis"); err != nil {
			return grid{}, err
		}
		if i > 0 && len(ax.Values) != g.zipLen {
			return grid{}, fmt.Errorf("service: zip axes must have equal lengths, %q has %d values, want %d",
				ax.Param, len(ax.Values), g.zipLen)
		}
		g.zipLen = len(ax.Values)
	}
	if g.cart > maxCells/g.zipLen {
		return grid{}, fmt.Errorf("service: batch grid too large")
	}
	for _, d := range g.derive {
		if d.Param == "" || !req.Template.AxisOK(d.Param) {
			return grid{}, fmt.Errorf("service: unknown derive param %q for kind %s", d.Param, specKind(req.Template))
		}
		if seen[d.Param] {
			return grid{}, fmt.Errorf("service: derive param %q is already an axis or derive target", d.Param)
		}
		seen[d.Param] = true
		if !axisParamIn(g.axes, d.From) && !axisParamIn(g.zip, d.From) {
			return grid{}, fmt.Errorf("service: derive source %q is not an axis or zip param", d.From)
		}
		if _, err := d.value(1); err != nil {
			return grid{}, err
		}
	}
	return g, nil
}

func axisParamIn(axes []Axis, param string) bool {
	for _, ax := range axes {
		if ax.Param == param {
			return true
		}
	}
	return false
}

// specKind renders a spec's kind for error messages ("" reads as the
// default kind after normalization).
func specKind(s Spec) string { return s.Normalize().Kind }

// cell materializes one grid point: the cartesian axes at index ci (last
// axis fastest), the zip axes at index zi, then the derived params.
func (g grid) cell(template Spec, ci, zi int) (Spec, []float64, error) {
	spec := template.Clone()
	params := make([]float64, 0, len(g.axes)+len(g.zip))
	byName := make(map[string]float64, len(g.axes)+len(g.zip))
	stride := 1
	axisVals := make([]float64, len(g.axes))
	for i := len(g.axes) - 1; i >= 0; i-- {
		v := g.axes[i].Values[(ci/stride)%len(g.axes[i].Values)]
		axisVals[i] = v
		stride *= len(g.axes[i].Values)
	}
	for i, ax := range g.axes {
		params = append(params, axisVals[i])
		byName[ax.Param] = axisVals[i]
		if err := spec.ApplyAxis(ax.Param, axisVals[i]); err != nil {
			return Spec{}, nil, err
		}
	}
	for _, ax := range g.zip {
		v := ax.Values[zi]
		params = append(params, v)
		byName[ax.Param] = v
		if err := spec.ApplyAxis(ax.Param, v); err != nil {
			return Spec{}, nil, err
		}
	}
	for _, d := range g.derive {
		v, err := d.value(byName[d.From])
		if err != nil {
			return Spec{}, nil, err
		}
		if err := spec.ApplyAxis(d.Param, v); err != nil {
			return Spec{}, nil, err
		}
	}
	return spec, params, nil
}

// ExpandBatch expands a batch request into canonical, validated cells:
// the grid — cartesian axes times zipped axes, plus derived params —
// applied to the template (or the explicit spec list), times Reps
// repetitions.
//
// Repetition seeding is deterministic so batches are cache-stable: with
// Reps == 1 the cell seeds are left exactly as the template/axes produced
// them, and with Reps > 1 repetition r of cell i runs with seed
// Mix64(Mix64(base) + i·Reps + r), where base is the cell's post-axis
// seed, or a seed derived from the template hash when zero. Pre-mixing
// the base keeps a seed axis from colliding across grid points (raw bases
// differing by exactly (j−i)·Reps would otherwise derive identical rep
// seeds). Init kinds that consume their own seed (uniform, random) follow
// the run seed (engine.SeedFollower), mirroring cmd/sweep's historical
// behavior.
func ExpandBatch(req BatchRequest, limits BatchLimits) ([]BatchCell, error) {
	// maxCells is the absolute expansion ceiling, applied before any
	// multiplication so attacker-sized axes/reps can neither overflow the
	// cell count nor drive a huge allocation; BatchLimits.MaxCells can
	// only tighten it.
	const maxCells = 1 << 20
	reps := req.Reps
	if reps <= 0 {
		reps = 1
	}
	if reps > maxCells {
		return nil, fmt.Errorf("service: batch reps %d exceeds the limit %d", reps, maxCells)
	}
	gridMode := len(req.Axes) > 0 || len(req.Zip) > 0 || len(req.Derive) > 0
	if gridMode && len(req.Specs) > 0 {
		return nil, fmt.Errorf("service: batch request sets both axes and specs")
	}
	g, err := buildGrid(req, maxCells)
	if err != nil {
		return nil, err
	}
	points := g.cart * g.zipLen
	if len(req.Specs) > 0 {
		points = len(req.Specs)
	}
	// points, reps <= 2^20 each, so the product cannot overflow.
	total := points * reps
	if total > maxCells {
		return nil, fmt.Errorf("service: batch expands to %d cells, the limit is %d", total, maxCells)
	}
	if limits.MaxCells > 0 && total > limits.MaxCells {
		return nil, fmt.Errorf("service: batch expands to %d cells, server limit is %d", total, limits.MaxCells)
	}

	// base seeds the rep derivation for cells whose own seed is zero.
	base := req.Template.Seed
	if base == 0 {
		h, err := req.Template.Hash()
		if err != nil {
			return nil, err
		}
		base = DeriveSeed(h)
	}

	cells := make([]BatchCell, 0, total)
	for point := 0; point < points; point++ {
		var spec Spec
		var params []float64
		if len(req.Specs) > 0 {
			spec = req.Specs[point]
		} else {
			var err error
			// Zip axes vary slowest: point = zi·cart + ci.
			if spec, params, err = g.cell(req.Template, point%g.cart, point/g.cart); err != nil {
				return nil, err
			}
		}
		for rep := 0; rep < reps; rep++ {
			cell := spec
			if reps > 1 {
				s := cell.Seed
				if s == 0 {
					s = base
				}
				cell = cell.Clone()
				cell.SetSeed(rng.Mix64(rng.Mix64(s) + uint64(point)*uint64(reps) + uint64(rep)))
			}
			cell = cell.Normalize()
			if err := cell.Validate(); err != nil {
				return nil, fmt.Errorf("service: batch cell %d: %w", len(cells), err)
			}
			if n := cell.MaterializedSize(); limits.MaxN > 0 && n > limits.MaxN {
				return nil, fmt.Errorf("service: batch cell %d: materialized size %d exceeds the server limit %d", len(cells), n, limits.MaxN)
			}
			// The cell is already normalized, so its plain encoding is the
			// canonical one — skip Hash()'s per-cell re-normalization.
			canonical, err := json.Marshal(cell)
			if err != nil {
				return nil, err
			}
			cells = append(cells, BatchCell{
				Index:    len(cells),
				Rep:      rep,
				Params:   params,
				Spec:     cell,
				SpecHash: engine.HashBytes(canonical),
			})
		}
	}
	return cells, nil
}

// ExpandBatch expands a request under the service's admission limits.
func (s *Service) ExpandBatch(req BatchRequest) ([]BatchCell, error) {
	return ExpandBatch(req, BatchLimits{MaxCells: s.opts.MaxBatchCells, MaxN: s.opts.MaxN})
}

// RunBatch runs expanded cells through the worker pool and emits one
// BatchCellRecord per cell, in cell order, as each finishes. Identical
// cells dedupe automatically: against the result cache (CacheHit) and
// against in-flight runs (Coalesced for duplicates within the batch).
// Submission applies backpressure — a full queue delays the batch instead
// of failing it. RunBatch returns early only on context cancellation, a
// closed service, or an emit error.
func (s *Service) RunBatch(ctx context.Context, cells []BatchCell, emit func(BatchCellRecord) error) error {
	s.metrics.batchesRun.Add(1)
	s.metrics.batchCellsExpanded.Add(int64(len(cells)))
	reqID := obs.RequestIDFrom(ctx)
	batchStart := time.Now()
	s.bus.Publish(obs.Event{
		Type: "batch.started", RequestID: reqID,
		Detail: fmt.Sprintf("%d cells", len(cells)),
	})
	type outcome struct {
		cell BatchCell
		job  *Job
		view JobView
		err  error
	}
	// The submitter races ahead of the in-order emitter so the worker pool
	// stays saturated. The buffer is bounded — a million-cell sweep must
	// not pre-allocate a million outcome slots; the emitter always drains,
	// so a blocked send just pauses submission.
	buffer := len(cells)
	if buffer > 256 {
		buffer = 256
	}
	ch := make(chan outcome, buffer)
	go func() {
		defer close(ch)
		for _, c := range cells {
			// Stop submitting the moment the caller is gone — a
			// disconnected batch must not keep feeding the worker pool.
			if ctx.Err() != nil {
				return
			}
			j, view, err := s.submitWithRetry(ctx, c.Spec, reqID)
			ch <- outcome{cell: c, job: j, view: view, err: err}
			if err != nil && (errors.Is(err, ErrClosed) || ctx.Err() != nil) {
				return
			}
		}
	}()
	seen := make(map[string]bool, len(cells))
	emitted := 0
	for o := range ch {
		rec := BatchCellRecord{BatchCell: o.cell}
		if o.err != nil {
			if errors.Is(o.err, ErrClosed) || ctx.Err() != nil {
				return o.err
			}
			rec.Status = StatusFailed
			rec.Error = o.err.Error()
		} else {
			rec.JobID = o.view.ID
			rec.CacheHit = o.view.CacheHit
			if o.view.CacheHit {
				s.metrics.batchCellsCached.Add(1)
			}
			if seen[o.view.ID] {
				rec.Coalesced = true
				s.metrics.batchCellsCoalesced.Add(1)
			}
			seen[o.view.ID] = true
			final, err := waitTerminal(ctx, o.job)
			if err != nil {
				return err
			}
			rec.Status = final.Status
			rec.Result = final.Result
			rec.Error = final.Error
		}
		if err := emit(rec); err != nil {
			return err
		}
		emitted++
	}
	if emitted < len(cells) {
		return ctx.Err()
	}
	s.bus.Publish(obs.Event{
		Type: "batch.done", RequestID: reqID,
		Elapsed: time.Since(batchStart).Seconds(),
		Detail:  fmt.Sprintf("%d cells", len(cells)),
	})
	return nil
}

// submitWithRetry submits a cell, waiting out a full queue instead of
// shedding it — batches are deliberate bulk work, not interactive load.
func (s *Service) submitWithRetry(ctx context.Context, spec Spec, reqID string) (*Job, JobView, error) {
	for {
		j, view, err := s.submit(spec, reqID)
		if !errors.Is(err, ErrQueueFull) {
			return j, view, err
		}
		select {
		case <-ctx.Done():
			return nil, JobView{}, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// waitTerminal blocks until the job reaches a terminal state. It holds the
// *Job directly so history eviction mid-batch cannot orphan the wait.
func waitTerminal(ctx context.Context, j *Job) (JobView, error) {
	for {
		j.mu.Lock()
		terminal := j.status.terminal()
		notify := j.notify
		j.mu.Unlock()
		if terminal {
			return j.view(), nil
		}
		select {
		case <-ctx.Done():
			return JobView{}, ctx.Err()
		case <-notify:
		}
	}
}

package service

import (
	"strconv"
	"strings"

	"repro/service/store"
)

// Store is the persistence backend behind the result cache and the job
// history. New writes every completed run through it and replays it on
// startup, so a restarted service serves previously computed results from
// the cache without re-running them.
//
// *store.Log (the file-backed, CRC-framed append-only log) is the
// canonical implementation, wired up via Options.StorePath; embedders can
// inject their own via Options.Store. The default — both fields unset —
// is the in-memory-only nullStore: exactly the pre-persistence behavior,
// where cache and history die with the process.
type Store interface {
	// Load replays the persisted runs, in append order. It is called once,
	// from New, before the service accepts any job.
	Load(apply func(StoredRun) error) error
	// Append durably commits one completed run.
	Append(StoredRun) error
	// Stats reports the store counters surfaced on /v1/metrics.
	Stats() store.Stats
	// Close releases the backend; called from Service.Close after the
	// last worker has drained.
	Close() error
}

// nullStore is the in-memory default: nothing persisted, nothing reloaded.
type nullStore struct{}

func (nullStore) Load(func(StoredRun) error) error { return nil }
func (nullStore) Append(StoredRun) error           { return nil }
func (nullStore) Stats() store.Stats               { return store.Stats{} }
func (nullStore) Close() error                     { return nil }

// reload warms the result cache and the job history from the store. It
// runs inside New, before the worker pool starts, so no locking is needed.
func (s *Service) reload() error {
	return s.store.Load(func(r StoredRun) error {
		if r.SpecHash == "" {
			return nil
		}
		res := r.Result
		s.cache.put(r.SpecHash, &cacheEntry{result: res, records: r.Records, truncated: r.Truncated})
		if r.ID == "" {
			return nil
		}
		if _, dup := s.jobs[r.ID]; dup {
			return nil
		}
		j := &Job{
			id:        r.ID,
			spec:      r.Spec,
			hash:      r.SpecHash,
			reqID:     r.RequestID,
			status:    StatusDone,
			result:    &res,
			records:   r.Records,
			truncated: r.Truncated,
			notify:    make(chan struct{}),
			created:   r.Created,
			started:   r.Started,
			finished:  r.Finished,
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		// Keep fresh submissions from colliding with reloaded ids.
		if n, ok := numericID(r.ID); ok && n > s.nextID {
			s.nextID = n
		}
		return nil
	})
}

// numericID extracts the counter from a service-issued job id ("r-17").
func numericID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "r-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	return n, err == nil
}

package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTokenBucketRetryAfter: the Retry-After hint comes from the bucket's
// actual deficit, not a flat 1/rate guess — at burst > 1 a fully drained
// bucket still only owes the time to the *next* token.
func TestTokenBucketRetryAfter(t *testing.T) {
	b := newTokenBucket(0.25, 4)
	// Half a token in the bucket: the next whole token is (1-0.5)/0.25 =
	// 2s out. The flat pre-fix hint would have said ceil(1/0.25) = 4s.
	b.mu.Lock()
	b.tokens = 0.5
	b.last = time.Now()
	b.mu.Unlock()
	if d := b.retryAfter(); d < 1900*time.Millisecond || d > 2100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~2s (the deficit, not 1/rate)", d)
	}

	// A full bucket owes nothing.
	b2 := newTokenBucket(0.25, 4)
	if d := b2.retryAfter(); d != 0 {
		t.Fatalf("full bucket retryAfter = %v, want 0", d)
	}
	// A nil (disabled) bucket owes nothing.
	var nb *tokenBucket
	if d := nb.retryAfter(); d != 0 {
		t.Fatalf("nil bucket retryAfter = %v, want 0", d)
	}
	// At rate >= 1 the deficit is sub-second; the HTTP layer clamps to 1s.
	b3 := newTokenBucket(10, 2)
	b3.mu.Lock()
	b3.tokens = 0
	b3.last = time.Now()
	b3.mu.Unlock()
	if d := b3.retryAfter(); d <= 0 || d > 150*time.Millisecond {
		t.Fatalf("rate-10 retryAfter = %v, want ~100ms", d)
	}
}

// TestLoadQuotaFile: the JSON token → quota map parses, and malformed
// files (bad JSON, non-positive rate, empty token) are rejected.
func TestLoadQuotaFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "quotas.json")
	if err := os.WriteFile(good, []byte(`{"team-a":{"rate":5,"burst":10},"batch":{"rate":0.5,"burst":2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	quotas, err := LoadQuotaFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(quotas) != 2 || quotas["team-a"].Rate != 5 || quotas["batch"].Burst != 2 {
		t.Fatalf("parsed quotas %+v", quotas)
	}

	for name, body := range map[string]string{
		"bad-json.json":  `{"a": [1]}`,
		"zero-rate.json": `{"a":{"rate":0,"burst":1}}`,
		"neg-rate.json":  `{"a":{"rate":-1,"burst":1}}`,
		"empty-tok.json": `{"":{"rate":1,"burst":1}}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadQuotaFile(p); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := LoadQuotaFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent file: want error, got nil")
	}
}

// TestCacheRemove: removing hashes evicts entries, keeps order/accounting
// consistent, and reports only the ones that were present.
func TestCacheRemove(t *testing.T) {
	c := newResultCache(10)
	c.put("a", &cacheEntry{records: make([]RoundRecord, 3)})
	c.put("b", &cacheEntry{records: make([]RoundRecord, 5)})
	c.put("c", &cacheEntry{})
	if n := c.remove([]string{"a", "c", "ghost"}); n != 2 {
		t.Fatalf("remove reported %d, want 2", n)
	}
	if _, hit := c.get("a"); hit {
		t.Fatal("removed entry still served")
	}
	if _, hit := c.get("b"); !hit {
		t.Fatal("unrelated entry evicted")
	}
	if c.len() != 1 || len(c.order) != 1 || c.totalRecords != 5 {
		t.Fatalf("cache accounting after remove: len=%d order=%d records=%d",
			c.len(), len(c.order), c.totalRecords)
	}
}

// TestDropPersisted: the store-GC consistency hook evicts the dropped
// hashes from the result cache and the terminal jobs serving them from
// the history — a re-submission re-runs instead of hitting the cache.
func TestDropPersisted(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()

	spec := medianSpec(1, MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	})
	view, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, s, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("run did not complete: %+v", done)
	}
	if _, hit := s.cache.get(done.SpecHash); !hit {
		t.Fatal("finished run not cached")
	}

	s.dropPersisted([]string{done.SpecHash})

	if _, hit := s.cache.get(done.SpecHash); hit {
		t.Fatal("cache still serves a result the store dropped")
	}
	if _, err := s.Get(view.ID); err != ErrNotFound {
		t.Fatalf("terminal job for a dropped hash must be evicted, got %v", err)
	}
	if m := s.Metrics(); m.StoreGCCacheEvictions != 1 {
		t.Fatalf("store_gc_cache_evictions = %d, want 1", m.StoreGCCacheEvictions)
	}

	// The next identical submission is a miss: it runs again rather than
	// serving a result the disk no longer backs.
	before := s.Metrics().CacheMisses
	view2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if view2.CacheHit {
		t.Fatal("resubmission after drop must not be a cache hit")
	}
	waitDone(t, s, view2.ID)
	if after := s.Metrics().CacheMisses; after != before+1 {
		t.Fatalf("cache_misses %d -> %d, want +1", before, after)
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/engine"
	"repro/obs"
	"repro/service/store"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: queued → running → done | failed | cancelled. Cache hits
// are born done.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// terminal reports whether no further transitions can happen.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Options configures a Service.
type Options struct {
	// Workers is the worker-pool size (<=0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; Submit
	// returns ErrQueueFull beyond it (<=0 = 256).
	QueueDepth int
	// CacheSize bounds the result cache in entries (<=0 = 1024).
	CacheSize int
	// MaxRecords bounds the per-job stored round records; further rounds
	// still run (and still poll cancellation) but are not recorded
	// (<=0 = 65536).
	MaxRecords int
	// MaxJobs bounds the in-memory job history: once exceeded, the
	// oldest terminal jobs are evicted (queued/running jobs are never
	// evicted; their results stay reachable through the cache)
	// (<=0 = 4096).
	MaxJobs int
	// MaxN bounds the population a submitted spec may materialize — the
	// per-ball state costs 8 bytes per process, so without a cap one
	// tiny POST with a huge n OOMs the daemon (<=0 = 2^27, ~1 GB of
	// state; raise it deliberately on big machines).
	MaxN int64
	// MaxBatchCells bounds the cells one batch request may expand to
	// (<=0 = 4096).
	MaxBatchCells int
	// MaxBodyBytes caps the HTTP request body the API accepts; larger
	// submissions get 413 (<=0 = 1 MiB).
	MaxBodyBytes int64
	// SubmitRate rate-limits the HTTP submit endpoints (POST /v1/runs and
	// /v1/batches) to this many requests per second with a burst of
	// SubmitBurst; excess requests get 429 (0 = unlimited).
	SubmitRate float64
	// SubmitBurst is the submit rate limiter's bucket size (<=0 = 8 when
	// SubmitRate is set).
	SubmitBurst int
	// AuthToken, when non-empty, guards the mutating HTTP endpoints
	// (POST /v1/runs, POST /v1/batches, DELETE /v1/runs/{id}): requests
	// must carry "Authorization: Bearer <token>" or they get 401.
	// Read-only endpoints stay open ("" = no auth).
	AuthToken string
	// StorePath, when non-empty, backs the result cache and job history
	// with the file store at that path (package service/store): completed
	// runs are written through on finish and reloaded by New, so cache
	// hits survive restarts. "" = in-memory only.
	StorePath string
	// StoreMaxBytes and StoreMaxAge bound the file store's retention
	// (store.Policy.MaxBytes / MaxAge): the newest runs within the byte
	// budget and age bound are kept, older ones are garbage-collected at
	// open and by background compaction — and evicted from the result
	// cache and job history in step. Only meaningful with StorePath;
	// 0 = unbounded (the pre-retention behavior).
	StoreMaxBytes int64
	StoreMaxAge   time.Duration
	// Quotas maps additional bearer tokens to per-token submit budgets:
	// each token authenticates the mutating endpoints like AuthToken does,
	// but is metered by its own rate/burst bucket instead of the shared
	// SubmitRate limiter. nil = token-level quotas disabled.
	Quotas map[string]Quota
	// Store injects a persistence backend directly; it takes precedence
	// over StorePath. New closes it on failure and Service.Close closes
	// it on shutdown. nil (with StorePath empty) = in-memory only.
	Store Store
	// Logger receives the service's structured logs: HTTP access lines
	// (with request ids), job lifecycle transitions and store errors.
	// nil = discard.
	Logger *slog.Logger
	// EventBuffer is the event bus ring capacity — how much recent
	// history GET /v1/events?replay=N can serve to a new subscriber
	// (<=0 = 256).
	EventBuffer int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.MaxRecords <= 0 {
		o.MaxRecords = 1 << 16
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.MaxN <= 0 {
		o.MaxN = 1 << 27
	}
	if o.MaxBatchCells <= 0 {
		o.MaxBatchCells = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.SubmitRate > 0 && o.SubmitBurst <= 0 {
		o.SubmitBurst = 8
	}
	return o
}

// Errors the API layer maps to HTTP statuses.
var (
	ErrQueueFull = errors.New("service: job queue is full")
	ErrClosed    = errors.New("service: service is closed")
	ErrNotFound  = errors.New("service: no such job")
	ErrTerminal  = errors.New("service: job already finished")
)

// Job is one submitted run. All mutable state is guarded by mu; notify is
// closed and replaced on every update so stream followers can wait without
// polling.
type Job struct {
	id       string
	spec     Spec
	hash     string
	cacheHit bool
	// reqID is the X-Request-Id of the submission that created the job
	// ("" for library submissions without one), carried on its events,
	// logs and persisted run.
	reqID string

	cancel atomic.Bool

	mu        sync.Mutex
	status    Status
	result    *RunResult
	errMsg    string
	records   []RoundRecord
	truncated int
	notify    chan struct{}
	created   time.Time
	started   time.Time
	finished  time.Time
}

// JobView is the immutable JSON snapshot of a job.
type JobView struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash"`
	Status   Status `json:"status"`
	// CacheHit marks jobs answered from the result cache without running.
	CacheHit bool       `json:"cache_hit"`
	Result   *RunResult `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	// RequestID is the X-Request-Id of the submission that created the
	// job, for correlating API responses, events and logs.
	RequestID string `json:"request_id,omitempty"`
	// Records is the number of stored round records (the stream length);
	// Truncated counts rounds beyond the MaxRecords bound.
	Records   int        `json:"records"`
	Truncated int        `json:"truncated,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Spec      Spec       `json:"spec"`
}

func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		SpecHash:  j.hash,
		Status:    j.status,
		CacheHit:  j.cacheHit,
		Error:     j.errMsg,
		RequestID: j.reqID,
		Records:   len(j.records),
		Truncated: j.truncated,
		Created:   j.created,
		Spec:      j.spec,
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// wake closes and replaces the notify channel; callers hold j.mu.
func (j *Job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendRecord stores one round record up to the configured bound.
func (j *Job) appendRecord(max int, rec RoundRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.records) >= max {
		j.truncated++
		return
	}
	j.records = append(j.records, rec)
	j.wake()
}

// recordsFrom returns the records at index >= i, whether the job is
// terminal, and the channel that will be closed on the next update.
func (j *Job) recordsFrom(i int) ([]RoundRecord, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []RoundRecord
	if i < len(j.records) {
		out = j.records[i:]
	}
	return out, j.status.terminal(), j.notify
}

// Service is the embeddable simulation service: an in-memory job store, a
// bounded worker pool executing specs on the library engines, and a result
// cache. Create with New, embed in an HTTP server via Handler, stop with
// Close.
type Service struct {
	opts    Options
	metrics *Metrics
	cache   *resultCache
	store   Store
	limiter *tokenBucket
	quotas  map[string]*tokenBucket
	queue   chan *Job
	bus     *obs.Bus
	logger  *slog.Logger

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	pending map[string]*Job // spec hash → not-yet-terminal job, for coalescing
	nextID  int
	closed  bool

	wg sync.WaitGroup
}

// New starts a Service with opts.Workers workers. With a persistence
// backend configured (Options.StorePath or Options.Store), it reloads
// the persisted runs into the result cache and job history before
// accepting work; opening or replaying a corrupt-beyond-recovery store
// is the only error path.
func New(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	st := opts.Store
	if st == nil && opts.StorePath != "" {
		l, err := store.OpenWithPolicy(opts.StorePath, store.Policy{
			MaxBytes: opts.StoreMaxBytes,
			MaxAge:   opts.StoreMaxAge,
		})
		if err != nil {
			return nil, err
		}
		st = l
	}
	if st == nil {
		st = nullStore{}
	}
	s := &Service{
		opts:    opts,
		cache:   newResultCache(opts.CacheSize),
		store:   st,
		limiter: newTokenBucket(opts.SubmitRate, float64(opts.SubmitBurst)),
		queue:   make(chan *Job, opts.QueueDepth),
		jobs:    make(map[string]*Job),
		pending: make(map[string]*Job),
		logger:  opts.Logger,
	}
	if len(opts.Quotas) > 0 {
		s.quotas = make(map[string]*tokenBucket, len(opts.Quotas))
		for tok, q := range opts.Quotas {
			s.quotas[tok] = newTokenBucket(q.Rate, float64(q.Burst))
		}
	}
	// Keep the in-memory serving layers consistent with retention: when
	// the store's background GC drops persisted runs, their cache entries
	// and history jobs go with them.
	if dropper, ok := st.(interface{ OnDrop(func([]string)) }); ok {
		dropper.OnDrop(s.dropPersisted)
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.metrics = newMetrics(opts.Workers, func() int { return len(s.queue) }, st.Stats)
	s.bus = obs.NewBus(opts.EventBuffer, s.metrics.eventsPublished, s.metrics.eventsDropped)
	s.metrics.reg.GaugeFunc("consensusd_event_subscribers", "event_subscribers",
		"Live event stream subscribers attached.",
		func() float64 { return float64(s.bus.Subscribers()) })
	if err := s.reload(); err != nil {
		st.Close()
		return nil, err
	}
	s.evictLocked() // reloaded history still honors the MaxJobs bound
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops accepting jobs, cancels everything still queued and waits
// for running jobs to finish.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Flag still-queued jobs so the drain below cancels instead of runs
	// them (a job racing into "running" right now simply finishes).
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if j.status == StatusQueued {
			j.cancel.Store(true)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	_ = s.store.Close()
	// Closing the bus last: the drain above still publishes terminal
	// events, and closing detaches every /v1/events consumer.
	s.bus.Close()
}

// Metrics returns the typed snapshot of the service's scalar counters.
func (s *Service) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// MetricsJSON returns the full JSON metric exposition — every family the
// Prometheus view has, histograms and labels included — from one registry
// walk.
func (s *Service) MetricsJSON() map[string]any { return s.metrics.JSONMap() }

// WriteMetricsText renders the Prometheus text exposition (format 0.0.4),
// for /v1/metrics content negotiation and debug listeners.
func (s *Service) WriteMetricsText(w io.Writer) { s.metrics.WritePrometheus(w) }

// Events subscribes to the live event bus with a delivery buffer of buf
// events, replaying up to replay recent events first (see obs.Bus). The
// returned subscriber is nil when the service is closed; callers must
// Close it when done.
func (s *Service) Events(buf, replay int) *obs.Subscriber {
	return s.bus.Subscribe(buf, replay)
}

// Submit validates the spec, answers from the result cache when possible,
// and otherwise enqueues a job for the worker pool. The returned view is
// the job's state at submit time (status done for cache hits). Submission
// is idempotent while a run is in flight: an identical spec submitted
// before the first finishes coalesces onto the existing job and returns
// its view instead of executing the deterministic simulation twice.
func (s *Service) Submit(spec Spec) (JobView, error) {
	return s.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying a request context: the request id placed
// there by the HTTP middleware (obs.WithRequestID) is recorded on the job
// and flows through its events, logs and persisted run.
func (s *Service) SubmitCtx(ctx context.Context, spec Spec) (JobView, error) {
	_, view, err := s.submit(spec, obs.RequestIDFrom(ctx))
	return view, err
}

// submit is Submit returning the job itself, for callers (the batch
// runner) that must outlive history eviction.
func (s *Service) submit(spec Spec, reqID string) (*Job, JobView, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, JobView{}, err
	}
	// Admission control: reject states the daemon cannot afford to
	// materialize (size 0 = unknown kind without a Size hook; those are
	// admitted and bounded only by the engines themselves). The charge is
	// the spec's *materialized* size, not its population: a count-engine
	// run over n = 10⁹ processes only holds its O(support) distribution
	// and is admitted, while a per-process run of the same n is not.
	if n := spec.MaterializedSize(); n > s.opts.MaxN {
		return nil, JobView{}, fmt.Errorf("service: materialized size %d exceeds the server limit %d", n, s.opts.MaxN)
	}
	// The spec is already normalized, so its plain encoding is the
	// canonical one — skip Hash()'s re-normalization on every submit.
	canonical, err := json.Marshal(spec)
	if err != nil {
		return nil, JobView{}, err
	}
	hash := engine.HashBytes(canonical)
	now := time.Now()
	j := &Job{
		spec:    spec,
		hash:    hash,
		reqID:   reqID,
		status:  StatusQueued,
		notify:  make(chan struct{}),
		created: now,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, JobView{}, ErrClosed
	}
	// Order matters: an in-flight job for this hash wins over the cache
	// (it cannot be cached yet), and a finished one has moved from the
	// pending map into the cache before being removed (see finish), so
	// checking pending first then cache cannot miss both. A job whose
	// cancellation was requested (or that raced to a terminal state) is
	// not a coalescing target — the new submission must actually run.
	if existing, inFlight := s.pending[hash]; inFlight && !existing.cancel.Load() {
		existing.mu.Lock()
		terminal := existing.status.terminal()
		existing.mu.Unlock()
		if !terminal {
			s.metrics.jobsCoalesced.Add(1)
			s.mu.Unlock()
			s.bus.Publish(obs.Event{
				Type: "job.coalesced", Job: existing.id, Kind: spec.Kind,
				SpecHash: hash, RequestID: reqID,
			})
			return existing, existing.view(), nil
		}
	}
	if entry, hit := s.cache.get(hash); hit {
		j.cacheHit = true
		j.status = StatusDone
		r := entry.result
		j.result = &r
		j.records = entry.records
		j.truncated = entry.truncated
		j.started, j.finished = now, now
		s.metrics.cacheHits.Add(1)
		s.metrics.jobsCompleted.Add(1)
	} else {
		// Reject before touching counters or IDs so a shed request
		// leaves no trace in the metrics.
		select {
		case s.queue <- j:
		default:
			s.mu.Unlock()
			return nil, JobView{}, ErrQueueFull
		}
		s.pending[hash] = j
		s.metrics.cacheMisses.Add(1)
	}
	s.nextID++
	j.id = fmt.Sprintf("r-%d", s.nextID)
	s.metrics.jobsSubmitted.Add(1)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()
	s.bus.Publish(obs.Event{
		Type: "job.submitted", Job: j.id, Kind: spec.Kind,
		SpecHash: hash, RequestID: reqID,
	})
	if j.cacheHit {
		s.bus.Publish(obs.Event{
			Type: "job.done", Job: j.id, Kind: spec.Kind, SpecHash: hash,
			RequestID: reqID, Status: string(StatusDone), Detail: "cache hit",
		})
	}
	s.logger.Debug("job submitted", "job", j.id, "kind", spec.Kind,
		"spec_hash", hash, "cache_hit", j.cacheHit, "request_id", reqID)
	return j, j.view(), nil
}

// evictLocked drops the oldest terminal jobs beyond the MaxJobs bound so
// the daemon's job history cannot grow without limit. Callers hold s.mu.
func (s *Service) evictLocked() {
	if len(s.order) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.opts.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		evictable := j.status.terminal()
		j.mu.Unlock()
		if excess > 0 && evictable {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// dropPersisted is the retention-consistency hook the store's GC calls
// (outside the store lock) with the spec hashes it dropped: the matching
// result-cache entries are evicted — a later identical submission re-runs
// instead of serving a result the disk no longer backs — and terminal
// history jobs for those hashes are evicted with them. Live jobs
// (queued/running) are untouched; they will re-persist on finish.
func (s *Service) dropPersisted(hashes []string) {
	if len(hashes) == 0 {
		return
	}
	cacheEvicted := s.cache.remove(hashes)
	dropped := make(map[string]bool, len(hashes))
	for _, h := range hashes {
		dropped[h] = true
	}
	s.mu.Lock()
	kept := s.order[:0]
	jobsEvicted := 0
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		evictable := dropped[j.hash] && j.status.terminal()
		j.mu.Unlock()
		if evictable {
			delete(s.jobs, id)
			jobsEvicted++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	s.mu.Unlock()
	s.metrics.storeGCEvicted.Add(int64(cacheEvicted))
	s.bus.Publish(obs.Event{Type: "store.gc", Detail: fmt.Sprintf(
		"retention dropped %d runs; evicted %d cache entries, %d history jobs",
		len(hashes), cacheEvicted, jobsEvicted)})
	s.logger.Info("store gc", "hashes_dropped", len(hashes),
		"cache_evicted", cacheEvicted, "jobs_evicted", jobsEvicted)
}

// Get returns a job's current state.
func (s *Service) Get(id string) (JobView, error) {
	j, err := s.job(id)
	if err != nil {
		return JobView{}, err
	}
	return j.view(), nil
}

// List returns all jobs in submission order.
func (s *Service) List() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Cancel requests cancellation. Queued jobs are dropped when a worker
// dequeues them; running jobs abort at their next observer round (engines
// without observer support — gossip — run to completion). Terminal jobs
// return ErrTerminal.
func (s *Service) Cancel(id string) (JobView, error) {
	j, err := s.job(id)
	if err != nil {
		return JobView{}, err
	}
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return j.view(), ErrTerminal
	}
	j.mu.Unlock()
	j.cancel.Store(true)
	// A cancel-flagged job must stop absorbing identical submissions.
	s.mu.Lock()
	if s.pending[j.hash] == j {
		delete(s.pending, j.hash)
	}
	s.mu.Unlock()
	return j.view(), nil
}

// Records returns the stored round records from index i on, whether the
// job is terminal, and a channel closed at the next update — the follow
// primitive for embedding users (the HTTP stream endpoint holds the job
// directly so it survives history eviction).
func (s *Service) Records(id string, i int) ([]RoundRecord, bool, <-chan struct{}, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, false, nil, err
	}
	recs, terminal, notify := j.recordsFrom(i)
	return recs, terminal, notify, nil
}

func (s *Service) job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// worker executes queued jobs until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if j.cancel.Load() {
			s.finish(j, StatusCancelled, nil, "cancelled before start")
			continue
		}
		j.mu.Lock()
		j.status = StatusRunning
		j.started = time.Now()
		j.wake()
		j.mu.Unlock()

		s.bus.Publish(obs.Event{
			Type: "job.started", Job: j.id, Kind: j.spec.Kind,
			SpecHash: j.hash, RequestID: j.reqID,
		})

		s.metrics.workersBusy.Add(1)
		max := s.opts.MaxRecords
		// All per-run observability is resolved here, once: the per-kind
		// rounds counter, the bus handle and the progress-event prototype.
		// The per-round cost inside the observer is then just
		// RunTracker.Tick — a few atomics, zero allocations (see
		// BenchmarkObservedRun).
		tracker := obs.NewRunTracker(
			s.metrics.roundsTotal.With(j.spec.Kind), s.bus, 0,
			obs.Event{
				Type: "job.progress", Job: j.id, Kind: j.spec.Kind,
				SpecHash: j.hash, RequestID: j.reqID,
			})
		res, err := Execute(j.spec,
			func(rec RoundRecord) {
				tracker.Tick(rec.Round)
				j.appendRecord(max, rec)
			},
			j.cancel.Load)
		s.metrics.workersBusy.Add(-1)

		switch {
		case err == nil:
			s.finish(j, StatusDone, &res, "")
		case errors.Is(err, ErrCancelled):
			s.finish(j, StatusCancelled, nil, "cancelled while running")
		default:
			s.finish(j, StatusFailed, nil, err.Error())
		}
	}
}

// finish moves a job to a terminal state, records its lifecycle timing,
// and, for successful runs, stores the result in the cache.
func (s *Service) finish(j *Job, st Status, res *RunResult, errMsg string) {
	j.mu.Lock()
	j.status = st
	j.finished = time.Now()
	records, truncated := j.records, j.truncated
	created, started, finished := j.created, j.started, j.finished
	// The timing breakdown is attached before the result is shared with
	// the view, the cache and the store, so every copy carries it.
	if res != nil {
		timing := &engine.RunTiming{
			QueueWaitSeconds: started.Sub(created).Seconds(),
			RunSeconds:       finished.Sub(started).Seconds(),
			TotalSeconds:     finished.Sub(created).Seconds(),
			RecordsEmitted:   len(records),
			RecordsTruncated: truncated,
		}
		if timing.RunSeconds > 0 {
			timing.RoundsPerSec = float64(res.Rounds) / timing.RunSeconds
		}
		res.Timing = timing
	}
	j.result = res
	j.errMsg = errMsg
	j.wake()
	j.mu.Unlock()

	// Latency observations: queue wait for anything a worker picked up,
	// run duration and rounds only for runs that actually executed.
	kind := j.spec.Kind
	if !started.IsZero() {
		s.metrics.queueWait.ObserveDuration(started.Sub(created))
	}
	var elapsed float64
	switch st {
	case StatusDone:
		elapsed = finished.Sub(started).Seconds()
		s.metrics.runDuration.With(kind).ObserveDuration(finished.Sub(started))
		s.metrics.roundsPerRun.With(kind).Observe(int64(res.Rounds))
		// Cache before clearing the pending entry: a concurrent Submit
		// that misses the pending map must then hit the cache.
		s.cache.put(j.hash, &cacheEntry{result: *res, records: records, truncated: truncated})
		s.metrics.jobsCompleted.Add(1)
		// Write through to the persistent store. A write failure must not
		// fail the job — the result is correct and cached — so it is only
		// counted (store_append_errors in /v1/metrics) and surfaced as a
		// store.error event.
		if err := s.store.Append(StoredRun{
			ID: j.id, SpecHash: j.hash, Spec: j.spec, RequestID: j.reqID,
			Result: *res, Records: records, Truncated: truncated,
			Created: created, Started: started, Finished: finished,
		}); err != nil {
			s.metrics.storeAppendErrors.Add(1)
			s.bus.Publish(obs.Event{Type: "store.error", Job: j.id, SpecHash: j.hash, Detail: err.Error()})
			s.logger.Error("store append failed", "job", j.id, "error", err)
		} else if _, inMemory := s.store.(nullStore); !inMemory {
			s.bus.Publish(obs.Event{Type: "store.appended", Job: j.id, SpecHash: j.hash})
		}
	case StatusFailed:
		elapsed = finished.Sub(started).Seconds()
		s.metrics.jobsFailed.Add(1)
	case StatusCancelled:
		if !started.IsZero() {
			elapsed = finished.Sub(started).Seconds()
		}
		s.metrics.jobsCancelled.Add(1)
	}
	s.bus.Publish(obs.Event{
		Type: "job." + string(st), Job: j.id, Kind: kind, SpecHash: j.hash,
		RequestID: j.reqID, Status: string(st), Elapsed: elapsed, Detail: errMsg,
	})
	s.logger.Info("job finished", "job", j.id, "kind", kind, "status", st,
		"elapsed", elapsed, "error", errMsg, "request_id", j.reqID)
	s.mu.Lock()
	if s.pending[j.hash] == j {
		delete(s.pending, j.hash)
	}
	s.mu.Unlock()
}

package service

import "sync/atomic"

// Metrics holds the service's monotonic counters and gauges. All fields are
// updated atomically; Snapshot returns a consistent-enough JSON view (the
// counters are independent, so exact cross-counter consistency is not
// needed for monitoring).
type Metrics struct {
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsCoalesced atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	workersBusy   atomic.Int64
	workers       int
	queueDepth    func() int
}

// MetricsSnapshot is the JSON body of GET /v1/metrics.
type MetricsSnapshot struct {
	// JobsSubmitted counts every accepted POST /v1/runs.
	JobsSubmitted int64 `json:"jobs_submitted"`
	// JobsCompleted counts jobs that reached "done" (cache hits included).
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	// JobsCoalesced counts submissions answered by an identical job
	// already queued or running (no new job was created).
	JobsCoalesced int64 `json:"jobs_coalesced"`
	// CacheHits / CacheMisses count result-cache lookups at submit time.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Workers is the pool size; WorkersBusy the number currently running a
	// job; QueueDepth the number of jobs waiting for a worker.
	Workers     int   `json:"workers"`
	WorkersBusy int64 `json:"workers_busy"`
	QueueDepth  int   `json:"queue_depth"`
	// WorkerUtilization is WorkersBusy/Workers in [0,1].
	WorkerUtilization float64 `json:"worker_utilization"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		JobsSubmitted: m.jobsSubmitted.Load(),
		JobsCompleted: m.jobsCompleted.Load(),
		JobsFailed:    m.jobsFailed.Load(),
		JobsCancelled: m.jobsCancelled.Load(),
		JobsCoalesced: m.jobsCoalesced.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Workers:       m.workers,
		WorkersBusy:   m.workersBusy.Load(),
	}
	if m.queueDepth != nil {
		s.QueueDepth = m.queueDepth()
	}
	if s.Workers > 0 {
		s.WorkerUtilization = float64(s.WorkersBusy) / float64(s.Workers)
	}
	return s
}

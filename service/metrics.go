package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/service/store"
)

// Metrics holds the service's monotonic counters and gauges. All fields are
// updated atomically; Snapshot returns a consistent-enough JSON view (the
// counters are independent, so exact cross-counter consistency is not
// needed for monitoring).
type Metrics struct {
	jobsSubmitted       atomic.Int64
	jobsCompleted       atomic.Int64
	jobsFailed          atomic.Int64
	jobsCancelled       atomic.Int64
	jobsCoalesced       atomic.Int64
	cacheHits           atomic.Int64
	cacheMisses         atomic.Int64
	rateLimited         atomic.Int64
	batchesRun          atomic.Int64
	batchCellsExpanded  atomic.Int64
	batchCellsCached    atomic.Int64
	batchCellsCoalesced atomic.Int64
	storeAppendErrors   atomic.Int64
	workersBusy         atomic.Int64
	workers             int
	queueDepth          func() int
	storeStats          func() store.Stats
}

// MetricsSnapshot is the JSON body of GET /v1/metrics.
type MetricsSnapshot struct {
	// JobsSubmitted counts every accepted POST /v1/runs.
	JobsSubmitted int64 `json:"jobs_submitted"`
	// JobsCompleted counts jobs that reached "done" (cache hits included).
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	// JobsCoalesced counts submissions answered by an identical job
	// already queued or running (no new job was created).
	JobsCoalesced int64 `json:"jobs_coalesced"`
	// CacheHits / CacheMisses count result-cache lookups at submit time.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// RateLimited counts submit requests shed with 429.
	RateLimited int64 `json:"rate_limited"`
	// BatchesRun counts POST /v1/batches requests that started running;
	// BatchCellsExpanded the cells they expanded to; BatchCellsCached the
	// cells answered from the result cache; BatchCellsCoalesced the cells
	// absorbed by an identical cell earlier in the same batch.
	BatchesRun          int64 `json:"batches_run"`
	BatchCellsExpanded  int64 `json:"batch_cells_expanded"`
	BatchCellsCached    int64 `json:"batch_cells_cached"`
	BatchCellsCoalesced int64 `json:"batch_cells_coalesced"`
	// Store* report the persistent store (all zero when running in-memory
	// only): records recovered by the last open, records dropped during
	// recovery (corrupt tail or superseded duplicates), records appended
	// by this process, the current file size, compacting rewrites, and
	// write-through failures.
	StoreRecordsLoaded   int64 `json:"store_records_loaded"`
	StoreRecordsDropped  int64 `json:"store_records_dropped"`
	StoreRecordsUnknown  int64 `json:"store_records_unknown"`
	StoreRecordsAppended int64 `json:"store_records_appended"`
	StoreBytes           int64 `json:"store_bytes"`
	StoreCompactions     int64 `json:"store_compactions"`
	StoreAppendErrors    int64 `json:"store_append_errors"`
	// Workers is the pool size; WorkersBusy the number currently running a
	// job; QueueDepth the number of jobs waiting for a worker.
	Workers     int   `json:"workers"`
	WorkersBusy int64 `json:"workers_busy"`
	QueueDepth  int   `json:"queue_depth"`
	// WorkerUtilization is WorkersBusy/Workers in [0,1].
	WorkerUtilization float64 `json:"worker_utilization"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		JobsSubmitted:       m.jobsSubmitted.Load(),
		JobsCompleted:       m.jobsCompleted.Load(),
		JobsFailed:          m.jobsFailed.Load(),
		JobsCancelled:       m.jobsCancelled.Load(),
		JobsCoalesced:       m.jobsCoalesced.Load(),
		CacheHits:           m.cacheHits.Load(),
		CacheMisses:         m.cacheMisses.Load(),
		RateLimited:         m.rateLimited.Load(),
		BatchesRun:          m.batchesRun.Load(),
		BatchCellsExpanded:  m.batchCellsExpanded.Load(),
		BatchCellsCached:    m.batchCellsCached.Load(),
		BatchCellsCoalesced: m.batchCellsCoalesced.Load(),
		Workers:             m.workers,
		WorkersBusy:         m.workersBusy.Load(),
	}
	if m.queueDepth != nil {
		s.QueueDepth = m.queueDepth()
	}
	if m.storeStats != nil {
		st := m.storeStats()
		s.StoreRecordsLoaded = st.RecordsLoaded
		s.StoreRecordsDropped = st.RecordsDropped
		s.StoreRecordsUnknown = st.RecordsUnknown
		s.StoreRecordsAppended = st.RecordsAppended
		s.StoreBytes = st.Bytes
		s.StoreCompactions = st.Compactions
	}
	s.StoreAppendErrors = m.storeAppendErrors.Load()
	if s.Workers > 0 {
		s.WorkerUtilization = float64(s.WorkersBusy) / float64(s.Workers)
	}
	return s
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), the body GET /v1/metrics serves to scrapers that
// ask for text/plain.
func (s MetricsSnapshot) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("consensusd_jobs_submitted_total", "Accepted run submissions.", s.JobsSubmitted)
	counter("consensusd_jobs_completed_total", "Jobs that reached done (cache hits included).", s.JobsCompleted)
	counter("consensusd_jobs_failed_total", "Jobs that failed.", s.JobsFailed)
	counter("consensusd_jobs_cancelled_total", "Jobs cancelled.", s.JobsCancelled)
	counter("consensusd_jobs_coalesced_total", "Submissions absorbed by an identical in-flight job.", s.JobsCoalesced)
	counter("consensusd_cache_hits_total", "Result-cache hits at submit time.", s.CacheHits)
	counter("consensusd_cache_misses_total", "Result-cache misses at submit time.", s.CacheMisses)
	counter("consensusd_rate_limited_total", "Submit requests shed with 429.", s.RateLimited)
	counter("consensusd_batches_run_total", "Batch requests that started running.", s.BatchesRun)
	counter("consensusd_batch_cells_expanded_total", "Cells expanded from batch requests.", s.BatchCellsExpanded)
	counter("consensusd_batch_cells_cached_total", "Batch cells answered from the result cache.", s.BatchCellsCached)
	counter("consensusd_batch_cells_coalesced_total", "Batch cells absorbed by an identical earlier cell.", s.BatchCellsCoalesced)
	counter("consensusd_store_records_loaded_total", "Records recovered from the persistent store at startup.", s.StoreRecordsLoaded)
	counter("consensusd_store_records_dropped_total", "Store records dropped during recovery (corrupt or superseded).", s.StoreRecordsDropped)
	counter("consensusd_store_records_unknown_total", "Intact store records this binary cannot decode (preserved, not loaded).", s.StoreRecordsUnknown)
	counter("consensusd_store_records_appended_total", "Records written through to the persistent store.", s.StoreRecordsAppended)
	counter("consensusd_store_compactions_total", "Compacting rewrites of the persistent store.", s.StoreCompactions)
	counter("consensusd_store_append_errors_total", "Failed store write-throughs (job still completed).", s.StoreAppendErrors)
	gauge("consensusd_store_bytes", "Persistent store file size in bytes.", float64(s.StoreBytes))
	gauge("consensusd_workers", "Worker pool size.", float64(s.Workers))
	gauge("consensusd_workers_busy", "Workers currently running a job.", float64(s.WorkersBusy))
	gauge("consensusd_queue_depth", "Jobs waiting for a worker.", float64(s.QueueDepth))
	gauge("consensusd_worker_utilization", "WorkersBusy divided by Workers.", s.WorkerUtilization)
}

package service

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/buildinfo"
	"repro/obs"
	"repro/service/store"
)

// Metrics is the service's metric surface, built on one obs.Registry so
// the JSON and Prometheus expositions of GET /v1/metrics are rendered from
// the same registry walk — a metric cannot exist in one format and be
// missing (or stale-named) in the other. The named fields are the handles
// the service's hot paths update; derived gauges (queue depth, utilization,
// store stats, uptime) are registered as collect-time functions.
type Metrics struct {
	reg *obs.Registry

	jobsSubmitted       *obs.Counter
	jobsCompleted       *obs.Counter
	jobsFailed          *obs.Counter
	jobsCancelled       *obs.Counter
	jobsCoalesced       *obs.Counter
	cacheHits           *obs.Counter
	cacheMisses         *obs.Counter
	rateLimited         *obs.Counter
	batchesRun          *obs.Counter
	batchCellsExpanded  *obs.Counter
	batchCellsCached    *obs.Counter
	batchCellsCoalesced *obs.Counter
	storeAppendErrors   *obs.Counter
	storeGCEvicted      *obs.Counter
	workersBusy         *obs.Gauge

	// Run-lifecycle latency breakdown (seconds, log2 buckets).
	runDuration  *obs.HistogramVec // by kind
	queueWait    *obs.Histogram
	roundsPerRun *obs.HistogramVec // by kind, unit: rounds
	roundsTotal  *obs.CounterVec   // by kind

	httpDuration *obs.HistogramVec // by route, status

	eventsPublished *obs.Counter
	eventsDropped   *obs.Counter

	start time.Time
}

// newMetrics builds the registry and registers the full metric catalogue.
// queueDepth and storeStats are read at every scrape.
func newMetrics(workers int, queueDepth func() int, storeStats func() store.Stats) *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{
		reg:   r,
		start: time.Now(),

		jobsSubmitted:       r.Counter("consensusd_jobs_submitted_total", "jobs_submitted", "Accepted run submissions."),
		jobsCompleted:       r.Counter("consensusd_jobs_completed_total", "jobs_completed", "Jobs that reached done (cache hits included)."),
		jobsFailed:          r.Counter("consensusd_jobs_failed_total", "jobs_failed", "Jobs that failed."),
		jobsCancelled:       r.Counter("consensusd_jobs_cancelled_total", "jobs_cancelled", "Jobs cancelled."),
		jobsCoalesced:       r.Counter("consensusd_jobs_coalesced_total", "jobs_coalesced", "Submissions absorbed by an identical in-flight job."),
		cacheHits:           r.Counter("consensusd_cache_hits_total", "cache_hits", "Result-cache hits at submit time."),
		cacheMisses:         r.Counter("consensusd_cache_misses_total", "cache_misses", "Result-cache misses at submit time."),
		rateLimited:         r.Counter("consensusd_rate_limited_total", "rate_limited", "Submit requests shed with 429."),
		batchesRun:          r.Counter("consensusd_batches_run_total", "batches_run", "Batch requests that started running."),
		batchCellsExpanded:  r.Counter("consensusd_batch_cells_expanded_total", "batch_cells_expanded", "Cells expanded from batch requests."),
		batchCellsCached:    r.Counter("consensusd_batch_cells_cached_total", "batch_cells_cached", "Batch cells answered from the result cache."),
		batchCellsCoalesced: r.Counter("consensusd_batch_cells_coalesced_total", "batch_cells_coalesced", "Batch cells absorbed by an identical earlier cell."),
		storeAppendErrors:   r.Counter("consensusd_store_append_errors_total", "store_append_errors", "Failed store write-throughs (job still completed)."),
		storeGCEvicted:      r.Counter("consensusd_store_gc_cache_evictions_total", "store_gc_cache_evictions", "Result-cache entries evicted in step with store retention GC."),
		workersBusy:         r.Gauge("consensusd_workers_busy", "workers_busy", "Workers currently running a job."),

		runDuration: r.HistogramVec("consensusd_run_duration_seconds", "run_duration_seconds",
			"Engine execution time of completed runs.", 1e-9, "kind"),
		queueWait: r.Histogram("consensusd_run_queue_wait_seconds", "run_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", 1e-9),
		roundsPerRun: r.HistogramVec("consensusd_rounds_per_run", "rounds_per_run",
			"Rounds executed per completed run.", 1, "kind"),
		roundsTotal: r.CounterVec("consensusd_rounds_total", "rounds_total",
			"Rounds executed across all runs.", "kind"),

		httpDuration: r.HistogramVec("consensusd_http_request_duration_seconds", "http_request_duration_seconds",
			"HTTP request latency by matched route and status.", 1e-9, "route", "status"),

		eventsPublished: r.Counter("consensusd_events_published_total", "events_published", "Events published on the live event bus."),
		eventsDropped:   r.Counter("consensusd_events_dropped_total", "events_dropped", "Events dropped on subscribers too slow to keep up."),
	}

	r.GaugeFunc("consensusd_workers", "workers", "Worker pool size.",
		func() float64 { return float64(workers) })
	r.GaugeFunc("consensusd_queue_depth", "queue_depth", "Jobs waiting for a worker.",
		func() float64 { return float64(queueDepth()) })
	r.GaugeFunc("consensusd_worker_utilization", "worker_utilization", "WorkersBusy divided by Workers.",
		func() float64 {
			if workers <= 0 {
				return 0
			}
			return float64(m.workersBusy.Value()) / float64(workers)
		})
	r.GaugeFunc("consensusd_uptime_seconds", "uptime_seconds", "Seconds since the service started.",
		func() float64 { return time.Since(m.start).Seconds() })
	r.Info("consensusd_build_info", "build_info", "Build identity of the running binary (constant 1).",
		[]string{"version", "revision", "goversion"},
		[]string{buildinfo.Version, buildinfo.Revision(), buildinfo.GoVersion()})

	ctrFn := func(name, jsonName, help string, fn func(store.Stats) int64) {
		r.CounterFunc(name, jsonName, help, func() float64 { return float64(fn(storeStats())) })
	}
	ctrFn("consensusd_store_records_loaded_total", "store_records_loaded",
		"Records recovered from the persistent store at startup.",
		func(st store.Stats) int64 { return st.RecordsLoaded })
	ctrFn("consensusd_store_records_dropped_total", "store_records_dropped",
		"Store records dropped during recovery (corrupt or superseded).",
		func(st store.Stats) int64 { return st.RecordsDropped })
	ctrFn("consensusd_store_records_unknown_total", "store_records_unknown",
		"Intact store records this binary cannot decode (preserved, not loaded).",
		func(st store.Stats) int64 { return st.RecordsUnknown })
	ctrFn("consensusd_store_records_appended_total", "store_records_appended",
		"Records written through to the persistent store.",
		func(st store.Stats) int64 { return st.RecordsAppended })
	ctrFn("consensusd_store_compactions_total", "store_compactions",
		"Compacting rewrites of the persistent store.",
		func(st store.Stats) int64 { return st.Compactions })
	ctrFn("consensusd_store_records_old_spec_total", "store_records_old_spec",
		"Intact store records under a different spec-codec version (preserved, not loaded).",
		func(st store.Stats) int64 { return st.RecordsOldSpec })
	ctrFn("consensusd_store_gc_records_dropped_total", "store_gc_records_dropped",
		"Store records dropped by the retention policy (age or byte budget).",
		func(st store.Stats) int64 { return st.GCRecordsDropped })
	ctrFn("consensusd_store_gc_bytes_reclaimed_total", "store_gc_bytes_reclaimed",
		"File bytes reclaimed by retention compactions.",
		func(st store.Stats) int64 { return st.GCBytesReclaimed })
	ctrFn("consensusd_store_gc_compactions_total", "store_gc_compactions",
		"Retention (background or forced) compacting rewrites.",
		func(st store.Stats) int64 { return st.GCCompactions })
	r.GaugeFunc("consensusd_store_bytes", "store_bytes", "Persistent store file size in bytes.",
		func() float64 { return float64(storeStats().Bytes) })

	return m
}

// MetricsSnapshot is the typed view of the scalar counters and gauges of
// GET /v1/metrics — the decoding target Go clients and tests use. The JSON
// body itself is rendered straight from the registry (see Service.Handler),
// so it additionally carries the histogram and labeled families this
// struct does not model.
type MetricsSnapshot struct {
	// JobsSubmitted counts every accepted POST /v1/runs.
	JobsSubmitted int64 `json:"jobs_submitted"`
	// JobsCompleted counts jobs that reached "done" (cache hits included).
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	// JobsCoalesced counts submissions answered by an identical job
	// already queued or running (no new job was created).
	JobsCoalesced int64 `json:"jobs_coalesced"`
	// CacheHits / CacheMisses count result-cache lookups at submit time.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// RateLimited counts submit requests shed with 429.
	RateLimited int64 `json:"rate_limited"`
	// BatchesRun counts POST /v1/batches requests that started running;
	// BatchCellsExpanded the cells they expanded to; BatchCellsCached the
	// cells answered from the result cache; BatchCellsCoalesced the cells
	// absorbed by an identical cell earlier in the same batch.
	BatchesRun          int64 `json:"batches_run"`
	BatchCellsExpanded  int64 `json:"batch_cells_expanded"`
	BatchCellsCached    int64 `json:"batch_cells_cached"`
	BatchCellsCoalesced int64 `json:"batch_cells_coalesced"`
	// Store* report the persistent store (all zero when running in-memory
	// only): records recovered by the last open, records dropped during
	// recovery (corrupt tail or superseded duplicates), records appended
	// by this process, the current file size, compacting rewrites, and
	// write-through failures.
	StoreRecordsLoaded   int64 `json:"store_records_loaded"`
	StoreRecordsDropped  int64 `json:"store_records_dropped"`
	StoreRecordsUnknown  int64 `json:"store_records_unknown"`
	StoreRecordsAppended int64 `json:"store_records_appended"`
	StoreBytes           int64 `json:"store_bytes"`
	StoreCompactions     int64 `json:"store_compactions"`
	StoreAppendErrors    int64 `json:"store_append_errors"`
	// StoreRecordsOldSpec counts intact records persisted under a
	// different spec-codec version — preserved opaquely, never served.
	StoreRecordsOldSpec int64 `json:"store_records_old_spec"`
	// StoreGC* report the retention policy: records dropped (age or byte
	// budget), file bytes reclaimed by retention rewrites, the rewrites
	// themselves, and the result-cache entries evicted in step.
	StoreGCRecordsDropped int64 `json:"store_gc_records_dropped"`
	StoreGCBytesReclaimed int64 `json:"store_gc_bytes_reclaimed"`
	StoreGCCompactions    int64 `json:"store_gc_compactions"`
	StoreGCCacheEvictions int64 `json:"store_gc_cache_evictions"`
	// Workers is the pool size; WorkersBusy the number currently running a
	// job; QueueDepth the number of jobs waiting for a worker.
	Workers     int   `json:"workers"`
	WorkersBusy int64 `json:"workers_busy"`
	QueueDepth  int   `json:"queue_depth"`
	// WorkerUtilization is WorkersBusy/Workers in [0,1].
	WorkerUtilization float64 `json:"worker_utilization"`
	// EventsPublished / EventsDropped count the live event bus's published
	// events and its slow-subscriber drops.
	EventsPublished int64 `json:"events_published"`
	EventsDropped   int64 `json:"events_dropped"`
	// EventSubscribers is the number of /v1/events consumers attached.
	EventSubscribers int `json:"event_subscribers"`
	// UptimeSeconds is the time since the service started.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Snapshot renders the typed view through the same registry walk the HTTP
// expositions use: marshal the JSON map, decode the scalar fields. Going
// through the registry (rather than reading counters directly) is what
// guarantees the typed view cannot drift from what /v1/metrics serves.
func (m *Metrics) Snapshot() MetricsSnapshot {
	raw, err := json.Marshal(m.reg.JSONMap())
	if err != nil {
		return MetricsSnapshot{}
	}
	var s MetricsSnapshot
	_ = json.Unmarshal(raw, &s)
	return s
}

// JSONMap returns the full JSON exposition (histograms and labeled
// families included) from one registry walk.
func (m *Metrics) JSONMap() map[string]any { return m.reg.JSONMap() }

// WritePrometheus renders the Prometheus text exposition (format 0.0.4)
// from one registry walk.
func (m *Metrics) WritePrometheus(w io.Writer) { m.reg.WritePrometheus(w) }

package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/engine"
	"repro/multidim"
	"repro/service"
	"repro/service/client"
)

// newHTTPService is service.New for tests without a failing store path.
func newHTTPService(t *testing.T, opts service.Options) *service.Service {
	t.Helper()
	s, err := service.New(opts)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	return s
}

// TestEndToEndHTTP drives the full acceptance flow over httptest: submit a
// two-value median run with n=1e5 via the typed client, poll to completion,
// stream the NDJSON records, verify the cache-hit counter on resubmission.
func TestEndToEndHTTP(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	spec := service.Spec{Seed: 1, Payload: &service.MedianSpec{
		Init: service.InitSpec{Kind: "twovalue", N: 100000},
		Rule: service.RuleSpec{Name: "median"},
	}}
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, view.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("run did not complete: %+v", final)
	}
	if final.Result.Reason != "consensus" || final.Result.WinnerCount != 100000 {
		t.Fatalf("run did not converge: %+v", final.Result)
	}
	if final.Result.Winner != 1 && final.Result.Winner != 2 {
		t.Fatalf("winner %d not an initial value", final.Result.Winner)
	}

	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != final.Result.Rounds+1 {
		t.Fatalf("streamed %d records, want initial state + one per round (%d)", len(streamed), final.Result.Rounds+1)
	}
	for i, r := range streamed {
		if r.Round != i || r.N != 100000 {
			t.Fatalf("bad stream record %d: %+v", i, r)
		}
	}

	// Identical resubmission: answered from the cache, visible in metrics.
	again, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Status != service.StatusDone {
		t.Fatalf("resubmission must be a cache hit: %+v", again)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", m.CacheHits)
	}
	if m.Workers != 2 || m.JobsSubmitted != 2 {
		t.Fatalf("unexpected metrics: %+v", m)
	}

	runs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("listed %d runs, want 2", len(runs))
	}

	// Unknown ids are 404s.
	if _, err := c.Get(ctx, "r-999"); err == nil {
		t.Fatal("get of unknown id must fail")
	}
}

// TestExactEndToEndHTTP: POST /v1/runs with kind exact answers from the
// analytic chain — no simulation behind the result — and streams one
// absorption-CDF record per propagated round through the same NDJSON
// surface as every simulated run. Resubmission hits the cache like any
// other kind.
func TestExactEndToEndHTTP(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	spec := service.Spec{Kind: service.KindExact, Payload: &service.ExactSpec{N: 60, Start: 20}}
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, view.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("run did not complete: %+v", final)
	}
	res := final.Result
	if res.Reason != "analytic" || res.Exact == nil {
		t.Fatalf("exact run must report analytic results: %+v", res)
	}
	if res.Exact.ExpectedRounds <= 0 || res.Exact.ExpectedRounds > 100 {
		t.Fatalf("implausible expected rounds %v", res.Exact.ExpectedRounds)
	}
	if res.Exact.WinProbability <= 0 || res.Exact.WinProbability >= 0.5 {
		t.Fatalf("start 20 of 60 must give the low value a win probability in (0, 0.5), got %v",
			res.Exact.WinProbability)
	}

	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != res.Rounds+1 {
		t.Fatalf("streamed %d records, want %d", len(streamed), res.Rounds+1)
	}
	for i, r := range streamed {
		if r.Round != i || r.N != 60 {
			t.Fatalf("bad stream record %d: %+v", i, r)
		}
		if r.Absorbed < 0 || r.Absorbed > 1 {
			t.Fatalf("record %d absorbed %v outside [0, 1]", i, r.Absorbed)
		}
		if i > 0 && r.Absorbed < streamed[i-1].Absorbed {
			t.Fatalf("absorption CDF decreases at record %d", i)
		}
	}
	if last := streamed[len(streamed)-1].Absorbed; last < 0.999 {
		t.Fatalf("stream ends with CDF %v, want near 1", last)
	}

	again, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("identical exact resubmission must be a cache hit: %+v", again)
	}
}

// TestBatchEndToEndHTTP drives the batch acceptance flow over httptest: a
// 2-axis grid is expanded server-side, streamed cell by cell, and a second
// identical submission is served entirely from the cache.
func TestBatchEndToEndHTTP(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	req := service.BatchRequest{
		Template: service.Spec{Seed: 1, Payload: &service.MedianSpec{
			Init: service.InitSpec{Kind: "twovalue"},
			Rule: service.RuleSpec{Name: "median"},
		}},
		Axes: []service.Axis{
			{Param: "n", Values: []float64{500, 1000}},
			{Param: "seed", Values: []float64{1, 2}},
		},
	}
	var first []service.BatchCellRecord
	if err := c.Batch(ctx, req, func(r service.BatchCellRecord) error {
		first = append(first, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(first) != 4 {
		t.Fatalf("streamed %d cells, want 4", len(first))
	}
	for i, r := range first {
		if r.Index != i || r.Status != service.StatusDone || r.Result == nil {
			t.Fatalf("bad cell record %d: %+v", i, r)
		}
		if r.Result.Reason != "consensus" {
			t.Fatalf("cell %d did not converge: %+v", i, r.Result)
		}
	}

	var second []service.BatchCellRecord
	if err := c.Batch(ctx, req, func(r service.BatchCellRecord) error {
		second = append(second, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if !r.CacheHit || r.Status != service.StatusDone {
			t.Fatalf("second batch cell %d must be a cache hit: %+v", i, r)
		}
		if r.SpecHash != first[i].SpecHash {
			t.Fatalf("cell %d hash changed between identical batches", i)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.BatchesRun != 2 || m.BatchCellsExpanded != 8 || m.BatchCellsCached != 4 {
		t.Fatalf("batch metrics: %+v", m)
	}

	// Invalid grids are rejected before any cell runs.
	bad := service.BatchRequest{Template: req.Template, Axes: []service.Axis{{Param: "warp", Values: []float64{1}}}}
	if err := c.Batch(ctx, bad, func(service.BatchCellRecord) error { return nil }); err == nil {
		t.Fatal("invalid batch must be rejected")
	}
}

// TestBodySizeCap: submissions beyond MaxBodyBytes get 413 on both submit
// endpoints.
func TestBodySizeCap(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1, MaxBodyBytes: 256})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"init":{"kind":"blocks","counts":[` + strings.Repeat("1,", 400) + `1]},"rule":{"name":"median"}}`
	for _, path := range []string{"/v1/runs", "/v1/batches"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(big)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with oversized body: status %d, want 413", path, resp.StatusCode)
		}
	}
	// A small spec still fits.
	small := `{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"seed":1}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader([]byte(small)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small spec: status %d, want 202", resp.StatusCode)
	}
}

// TestSubmitRateLimit: the token bucket sheds excess submit requests with
// 429 and a Retry-After hint, and counts them in the metrics.
func TestSubmitRateLimit(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1, SubmitRate: 0.001, SubmitBurst: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"seed":1}`
	codes := make([]int, 0, 3)
	var lastResp *http.Response
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
		lastResp = resp
	}
	if codes[0] != http.StatusAccepted || codes[1] != http.StatusAccepted {
		t.Fatalf("burst submissions must be admitted, got %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third submission must be rate-limited, got %v", codes)
	}
	if lastResp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}
	if m := s.Metrics(); m.RateLimited != 1 {
		t.Fatalf("rate_limited = %d, want 1", m.RateLimited)
	}
	// GET endpoints are not rate-limited.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list while rate-limited: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsContentNegotiation: JSON by default, Prometheus text format
// for scrapers that ask for text/plain or OpenMetrics.
func TestMetricsContentNegotiation(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := get("")
	if !strings.Contains(ct, "application/json") || !strings.Contains(body, `"jobs_submitted"`) {
		t.Fatalf("default metrics must stay JSON: %s %q", ct, body)
	}
	ct, body = get("application/json")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("explicit JSON accept must win: %s", ct)
	}
	ct, body = get("text/plain")
	if !strings.Contains(ct, "text/plain") ||
		!strings.Contains(body, "# TYPE consensusd_jobs_submitted_total counter") ||
		!strings.Contains(body, "consensusd_batch_cells_expanded_total") {
		t.Fatalf("text/plain accept must yield Prometheus exposition: %s %q", ct, body)
	}
	ct, _ = get("application/openmetrics-text; version=1.0.0, text/plain;q=0.5")
	if !strings.Contains(ct, "text/plain") {
		t.Fatalf("openmetrics accept must yield Prometheus exposition: %s", ct)
	}
}

// TestStreamFollowsLiveRun starts streaming before the run finishes and
// must still see every record exactly once.
func TestStreamFollowsLiveRun(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// voter on a ball engine converges in Θ(n) rounds — slow enough that
	// the stream attaches while the run is live.
	spec := service.Spec{Seed: 3, MaxRounds: 1 << 20, Payload: &service.MedianSpec{
		Init: service.InitSpec{Kind: "twovalue", N: 500},
		Rule: service.RuleSpec{Name: "voter"},
	}}
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, view.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("run failed: %+v", final)
	}
	if len(streamed) != final.Result.Rounds+1 {
		t.Fatalf("streamed %d records, want %d", len(streamed), final.Result.Rounds+1)
	}
	for i, r := range streamed {
		if r.Round != i {
			t.Fatalf("stream out of order at %d: %+v", i, r)
		}
	}
}

// TestEnginesEndpoint: GET /v1/engines serves every registered kind's
// descriptor, sorted by kind, independent of registration order, and the
// content matches the in-process registry exactly.
func TestEnginesEndpoint(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	descriptors, err := client.New(ts.URL).Engines(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(descriptors))
	for i, d := range descriptors {
		kinds[i] = d.Kind
	}
	want := []string{"exact", "gossip", "median", "multidim", "robust"}
	if len(kinds) < 5 {
		t.Fatalf("engines endpoint lists %d kinds, want at least 5", len(kinds))
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("engines endpoint kinds %v, want sorted %v", kinds, want)
		}
	}
	// The wire document is exactly the registry's view (stability across
	// registration order is the registry's sort guarantee).
	local := engine.Descriptors()
	wire, _ := json.Marshal(descriptors)
	reg, _ := json.Marshal(local)
	if string(wire) != string(reg) {
		t.Fatalf("wire descriptors diverge from the registry:\n%s\nvs\n%s", wire, reg)
	}
	for _, d := range descriptors {
		if len(d.Params) == 0 || d.Summary == "" {
			t.Fatalf("kind %s descriptor is empty: %+v", d.Kind, d)
		}
	}
}

// TestGossipEndToEndHTTP: a gossip spec with a named drop selector
// submits, streams round records, and a long one cancels mid-run over
// DELETE — the acceptance flow for the first-class gossip kind.
func TestGossipEndToEndHTTP(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	spec := service.Spec{Seed: 5, Kind: service.KindGossip, Payload: &service.GossipSpec{
		Init:      service.InitSpec{Kind: "twovalue", N: 600},
		CapFactor: 0.3,
		Selector:  "drop-value:1",
	}}
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, view.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("gossip run did not complete: %+v", final)
	}
	if final.Result.Reason != "consensus" || final.Result.Messages == nil {
		t.Fatalf("gossip result incomplete: %+v", final.Result)
	}
	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != final.Result.Rounds+1 {
		t.Fatalf("streamed %d records, want %d", len(streamed), final.Result.Rounds+1)
	}

	// A slow voter-rule gossip run cancels mid-simulation via DELETE.
	slow := service.Spec{Seed: 2, Kind: service.KindGossip, MaxRounds: 1 << 18,
		Payload: &service.GossipSpec{
			Init:     service.InitSpec{Kind: "twovalue", N: 2000},
			Rule:     service.RuleSpec{Name: "voter"},
			Selector: "drop-value:1",
		}}
	view, err = c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Get(ctx, view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == service.StatusDone {
			t.Fatal("gossip run finished before it could be cancelled")
		}
		if v.Records > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip run never produced a record")
		}
	}
	if _, err := c.Cancel(ctx, view.ID); err != nil {
		t.Fatal(err)
	}
	final, err = c.Wait(ctx, view.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusCancelled {
		t.Fatalf("status = %s, want cancelled (mid-run)", final.Status)
	}
	if final.Records == 0 {
		t.Fatal("a mid-run cancel must leave the rounds streamed so far")
	}
}

// TestBearerTokenAuth: with Options.AuthToken set, mutating endpoints
// demand the token (401 otherwise) while read-only endpoints stay open.
func TestBearerTokenAuth(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1, AuthToken: "s3cret"})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	spec := service.Spec{Seed: 1, Payload: &service.MedianSpec{
		Init: service.InitSpec{Kind: "twovalue", N: 100},
		Rule: service.RuleSpec{Name: "median"},
	}}

	// Unauthenticated and wrong-token submits are 401.
	for _, token := range []string{"", "wrong"} {
		c := client.New(ts.URL)
		c.Token = token
		if _, err := c.Submit(ctx, spec); err == nil || !strings.Contains(err.Error(), "401") {
			t.Fatalf("submit with token %q: %v, want 401", token, err)
		}
		if err := c.Batch(ctx, service.BatchRequest{Template: spec,
			Axes: []service.Axis{{Param: "seed", Values: []float64{1}}}},
			func(service.BatchCellRecord) error { return nil }); err == nil || !strings.Contains(err.Error(), "401") {
			t.Fatalf("batch with token %q: %v, want 401", token, err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-only list must stay open, got %d", resp.StatusCode)
	}

	// The right token passes end to end, DELETE included.
	c := client.New(ts.URL)
	c.Token = "s3cret"
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, view.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Cancelling a finished run through an unauthenticated client is 401
	// before it is 409.
	anon := client.New(ts.URL)
	if _, err := anon.Cancel(ctx, view.ID); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("unauthenticated cancel: %v, want 401", err)
	}
	if _, err := c.Cancel(ctx, view.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("authenticated cancel of finished run: %v, want 409", err)
	}
}

// TestBillionCountEndToEndHTTP is the acceptance run of the count-level
// hot path: an n = 10⁹ multidim spec completes through the HTTP service
// under the default admission limit because the count engine only ever
// materializes the O(k·d) tuple distribution — while the same population
// pinned to the per-process engine is rejected up front. Both adversary
// states are exercised: a clean run converging to consensus, and a run
// under the count-level noise adversary capped by max rounds.
func TestBillionCountEndToEndHTTP(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	const n = 1_000_000_000
	init := multidim.InitSpec{Kind: "random", N: n, D: 2, M: 2, Seed: 3}

	// Per-process at this n would need ~n·d states: admission must refuse.
	if _, err := c.Submit(ctx, service.Spec{Kind: service.KindMultidim, Seed: 1, Payload: &service.MultidimSpec{
		Init: init, Engine: multidim.EngineProcess,
	}}); err == nil || !strings.Contains(err.Error(), "materialized size") {
		t.Fatalf("per-process n=1e9 must be rejected by admission, got %v", err)
	}

	// Clean count run: admitted, converges, winner count is the full 10⁹.
	view, err := c.Submit(ctx, service.Spec{Kind: service.KindMultidim, Seed: 1, Payload: &service.MultidimSpec{
		Init: init, Engine: multidim.EngineCount,
	}})
	if err != nil {
		t.Fatalf("count n=1e9 submit: %v", err)
	}
	final, err := c.Wait(ctx, view.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("run did not complete: %+v", final)
	}
	if final.Result.Reason != "consensus" || final.Result.WinnerCount != n {
		t.Fatalf("run did not converge on the full population: %+v", final.Result)
	}
	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != final.Result.Rounds+1 {
		t.Fatalf("streamed %d records, want %d", len(streamed), final.Result.Rounds+1)
	}
	for i, r := range streamed {
		if r.Round != i || r.N != n || r.Support < 1 || r.Support > 4 {
			t.Fatalf("bad stream record %d: %+v", i, r)
		}
	}

	// Auto resolves to count here (support bound 4 ≪ n) even under the
	// noise adversary, which has a count-level implementation. The
	// adversary keeps the run alive, so cap the rounds.
	adv, err := c.Submit(ctx, service.Spec{Kind: service.KindMultidim, Seed: 1, MaxRounds: 64, Payload: &service.MultidimSpec{
		Init:      init,
		Adversary: &service.MultidimAdversarySpec{Name: "noise"},
	}})
	if err != nil {
		t.Fatalf("adversarial n=1e9 submit: %v", err)
	}
	advFinal, err := c.Wait(ctx, adv.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if advFinal.Status != service.StatusDone || advFinal.Result == nil {
		t.Fatalf("adversarial run did not complete: %+v", advFinal)
	}
	if advFinal.Result.Rounds != 64 {
		t.Fatalf("adversarial run rounds = %d, want the 64-round cap", advFinal.Result.Rounds)
	}
	if advFinal.Result.WinnerCount < n/2 {
		t.Fatalf("noise budget 1 cannot hold back 10⁹ processes: %+v", advFinal.Result)
	}
}

package service_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/consensus"
	"repro/service"
	"repro/service/client"
)

// TestEndToEndHTTP drives the full acceptance flow over httptest: submit a
// two-value median run with n=1e5 via the typed client, poll to completion,
// stream the NDJSON records, verify the cache-hit counter on resubmission.
func TestEndToEndHTTP(t *testing.T) {
	s := service.New(service.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	spec := service.Spec{
		Init: consensus.InitSpec{Kind: "twovalue", N: 100000},
		Rule: service.RuleSpec{Name: "median"},
		Seed: 1,
	}
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, view.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("run did not complete: %+v", final)
	}
	if final.Result.Reason != "consensus" || final.Result.WinnerCount != 100000 {
		t.Fatalf("run did not converge: %+v", final.Result)
	}
	if final.Result.Winner != 1 && final.Result.Winner != 2 {
		t.Fatalf("winner %d not an initial value", final.Result.Winner)
	}

	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != final.Result.Rounds+1 {
		t.Fatalf("streamed %d records, want initial state + one per round (%d)", len(streamed), final.Result.Rounds+1)
	}
	for i, r := range streamed {
		if r.Round != i || r.N != 100000 {
			t.Fatalf("bad stream record %d: %+v", i, r)
		}
	}

	// Identical resubmission: answered from the cache, visible in metrics.
	again, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Status != service.StatusDone {
		t.Fatalf("resubmission must be a cache hit: %+v", again)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", m.CacheHits)
	}
	if m.Workers != 2 || m.JobsSubmitted != 2 {
		t.Fatalf("unexpected metrics: %+v", m)
	}

	runs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("listed %d runs, want 2", len(runs))
	}

	// Unknown ids are 404s.
	if _, err := c.Get(ctx, "r-999"); err == nil {
		t.Fatal("get of unknown id must fail")
	}
}

// TestStreamFollowsLiveRun starts streaming before the run finishes and
// must still see every record exactly once.
func TestStreamFollowsLiveRun(t *testing.T) {
	s := service.New(service.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// voter on a ball engine converges in Θ(n) rounds — slow enough that
	// the stream attaches while the run is live.
	spec := service.Spec{
		Init:      consensus.InitSpec{Kind: "twovalue", N: 500},
		Rule:      service.RuleSpec{Name: "voter"},
		Seed:      3,
		MaxRounds: 1 << 20,
	}
	view, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []service.RoundRecord
	if err := c.Stream(ctx, view.ID, func(r service.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, view.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone || final.Result == nil {
		t.Fatalf("run failed: %+v", final)
	}
	if len(streamed) != final.Result.Rounds+1 {
		t.Fatalf("streamed %d records, want %d", len(streamed), final.Result.Rounds+1)
	}
	for i, r := range streamed {
		if r.Round != i {
			t.Fatalf("stream out of order at %d: %+v", i, r)
		}
	}
}

package service

import "sync"

// cacheEntry is an immutable finished run: once stored, neither the result
// nor the records slice is ever mutated, so entries can be shared between
// the cache and any number of cache-hit jobs without copying.
type cacheEntry struct {
	result    RunResult
	records   []RoundRecord
	truncated int
}

// cacheRecordBudget bounds the total round records retained across all
// cache entries (~48 bytes each, so the default is ~50 MB): entry count
// alone is a poor memory bound when single long runs carry up to
// MaxRecords records.
const cacheRecordBudget = 1 << 20

// resultCache is a bounded FIFO cache keyed by canonical spec hash.
// Simulation runs are deterministic in their spec (the effective seed is
// part of the canonical encoding or derived from its hash), so a cached
// result is exactly the result a re-run would produce — eviction is purely
// a memory bound, not a freshness concern.
type resultCache struct {
	mu           sync.Mutex
	max          int
	totalRecords int
	entries      map[string]*cacheEntry
	order        []string
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: make(map[string]*cacheEntry)}
}

func (c *resultCache) get(hash string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	return e, ok
}

func (c *resultCache) put(hash string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[hash]; dup {
		// Determinism makes the existing entry identical; keep it.
		return
	}
	c.entries[hash] = e
	c.order = append(c.order, hash)
	c.totalRecords += len(e.records)
	for len(c.order) > 1 &&
		((c.max > 0 && len(c.order) > c.max) || c.totalRecords > cacheRecordBudget) {
		oldest := c.order[0]
		c.order = c.order[1:]
		c.totalRecords -= len(c.entries[oldest].records)
		delete(c.entries, oldest)
	}
}

// remove evicts the entries for hashes, reporting how many were present.
// This is the retention-consistency hook: when the store's GC drops a
// persisted run, the cache must stop serving a result the disk no longer
// backs (a later identical submission re-runs instead).
func (c *resultCache) remove(hashes []string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for _, h := range hashes {
		e, ok := c.entries[h]
		if !ok {
			continue
		}
		c.totalRecords -= len(e.records)
		delete(c.entries, h)
		removed++
	}
	if removed > 0 {
		kept := c.order[:0]
		for _, h := range c.order {
			if _, ok := c.entries[h]; ok {
				kept = append(kept, h)
			}
		}
		c.order = kept
	}
	return removed
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

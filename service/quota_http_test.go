package service_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/service"
)

func postRun(t *testing.T, url, token, spec string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/runs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestQuotaTokens: tokens in Options.Quotas authenticate the mutating
// endpoints and are metered by their own buckets — a drained low-quota
// token gets 429 with a deficit-derived Retry-After while the admin token
// and other quota tokens keep submitting.
func TestQuotaTokens(t *testing.T) {
	s := newHTTPService(t, service.Options{
		Workers:   1,
		AuthToken: "admin-token",
		Quotas: map[string]service.Quota{
			"low-quota":  {Rate: 0.001, Burst: 2},
			"high-quota": {Rate: 1000, Burst: 100},
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specN := func(seed int) string {
		return fmt.Sprintf(`{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"seed":%d}`, seed)
	}

	// Unknown or missing tokens stay 401 even with quotas configured.
	for _, tok := range []string{"", "wrong"} {
		if resp := postRun(t, ts.URL, tok, specN(1)); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", tok, resp.StatusCode)
		}
	}

	// The low-quota token burns its burst of 2, then gets 429 — and the
	// Retry-After must reflect its own bucket's deficit (a whole token is
	// 1000s out at rate 0.001), not the flat 1s of the shared limiter.
	for i := 0; i < 2; i++ {
		if resp := postRun(t, ts.URL, "low-quota", specN(i+10)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("low-quota burst submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postRun(t, ts.URL, "low-quota", specN(12))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained low-quota token: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("429 Retry-After %q not a number: %v", resp.Header.Get("Retry-After"), err)
	}
	if retry < 500 || retry > 1001 {
		t.Fatalf("Retry-After = %d, want the bucket's ~1000s deficit", retry)
	}

	// Other principals are unaffected by the drained token.
	if resp := postRun(t, ts.URL, "high-quota", specN(20)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("high-quota token: status %d, want 202", resp.StatusCode)
	}
	if resp := postRun(t, ts.URL, "admin-token", specN(21)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admin token: status %d, want 202", resp.StatusCode)
	}
}

// TestQuotaTokensWithoutAuthToken: quotas alone (no AuthToken) still turn
// auth on for mutating endpoints.
func TestQuotaTokensWithoutAuthToken(t *testing.T) {
	s := newHTTPService(t, service.Options{
		Workers: 1,
		Quotas:  map[string]service.Quota{"only": {Rate: 100, Burst: 10}},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"seed":1}`
	if resp := postRun(t, ts.URL, "", spec); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous submit with quotas configured: status %d, want 401", resp.StatusCode)
	}
	if resp := postRun(t, ts.URL, "only", spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quota token submit: status %d, want 202", resp.StatusCode)
	}
	// Read-only endpoints stay open.
	r, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("read-only list: status %d, want 200", r.StatusCode)
	}
}

// TestRetryAfterBurstHTTP: at SubmitRate >= 1 with a drained burst > 1
// the hint is still clamped to >= 1s (never 0), pinned at the HTTP layer.
func TestRetryAfterBurstHTTP(t *testing.T) {
	s := newHTTPService(t, service.Options{Workers: 1, SubmitRate: 5, SubmitBurst: 3})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := func(seed int) string {
		return fmt.Sprintf(`{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"seed":%d}`, seed)
	}
	var last *http.Response
	for i := 0; i < 10 && (last == nil || last.StatusCode != http.StatusTooManyRequests); i++ {
		last = postRun(t, ts.URL, "", spec(i))
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Skip("burst never drained on this machine")
	}
	retry, err := strconv.Atoi(last.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", last.Header.Get("Retry-After"))
	}
}

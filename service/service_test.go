package service

import (
	"reflect"
	"testing"
	"time"

	"repro/multidim"
)

// newTestService is New for tests without a failing store path.
func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func waitDone(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobView{}
}

// TestCacheHitDeterminism: a second identical submission is answered from
// the cache with the identical result and records, without re-running.
func TestCacheHitDeterminism(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	defer s.Close()
	spec := Spec{Seed: 9, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 2000},
		Rule: RuleSpec{Name: "median"},
	}}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	final := waitDone(t, s, first.ID)
	if final.Status != StatusDone || final.Result == nil {
		t.Fatalf("first run failed: %+v", final)
	}

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Status != StatusDone || second.Result == nil {
		t.Fatalf("second submission must be a completed cache hit: %+v", second)
	}
	if !reflect.DeepEqual(second.Result, final.Result) {
		t.Fatalf("cache returned a different result: %+v vs %+v", second.Result, final.Result)
	}
	recs1, _, _, err := s.Records(first.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs2, _, _, err := s.Records(second.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs1) == 0 || len(recs1) != len(recs2) {
		t.Fatalf("cache hit must replay the records: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if !reflect.DeepEqual(recs1[i], recs2[i]) {
			t.Fatalf("record %d differs: %+v vs %+v", i, recs1[i], recs2[i])
		}
	}
	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics: hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.JobsSubmitted != 2 || m.JobsCompleted != 2 {
		t.Fatalf("metrics: submitted=%d completed=%d, want 2/2", m.JobsSubmitted, m.JobsCompleted)
	}
}

// TestCancelRunning cancels a long run mid-flight via the observer hook.
func TestCancelRunning(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	// A voter run large enough to take a while under MaxRounds pressure.
	spec := Spec{Seed: 2, MaxRounds: 1 << 20, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 4000},
		Rule: RuleSpec{Name: "voter"},
	}}
	view, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one record proves the run started, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		recs, terminal, _, err := s.Records(view.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if terminal {
			t.Fatalf("run finished before it could be cancelled")
		}
		if len(recs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never produced a record")
		}
	}
	if _, err := s.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, view.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", final.Status)
	}
	if s.Metrics().JobsCancelled != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", s.Metrics().JobsCancelled)
	}
	// Cancelling again reports the terminal conflict.
	if _, err := s.Cancel(view.ID); err != ErrTerminal {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
}

// TestCancelGossipMidRun: the gossip kind reports rounds through the
// shared observer hook, so DELETE /v1/runs stops a gossip run
// mid-simulation, not just between runs.
func TestCancelGossipMidRun(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	// voter over the message-passing simulator converges in Θ(n) rounds of
	// Θ(n) work each — slow enough to be caught mid-flight.
	spec := Spec{Kind: KindGossip, Seed: 2, MaxRounds: 1 << 18, Payload: &GossipSpec{
		Init:     InitSpec{Kind: "twovalue", N: 2000},
		Rule:     RuleSpec{Name: "voter"},
		Selector: "drop-value:1",
	}}
	view, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		recs, terminal, _, err := s.Records(view.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if terminal {
			t.Fatal("gossip run finished before it could be cancelled")
		}
		if len(recs) > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip run never produced a record")
		}
	}
	if _, err := s.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, view.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled (mid-run)", final.Status)
	}
	if final.Records == 0 {
		t.Fatal("a mid-run cancel must leave the rounds streamed so far")
	}
}

// TestCancelMultidimCountMidRun: the count-level multidim engine reports
// every round through the shared observer hook — with distribution-level
// records built straight from the tuple counts — so DELETE /v1/runs stops
// it mid-simulation exactly like the per-process path.
func TestCancelMultidimCountMidRun(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	// A population far past what the per-process path is pleasant at, over
	// ≤4 distinct tuples: auto resolves to the count engine (noise runs at
	// count level). Adversarial runs never stop early, so the run lasts the
	// full MaxRounds unless the cancel catches it mid-flight.
	spec := Spec{Kind: KindMultidim, Seed: 2, MaxRounds: 1 << 20, Payload: &MultidimSpec{
		Init:      multidim.InitSpec{Kind: "random", N: 1_000_000, D: 2, M: 2, Seed: 2},
		Adversary: &multidim.AdversaryRef{Name: "noise", Params: multidim.Params{"t": 1}},
		Engine:    multidim.EngineAuto,
	}}
	view, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var recs []RoundRecord
	for {
		var terminal bool
		recs, terminal, _, err = s.Records(view.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if terminal {
			t.Fatal("count run finished before it could be cancelled")
		}
		if len(recs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("count run never produced a record")
		}
	}
	// The streamed records are distribution-level: tuple support and the
	// plurality tuple, with the population conserved.
	for _, rec := range recs {
		if rec.N != 1_000_000 || rec.Support < 1 || rec.Support > 4 ||
			len(rec.LeaderPoint) != 2 || rec.LeaderCount < 1 {
			t.Fatalf("malformed count-path record: %+v", rec)
		}
	}
	if _, err := s.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, view.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled (mid-run)", final.Status)
	}
}

// TestCacheHitNewKinds: the cache-determinism guarantee extends to the
// multidim and robust kinds.
func TestCacheHitNewKinds(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	defer s.Close()
	specs := []Spec{
		{Kind: KindMultidim, Seed: 4, Payload: &MultidimSpec{
			Init: multidim.InitSpec{Kind: "random", N: 300, D: 2, M: 6, Seed: 4}}},
		{Kind: KindRobust, Seed: 4, Payload: &RobustSpec{
			Init:     InitSpec{Kind: "twovalue", N: 300},
			LossProb: 0.05, Crashes: 3}},
		{Kind: KindGossip, Seed: 4, Payload: &GossipSpec{
			Init:      InitSpec{Kind: "twovalue", N: 300},
			CapFactor: 0.5, Selector: "drop-value:2"}},
	}
	for _, spec := range specs {
		first, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		final := waitDone(t, s, first.ID)
		if final.Status != StatusDone || final.Result == nil {
			t.Fatalf("%s run failed: %+v", spec.Kind, final)
		}
		second, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !second.CacheHit || !reflect.DeepEqual(second.Result, final.Result) {
			t.Fatalf("%s resubmission must be an identical cache hit: %+v vs %+v",
				spec.Kind, second.Result, final.Result)
		}
	}
}

// TestCancelQueued cancels a job before a worker picks it up.
func TestCancelQueued(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	blocker := Spec{Seed: 4, MaxRounds: 1 << 20, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 4000},
		Rule: RuleSpec{Name: "voter"},
	}}
	b, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Spec{Seed: 5, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 100},
		Rule: RuleSpec{Name: "median"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{queued.ID, b.ID} {
		if v := waitDone(t, s, id); v.Status != StatusCancelled {
			t.Fatalf("job %s: status %s, want cancelled", id, v.Status)
		}
	}
}

// TestCloseCancelsQueued: Close must not run the backlog to completion.
func TestCloseCancelsQueued(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	blocker := Spec{Seed: 6, MaxRounds: 1 << 20, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 4000},
		Rule: RuleSpec{Name: "voter"},
	}}
	b, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Spec{Seed: 7, MaxRounds: 1 << 20, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 4000},
		Rule: RuleSpec{Name: "voter"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Close should cancel the queued job; the running blocker is allowed
	// to finish (here: run to its natural end or get drained quickly).
	if _, err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	s.Close()
	v, err := s.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCancelled {
		t.Fatalf("queued job after Close: status %s, want cancelled", v.Status)
	}
}

// TestJobEviction: the job history is bounded; oldest terminal jobs are
// evicted while their cached results stay servable.
func TestJobEviction(t *testing.T) {
	s := newTestService(t, Options{Workers: 2, MaxJobs: 3})
	defer s.Close()
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		v, err := s.Submit(Spec{Seed: seed, Payload: &MedianSpec{
			Init: InitSpec{Kind: "twovalue", N: 200},
			Rule: RuleSpec{Name: "median"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		waitDone(t, s, v.ID)
	}
	if got := len(s.List()); got != 3 {
		t.Fatalf("job history holds %d jobs, want 3", got)
	}
	if _, err := s.Get(ids[0]); err != ErrNotFound {
		t.Fatalf("oldest job must be evicted, got %v", err)
	}
	if _, err := s.Get(ids[5]); err != nil {
		t.Fatalf("newest job must survive: %v", err)
	}
	// The evicted run's result is still answered from the cache.
	v, err := s.Submit(Spec{Seed: 1, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 200},
		Rule: RuleSpec{Name: "median"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit {
		t.Fatal("evicted job's spec must still hit the result cache")
	}
}

// TestCoalesceInFlight: an identical spec submitted while the first run is
// still queued/running returns the existing job instead of re-executing.
func TestCoalesceInFlight(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	spec := Spec{Seed: 8, MaxRounds: 1 << 20, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 4000},
		Rule: RuleSpec{Name: "voter"},
	}}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("in-flight duplicate got a new job: %s vs %s", second.ID, first.ID)
	}
	m := s.Metrics()
	if m.JobsCoalesced != 1 || m.JobsSubmitted != 1 {
		t.Fatalf("metrics: coalesced=%d submitted=%d, want 1/1", m.JobsCoalesced, m.JobsSubmitted)
	}
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	// After cancellation the job is no longer a coalescing target: the
	// same spec submitted again must get a fresh job, not the cancelled
	// one.
	third, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if third.ID == first.ID {
		t.Fatal("resubmission coalesced onto a cancel-flagged job")
	}
	if _, err := s.Cancel(third.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, first.ID)
	waitDone(t, s, third.ID)
}

// TestSubmitPopulationLimit rejects specs beyond the MaxN admission bound.
func TestSubmitPopulationLimit(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, MaxN: 1000})
	defer s.Close()
	if _, err := s.Submit(Spec{Payload: &MedianSpec{
		Init: InitSpec{Kind: "distinct", N: 1001},
		Rule: RuleSpec{Name: "median"},
	}}); err == nil {
		t.Fatal("population above MaxN must be rejected")
	}
	if _, err := s.Submit(Spec{Payload: &MedianSpec{
		Init: InitSpec{Kind: "blocks", Counts: []int64{600, 600}},
		Rule: RuleSpec{Name: "median"},
	}}); err == nil {
		t.Fatal("blocks population above MaxN must be rejected")
	}
	if _, err := s.Submit(Spec{Seed: 1, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 1000},
		Rule: RuleSpec{Name: "median"},
	}}); err != nil {
		t.Fatalf("population at MaxN must be accepted: %v", err)
	}
}

// TestSubmitInvalidSpec surfaces validation errors at submit time.
func TestSubmitInvalidSpec(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(Spec{Payload: &MedianSpec{Init: InitSpec{Kind: "twovalue", N: 10}, Rule: RuleSpec{Name: "nope"}}}); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
	if m := s.Metrics(); m.JobsSubmitted != 0 {
		t.Fatalf("rejected submissions must not count, got %d", m.JobsSubmitted)
	}
}

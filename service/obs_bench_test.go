package service

import (
	"testing"

	"repro/obs"
)

func benchSpec() Spec {
	return Spec{Seed: 7, Payload: &MedianSpec{
		Init: InitSpec{Kind: "twovalue", N: 20000},
		Rule: RuleSpec{Name: "median"},
	}}
}

// BenchmarkBareRun is the uninstrumented baseline for BenchmarkObservedRun:
// the same engine execution with a no-op observer.
func BenchmarkBareRun(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(spec, func(RoundRecord) {}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObservedRun runs the engine under the exact per-round
// instrumentation the worker loop installs: a RunTracker feeding the
// per-kind round counter and the (idle) event bus. Compare allocs/op
// against BenchmarkBareRun — the tracker must add zero allocations per
// round.
func BenchmarkObservedRun(b *testing.B) {
	spec := benchSpec()
	reg := obs.NewRegistry()
	rounds := reg.CounterVec("consensusd_rounds_total", "rounds", "total rounds", "kind")
	bus := obs.NewBus(256, nil, nil)
	defer bus.Close()
	counter := rounds.With("median")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker := obs.NewRunTracker(counter, bus, 0, obs.Event{
			Type: "job.progress", Job: "bench", Kind: "median",
		})
		if _, err := Execute(spec, func(rec RoundRecord) { tracker.Tick(rec.Round) }, nil); err != nil {
			b.Fatal(err)
		}
	}
}

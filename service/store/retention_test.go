package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// frameSizes replays writeRuns' boundaries as per-frame sizes.
func frameSizes(boundaries []int64) []int64 {
	sizes := make([]int64, 0, len(boundaries)-1)
	for i := 1; i < len(boundaries); i++ {
		sizes = append(sizes, boundaries[i]-boundaries[i-1])
	}
	return sizes
}

// TestOpenWithPolicyMaxBytes: a byte budget keeps exactly the newest runs
// that fit, the opening rewrite bounds the file, and the drop is counted
// in the gc stats.
func TestOpenWithPolicyMaxBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bounded.store")
	boundaries := writeRuns(t, path, 5)
	sizes := frameSizes(boundaries)
	budget := sizes[3] + sizes[4] // exactly the newest two frames

	l, err := OpenWithPolicy(path, Policy{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	runs := loadAll(t, l)
	if len(runs) != 2 || runs[0].ID != "r-4" || runs[1].ID != "r-5" {
		t.Fatalf("want newest runs r-4, r-5; got %+v", runs)
	}
	st := l.Stats()
	if st.GCRecordsDropped != 3 || st.GCCompactions != 1 {
		t.Fatalf("gc stats: %+v", st)
	}
	if st.GCBytesReclaimed <= 0 {
		t.Fatalf("no bytes reclaimed: %+v", st)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if framed := info.Size() - int64(headerSize); framed > budget {
		t.Fatalf("file not bounded: %d framed bytes > budget %d", framed, budget)
	}
}

// TestOpenWithPolicyMaxAge: records older than MaxAge are dropped at
// open; a record without a Finished timestamp is never age-dropped.
func TestOpenWithPolicyMaxAge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aged.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(testRun(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	undated := testRun(t, 3)
	undated.Finished = time.Time{}
	if err := l.Append(undated); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// makeRun's Finished is pinned to 2026-01-02, long before now: an
	// hour-scale MaxAge expires every dated record.
	l, err = OpenWithPolicy(path, Policy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	runs := loadAll(t, l)
	if len(runs) != 1 || runs[0].ID != undated.ID {
		t.Fatalf("want only the undated run to survive; got %+v", runs)
	}
	if st := l.Stats(); st.GCRecordsDropped != 3 {
		t.Fatalf("gc stats: %+v", st)
	}
}

// TestOpenWithPolicyKeepsEverythingInBudget: a generous policy is a
// no-op — no rewrite, nothing dropped.
func TestOpenWithPolicyKeepsEverythingInBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roomy.store")
	writeRuns(t, path, 3)
	l, err := OpenWithPolicy(path, Policy{MaxBytes: 1 << 30, MaxAge: 100 * 365 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if runs := loadAll(t, l); len(runs) != 3 {
		t.Fatalf("want all 3 runs, got %d", len(runs))
	}
	if st := l.Stats(); st.GCRecordsDropped != 0 || st.Compactions != 0 {
		t.Fatalf("policy within budget must not rewrite: %+v", st)
	}
}

// TestBackgroundGC: appends past the byte budget kick the background
// compaction, which bounds the file while the log stays live and reports
// the dropped hashes through OnDrop.
func TestBackgroundGC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.store")
	boundaries := writeRuns(t, path, 2)
	sizes := frameSizes(boundaries)
	budget := sizes[0] + sizes[1] + sizes[1]/2 // room for ~2 frames

	l, err := OpenWithPolicy(path, Policy{MaxBytes: budget, CompactAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var mu sync.Mutex
	var dropped []string
	l.OnDrop(func(hashes []string) {
		mu.Lock()
		dropped = append(dropped, hashes...)
		mu.Unlock()
	})

	for i := 2; i < 8; i++ {
		if err := l.Append(testRun(t, i)); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := l.Stats()
		if st.GCCompactions >= 1 && st.Bytes-int64(headerSize) <= budget {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background gc never bounded the file: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	gotDrops := len(dropped)
	mu.Unlock()
	if gotDrops == 0 {
		t.Fatal("OnDrop never reported the gc'd hashes")
	}

	// The log must still be appendable after the descriptor swap, and a
	// reopen must see a bounded, parseable file.
	if err := l.Append(testRun(t, 99)); err != nil {
		t.Fatalf("append after background compaction: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("file after background gc does not reopen: %v", err)
	}
	defer l2.Close()
	runs := loadAll(t, l2)
	found := false
	for _, r := range runs {
		if r.ID == "r-100" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-gc append lost across reopen; got %d runs", len(runs))
	}
}

// TestCompactForced: Compact() rewrites superseded duplicates out even
// with no retention policy, and the rewrite survives a reopen.
func TestCompactForced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forced.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	run := testRun(t, 0)
	for i := 0; i < 3; i++ { // same spec hash three times: two dead frames
		if err := l.Append(run); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats().Bytes
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Bytes >= before {
		t.Fatalf("forced compaction reclaimed nothing: %d -> %d", before, st.Bytes)
	}
	if st.GCCompactions != 1 {
		t.Fatalf("stats after forced compaction: %+v", st)
	}
	// Nothing left to reclaim: a second Compact must be a no-op.
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if st2 := l.Stats(); st2.Compactions != st.Compactions {
		t.Fatalf("idle Compact rewrote anyway: %+v -> %+v", st, st2)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if runs := loadAll(t, l2); len(runs) != 1 || runs[0].SpecHash != run.SpecHash {
		t.Fatalf("want the single deduped run, got %+v", runs)
	}
}

// TestPolicyThreshold pins the CompactAfter defaulting rules.
func TestPolicyThreshold(t *testing.T) {
	cases := []struct {
		pol  Policy
		want int64
	}{
		{Policy{CompactAfter: 42}, 42},
		{Policy{MaxBytes: 400}, 100},
		{Policy{MaxBytes: 2}, 1},                    // floor 1
		{Policy{MaxBytes: 1 << 40}, 16 << 20},       // cap 16 MiB
		{Policy{MaxAge: time.Hour}, 1 << 20},        // age-only default
		{Policy{}, 1 << 20},                         // unset
		{Policy{MaxBytes: 400, CompactAfter: 7}, 7}, // explicit wins
	}
	for _, c := range cases {
		if got := c.pol.threshold(); got != c.want {
			t.Errorf("threshold(%+v) = %d, want %d", c.pol, got, c.want)
		}
	}
	if (Policy{}).enabled() {
		t.Error("zero policy must be disabled")
	}
	if !(Policy{MaxBytes: 1}).enabled() || !(Policy{MaxAge: 1}).enabled() {
		t.Error("bounded policies must be enabled")
	}
}

// TestOpenWithPolicyPreservesOpaqueInBudget: opaque frames (unknown kind)
// compete for the byte budget like any other frame but are never
// age-dropped, and survive the retention rewrite when they fit.
func TestOpenWithPolicyPreservesOpaqueInBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "opaque.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRun(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-append an unknown-kind frame (CRC-intact, not decodable here).
	foreign := []byte(`{"spec_hash":"feedface","spec":{"kind":"from-the-future","seed":1,"v":1},"result":{}}`)
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(frame(foreign)); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	l, err = OpenWithPolicy(path, Policy{MaxAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	l.Close()
	if st.RecordsUnknown != 1 {
		t.Fatalf("opaque frame not preserved under age policy: %+v", st)
	}
	if st.RecordsLoaded != 0 || st.GCRecordsDropped != 1 {
		t.Fatalf("dated record should age out, opaque frame should not: %+v", st)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "from-the-future") {
		t.Fatal("opaque frame destroyed by the retention rewrite")
	}
}

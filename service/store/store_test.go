package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/engine"

	_ "repro/consensus" // register the median kind for Run spec decoding
)

// testRun builds a deterministic Run around a real median spec; i varies
// the seed so hashes differ.
func testRun(t *testing.T, i int) Run {
	t.Helper()
	r, err := makeRun(i)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func makeRun(i int) (Run, error) {
	var spec engine.Spec
	raw := fmt.Sprintf(`{"kind":"median","seed":%d,"init":{"kind":"twovalue","n":100},"rule":{"name":"median"}}`, i+1)
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return Run{}, err
	}
	spec = spec.Normalize()
	hash, err := spec.Hash()
	if err != nil {
		return Run{}, err
	}
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return Run{
		ID:       fmt.Sprintf("r-%d", i+1),
		SpecHash: hash,
		Spec:     spec,
		Result: engine.Result{
			Rounds: i + 2, Reason: "consensus",
			Winner: 2, WinnerCount: 100, StableSince: i + 1, Seed: uint64(i + 1),
		},
		Records: []engine.Record{
			{Round: 0, N: 100, Support: 2, Leader: 1, LeaderCount: 50},
			{Round: 1, N: 100, Support: 1, Leader: 2, LeaderCount: 100},
		},
		Created:  base,
		Started:  base.Add(time.Second),
		Finished: base.Add(2 * time.Second),
	}, nil
}

// writeRuns creates a store at path with n runs and returns the file size
// after each append (the frame boundaries truncation tests cut at).
func writeRuns(t *testing.T, path string, n int) []int64 {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int64{l.Stats().Bytes}
	for i := 0; i < n; i++ {
		if err := l.Append(testRun(t, i)); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, l.Stats().Bytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != boundaries[len(boundaries)-1] {
		t.Fatalf("stats bytes %d != file size %d", boundaries[len(boundaries)-1], info.Size())
	}
	return boundaries
}

func loadAll(t *testing.T, l *Log) []Run {
	t.Helper()
	var runs []Run
	if err := l.Load(func(r Run) error { runs = append(runs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return runs
}

// TestRunCodecRoundTrip: encode∘decode∘encode is byte-identical and the
// decoded Run is deeply equal to the original.
func TestRunCodecRoundTrip(t *testing.T) {
	for i := 0; i < 5; i++ {
		run := testRun(t, i)
		buf, err := EncodeRun(run)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRun(buf)
		if err != nil {
			t.Fatal(err)
		}
		again, err := EncodeRun(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("codec not byte-stable:\n first  %s\n second %s", buf, again)
		}
		if !reflect.DeepEqual(run.Result, back.Result) || !reflect.DeepEqual(run.Records, back.Records) {
			t.Fatalf("decoded run differs: %+v vs %+v", run, back)
		}
		if c, _ := run.Spec.Canonical(); true {
			c2, _ := back.Spec.Canonical()
			if !bytes.Equal(c, c2) {
				t.Fatalf("spec canonical changed through the codec: %s vs %s", c, c2)
			}
		}
	}
}

// TestAppendReopenLoad: an append-close-open cycle replays every record,
// in order, without a compaction.
func TestAppendReopenLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.store")
	writeRuns(t, path, 3)

	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := l.Stats()
	if st.RecordsLoaded != 3 || st.RecordsDropped != 0 || st.Compactions != 0 {
		t.Fatalf("clean reopen stats: %+v", st)
	}
	runs := loadAll(t, l)
	if len(runs) != 3 {
		t.Fatalf("loaded %d runs, want 3", len(runs))
	}
	for i, r := range runs {
		want := testRun(t, i)
		if r.ID != want.ID || r.SpecHash != want.SpecHash ||
			!reflect.DeepEqual(r.Result, want.Result) || !reflect.DeepEqual(r.Records, want.Records) ||
			!r.Created.Equal(want.Created) || !r.Finished.Equal(want.Finished) {
			t.Fatalf("run %d does not round-trip:\n got  %+v\n want %+v", i, r, want)
		}
	}
	// Load is one-shot: a second replay is empty.
	if again := loadAll(t, l); len(again) != 0 {
		t.Fatalf("second Load replayed %d runs, want 0", len(again))
	}
	// The handle still appends.
	if err := l.Append(testRun(t, 7)); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedTailRecovery cuts the file at every byte offset: Open must
// recover exactly the records whose frames lie fully before the cut, drop
// the partial tail, and heal the file so the next open is clean.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.store")
	boundaries := writeRuns(t, full, 3)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	complete := func(cut int64) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}

	path := filepath.Join(dir, "cut.store")
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Cuts inside the header (a crash during creation) reinitialize
		// to an empty store; complete() already answers 0 for them.
		want := complete(cut)
		runs := loadAll(t, l)
		if len(runs) != want {
			l.Close()
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(runs), want)
		}
		for i, r := range runs {
			if wantRun := testRun(t, i); r.SpecHash != wantRun.SpecHash || !reflect.DeepEqual(r.Result, wantRun.Result) {
				l.Close()
				t.Fatalf("cut %d: surviving record %d corrupted: %+v", cut, i, r)
			}
		}
		st := l.Stats()
		if cut > int64(headerSize) && boundaries[complete(cut)] != cut && st.Compactions != 1 {
			l.Close()
			t.Fatalf("cut %d severs a frame but no compaction ran: %+v", cut, st)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// The recovered file reopens clean, with nothing further dropped.
		l2, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if st2 := l2.Stats(); st2.RecordsLoaded != int64(want) || st2.RecordsDropped != 0 || st2.Compactions != 0 {
			l2.Close()
			t.Fatalf("cut %d: healed file not clean: %+v", cut, st2)
		}
		l2.Close()
	}
}

// TestBitFlippedCRC flips every bit of the middle record's CRC field: the
// records before it must survive, it and everything after must be
// dropped (a corrupt frame cannot vouch for the alignment that follows).
func TestBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.store")
	boundaries := writeRuns(t, full, 3)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	crcStart := boundaries[1] + 4 // second frame: length(4) then crc(4)
	path := filepath.Join(dir, "flip.store")
	for off := crcStart; off < crcStart+4; off++ {
		for bit := 0; bit < 8; bit++ {
			corrupted := bytes.Clone(data)
			corrupted[off] ^= 1 << bit
			if err := os.WriteFile(path, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(path)
			if err != nil {
				t.Fatalf("flip %d/%d: %v", off, bit, err)
			}
			runs := loadAll(t, l)
			st := l.Stats()
			l.Close()
			if len(runs) != 1 {
				t.Fatalf("flip %d/%d: recovered %d records, want 1 (before the corrupt frame)", off, bit, len(runs))
			}
			if want := testRun(t, 0); runs[0].SpecHash != want.SpecHash || !reflect.DeepEqual(runs[0].Result, want.Result) {
				t.Fatalf("flip %d/%d: surviving record corrupted: %+v", off, bit, runs[0])
			}
			if st.RecordsDropped == 0 || st.Compactions != 1 {
				t.Fatalf("flip %d/%d: corruption not surfaced in stats: %+v", off, bit, st)
			}
		}
	}

	// A flip in the last record's payload drops only that record.
	payloadOff := boundaries[2] + frameHeaderSize + 3
	corrupted := bytes.Clone(data)
	corrupted[payloadOff] ^= 0x10
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	runs := loadAll(t, l)
	l.Close()
	if len(runs) != 2 {
		t.Fatalf("payload flip in last record: recovered %d, want 2", len(runs))
	}
}

// TestCompactionDedupes: a later record for the same spec hash supersedes
// the earlier one at open, and the rewrite drops the dead bytes.
func TestCompactionDedupes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := testRun(t, 0)
	updated := old
	updated.Result.Rounds = 99
	for _, r := range []Run{old, testRun(t, 1), updated} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Stats().Bytes
	l.Close()

	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	runs := loadAll(t, l)
	st := l.Stats()
	l.Close()
	if len(runs) != 2 {
		t.Fatalf("loaded %d runs, want 2 after dedupe", len(runs))
	}
	if runs[0].Result.Rounds != 99 {
		t.Fatalf("dedupe must keep the later record, got rounds %d", runs[0].Result.Rounds)
	}
	if st.RecordsDropped != 1 || st.Compactions != 1 {
		t.Fatalf("dedupe stats: %+v", st)
	}
	if st.Bytes >= sizeBefore {
		t.Fatalf("compaction did not shrink the file: %d -> %d", sizeBefore, st.Bytes)
	}
	// The compacting rewrite must not narrow the file's permissions to
	// CreateTemp's 0600.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got == 0o600 {
		t.Fatalf("compaction narrowed the store's mode to %v", got)
	}
}

// TestOpenLocked: a second handle on the same live store path must fail
// fast instead of interleaving appends with the first.
func TestOpenLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open of a live store: %v, want locked error", err)
	}
	// Closing releases the lock.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	l2.Close()
}

// TestHeaderRejection: foreign files and unknown format versions refuse
// to open instead of being clobbered or misread; only our own partially
// written header (crash during creation) is reinitialized.
func TestHeaderRejection(t *testing.T) {
	dir := t.TempDir()

	foreign := filepath.Join(dir, "foreign")
	if err := os.WriteFile(foreign, []byte("definitely not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(foreign); err == nil || !strings.Contains(err.Error(), "not a store file") {
		t.Fatalf("foreign file: %v, want not-a-store-file error", err)
	}

	shortForeign := filepath.Join(dir, "short-foreign")
	if err := os.WriteFile(shortForeign, []byte("xyz"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(shortForeign); err == nil || !strings.Contains(err.Error(), "not a store file") {
		t.Fatalf("short foreign file: %v, want not-a-store-file error", err)
	}

	// A partial header that prefix-matches ours is an interrupted
	// creation: reinitialized, fully usable.
	partial := filepath.Join(dir, "partial")
	if err := os.WriteFile(partial, Header()[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(partial)
	if err != nil {
		t.Fatalf("partial header must reinitialize, got: %v", err)
	}
	if err := l.Append(testRun(t, 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, err = Open(partial)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.RecordsLoaded != 1 || st.RecordsDropped != 0 {
		l.Close()
		t.Fatalf("reinitialized store: %+v, want 1 clean record", st)
	}
	l.Close()

	future := filepath.Join(dir, "future")
	h := Header()
	h[len(h)-1] = FormatVersion + 1
	if err := os.WriteFile(future, h, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v, want version error", err)
	}
}

// TestUnknownKindPreserved: a CRC-valid record this binary cannot decode
// (a kind missing from its registry) is not loaded but survives on disk
// — including through a compaction — so a fuller binary can still read
// it. Compaction must never destroy intact data.
func TestUnknownKindPreserved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.store")
	unknownPayload := []byte(`{"spec_hash":"feedface","spec":{"kind":"from-the-future","n":8}}`)

	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRun(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.writeAndSync(frame(unknownPayload)); err != nil { // a foreign binary's append
		t.Fatal(err)
	}
	if err := l.Append(testRun(t, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Clean reopen: 2 loaded, 1 unknown, nothing dropped, no rewrite.
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.RecordsLoaded != 2 || st.RecordsUnknown != 1 || st.RecordsDropped != 0 || st.Compactions != 0 {
		l.Close()
		t.Fatalf("reopen with unknown record: %+v", st)
	}
	// Force a compaction: a duplicate of run 0 makes the file dirty.
	if err := l.Append(testRun(t, 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	runs := loadAll(t, l)
	l.Close()
	if st.Compactions != 1 || st.RecordsUnknown != 1 || len(runs) != 2 {
		t.Fatalf("compacting reopen: %d runs, stats %+v; want 2 runs, 1 unknown, 1 compaction", len(runs), st)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, unknownPayload) {
		t.Fatal("compaction destroyed the unknown-kind record")
	}
	// And the healed file is stable: one more open changes nothing.
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.RecordsLoaded != 2 || st.RecordsUnknown != 1 || st.Compactions != 0 {
		l.Close()
		t.Fatalf("post-compaction reopen: %+v", st)
	}
	l.Close()
}

// TestAppendRejectsOversizedRecord: a record whose frame the reader would
// refuse (payload > maxPayload) is rejected at append time — writing it
// would poison the log for every record after it.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := testRun(t, 0)
	big.ID = strings.Repeat("x", maxPayload) // encodes past the frame limit
	if err := l.Append(big); err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversized append: %v, want frame-limit error", err)
	}
	// The refused append left no partial frame behind.
	if err := l.Append(testRun(t, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st := l2.Stats()
	l2.Close()
	if st.RecordsLoaded != 1 || st.RecordsDropped != 0 {
		t.Fatalf("after refused append: %+v, want 1 clean record", st)
	}
}

// TestAppendAfterClose returns ErrClosed.
func TestAppendAfterClose(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "runs.store"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRun(t, 0)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyStore writes a store whose next Open must compact: the same run
// appended twice leaves a superseded frame.
func dirtyStore(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "dirty.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	run := testRun(t, 0)
	if err := l.Append(run); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(run); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompactLockWindow is the regression test for the compaction lock
// window: compact used to rename the temp file into place and only then
// reopen + flock the new inode, leaving an instant in which the store
// path named an unlocked file a second daemon could grab. The fix locks
// the temp file before the rename (a flock follows the inode), so a
// second Open attempted exactly inside the old window must lose. On the
// pre-fix code the second Open succeeds here and this test fails.
func TestCompactLockWindow(t *testing.T) {
	path := dirtyStore(t, t.TempDir())

	var hookRan bool
	var secondErr error
	testHookAfterRename = func() {
		hookRan = true
		l2, err := Open(path)
		secondErr = err
		if err == nil {
			l2.Close()
		}
	}
	defer func() { testHookAfterRename = nil }()

	l, err := Open(path) // dirty → compacts → hook fires mid-window
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !hookRan {
		t.Fatal("compaction never happened; test exercised nothing")
	}
	if secondErr == nil {
		t.Fatal("second daemon acquired the store during the compaction window — exactly one must win")
	}
	if !strings.Contains(secondErr.Error(), "locked") {
		t.Fatalf("second open failed for the wrong reason: %v", secondErr)
	}

	// The winner is fully functional after the swap.
	if err := l.Append(testRun(t, 1)); err != nil {
		t.Fatalf("winner cannot append after compaction: %v", err)
	}
}

// TestCompactRenameFailure: an injected rename failure must leave the
// original descriptor (and its lock) as the only thing to clean up — Open
// fails, the lock is released, no temp file survives, and the store
// reopens intact.
func TestCompactRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := dirtyStore(t, dir)

	injected := errors.New("injected rename failure")
	renameFile = func(_, _ string) error { return injected }
	defer func() { renameFile = os.Rename }()

	if _, err := Open(path); !errors.Is(err, injected) {
		t.Fatalf("want injected rename error, got %v", err)
	}
	assertNoTempFiles(t, dir)

	renameFile = os.Rename
	l, err := Open(path)
	if err != nil {
		t.Fatalf("store must reopen after a failed compaction (lock leaked?): %v", err)
	}
	defer l.Close()
	if runs := loadAll(t, l); len(runs) != 1 {
		t.Fatalf("want the original deduped run, got %+v", runs)
	}
}

// TestCompactSyncFailure: same audit for the temp-file fsync path.
func TestCompactSyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := dirtyStore(t, dir)

	injected := errors.New("injected sync failure")
	fsyncFile = func(*os.File) error { return injected }
	defer func() { fsyncFile = func(f *os.File) error { return f.Sync() } }()

	if _, err := Open(path); !errors.Is(err, injected) {
		t.Fatalf("want injected sync error, got %v", err)
	}
	assertNoTempFiles(t, dir)

	fsyncFile = func(f *os.File) error { return f.Sync() }
	l, err := Open(path)
	if err != nil {
		t.Fatalf("store must reopen after a failed compaction (lock leaked?): %v", err)
	}
	defer l.Close()
	if runs := loadAll(t, l); len(runs) != 1 {
		t.Fatalf("want the original deduped run, got %+v", runs)
	}
}

// TestRuntimeCompactFailureKeepsLogLive: a rename failure during a forced
// runtime compaction must not kill the live log — the original descriptor
// stays, appends keep working, and a later compaction succeeds.
func TestRuntimeCompactFailureKeepsLogLive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	run := testRun(t, 0)
	if err := l.Append(run); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(run); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected rename failure")
	renameFile = func(_, _ string) error { return injected }
	if err := l.Compact(); !errors.Is(err, injected) {
		renameFile = os.Rename
		t.Fatalf("want injected rename error, got %v", err)
	}
	renameFile = os.Rename
	assertNoTempFiles(t, dir)

	if err := l.Append(testRun(t, 1)); err != nil {
		t.Fatalf("log dead after failed compaction: %v", err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("compaction after recovery: %v", err)
	}
	if st := l.Stats(); st.GCCompactions != 1 {
		t.Fatalf("stats after recovered compaction: %+v", st)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.compact-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("compaction leaked temp files: %v", matches)
	}
}

// Package store is the file-backed persistence layer behind the service's
// result cache and job history: an append-only log of CRC-framed JSON
// records, one per completed run, fsynced on every commit and compacted on
// open. It has no dependencies beyond the standard library and package
// engine, and no knowledge of the service's locking or HTTP layers — the
// service package adapts *Log to its Store interface.
//
// # On-disk format (version 1)
//
// A store file is a 16-byte header followed by zero or more frames:
//
//	header  = "consensus-store" (15 bytes) || version (1 byte, 0x01)
//	frame   = length (4 bytes LE) || crc (4 bytes LE) || payload
//	payload = the JSON encoding of one Run (see EncodeRun)
//
// The crc is the CRC-32 (Castagnoli) of the payload bytes. The final
// header byte is the format version: readers refuse files whose version
// they do not know, and any change to the framing or the Run codec that
// is not purely additive must bump FormatVersion. Cache keys are
// canonical spec hashes, which may change from release to release — the
// version byte is what lets a reader reject a store written under an
// incompatible codec instead of serving stale entries under new keys.
//
// # Recovery and compaction
//
// Open scans the whole file, streaming frame by frame. A truncated tail
// (a partial frame, e.g. from a crash mid-append) or a frame whose CRC
// does not match ends the scan: everything from the bad frame on is
// dropped, everything before it is kept — append-only framing means
// bytes after a corrupt frame cannot be trusted to be frame-aligned. A
// frame whose CRC matches but whose payload this binary cannot decode
// (e.g. a run of a kind it does not register, or a spec encoded under a
// different engine.SpecVersion) is preserved opaquely: not loaded, but
// never destroyed, so a fuller (or older) binary can still read it
// later. When records were dropped, or the same spec hash appears more
// than once (later records win), Open rewrites the file compacted —
// survivors plus opaque frames — through an fsynced temp file renamed
// into place, so a crash during compaction leaves either the old or the
// new file, never a mix. The temp file is flocked before the rename, so
// the store path never names an unlocked inode: a second daemon starting
// mid-compaction still fails fast.
//
// # Retention
//
// OpenWithPolicy bounds the store for years of sustained traffic: a
// Policy sets a byte budget (MaxBytes — the newest records that fit are
// kept, everything older is dropped) and an age bound (MaxAge — records
// whose Finished timestamp is older are dropped; records and opaque
// frames whose age is unknown are never age-dropped). The policy is
// applied at open and, while the log is live, by a background compaction
// goroutine kicked whenever the reclaimable bytes — superseded duplicates
// plus the live excess over MaxBytes — exceed Policy.CompactAfter.
// Dropped spec hashes are reported through OnDrop so the owning cache can
// evict in step with the disk.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/engine"
)

// FormatVersion is the store format version byte, the final byte of the
// file header. Version 1: CRC-32C framed JSON Run records.
const FormatVersion = 1

// magic is the header prefix identifying a store file.
const magic = "consensus-store"

const (
	headerSize      = len(magic) + 1
	frameHeaderSize = 8
	// maxPayload bounds a frame's declared payload length; anything larger
	// is treated as corruption (a flipped length byte must not make the
	// reader attempt a multi-gigabyte allocation).
	maxPayload = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("store: log is closed")

// Header returns the version-1 file header: the magic followed by the
// format version byte.
func Header() []byte {
	return append([]byte(magic), FormatVersion)
}

// Run is the persisted form of one completed run: the job metadata, the
// spec, its canonical hash (the cache key), the result and the captured
// round records. Decoding resolves the spec's kind through the engine
// registry, so a binary can only reload runs of kinds it has registered.
type Run struct {
	// ID is the job id the run completed under ("" for runs persisted
	// outside the job lifecycle).
	ID string `json:"id,omitempty"`
	// SpecHash is the canonical spec hash — the result-cache key.
	SpecHash string `json:"spec_hash"`
	// RequestID is the X-Request-Id of the submission that created the
	// run's job, for correlating persisted runs with access logs.
	RequestID string `json:"request_id,omitempty"`
	// Spec is the normalized spec the run executed.
	Spec engine.Spec `json:"spec"`
	// Result is the run's outcome, effective seed included.
	Result engine.Result `json:"result"`
	// Records is the captured round-by-round stream; Truncated counts
	// rounds beyond the service's per-job record bound.
	Records   []engine.Record `json:"records,omitempty"`
	Truncated int             `json:"truncated,omitempty"`
	// Created, Started and Finished are the job's lifecycle timestamps.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// EncodeRun renders a Run as its frame payload — deterministic for a
// normalized spec (the spec codec sorts keys), so encode∘decode∘encode is
// byte-identical.
func EncodeRun(r Run) ([]byte, error) { return json.Marshal(r) }

// DecodeRun parses a frame payload. The spec's kind must be registered
// and its canonical encoding must carry the current engine.SpecVersion —
// a record persisted under a different spec codec must never be
// reinterpreted (or served) under this binary's keys; recovery preserves
// such frames opaquely instead (errors.Is(err, engine.ErrSpecVersion)).
func DecodeRun(payload []byte) (Run, error) {
	var r Run
	if err := json.Unmarshal(payload, &r); err != nil {
		return Run{}, err
	}
	if r.Spec.V != engine.SpecVersion {
		return Run{}, fmt.Errorf("%w: persisted spec has v%d, this binary speaks v%d",
			engine.ErrSpecVersion, r.Spec.V, engine.SpecVersion)
	}
	return r, nil
}

// Stats reports a log's lifetime counters, surfaced on /v1/metrics.
type Stats struct {
	// RecordsLoaded is the number of records the last Open recovered;
	// RecordsDropped the number it discarded (corrupt tail, CRC mismatch,
	// or superseded by a later record for the same spec hash);
	// RecordsUnknown the number of intact records this binary cannot
	// decode (e.g. a kind it does not register) — preserved on disk
	// through compactions, but not loaded.
	RecordsLoaded  int64 `json:"records_loaded"`
	RecordsDropped int64 `json:"records_dropped"`
	RecordsUnknown int64 `json:"records_unknown"`
	// RecordsOldSpec counts intact records whose spec was encoded under a
	// different engine.SpecVersion — the codec-migration case. Like
	// unknown kinds they are preserved on disk, never loaded: serving
	// them would mean reinterpreting another codec's bytes under this
	// binary's cache keys.
	RecordsOldSpec int64 `json:"records_old_spec"`
	// RecordsAppended counts successful Append calls on this handle.
	RecordsAppended int64 `json:"records_appended"`
	// Bytes is the current file size, header included.
	Bytes int64 `json:"bytes"`
	// Compactions counts rewrites (1 when Open compacted, 0 otherwise).
	Compactions int64 `json:"compactions"`
	// GCRecordsDropped counts records the retention policy dropped (age
	// or byte budget), at open and by background compaction;
	// GCBytesReclaimed the file bytes those rewrites returned;
	// GCCompactions the background (and forced) retention rewrites.
	GCRecordsDropped int64 `json:"gc_records_dropped"`
	GCBytesReclaimed int64 `json:"gc_bytes_reclaimed"`
	GCCompactions    int64 `json:"gc_compactions"`
}

// Policy bounds a store's disk footprint under sustained traffic. The
// zero Policy retains everything (the pre-retention behavior).
type Policy struct {
	// MaxBytes budgets the framed region (file size minus the 16-byte
	// header): the newest records that fit are kept, older ones — opaque
	// frames included — are dropped at open and by background compaction.
	// 0 = unbounded.
	MaxBytes int64
	// MaxAge drops records whose Finished timestamp is older than now -
	// MaxAge. Records without a Finished timestamp, and opaque frames
	// (whose age this binary cannot read), are never age-dropped — only
	// the byte budget may remove data the policy cannot date. 0 = no age
	// bound.
	MaxAge time.Duration
	// CompactAfter is the background-compaction trigger: a retention
	// rewrite runs once the reclaimable bytes — superseded duplicates
	// plus the live excess over MaxBytes — reach this many bytes.
	// <=0 = MaxBytes/4 clamped to [1, 16 MiB], or 1 MiB when MaxBytes is
	// unset.
	CompactAfter int64
}

// enabled reports whether the policy bounds anything (and therefore
// whether the background compaction goroutine runs).
func (p Policy) enabled() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// threshold resolves the background-compaction trigger in bytes.
func (p Policy) threshold() int64 {
	if p.CompactAfter > 0 {
		return p.CompactAfter
	}
	if p.MaxBytes > 0 {
		t := p.MaxBytes / 4
		if t < 1 {
			t = 1
		}
		if t > 16<<20 {
			t = 16 << 20
		}
		return t
	}
	return 1 << 20
}

// Log is an open store file. Open recovers and compacts it; Append
// commits one record with an fsync; Load replays what Open recovered.
// Append, Stats and Compact are safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	pol    Policy
	stats  Stats
	loaded []Run

	// live maps each decodable record's spec hash to its current frame
	// size; opaqueBytes totals the preserved frames without a usable
	// hash; deadBytes totals frames superseded by a later append. The
	// three drive the background-compaction trigger without rescanning.
	live        map[string]int64
	opaqueBytes int64
	deadBytes   int64

	// onDrop, when set, receives the spec hashes a retention compaction
	// dropped, outside the log's lock (see OnDrop).
	onDrop func([]string)

	gcKick chan struct{}
	gcDone chan struct{}
}

// Open opens (or creates) the store file at path with no retention policy,
// recovering every intact record and compacting the file when anything was
// dropped or superseded. The recovered records are replayed by Load, in
// append order. Recovery streams the file frame by frame, so transient
// memory is one frame plus the decoded records — never a second, raw copy
// of the whole file.
func Open(path string) (*Log, error) { return OpenWithPolicy(path, Policy{}) }

// OpenWithPolicy is Open under a retention Policy: beyond recovery and
// dedupe, records outside the policy's age or byte budget are dropped by
// the opening rewrite, and a background goroutine keeps the live log
// within budget (see Policy and Compact).
func OpenWithPolicy(path string, pol Policy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f.Fd()); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{f: f, path: path, pol: pol, live: map[string]int64{}}
	if info.Size() == 0 {
		if err := l.writeAndSync(Header()); err != nil {
			f.Close()
			return nil, err
		}
		l.stats.Bytes = int64(headerSize)
		l.startGC()
		return l, nil
	}
	br := bufio.NewReaderSize(f, 64<<10)
	hdr := make([]byte, headerSize)
	if n, err := io.ReadFull(br, hdr); err != nil {
		// A short file that prefix-matches our header is our own
		// interrupted creation (crash before the header write was
		// durable), not a foreign file: reinitialize it instead of
		// bricking the path.
		if err == io.ErrUnexpectedEOF && bytes.Equal(hdr[:n], Header()[:n]) {
			if err := l.reinit(); err != nil {
				f.Close()
				return nil, err
			}
			l.startGC()
			return l, nil
		}
		f.Close()
		return nil, fmt.Errorf("store: %s is not a store file", path)
	}
	if !bytes.HasPrefix(hdr, []byte(magic)) {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a store file", path)
	}
	if v := hdr[len(magic)]; v != FormatVersion {
		f.Close()
		return nil, fmt.Errorf("store: %s has format version %d, this binary reads version %d", path, v, FormatVersion)
	}
	frames, dropped, dirty, err := scanReader(br)
	if err != nil {
		f.Close()
		return nil, err
	}
	kept, _, gcDropped := applyPolicy(frames, pol, time.Now())
	if gcDropped > 0 {
		dirty = true
		l.stats.GCRecordsDropped = gcDropped
	}
	for _, fr := range kept {
		switch {
		case fr.decoded:
			l.loaded = append(l.loaded, fr.run)
			l.live[fr.run.SpecHash] = fr.size
		case fr.oldSpec:
			l.stats.RecordsOldSpec++
			l.opaqueBytes += fr.size
		default:
			l.stats.RecordsUnknown++
			l.opaqueBytes += fr.size
		}
	}
	l.stats.RecordsLoaded = int64(len(l.loaded))
	l.stats.RecordsDropped = dropped
	if dirty {
		preSize := info.Size()
		if err := l.compact(kept); err != nil {
			f.Close()
			return nil, err
		}
		l.stats.Compactions++
		if gcDropped > 0 {
			l.stats.GCCompactions++
			if rec := preSize - l.stats.Bytes; rec > 0 {
				l.stats.GCBytesReclaimed = rec
			}
		}
	} else {
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, err
		}
		l.stats.Bytes = info.Size()
	}
	l.startGC()
	return l, nil
}

// frameRec is one CRC-valid frame as scanned. Frames this binary can
// decode carry their Run (the payload is re-encoded at compaction time,
// deterministically); frames it cannot — e.g. a run of a kind not
// registered here, or a spec under a foreign engine.SpecVersion (oldSpec)
// — keep their raw payload so a compaction carries them through opaquely
// instead of destroying intact data. size is the framed on-disk size
// (header + payload), which the retention byte budget is charged against.
type frameRec struct {
	run     Run
	payload []byte
	decoded bool
	oldSpec bool
	size    int64
}

// scanReader walks the framed region of a store file. It returns the
// surviving frames in append order (later records for the same spec hash
// replace earlier ones in place), the number of records dropped, and
// whether the file needs a compacting rewrite — only actual corruption
// (truncated or CRC-failing tail) or superseded duplicates count as
// dropped and dirty; undecodable-but-intact frames are preserved. err is
// only a genuine read failure, which must abort the open rather than
// compact surviving records over unreadable ones.
func scanReader(r io.Reader) (frames []frameRec, dropped int64, dirty bool, err error) {
	index := map[string]int{}
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, e := io.ReadFull(r, hdr); e != nil {
			switch e {
			case io.EOF: // clean end on a frame boundary
				return frames, dropped, dirty, nil
			case io.ErrUnexpectedEOF: // partial frame header: crash mid-append
				return frames, dropped, true, nil
			default:
				return frames, dropped, dirty, e
			}
		}
		length := binary.LittleEndian.Uint32(hdr)
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxPayload {
			return frames, dropped + 1, true, nil
		}
		payload := make([]byte, length)
		if _, e := io.ReadFull(r, payload); e != nil {
			if e == io.EOF || e == io.ErrUnexpectedEOF { // truncated payload
				return frames, dropped + 1, true, nil
			}
			return frames, dropped, dirty, e
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			// A frame that fails its CRC poisons everything after it:
			// if the corrupt byte was in the length field, the rest of
			// the file is not frame-aligned.
			return frames, dropped + 1, true, nil
		}
		size := int64(frameHeaderSize) + int64(length)
		run, e := DecodeRun(payload)
		if e != nil || run.SpecHash == "" {
			// CRC-intact but not decodable by this binary (a kind it does
			// not register, a spec under a different engine.SpecVersion, or
			// a record without a cache key): preserved opaquely, not
			// loaded. Compaction must never destroy intact data a fuller
			// (or differently-versioned) binary could still read.
			frames = append(frames, frameRec{
				payload: payload,
				oldSpec: errors.Is(e, engine.ErrSpecVersion),
				size:    size,
			})
			continue
		}
		if i, dup := index[run.SpecHash]; dup {
			frames[i] = frameRec{run: run, decoded: true, size: size} // later write wins
			dropped++
			dirty = true
			continue
		}
		index[run.SpecHash] = len(frames)
		frames = append(frames, frameRec{run: run, decoded: true, size: size})
	}
}

// applyPolicy filters frames under pol: age-expired records first, then
// the newest frames that fit the byte budget — opaque frames compete for
// the budget too, since preserved data still occupies disk, but only
// records whose Finished timestamp this binary can read are ever
// age-dropped. It returns the survivors in append order, the dropped spec
// hashes (decodable records only), and the total frames dropped.
func applyPolicy(frames []frameRec, pol Policy, now time.Time) ([]frameRec, []string, int64) {
	if !pol.enabled() {
		return frames, nil, 0
	}
	var hashes []string
	var n int64
	if pol.MaxAge > 0 {
		cutoff := now.Add(-pol.MaxAge)
		kept := make([]frameRec, 0, len(frames))
		for _, fr := range frames {
			if fr.decoded && !fr.run.Finished.IsZero() && fr.run.Finished.Before(cutoff) {
				hashes = append(hashes, fr.run.SpecHash)
				n++
				continue
			}
			kept = append(kept, fr)
		}
		frames = kept
	}
	if pol.MaxBytes > 0 {
		// Newest-first budget: walk back from the tail, keeping frames
		// while they fit; everything older than the first overflow goes.
		var total int64
		cut := 0
		for i := len(frames) - 1; i >= 0; i-- {
			if total+frames[i].size > pol.MaxBytes {
				cut = i + 1
				break
			}
			total += frames[i].size
		}
		for _, fr := range frames[:cut] {
			if fr.decoded {
				hashes = append(hashes, fr.run.SpecHash)
			}
			n++
		}
		frames = frames[cut:]
	}
	return frames, hashes, n
}

// scan is scanReader over an in-memory framed region, returning only the
// decoded runs (tests and fuzzing; a bytes.Reader cannot fail).
func scan(data []byte) ([]Run, int64, bool) {
	frames, dropped, dirty, _ := scanReader(bytes.NewReader(data))
	var runs []Run
	for _, fr := range frames {
		if fr.decoded {
			runs = append(runs, fr.run)
		}
	}
	return runs, dropped, dirty
}

// renameFile and fsyncFile are indirection points so tests can inject
// rename/sync failures into compact's error paths; production code never
// overrides them. testHookAfterRename, when set, runs in the instant after
// the compacted file is renamed into place and before compact returns —
// the window in which a pre-fix compact left the store path naming an
// unlocked inode.
var (
	renameFile          = os.Rename
	fsyncFile           = func(f *os.File) error { return f.Sync() }
	testHookAfterRename func()
)

// compact rewrites the store as header + the surviving frames (decoded
// runs re-encoded, opaque frames carried through verbatim), via a temp
// file in the same directory renamed over the original. The temp file is
// flocked *before* the rename — a flock follows the inode through rename —
// so there is no instant in which the store path names an unlocked file
// that a second daemon could grab. On success the temp descriptor becomes
// the live one (no reopen, so no reopen failure modes); on any failure the
// original descriptor and its lock are untouched and only the temp file is
// cleaned up. Callers hold l.mu or own l exclusively during Open.
func (l *Log) compact(frames []frameRec) error {
	dir, base := filepath.Split(l.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return err
	}
	renamed := false
	defer func() {
		if !renamed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	size := int64(headerSize)
	if _, err := tmp.Write(Header()); err != nil {
		return err
	}
	live := make(map[string]int64, len(frames))
	var opaque int64
	for _, fr := range frames {
		payload := fr.payload
		if fr.decoded {
			if payload, err = EncodeRun(fr.run); err != nil {
				return err
			}
		}
		n, err := tmp.Write(frame(payload))
		if err != nil {
			return err
		}
		if fr.decoded {
			live[fr.run.SpecHash] = int64(n)
		} else {
			opaque += int64(n)
		}
		size += int64(n)
	}
	// CreateTemp's 0600 must not leak onto the store: keep the original
	// file's mode so sidecar readers (backups, monitoring) survive the
	// rewrite.
	if info, err := l.f.Stat(); err == nil {
		_ = tmp.Chmod(info.Mode().Perm())
	}
	if err := fsyncFile(tmp); err != nil {
		return err
	}
	if err := lockFile(tmp.Fd()); err != nil {
		return fmt.Errorf("store: locking compacted file: %w", err)
	}
	if err := renameFile(tmp.Name(), l.path); err != nil {
		return err
	}
	renamed = true
	if h := testHookAfterRename; h != nil {
		h()
	}
	syncDir(dir)
	l.f.Close()
	l.f = tmp
	l.stats.Bytes = size
	l.live = live
	l.opaqueBytes = opaque
	l.deadBytes = 0
	return nil
}

// reinit rewrites the file as a fresh, empty store (header only).
func (l *Log) reinit() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.writeAndSync(Header()); err != nil {
		return err
	}
	l.stats.Bytes = int64(headerSize)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash; on
// platforms where directories cannot be fsynced the rename is still
// atomic, so errors are ignored.
func syncDir(dir string) {
	if dir == "" {
		dir = "."
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// frame wraps a payload in the length+CRC frame header.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// Load replays the records Open recovered, in append order, then releases
// them. A second call is a no-op. apply returning an error stops the
// replay and returns that error (already-applied records stay applied).
func (l *Log) Load(apply func(Run) error) error {
	l.mu.Lock()
	runs := l.loaded
	l.loaded = nil
	l.mu.Unlock()
	for _, r := range runs {
		if err := apply(r); err != nil {
			return err
		}
	}
	return nil
}

// Append commits one record: a single frame write followed by an fsync,
// so a record either survives a crash whole or is dropped by the next
// Open's tail recovery.
func (l *Log) Append(r Run) error {
	payload, err := EncodeRun(r)
	if err != nil {
		return err
	}
	// A frame the reader would refuse must never be written: an oversized
	// record would not just be lost itself, it would end the recovery
	// scan and take every record appended after it along.
	if len(payload) > maxPayload {
		return fmt.Errorf("store: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxPayload)
	}
	buf := frame(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if err := l.writeAndSync(buf); err != nil {
		return err
	}
	l.stats.RecordsAppended++
	l.stats.Bytes += int64(len(buf))
	if prev, dup := l.live[r.SpecHash]; dup {
		l.deadBytes += prev // superseded in place; reclaimable by the next rewrite
	}
	l.live[r.SpecHash] = int64(len(buf))
	l.maybeKickGC()
	return nil
}

// reclaimable returns the bytes a retention rewrite would free right now:
// frames superseded by later appends plus the live excess over MaxBytes.
// Callers hold l.mu.
func (l *Log) reclaimable() int64 {
	rec := l.deadBytes
	if l.pol.MaxBytes > 0 {
		framed := l.stats.Bytes - int64(headerSize) - l.deadBytes
		if excess := framed - l.pol.MaxBytes; excess > 0 {
			rec += excess
		}
	}
	return rec
}

// maybeKickGC nudges the background goroutine when the reclaimable bytes
// reach the policy threshold. Non-blocking: a kick while a pass is already
// queued coalesces. Callers hold l.mu.
func (l *Log) maybeKickGC() {
	if l.gcKick == nil || l.reclaimable() < l.pol.threshold() {
		return
	}
	select {
	case l.gcKick <- struct{}{}:
	default:
	}
}

// startGC launches the background retention goroutine when the policy
// bounds anything. Called once at the end of a successful open.
func (l *Log) startGC() {
	if !l.pol.enabled() {
		return
	}
	l.gcKick = make(chan struct{}, 1)
	l.gcDone = make(chan struct{})
	go l.gcLoop(l.gcKick, l.gcDone)
}

// gcLoop runs retention passes on kicks from Append and, when an age
// bound is set, on a timer (age expiry reclaims bytes without any append
// to notice it). Exits when Close closes the kick channel.
func (l *Log) gcLoop(kick <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var tick <-chan time.Time
	if l.pol.MaxAge > 0 {
		d := l.pol.MaxAge / 2
		if d < time.Second {
			d = time.Second
		}
		if d > 10*time.Minute {
			d = 10 * time.Minute
		}
		t := time.NewTicker(d)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case _, ok := <-kick:
			if !ok {
				return
			}
			l.runGC(false)
		case <-tick:
			l.runGC(false)
		}
	}
}

// runGC is one retention pass. Drop notifications go out after the lock
// is released, so an OnDrop callback may call back into the log.
func (l *Log) runGC(force bool) error {
	l.mu.Lock()
	hashes, err := l.compactLocked(force)
	onDrop := l.onDrop
	l.mu.Unlock()
	if err == nil && len(hashes) > 0 && onDrop != nil {
		onDrop(hashes)
	}
	return err
}

// compactLocked rescans the file, applies the policy, and rewrites when
// anything is reclaimable (threshold-gated unless forced). The rewrite is
// built from what is actually durable on disk — the in-memory accounting
// only decides when to look. Callers hold l.mu.
func (l *Log) compactLocked(force bool) ([]string, error) {
	if l.f == nil {
		return nil, ErrClosed
	}
	if !force && l.reclaimable() < l.pol.threshold() {
		return nil, nil
	}
	if _, err := l.f.Seek(int64(headerSize), io.SeekStart); err != nil {
		return nil, err
	}
	frames, _, _, err := scanReader(bufio.NewReaderSize(l.f, 64<<10))
	if err != nil {
		l.f.Seek(0, io.SeekEnd)
		return nil, err
	}
	kept, hashes, gcDropped := applyPolicy(frames, l.pol, time.Now())
	if gcDropped == 0 && l.deadBytes == 0 {
		_, err := l.f.Seek(0, io.SeekEnd)
		return nil, err
	}
	pre := l.stats.Bytes
	if err := l.compact(kept); err != nil {
		l.f.Seek(0, io.SeekEnd)
		return nil, err
	}
	l.stats.Compactions++
	l.stats.GCCompactions++
	l.stats.GCRecordsDropped += gcDropped
	if rec := pre - l.stats.Bytes; rec > 0 {
		l.stats.GCBytesReclaimed += rec
	}
	return hashes, nil
}

// Compact forces a retention pass now, regardless of the trigger
// threshold — operational tooling and tests. Nothing is rewritten when
// nothing is reclaimable. Dropped spec hashes are reported through OnDrop
// as usual.
func (l *Log) Compact() error { return l.runGC(true) }

// OnDrop registers fn to receive the spec hashes each retention rewrite
// drops, so the owning cache can evict in step with the disk. The callback
// runs outside the log's lock (it may call back into the log) but serially
// with respect to retention passes. Replaces any previous callback.
func (l *Log) OnDrop(fn func([]string)) {
	l.mu.Lock()
	l.onDrop = fn
	l.mu.Unlock()
}

// writeAndSync writes buf and fsyncs; callers hold l.mu (or own l
// exclusively during Open).
func (l *Log) writeAndSync(buf []byte) error {
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	return l.f.Sync()
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close fsyncs and closes the file and drains the background retention
// goroutine. Further Appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	kick, done := l.gcKick, l.gcDone
	l.gcKick, l.gcDone = nil, nil
	l.mu.Unlock()
	// The goroutine may be mid-pass waiting on l.mu; it will find l.f nil
	// and bail, then observe the closed kick channel and exit.
	if kick != nil {
		close(kick)
		<-done
	}
	return err
}

// Package store is the file-backed persistence layer behind the service's
// result cache and job history: an append-only log of CRC-framed JSON
// records, one per completed run, fsynced on every commit and compacted on
// open. It has no dependencies beyond the standard library and package
// engine, and no knowledge of the service's locking or HTTP layers — the
// service package adapts *Log to its Store interface.
//
// # On-disk format (version 1)
//
// A store file is a 16-byte header followed by zero or more frames:
//
//	header  = "consensus-store" (15 bytes) || version (1 byte, 0x01)
//	frame   = length (4 bytes LE) || crc (4 bytes LE) || payload
//	payload = the JSON encoding of one Run (see EncodeRun)
//
// The crc is the CRC-32 (Castagnoli) of the payload bytes. The final
// header byte is the format version: readers refuse files whose version
// they do not know, and any change to the framing or the Run codec that
// is not purely additive must bump FormatVersion. Cache keys are
// canonical spec hashes, which may change from release to release — the
// version byte is what lets a reader reject a store written under an
// incompatible codec instead of serving stale entries under new keys.
//
// # Recovery and compaction
//
// Open scans the whole file, streaming frame by frame. A truncated tail
// (a partial frame, e.g. from a crash mid-append) or a frame whose CRC
// does not match ends the scan: everything from the bad frame on is
// dropped, everything before it is kept — append-only framing means
// bytes after a corrupt frame cannot be trusted to be frame-aligned. A
// frame whose CRC matches but whose payload this binary cannot decode
// (e.g. a run of a kind it does not register) is preserved opaquely: not
// loaded, but never destroyed, so a fuller binary can still read it
// later. When records were dropped, or the same spec hash appears more
// than once (later records win), Open rewrites the file compacted —
// survivors plus opaque frames — through an fsynced temp file renamed
// into place, so a crash during compaction leaves either the old or the
// new file, never a mix.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/engine"
)

// FormatVersion is the store format version byte, the final byte of the
// file header. Version 1: CRC-32C framed JSON Run records.
const FormatVersion = 1

// magic is the header prefix identifying a store file.
const magic = "consensus-store"

const (
	headerSize      = len(magic) + 1
	frameHeaderSize = 8
	// maxPayload bounds a frame's declared payload length; anything larger
	// is treated as corruption (a flipped length byte must not make the
	// reader attempt a multi-gigabyte allocation).
	maxPayload = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("store: log is closed")

// Header returns the version-1 file header: the magic followed by the
// format version byte.
func Header() []byte {
	return append([]byte(magic), FormatVersion)
}

// Run is the persisted form of one completed run: the job metadata, the
// spec, its canonical hash (the cache key), the result and the captured
// round records. Decoding resolves the spec's kind through the engine
// registry, so a binary can only reload runs of kinds it has registered.
type Run struct {
	// ID is the job id the run completed under ("" for runs persisted
	// outside the job lifecycle).
	ID string `json:"id,omitempty"`
	// SpecHash is the canonical spec hash — the result-cache key.
	SpecHash string `json:"spec_hash"`
	// RequestID is the X-Request-Id of the submission that created the
	// run's job, for correlating persisted runs with access logs.
	RequestID string `json:"request_id,omitempty"`
	// Spec is the normalized spec the run executed.
	Spec engine.Spec `json:"spec"`
	// Result is the run's outcome, effective seed included.
	Result engine.Result `json:"result"`
	// Records is the captured round-by-round stream; Truncated counts
	// rounds beyond the service's per-job record bound.
	Records   []engine.Record `json:"records,omitempty"`
	Truncated int             `json:"truncated,omitempty"`
	// Created, Started and Finished are the job's lifecycle timestamps.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// EncodeRun renders a Run as its frame payload — deterministic for a
// normalized spec (the spec codec sorts keys), so encode∘decode∘encode is
// byte-identical.
func EncodeRun(r Run) ([]byte, error) { return json.Marshal(r) }

// DecodeRun parses a frame payload. The spec's kind must be registered.
func DecodeRun(payload []byte) (Run, error) {
	var r Run
	if err := json.Unmarshal(payload, &r); err != nil {
		return Run{}, err
	}
	return r, nil
}

// Stats reports a log's lifetime counters, surfaced on /v1/metrics.
type Stats struct {
	// RecordsLoaded is the number of records the last Open recovered;
	// RecordsDropped the number it discarded (corrupt tail, CRC mismatch,
	// or superseded by a later record for the same spec hash);
	// RecordsUnknown the number of intact records this binary cannot
	// decode (e.g. a kind it does not register) — preserved on disk
	// through compactions, but not loaded.
	RecordsLoaded  int64 `json:"records_loaded"`
	RecordsDropped int64 `json:"records_dropped"`
	RecordsUnknown int64 `json:"records_unknown"`
	// RecordsAppended counts successful Append calls on this handle.
	RecordsAppended int64 `json:"records_appended"`
	// Bytes is the current file size, header included.
	Bytes int64 `json:"bytes"`
	// Compactions counts rewrites (1 when Open compacted, 0 otherwise).
	Compactions int64 `json:"compactions"`
}

// Log is an open store file. Open recovers and compacts it; Append
// commits one record with an fsync; Load replays what Open recovered.
// Append and Stats are safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	stats  Stats
	loaded []Run
}

// Open opens (or creates) the store file at path, recovering every intact
// record and compacting the file when anything was dropped or superseded.
// The recovered records are replayed by Load, in append order. Recovery
// streams the file frame by frame, so transient memory is one frame plus
// the decoded records — never a second, raw copy of the whole file.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f.Fd()); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{f: f, path: path}
	if info.Size() == 0 {
		if err := l.writeAndSync(Header()); err != nil {
			f.Close()
			return nil, err
		}
		l.stats.Bytes = int64(headerSize)
		return l, nil
	}
	br := bufio.NewReaderSize(f, 64<<10)
	hdr := make([]byte, headerSize)
	if n, err := io.ReadFull(br, hdr); err != nil {
		// A short file that prefix-matches our header is our own
		// interrupted creation (crash before the header write was
		// durable), not a foreign file: reinitialize it instead of
		// bricking the path.
		if err == io.ErrUnexpectedEOF && bytes.Equal(hdr[:n], Header()[:n]) {
			if err := l.reinit(); err != nil {
				f.Close()
				return nil, err
			}
			return l, nil
		}
		f.Close()
		return nil, fmt.Errorf("store: %s is not a store file", path)
	}
	if !bytes.HasPrefix(hdr, []byte(magic)) {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a store file", path)
	}
	if v := hdr[len(magic)]; v != FormatVersion {
		f.Close()
		return nil, fmt.Errorf("store: %s has format version %d, this binary reads version %d", path, v, FormatVersion)
	}
	frames, dropped, dirty, err := scanReader(br)
	if err != nil {
		f.Close()
		return nil, err
	}
	for _, fr := range frames {
		if fr.decoded {
			l.loaded = append(l.loaded, fr.run)
		} else {
			l.stats.RecordsUnknown++
		}
	}
	l.stats.RecordsLoaded = int64(len(l.loaded))
	l.stats.RecordsDropped = dropped
	if dirty {
		if err := l.compact(frames); err != nil {
			f.Close()
			return nil, err
		}
		l.stats.Compactions++
	} else {
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, err
		}
		l.stats.Bytes = info.Size()
	}
	return l, nil
}

// frameRec is one CRC-valid frame as scanned. Frames this binary can
// decode carry their Run (the payload is re-encoded at compaction time,
// deterministically); frames it cannot — e.g. a run of a kind not
// registered here — keep their raw payload so a compaction carries them
// through opaquely instead of destroying intact data.
type frameRec struct {
	run     Run
	payload []byte
	decoded bool
}

// scanReader walks the framed region of a store file. It returns the
// surviving frames in append order (later records for the same spec hash
// replace earlier ones in place), the number of records dropped, and
// whether the file needs a compacting rewrite — only actual corruption
// (truncated or CRC-failing tail) or superseded duplicates count as
// dropped and dirty; undecodable-but-intact frames are preserved. err is
// only a genuine read failure, which must abort the open rather than
// compact surviving records over unreadable ones.
func scanReader(r io.Reader) (frames []frameRec, dropped int64, dirty bool, err error) {
	index := map[string]int{}
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, e := io.ReadFull(r, hdr); e != nil {
			switch e {
			case io.EOF: // clean end on a frame boundary
				return frames, dropped, dirty, nil
			case io.ErrUnexpectedEOF: // partial frame header: crash mid-append
				return frames, dropped, true, nil
			default:
				return frames, dropped, dirty, e
			}
		}
		length := binary.LittleEndian.Uint32(hdr)
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxPayload {
			return frames, dropped + 1, true, nil
		}
		payload := make([]byte, length)
		if _, e := io.ReadFull(r, payload); e != nil {
			if e == io.EOF || e == io.ErrUnexpectedEOF { // truncated payload
				return frames, dropped + 1, true, nil
			}
			return frames, dropped, dirty, e
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			// A frame that fails its CRC poisons everything after it:
			// if the corrupt byte was in the length field, the rest of
			// the file is not frame-aligned.
			return frames, dropped + 1, true, nil
		}
		run, e := DecodeRun(payload)
		if e != nil || run.SpecHash == "" {
			// CRC-intact but not decodable by this binary (a kind it does
			// not register, or a record without a cache key): preserved
			// opaquely, not loaded. Compaction must never destroy intact
			// data a fuller binary could still read.
			frames = append(frames, frameRec{payload: payload})
			continue
		}
		if i, dup := index[run.SpecHash]; dup {
			frames[i] = frameRec{run: run, decoded: true} // later write wins
			dropped++
			dirty = true
			continue
		}
		index[run.SpecHash] = len(frames)
		frames = append(frames, frameRec{run: run, decoded: true})
	}
}

// scan is scanReader over an in-memory framed region, returning only the
// decoded runs (tests and fuzzing; a bytes.Reader cannot fail).
func scan(data []byte) ([]Run, int64, bool) {
	frames, dropped, dirty, _ := scanReader(bytes.NewReader(data))
	var runs []Run
	for _, fr := range frames {
		if fr.decoded {
			runs = append(runs, fr.run)
		}
	}
	return runs, dropped, dirty
}

// compact rewrites the store as header + the surviving frames (decoded
// runs re-encoded, unknown-kind frames carried through verbatim), via a
// temp file in the same directory renamed over the original.
func (l *Log) compact(frames []frameRec) error {
	dir, base := filepath.Split(l.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	size := int64(headerSize)
	if _, err := tmp.Write(Header()); err != nil {
		tmp.Close()
		return err
	}
	for _, fr := range frames {
		payload := fr.payload
		if fr.decoded {
			if payload, err = EncodeRun(fr.run); err != nil {
				tmp.Close()
				return err
			}
		}
		n, err := tmp.Write(frame(payload))
		if err != nil {
			tmp.Close()
			return err
		}
		size += int64(n)
	}
	// CreateTemp's 0600 must not leak onto the store: keep the original
	// file's mode so sidecar readers (backups, monitoring) survive the
	// rewrite.
	if info, err := l.f.Stat(); err == nil {
		_ = tmp.Chmod(info.Mode().Perm())
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	syncDir(dir)
	// Reopen the renamed file for appending and lock it before dropping
	// the old descriptor — the flock lives on the inode, and the rename
	// just created a new one.
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := lockFile(f.Fd()); err != nil {
		f.Close()
		return fmt.Errorf("store: %s is locked by another process: %w", l.path, err)
	}
	l.f.Close()
	l.f = f
	l.stats.Bytes = size
	return nil
}

// reinit rewrites the file as a fresh, empty store (header only).
func (l *Log) reinit() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.writeAndSync(Header()); err != nil {
		return err
	}
	l.stats.Bytes = int64(headerSize)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash; on
// platforms where directories cannot be fsynced the rename is still
// atomic, so errors are ignored.
func syncDir(dir string) {
	if dir == "" {
		dir = "."
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// frame wraps a payload in the length+CRC frame header.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// Load replays the records Open recovered, in append order, then releases
// them. A second call is a no-op. apply returning an error stops the
// replay and returns that error (already-applied records stay applied).
func (l *Log) Load(apply func(Run) error) error {
	l.mu.Lock()
	runs := l.loaded
	l.loaded = nil
	l.mu.Unlock()
	for _, r := range runs {
		if err := apply(r); err != nil {
			return err
		}
	}
	return nil
}

// Append commits one record: a single frame write followed by an fsync,
// so a record either survives a crash whole or is dropped by the next
// Open's tail recovery.
func (l *Log) Append(r Run) error {
	payload, err := EncodeRun(r)
	if err != nil {
		return err
	}
	// A frame the reader would refuse must never be written: an oversized
	// record would not just be lost itself, it would end the recovery
	// scan and take every record appended after it along.
	if len(payload) > maxPayload {
		return fmt.Errorf("store: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxPayload)
	}
	buf := frame(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if err := l.writeAndSync(buf); err != nil {
		return err
	}
	l.stats.RecordsAppended++
	l.stats.Bytes += int64(len(buf))
	return nil
}

// writeAndSync writes buf and fsyncs; callers hold l.mu (or own l
// exclusively during Open).
func (l *Log) writeAndSync(buf []byte) error {
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	return l.f.Sync()
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close fsyncs and closes the file. Further Appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

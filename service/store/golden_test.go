package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the on-disk format golden file")

// TestGoldenFormat pins the version-1 on-disk format byte for byte: the
// 16-byte header ("consensus-store" + the format version byte 0x01) and
// one CRC-framed record. Any change to the magic, the version byte, the
// frame layout or the Run JSON codec fails here — if the change is
// intentional, bump FormatVersion (readers refuse unknown versions, which
// is the upgrade path: a store written under one codec is never misread
// under another) and regenerate with
//
//	go test ./service/store -run TestGoldenFormat -update
func TestGoldenFormat(t *testing.T) {
	golden := filepath.Join("testdata", "store_format_v1.golden")

	path := filepath.Join(t.TempDir(), "golden.store")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRun(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("on-disk format changed without a FormatVersion bump:\n got  %d bytes: %q\n want %d bytes: %q",
			len(got), got, len(want), want)
	}

	// Structural pins, so a failure says what moved.
	if string(got[:15]) != magic {
		t.Fatalf("magic = %q, want %q", got[:15], magic)
	}
	if got[15] != FormatVersion {
		t.Fatalf("format version byte = %d, want %d", got[15], FormatVersion)
	}

	// The golden file itself must still load: the pinned bytes are a real
	// store, not just a byte string.
	goldenCopy := filepath.Join(t.TempDir(), "golden-copy.store")
	if err := os.WriteFile(goldenCopy, want, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(goldenCopy)
	if err != nil {
		t.Fatalf("golden file does not open: %v", err)
	}
	runs := loadAll(t, l2)
	st := l2.Stats()
	l2.Close()
	if len(runs) != 1 || st.RecordsDropped != 0 || st.Compactions != 0 {
		t.Fatalf("golden file recovery: %d runs, stats %+v; want 1 clean record", len(runs), st)
	}
	if wantRun := testRun(t, 0); runs[0].SpecHash != wantRun.SpecHash ||
		!reflect.DeepEqual(runs[0].Result, wantRun.Result) ||
		!reflect.DeepEqual(runs[0].Records, wantRun.Records) {
		t.Fatalf("golden record decoded differently:\n got  %+v\n want %+v", runs[0], wantRun)
	}
}

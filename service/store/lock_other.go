//go:build !unix

package store

// lockFile is a no-op where flock does not exist; single-writer use is
// then the operator's responsibility.
func lockFile(uintptr) error { return nil }

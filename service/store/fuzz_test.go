package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzOpen feeds arbitrary bytes to Open as the framed region of a store
// file: recovery must never panic, never invent records, and always
// produce a file that reopens clean (recovery is idempotent).
func FuzzOpen(f *testing.F) {
	var valid bytes.Buffer
	for i := 0; i < 3; i++ {
		run, err := makeRun(i)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := EncodeRun(run)
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(frame(payload))
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-5]) // truncated tail
	flipped := bytes.Clone(valid.Bytes())
	flipped[9] ^= 0x40 // inside the first frame's CRC/payload
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4}) // absurd declared length

	f.Fuzz(func(t *testing.T, framed []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.store")
		if err := os.WriteFile(path, append(Header(), framed...), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			t.Fatalf("Open must recover, not fail, on a well-headed file: %v", err)
		}
		runs := loadAll(t, l)
		st := l.Stats()
		if int64(len(runs)) != st.RecordsLoaded {
			t.Fatalf("loaded %d runs but stats claim %d", len(runs), st.RecordsLoaded)
		}
		for i, r := range runs {
			if r.SpecHash == "" {
				t.Fatalf("recovered record %d has no spec hash", i)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(path)
		if err != nil {
			t.Fatalf("recovered file does not reopen: %v", err)
		}
		st2 := l2.Stats()
		l2.Close()
		if st2.RecordsLoaded != st.RecordsLoaded || st2.RecordsUnknown != st.RecordsUnknown ||
			st2.RecordsDropped != 0 || st2.Compactions != 0 {
			t.Fatalf("recovery not idempotent: first %+v then %+v", st, st2)
		}
	})
}

// FuzzDecodeRun: arbitrary payloads must never panic the codec, and any
// payload that decodes must re-encode to a byte-stable form.
func FuzzDecodeRun(f *testing.F) {
	for i := 0; i < 3; i++ {
		run, err := makeRun(i)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := EncodeRun(run)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"spec_hash":"x","spec":{"kind":"nope"}}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, payload []byte) {
		run, err := DecodeRun(payload)
		if err != nil {
			return
		}
		buf, err := EncodeRun(run)
		if err != nil {
			t.Fatalf("decoded run does not re-encode: %v", err)
		}
		back, err := DecodeRun(buf)
		if err != nil {
			t.Fatalf("re-encoded run does not decode: %v", err)
		}
		again, err := EncodeRun(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("codec not byte-stable:\n first  %s\n second %s", buf, again)
		}
	})
}

// FuzzFrameRoundTrip: any payload framed and scanned comes back intact.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(`{"spec_hash":"h"}`), []byte(`{"spec_hash":"h2"}`))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Frame two arbitrary payloads; scan must either decode them (when
		// they are valid Run JSON with distinct hashes) or drop them, but
		// the CRC must never reject what frame produced.
		framed := append(frame(a), frame(b)...)
		runs, _, _ := scan(framed)
		// Mirror scan's dedupe: a later record for the same hash replaces
		// the earlier one in place.
		var want []Run
		index := map[string]int{}
		for _, payload := range [][]byte{a, b} {
			r, err := DecodeRun(payload)
			if err != nil || r.SpecHash == "" {
				continue
			}
			if i, dup := index[r.SpecHash]; dup {
				want[i] = r
				continue
			}
			index[r.SpecHash] = len(want)
			want = append(want, r)
		}
		if len(runs) != len(want) {
			t.Fatalf("scan recovered %d runs, want %d", len(runs), len(want))
		}
		for i := range runs {
			wantBuf, _ := json.Marshal(want[i])
			gotBuf, _ := json.Marshal(runs[i])
			if !bytes.Equal(wantBuf, gotBuf) {
				t.Fatalf("run %d mismatch: %s vs %s", i, gotBuf, wantBuf)
			}
		}
	})
}

// FuzzOpenWithPolicy: any retention policy over any recovered file must
// keep a newest-first subset of what an unbounded Open would load, never
// resurrect a record the policy dropped, and leave a file that reopens
// parseable with exactly the survivors.
func FuzzOpenWithPolicy(f *testing.F) {
	var valid bytes.Buffer
	for i := 0; i < 4; i++ {
		run, err := makeRun(i)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := EncodeRun(run)
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(frame(payload))
	}
	f.Add(valid.Bytes(), int64(0), int64(0))
	f.Add(valid.Bytes(), int64(400), int64(0))                             // tight byte budget
	f.Add(valid.Bytes(), int64(1), int64(0))                               // budget below any frame
	f.Add(valid.Bytes(), int64(0), int64(3600))                            // everything aged out
	f.Add(valid.Bytes()[:valid.Len()-7], int64(500), int64(86400*365*100)) // truncated tail + roomy policy

	f.Fuzz(func(t *testing.T, framed []byte, maxBytes, maxAgeSecs int64) {
		if maxBytes < 0 {
			maxBytes = -maxBytes
		}
		if maxAgeSecs < 0 {
			maxAgeSecs = -maxAgeSecs
		}
		pol := Policy{MaxBytes: maxBytes, MaxAge: time.Duration(maxAgeSecs) * time.Second}

		// Reference: what an unbounded Open recovers from the same bytes.
		refPath := filepath.Join(t.TempDir(), "ref.store")
		if err := os.WriteFile(refPath, append(Header(), framed...), 0o644); err != nil {
			t.Fatal(err)
		}
		refLog, err := Open(refPath)
		if err != nil {
			t.Fatalf("unbounded Open must recover: %v", err)
		}
		ref := loadAll(t, refLog)
		refLog.Close()

		path := filepath.Join(t.TempDir(), "pol.store")
		if err := os.WriteFile(path, append(Header(), framed...), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenWithPolicy(path, pol)
		if err != nil {
			t.Fatalf("a policy must never make recovery fail: %v", err)
		}
		got := loadAll(t, l)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Survivors are a subset of the reference, in reference order —
		// retention never invents or reorders records.
		refIdx := map[string]int{}
		for i, r := range ref {
			refIdx[r.SpecHash] = i
		}
		prev := -1
		for _, r := range got {
			i, ok := refIdx[r.SpecHash]
			if !ok {
				t.Fatalf("policy resurrected a record the reference never loaded: %s", r.SpecHash)
			}
			if i <= prev {
				t.Fatalf("policy reordered survivors: %s", r.SpecHash)
			}
			prev = i
		}
		// With no age bound, a byte budget keeps a suffix: once a record
		// survives, every newer one does too.
		if pol.MaxAge == 0 && len(got) > 0 {
			if want := ref[len(ref)-len(got):]; len(want) == len(got) {
				for i := range got {
					if got[i].SpecHash != want[i].SpecHash {
						t.Fatalf("byte budget did not keep a newest-first suffix: got %d-of-%d with %s at %d",
							len(got), len(ref), got[i].SpecHash, i)
					}
				}
			}
		}

		// The rewritten file is parseable and replays exactly the
		// survivors: dropped records stay dropped.
		l2, err := Open(path)
		if err != nil {
			t.Fatalf("post-retention file does not reopen: %v", err)
		}
		again := loadAll(t, l2)
		l2.Close()
		if len(again) != len(got) {
			t.Fatalf("reopen replays %d records, policy kept %d", len(again), len(got))
		}
		for i := range again {
			if again[i].SpecHash != got[i].SpecHash {
				t.Fatalf("reopen record %d is %s, want %s", i, again[i].SpecHash, got[i].SpecHash)
			}
		}
	})
}

package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen feeds arbitrary bytes to Open as the framed region of a store
// file: recovery must never panic, never invent records, and always
// produce a file that reopens clean (recovery is idempotent).
func FuzzOpen(f *testing.F) {
	var valid bytes.Buffer
	for i := 0; i < 3; i++ {
		run, err := makeRun(i)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := EncodeRun(run)
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(frame(payload))
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-5]) // truncated tail
	flipped := bytes.Clone(valid.Bytes())
	flipped[9] ^= 0x40 // inside the first frame's CRC/payload
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4}) // absurd declared length

	f.Fuzz(func(t *testing.T, framed []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.store")
		if err := os.WriteFile(path, append(Header(), framed...), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			t.Fatalf("Open must recover, not fail, on a well-headed file: %v", err)
		}
		runs := loadAll(t, l)
		st := l.Stats()
		if int64(len(runs)) != st.RecordsLoaded {
			t.Fatalf("loaded %d runs but stats claim %d", len(runs), st.RecordsLoaded)
		}
		for i, r := range runs {
			if r.SpecHash == "" {
				t.Fatalf("recovered record %d has no spec hash", i)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(path)
		if err != nil {
			t.Fatalf("recovered file does not reopen: %v", err)
		}
		st2 := l2.Stats()
		l2.Close()
		if st2.RecordsLoaded != st.RecordsLoaded || st2.RecordsUnknown != st.RecordsUnknown ||
			st2.RecordsDropped != 0 || st2.Compactions != 0 {
			t.Fatalf("recovery not idempotent: first %+v then %+v", st, st2)
		}
	})
}

// FuzzDecodeRun: arbitrary payloads must never panic the codec, and any
// payload that decodes must re-encode to a byte-stable form.
func FuzzDecodeRun(f *testing.F) {
	for i := 0; i < 3; i++ {
		run, err := makeRun(i)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := EncodeRun(run)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"spec_hash":"x","spec":{"kind":"nope"}}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, payload []byte) {
		run, err := DecodeRun(payload)
		if err != nil {
			return
		}
		buf, err := EncodeRun(run)
		if err != nil {
			t.Fatalf("decoded run does not re-encode: %v", err)
		}
		back, err := DecodeRun(buf)
		if err != nil {
			t.Fatalf("re-encoded run does not decode: %v", err)
		}
		again, err := EncodeRun(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("codec not byte-stable:\n first  %s\n second %s", buf, again)
		}
	})
}

// FuzzFrameRoundTrip: any payload framed and scanned comes back intact.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(`{"spec_hash":"h"}`), []byte(`{"spec_hash":"h2"}`))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Frame two arbitrary payloads; scan must either decode them (when
		// they are valid Run JSON with distinct hashes) or drop them, but
		// the CRC must never reject what frame produced.
		framed := append(frame(a), frame(b)...)
		runs, _, _ := scan(framed)
		// Mirror scan's dedupe: a later record for the same hash replaces
		// the earlier one in place.
		var want []Run
		index := map[string]int{}
		for _, payload := range [][]byte{a, b} {
			r, err := DecodeRun(payload)
			if err != nil || r.SpecHash == "" {
				continue
			}
			if i, dup := index[r.SpecHash]; dup {
				want[i] = r
				continue
			}
			index[r.SpecHash] = len(want)
			want = append(want, r)
		}
		if len(runs) != len(want) {
			t.Fatalf("scan recovered %d runs, want %d", len(runs), len(want))
		}
		for i := range runs {
			wantBuf, _ := json.Marshal(want[i])
			gotBuf, _ := json.Marshal(runs[i])
			if !bytes.Equal(wantBuf, gotBuf) {
				t.Fatalf("run %d mismatch: %s vs %s", i, gotBuf, wantBuf)
			}
		}
	})
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/engine"
)

// copyFixture copies a testdata fixture into a temp dir so Open can lock
// and rewrite it without touching the checked-in file.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSpecVersionMigration is the golden migration test for the spec
// codec bump: testdata/store_specv0.golden is a store written before the
// canonical encoding carried a "v" field (its record's spec decodes with
// V == 0). A current binary must preserve that frame opaquely — never
// load it, never serve it under a re-derived key, never destroy it — while
// appending and serving current-codec records alongside it.
func TestSpecVersionMigration(t *testing.T) {
	path := copyFixture(t, "store_specv0.golden")

	l, err := Open(path)
	if err != nil {
		t.Fatalf("a pre-bump store must open cleanly: %v", err)
	}
	if runs := loadAll(t, l); len(runs) != 0 {
		t.Fatalf("old-spec record must not be loaded, got %+v", runs)
	}
	st := l.Stats()
	if st.RecordsOldSpec != 1 || st.RecordsLoaded != 0 || st.RecordsUnknown != 0 {
		t.Fatalf("want 1 old-spec frame preserved, stats %+v", st)
	}
	if st.Compactions != 0 {
		t.Fatalf("an intact pre-bump file must not be rewritten at open: %+v", st)
	}

	// Life goes on: current-codec records append and reload next to the
	// preserved frame.
	current := testRun(t, 1)
	if err := l.Append(current); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	runs := loadAll(t, l)
	st = l.Stats()
	if len(runs) != 1 || runs[0].SpecHash != current.SpecHash {
		t.Fatalf("want only the current-codec run, got %+v", runs)
	}
	if st.RecordsOldSpec != 1 {
		t.Fatalf("old-spec frame lost across reopen: %+v", st)
	}

	// Force a rewrite (duplicate append → dead frame → Compact) and make
	// sure the compaction carries the old-spec frame through verbatim.
	if err := l.Append(current); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The v0 record's spec hash (under the old codec) must still be on
	// disk, byte for byte, and must differ from every current-codec key.
	const v0Hash = "ea2ebade08e1135d6271f5f56cde869f7a8ebe539bc4fd01e651f3e9343bfc46"
	if !strings.Contains(string(data), v0Hash) {
		t.Fatal("compaction destroyed the preserved old-spec frame")
	}
	if current.SpecHash == v0Hash {
		t.Fatal("codec bump did not change the cache key — migration test is vacuous")
	}
}

// TestDecodeRunSpecVersion pins the codec boundary both ways: a record
// whose spec carries the current version round-trips; one without (the
// pre-bump encoding) is refused with engine.ErrSpecVersion so recovery
// treats it as opaque.
func TestDecodeRunSpecVersion(t *testing.T) {
	run := testRun(t, 0)
	if run.Spec.V != engine.SpecVersion {
		t.Fatalf("normalized spec must carry v%d, got v%d", engine.SpecVersion, run.Spec.V)
	}
	payload, err := EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRun(payload); err != nil {
		t.Fatalf("current-version record must decode: %v", err)
	}

	old := strings.Replace(string(payload), `,"v":1`, "", 1)
	if old == string(payload) {
		t.Fatal("fixture surgery failed: no v field found to strip")
	}
	_, err = DecodeRun([]byte(old))
	if !errors.Is(err, engine.ErrSpecVersion) {
		t.Fatalf("pre-bump record must be refused with ErrSpecVersion, got %v", err)
	}
}

//go:build unix

package store

import "syscall"

// lockFile takes an exclusive, non-blocking advisory lock on the store
// file, so two processes pointed at one path fail fast at startup instead
// of interleaving appends into CRC soup. The lock lives on the inode and
// is released by the kernel when the descriptor closes — crash included.
func lockFile(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_EX|syscall.LOCK_NB)
}

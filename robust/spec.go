package robust

import (
	"fmt"

	"repro/engine"
	"repro/internal/initspec"
	"repro/internal/model"
)

// This file registers the asynchronous faulty execution as the "robust"
// spec kind of the engine plugin API (package engine).

// Spec is the robust kind's spec payload. The initial values come from the
// shared scalar init registry (internal/initspec, the same "init" block the
// median and gossip kinds use); the fault knobs are this package's Options.
type Spec struct {
	// Init describes the scalar initial state.
	Init initspec.Spec `json:"init,omitzero"`
	// LossProb is the independent per-sample loss probability in [0,1].
	LossProb float64 `json:"loss_prob,omitempty"`
	// Crashes freezes that many uniformly chosen processes before the
	// first step.
	Crashes int `json:"crashes,omitempty"`
	// Mode is the crash fault model: "responsive" (default) or "silent"
	// (see Modes).
	Mode string `json:"mode,omitempty"`
}

// Normalize implements engine.Payload.
func (s *Spec) Normalize() {
	s.Init = initspec.Normalize(s.Init)
	if s.Mode == "" {
		s.Mode = ModeResponsive
	}
}

// Validate implements engine.Payload.
func (s *Spec) Validate() error {
	if err := initspec.Check(s.Init); err != nil {
		return err
	}
	silent, err := ModeByName(s.Mode)
	if err != nil {
		return err
	}
	// The init size may be unknown (0) for kinds without a Size hook; the
	// engine's own construction check then catches a bad crash count.
	if n := initspec.Size(s.Init); n > 0 {
		return Check(int(n), Options{
			LossProb: s.LossProb, Crashes: s.Crashes, Silent: silent,
		})
	}
	if s.LossProb < 0 || s.LossProb > 1 {
		return fmt.Errorf("robust: LossProb %v outside [0,1]", s.LossProb)
	}
	if s.Crashes < 0 {
		return fmt.Errorf("robust: negative Crashes %d", s.Crashes)
	}
	return nil
}

// Population implements engine.Payload.
func (s *Spec) Population() int64 { return initspec.Size(s.Init) }

// Run implements engine.Payload. ctx.MaxRounds counts parallel rounds (n
// activations each), the unit the round records use: the step cap is
// MaxRounds·n.
func (s *Spec) Run(ctx engine.RunContext) (engine.Result, error) {
	vals, err := initspec.Build(s.Init)
	if err != nil {
		return engine.Result{}, err
	}
	silent, err := ModeByName(s.Mode)
	if err != nil {
		return engine.Result{}, err
	}
	n := len(vals)
	emit := func(round int, state []Value) {
		rec := engine.Record{Round: round, N: int64(n)}
		counts := make(map[Value]int64, 16)
		for _, v := range state {
			counts[v]++
		}
		rec.Support = len(counts)
		for v, c := range counts {
			if c > rec.LeaderCount || (c == rec.LeaderCount && v < rec.Leader) {
				rec.Leader, rec.LeaderCount = v, c
			}
		}
		ctx.Observe(rec)
	}
	maxSteps := 0
	if ctx.MaxRounds > 0 {
		maxSteps = ctx.MaxRounds * n
	}
	eng := NewEngine(vals, Options{
		LossProb: s.LossProb,
		Crashes:  s.Crashes,
		Silent:   silent,
		MaxSteps: maxSteps,
		Observer: emit,
	}, ctx.Seed)
	out := eng.Run()
	reason := model.StopMaxRounds
	if out.Consensus {
		reason = model.StopConsensus
	}
	return engine.Result{
		Rounds:       (out.Steps + n - 1) / n,
		Reason:       reason.String(),
		Winner:       out.Winner,
		WinnerCount:  int64(out.WinnerCount),
		Steps:        out.Steps,
		ParallelTime: out.ParallelTime,
		Dissenters:   out.Dissenters,
	}, nil
}

// ApplyAxis implements engine.AxisApplier.
func (s *Spec) ApplyAxis(param string, v float64) error {
	if ok, err := initspec.AxisApply(&s.Init, param, v); ok {
		return err
	}
	switch param {
	case "loss_prob":
		s.LossProb = v
	case "crashes":
		c, err := engine.IntAxis(param, v)
		if err != nil {
			return err
		}
		s.Crashes = c
	default:
		return fmt.Errorf("robust: unknown batch axis %q", param)
	}
	return nil
}

// FollowSeed implements engine.SeedFollower for the uniform init.
func (s *Spec) FollowSeed(seed uint64) { initspec.FollowSeed(&s.Init, seed) }

// robustEngine registers the kind.
type robustEngine struct{}

func (robustEngine) NewPayload() engine.Payload { return &Spec{} }

func (robustEngine) Descriptor() engine.Descriptor {
	params := engine.ScalarInitParams(initspec.Kinds())
	params = append(params,
		engine.Param{Name: "loss_prob", Type: "float", Min: engine.Bound(0), Max: engine.Bound(1), Doc: "independent per-sample loss probability"},
		engine.Param{Name: "crashes", Type: "int", Min: engine.Bound(0), Doc: "processes frozen before the first step"},
		engine.Param{Name: "mode", Type: "string", Default: ModeResponsive, Enum: Modes(), Doc: "crash fault model"},
	)
	return engine.Descriptor{
		Kind:    "robust",
		Summary: "asynchronous execution of the median rule under message loss and crash faults",
		Params:  params,
		Axes:    []string{"n", "m", "n_low", "loss_prob", "crashes"},
		Example: []byte(`{"init":{"kind":"twovalue","n":48},"loss_prob":0.1}`),
	}
}

func init() { engine.Register(robustEngine{}) }

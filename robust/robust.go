// Package robust measures the protocol property the paper's conclusion
// singles out for further study: "Also, the robustness of the protocol
// deserves further studies."
//
// The paper's model is fully synchronous and loss-free. This package
// re-runs the median rule under three orthogonal departures from it:
//
//   - Asynchrony: instead of n simultaneous updates per round, one
//     uniformly chosen process activates per step and updates in place
//     (the sequential-activation scheduler of the population-protocol
//     literature, e.g. Angluin–Fischer–Jiang [1], where stabilizing
//     consensus originates). Time is reported as parallel time, steps/n.
//   - Message loss: each peer sample independently fails with probability
//     LossProb; the activating process substitutes its own value for a
//     lost sample (so a double loss makes the step a no-op — the protocol
//     never blocks on a missing reply).
//   - Crash faults: a set of processes halts before the run. Frozen
//     processes never activate. In the default (responsive) mode their
//     last value remains readable — a crashed replica whose memory is
//     still served; in Silent mode queries to them are lost and handled
//     like message loss.
//
// Under asynchrony alone the dynamics is the uniform single-site version
// of the same mean-field process, so parallel time stays Θ(log n) with a
// small constant inflation. Loss rescales the effective update rate by
// roughly the per-sample delivery probability. Crashed minority processes
// act as an immovable Hider-style adversary with zero budget: the live
// majority still converges and the frozen dissenters bound the final
// agreement gap — the almost-stable picture with T replaced by the crash
// count. Experiment E20 measures all three.
package robust

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
)

// Value aliases the shared process-value type.
type Value = model.Value

// Options configures a run.
type Options struct {
	// LossProb is the independent per-sample loss probability in [0, 1].
	LossProb float64
	// Crashes is the number of processes frozen before the first step
	// (chosen uniformly at random without replacement).
	Crashes int
	// Silent makes crashed processes unresponsive: sampling one counts
	// as a lost message. The default leaves their memory readable.
	Silent bool
	// MaxSteps caps the run; 0 means 64·n·log₂(n) steps (a generous
	// multiple of the expected Θ(n log n) sequential convergence time).
	MaxSteps int
	// Observer, when non-nil, receives the state once before the first
	// step (parallel round 0) and after every n further activations — the
	// per-round hook the synchronous engines share, in parallel-time
	// units. The slice is live; observers must copy what they keep.
	Observer func(round int, state []Value)
}

// Result reports a run's outcome.
type Result struct {
	// Steps is the number of activations executed.
	Steps int
	// ParallelTime is Steps divided by the population size — the unit
	// comparable with the synchronous engines' rounds.
	ParallelTime float64
	// Consensus reports whether all live (non-crashed) processes hold
	// one value.
	Consensus bool
	// Winner is the plurality value among live processes.
	Winner Value
	// WinnerCount counts live processes holding Winner.
	WinnerCount int
	// Dissenters counts all processes (crashed included) not holding
	// Winner — the agreement gap a client reading the whole system sees.
	Dissenters int
}

// Engine runs the asynchronous, faulty execution.
type Engine struct {
	state   []Value
	crashed []bool
	live    []int // indices of live processes (activation pool)
	opts    Options
	g       *rng.Xoshiro256
	steps   int
}

// NewEngine builds an engine over a copy of values. The crash set is drawn
// from the engine's own seeded randomness, so runs are deterministic in
// (values, opts, seed).
func NewEngine(values []Value, opts Options, seed uint64) *Engine {
	n := len(values)
	if n == 0 {
		panic("robust: empty population")
	}
	if opts.LossProb < 0 || opts.LossProb > 1 {
		panic(fmt.Sprintf("robust: LossProb %v outside [0,1]", opts.LossProb))
	}
	if opts.Crashes < 0 || opts.Crashes >= n {
		panic(fmt.Sprintf("robust: Crashes %d outside [0, n)", opts.Crashes))
	}
	e := &Engine{
		state:   append([]Value(nil), values...),
		crashed: make([]bool, n),
		opts:    opts,
		g:       rng.NewXoshiro256(seed),
	}
	// Partial Fisher–Yates over indices picks the crash set uniformly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for k := 0; k < opts.Crashes; k++ {
		j := k + e.g.Intn(n-k)
		idx[k], idx[j] = idx[j], idx[k]
		e.crashed[idx[k]] = true
	}
	e.live = idx[opts.Crashes:]
	return e
}

// State returns the live state; callers must not modify it.
func (e *Engine) State() []Value { return e.state }

// Crashed reports whether process i is crashed.
func (e *Engine) Crashed(i int) bool { return e.crashed[i] }

// Steps returns the number of activations executed so far.
func (e *Engine) Steps() int { return e.steps }

// Step activates one uniformly random live process: it samples two uniform
// peers (possibly itself, possibly crashed), applies loss, and adopts the
// median of its own and the two delivered values in place.
func (e *Engine) Step() {
	i := e.live[e.g.Intn(len(e.live))]
	own := e.state[i]
	a := e.sample(own)
	b := e.sample(own)
	e.state[i] = median3(own, a, b)
	e.steps++
}

// sample fetches one peer value, substituting own for losses and for
// silent crashed peers.
func (e *Engine) sample(own Value) Value {
	if e.opts.LossProb > 0 && e.g.Float64() < e.opts.LossProb {
		return own
	}
	j := e.g.Intn(len(e.state))
	if e.opts.Silent && e.crashed[j] {
		return own
	}
	return e.state[j]
}

// Run steps until the live processes agree or the step cap is reached.
func (e *Engine) Run() Result {
	n := len(e.state)
	maxSteps := e.opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 64 * n * log2ceil(n)
	}
	if e.opts.Observer != nil && e.steps == 0 {
		e.opts.Observer(0, e.state)
	}
	// Checking full agreement is O(n); amortise by checking every n steps
	// (one parallel round), which is also the observer granularity.
	for e.steps < maxSteps {
		e.Step()
		if e.steps%n != 0 {
			continue
		}
		if e.opts.Observer != nil {
			e.opts.Observer(e.steps/n, e.state)
		}
		if e.liveConsensus() {
			break
		}
	}
	return e.result()
}

func (e *Engine) liveConsensus() bool {
	first := e.state[e.live[0]]
	for _, i := range e.live[1:] {
		if e.state[i] != first {
			return false
		}
	}
	return true
}

func (e *Engine) result() Result {
	counts := make(map[Value]int, 8)
	for _, i := range e.live {
		counts[e.state[i]]++
	}
	var winner Value
	best := -1
	for v, c := range counts {
		if c > best || (c == best && v < winner) {
			winner, best = v, c
		}
	}
	dissent := 0
	for _, v := range e.state {
		if v != winner {
			dissent++
		}
	}
	n := len(e.state)
	return Result{
		Steps:        e.steps,
		ParallelTime: float64(e.steps) / float64(n),
		Consensus:    best == len(e.live),
		Winner:       winner,
		WinnerCount:  best,
		Dissenters:   dissent,
	}
}

func median3(a, b, c Value) Value {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

func log2ceil(n int) int {
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

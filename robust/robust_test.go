package robust

import (
	"testing"

	"repro/internal/assign"
)

func TestAsyncConvergesLogParallelTime(t *testing.T) {
	// Asynchrony alone: parallel time must stay logarithmic-ish.
	for seed := uint64(1); seed <= 3; seed++ {
		e := NewEngine(assign.AllDistinct(2000), Options{}, seed)
		res := e.Run()
		if !res.Consensus {
			t.Fatalf("seed %d: no consensus after %d steps", seed, res.Steps)
		}
		if res.ParallelTime > 200 {
			t.Fatalf("seed %d: parallel time %.1f is not logarithmic", seed, res.ParallelTime)
		}
		if res.Winner < 1 || res.Winner > 2000 {
			t.Fatalf("seed %d: winner %d is not an initial value", seed, res.Winner)
		}
	}
}

func TestDeterministicInSeed(t *testing.T) {
	run := func() Result {
		return NewEngine(assign.EvenBlocks(500, 7), Options{LossProb: 0.2, Crashes: 10}, 99).Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestTotalLossFreezesState(t *testing.T) {
	// LossProb = 1 turns every update into median(own, own, own) = own.
	vals := assign.EvenBlocks(200, 4)
	e := NewEngine(vals, Options{LossProb: 1, MaxSteps: 5000}, 5)
	res := e.Run()
	if res.Consensus {
		t.Fatal("total loss cannot reach consensus from a split state")
	}
	for i, v := range e.State() {
		if v != vals[i] {
			t.Fatalf("process %d moved from %d to %d under total loss", i, vals[i], v)
		}
	}
	if res.Steps != 5000 {
		t.Fatalf("run ended after %d steps, want the 5000 cap", res.Steps)
	}
}

func TestLossSlowsButConverges(t *testing.T) {
	mean := func(loss float64) float64 {
		var total float64
		const reps = 3
		for seed := uint64(1); seed <= reps; seed++ {
			res := NewEngine(assign.EvenBlocks(1000, 8), Options{LossProb: loss}, seed).Run()
			if !res.Consensus {
				t.Fatalf("loss %.1f seed %d: no consensus", loss, seed)
			}
			total += res.ParallelTime
		}
		return total / reps
	}
	clean := mean(0)
	lossy := mean(0.5)
	if lossy <= clean {
		t.Fatalf("50%% loss should slow convergence: clean %.1f vs lossy %.1f", clean, lossy)
	}
	if lossy > 8*clean {
		t.Fatalf("50%% loss slowed convergence %.1fx — more than graceful", lossy/clean)
	}
}

func TestCrashedProcessesNeverMove(t *testing.T) {
	vals := assign.EvenBlocks(400, 4)
	e := NewEngine(vals, Options{Crashes: 40}, 11)
	initial := append([]Value(nil), e.State()...)
	res := e.Run()
	frozen := 0
	for i := range e.State() {
		if e.Crashed(i) {
			frozen++
			if e.State()[i] != initial[i] {
				t.Fatalf("crashed process %d changed value", i)
			}
		}
	}
	if frozen != 40 {
		t.Fatalf("crash set has %d members, want 40", frozen)
	}
	if !res.Consensus {
		t.Fatalf("live processes did not converge around the crash set (steps %d)", res.Steps)
	}
	// The agreement gap is bounded by the crash count.
	if res.Dissenters > 40 {
		t.Fatalf("%d dissenters exceed the 40 crashed processes", res.Dissenters)
	}
}

func TestSilentCrashesStillConverge(t *testing.T) {
	res := NewEngine(assign.EvenBlocks(400, 4), Options{Crashes: 40, Silent: true}, 12).Run()
	if !res.Consensus {
		t.Fatal("silent crash mode blocked convergence")
	}
}

func TestResultAccounting(t *testing.T) {
	// Two live values 60/40 plus a crashed dissenting block: plurality,
	// counts and dissenters must be mutually consistent.
	e := NewEngine(assign.EvenBlocks(100, 2), Options{Crashes: 10, MaxSteps: 1}, 3)
	res := NewEngineResultProbe(e)
	live := 0
	for i := range e.State() {
		if !e.Crashed(i) {
			live++
		}
	}
	if res.WinnerCount > live {
		t.Fatalf("winner count %d exceeds live population %d", res.WinnerCount, live)
	}
	if res.Dissenters < live-res.WinnerCount {
		t.Fatal("dissenters must include live disagreement")
	}
}

// NewEngineResultProbe exposes result() for accounting tests.
func NewEngineResultProbe(e *Engine) Result { return e.result() }

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { NewEngine(nil, Options{}, 1) },
		"bad loss":  func() { NewEngine([]Value{1}, Options{LossProb: 2}, 1) },
		"all crash": func() { NewEngine([]Value{1, 2}, Options{Crashes: 2}, 1) },
		"neg crash": func() { NewEngine([]Value{1, 2}, Options{Crashes: -1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkAsyncStep(b *testing.B) {
	e := NewEngine(assign.AllDistinct(10_000), Options{}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// TestObserverParallelRounds: the observer fires once before the first
// step and once per parallel round (n activations), without changing the
// trajectory.
func TestObserverParallelRounds(t *testing.T) {
	vals := assign.EvenBlocks(500, 2)
	var rounds []int
	observed := NewEngine(vals, Options{
		Observer: func(round int, state []Value) {
			rounds = append(rounds, round)
			if len(state) != 500 {
				t.Fatalf("round %d: state has %d entries", round, len(state))
			}
		},
	}, 77).Run()
	blind := NewEngine(vals, Options{}, 77).Run()
	if observed.Steps != blind.Steps || observed.Winner != blind.Winner {
		t.Fatalf("observer changed the trajectory: %+v vs %+v", observed, blind)
	}
	want := observed.Steps/500 + 1
	if len(rounds) != want {
		t.Fatalf("observer fired %d times, want %d", len(rounds), want)
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("observation %d reported round %d", i, r)
		}
	}
}

// TestModeRegistry pins the serializable fault-mode names.
func TestModeRegistry(t *testing.T) {
	for _, c := range []struct {
		name   string
		silent bool
	}{{"", false}, {ModeResponsive, false}, {ModeSilent, true}} {
		silent, err := ModeByName(c.name)
		if err != nil || silent != c.silent {
			t.Fatalf("ModeByName(%q) = %v, %v", c.name, silent, err)
		}
	}
	if _, err := ModeByName("quantum"); err == nil {
		t.Fatal("unknown mode must error")
	}
	if ModeName(false) != ModeResponsive || ModeName(true) != ModeSilent {
		t.Fatal("ModeName must invert ModeByName")
	}
}

// TestCheck validates options without building an engine.
func TestCheck(t *testing.T) {
	if err := Check(100, Options{LossProb: 0.5, Crashes: 10}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	bad := []struct {
		n    int
		opts Options
	}{
		{0, Options{}},
		{100, Options{LossProb: -0.1}},
		{100, Options{LossProb: 1.1}},
		{100, Options{Crashes: -1}},
		{100, Options{Crashes: 100}},
		{100, Options{MaxSteps: -1}},
	}
	for i, c := range bad {
		if err := Check(c.n, c.opts); err == nil {
			t.Errorf("bad options %d validated", i)
		}
	}
}

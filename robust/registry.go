package robust

import "fmt"

// This file is the package's registration surface, mirroring the naming
// pattern of consensus.TimingByName: serializable names for the crash-fault
// modes, plus spec-level validation that does not allocate the O(n) state,
// so the service layer can reconstruct a robust run from a JSON spec.

// Mode names for the crashed-process fault model (see Options.Silent).
const (
	// ModeResponsive leaves a crashed process's memory readable.
	ModeResponsive = "responsive"
	// ModeSilent makes queries to crashed processes count as lost.
	ModeSilent = "silent"
)

// ModeByName resolves a serialized fault-mode name to the Silent flag.
// "" means "responsive", the package default.
func ModeByName(name string) (silent bool, err error) {
	switch name {
	case "", ModeResponsive:
		return false, nil
	case ModeSilent:
		return true, nil
	default:
		return false, fmt.Errorf("robust: unknown mode %q (known: %v)", name, Modes())
	}
}

// ModeName returns the serialized name of a fault mode.
func ModeName(silent bool) string {
	if silent {
		return ModeSilent
	}
	return ModeResponsive
}

// Modes returns the serialized mode names in sorted order.
func Modes() []string { return []string{ModeResponsive, ModeSilent} }

// Check validates engine options against a population size without
// materializing any state — the spec-validation hook NewEngine's panics
// are too late for.
func Check(n int, opts Options) error {
	if n <= 0 {
		return fmt.Errorf("robust: population must be positive, got %d", n)
	}
	if opts.LossProb < 0 || opts.LossProb > 1 {
		return fmt.Errorf("robust: LossProb %v outside [0,1]", opts.LossProb)
	}
	if opts.Crashes < 0 || opts.Crashes >= n {
		return fmt.Errorf("robust: Crashes %d outside [0, n) for n=%d", opts.Crashes, n)
	}
	if opts.MaxSteps < 0 {
		return fmt.Errorf("robust: negative MaxSteps %d", opts.MaxSteps)
	}
	return nil
}

package adversary

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
)

func r(seed uint64) model.Rand { return rng.NewXoshiro256(seed) }

func TestBudgetFuncs(t *testing.T) {
	if Fixed(7)(1000) != 7 {
		t.Fatal("Fixed")
	}
	if got := Sqrt(1)(10000); got != 100 {
		t.Fatalf("Sqrt(1)(1e4) = %d", got)
	}
	if got := Sqrt(2)(10000); got != 200 {
		t.Fatalf("Sqrt(2)(1e4) = %d", got)
	}
	// SqrtLog: floor(sqrt(n ln n)); spot-check monotonicity and magnitude.
	a, b := SqrtLog(1)(1000), SqrtLog(1)(100000)
	if a <= 0 || b <= a {
		t.Fatalf("SqrtLog not growing: %d, %d", a, b)
	}
	if SqrtLog(1)(1) != 0 {
		t.Fatal("SqrtLog(1)(1) should be 0")
	}
}

func TestBudgetPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"fixed":   func() { Fixed(-1) },
		"sqrt":    func() { Sqrt(-1) },
		"sqrtlog": func() { SqrtLog(-0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBalancerCountsEqualizes(t *testing.T) {
	a := NewBalancer(Fixed(200), 1, 2)
	vals := []model.Value{1, 2}
	counts := []int64{700, 300}
	vals, counts = a.CorruptCounts(0, vals, counts, vals, r(1))
	if counts[0] != 500 || counts[1] != 500 {
		t.Fatalf("counts %v, want perfectly balanced", counts)
	}
}

func TestBalancerRespectsbudget(t *testing.T) {
	a := NewBalancer(Fixed(10), 1, 2)
	vals := []model.Value{1, 2}
	counts := []int64{700, 300}
	_, counts = a.CorruptCounts(0, vals, counts, vals, r(1))
	if counts[0] != 690 || counts[1] != 310 {
		t.Fatalf("counts %v, want 690/310 (budget 10)", counts)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("ball count changed: %d", total)
	}
}

func TestBalancerRevivesExtinctTarget(t *testing.T) {
	a := NewBalancer(Fixed(50), 1, 2)
	vals := []model.Value{2}
	counts := []int64{1000}
	vals, counts = a.CorruptCounts(0, vals, counts, []model.Value{1, 2}, r(1))
	// Bin 1 must exist again with up to 50 balls moved into it... the
	// balancer moves diff/2 capped at budget: diff = 0-1000 → move 50.
	if len(vals) != 2 || vals[0] != 1 {
		t.Fatalf("vals %v", vals)
	}
	if counts[0] != 50 || counts[1] != 950 {
		t.Fatalf("counts %v", counts)
	}
}

func TestBalancerAutoTargets(t *testing.T) {
	a := NewBalancer(Fixed(1000), 0, 0)
	vals := []model.Value{3, 7, 9}
	counts := []int64{500, 100, 400}
	vals, counts = a.CorruptCounts(0, vals, counts, vals, r(1))
	// Auto-targets are the two heaviest bins: 3 (500) and 9 (400).
	if a.Low != 3 || a.High != 9 {
		t.Fatalf("targets %d, %d", a.Low, a.High)
	}
	var c3, c9 int64
	for i, v := range vals {
		switch v {
		case 3:
			c3 = counts[i]
		case 9:
			c9 = counts[i]
		}
	}
	if c3 != 450 || c9 != 450 {
		t.Fatalf("after balance: 3→%d 9→%d", c3, c9)
	}
}

func TestBalancerBalls(t *testing.T) {
	a := NewBalancer(Fixed(100), 1, 2)
	state := make([]model.Value, 100)
	for i := range state {
		if i < 80 {
			state[i] = 1
		} else {
			state[i] = 2
		}
	}
	a.CorruptBalls(0, state, []model.Value{1, 2}, r(1))
	var c1 int
	for _, v := range state {
		if v == 1 {
			c1++
		}
	}
	if c1 != 50 {
		t.Fatalf("c1 = %d, want 50", c1)
	}
}

func TestBalancerBallsBudgetCap(t *testing.T) {
	a := NewBalancer(Fixed(5), 1, 2)
	state := make([]model.Value, 100)
	for i := range state {
		if i < 80 {
			state[i] = 1
		} else {
			state[i] = 2
		}
	}
	a.CorruptBalls(0, state, []model.Value{1, 2}, r(1))
	var c1 int
	for _, v := range state {
		if v == 1 {
			c1++
		}
	}
	if c1 != 75 {
		t.Fatalf("c1 = %d, want 75 (moved 5)", c1)
	}
}

func TestReviverWaitsThenInjects(t *testing.T) {
	a := NewReviver(1, 3)
	state := []model.Value{2, 2, 2, 2}
	for round := 0; round < 3; round++ {
		a.CorruptBalls(round, state, []model.Value{1, 2}, r(1))
		for _, v := range state {
			if v == 1 {
				t.Fatalf("round %d: injected too early", round)
			}
		}
	}
	a.CorruptBalls(3, state, []model.Value{1, 2}, r(1))
	count1 := 0
	for _, v := range state {
		if v == 1 {
			count1++
		}
	}
	if count1 != 1 {
		t.Fatalf("injected %d balls, want exactly 1", count1)
	}
	if a.Injections != 1 {
		t.Fatalf("Injections = %d", a.Injections)
	}
}

func TestReviverResetsWhenPresent(t *testing.T) {
	a := NewReviver(1, 2)
	state := []model.Value{1, 2, 2}
	a.CorruptBalls(0, state, []model.Value{1, 2}, r(1))
	if a.Injections != 0 {
		t.Fatal("injected while target alive")
	}
	// Target goes extinct; the delay counter must restart from zero.
	state[0] = 2
	a.CorruptBalls(1, state, []model.Value{1, 2}, r(1))
	a.CorruptBalls(2, state, []model.Value{1, 2}, r(1))
	if a.Injections != 0 {
		t.Fatal("injected before delay elapsed")
	}
	a.CorruptBalls(3, state, []model.Value{1, 2}, r(1))
	if a.Injections != 1 {
		t.Fatal("failed to inject after delay")
	}
}

func TestReviverCounts(t *testing.T) {
	a := NewReviver(5, 0)
	vals := []model.Value{7}
	counts := []int64{10}
	vals, counts = a.CorruptCounts(0, vals, counts, []model.Value{5, 7}, r(1))
	if len(vals) != 2 || vals[0] != 5 || counts[0] != 1 || counts[1] != 9 {
		t.Fatalf("vals %v counts %v", vals, counts)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("total %d", total)
	}
}

func TestReviverPanicsNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReviver(1, -1)
}

func TestHiderBalls(t *testing.T) {
	a := NewHider(Fixed(3), 9)
	state := []model.Value{1, 2, 3, 4, 5}
	a.CorruptBalls(0, state, []model.Value{1, 9}, r(1))
	count9 := 0
	for _, v := range state {
		if v == 9 {
			count9++
		}
	}
	if count9 != 3 {
		t.Fatalf("pinned %d, want 3", count9)
	}
}

func TestHiderCounts(t *testing.T) {
	a := NewHider(Fixed(4), 9)
	vals := []model.Value{1, 2}
	counts := []int64{3, 3}
	vals, counts = a.CorruptCounts(0, vals, counts, []model.Value{1, 2, 9}, r(1))
	var c9, total int64
	for i, v := range vals {
		if v == 9 {
			c9 = counts[i]
		}
		total += counts[i]
	}
	if c9 != 4 || total != 6 {
		t.Fatalf("vals %v counts %v", vals, counts)
	}
}

func TestFlipperAlternates(t *testing.T) {
	a := NewFlipper(Fixed(2), 10, 20)
	state := []model.Value{1, 1, 1, 1}
	a.CorruptBalls(0, state, nil, r(1))
	if state[0] != 10 || state[1] != 10 {
		t.Fatalf("even round: %v", state)
	}
	a.CorruptBalls(1, state, nil, r(1))
	if state[0] != 20 || state[1] != 20 {
		t.Fatalf("odd round: %v", state)
	}
}

func TestRandomNoiseBudget(t *testing.T) {
	a := NewRandomNoise(Fixed(10))
	state := make([]model.Value, 1000)
	for i := range state {
		state[i] = 1
	}
	a.CorruptBalls(0, state, []model.Value{1, 2}, r(3))
	changed := 0
	for _, v := range state {
		if v != 1 {
			changed++
		}
	}
	if changed > 10 {
		t.Fatalf("changed %d > budget 10", changed)
	}
}

func TestRandomNoiseCountsConserve(t *testing.T) {
	a := NewRandomNoise(Fixed(20))
	vals := []model.Value{1, 5}
	counts := []int64{50, 50}
	vals, counts = a.CorruptCounts(0, vals, counts, []model.Value{1, 5, 9}, r(4))
	var total int64
	for _, c := range counts {
		if c < 0 {
			t.Fatalf("negative count: %v", counts)
		}
		total += c
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
	for _, v := range vals {
		if v != 1 && v != 5 && v != 9 {
			t.Fatalf("illegal value %d", v)
		}
	}
}

func TestMedianSplitterMoves(t *testing.T) {
	a := NewMedianSplitter(Fixed(10))
	vals := []model.Value{1, 2, 3}
	counts := []int64{10, 80, 10} // median bin is 2
	vals, counts = a.CorruptCounts(0, vals, counts, vals, r(5))
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
	if counts[1] != 70 {
		t.Fatalf("median bin kept %d, want 70 (10 moved)", counts[1])
	}
	_ = vals
}

func TestMedianSplitterSingleBinNoop(t *testing.T) {
	a := NewMedianSplitter(Fixed(10))
	vals := []model.Value{1}
	counts := []int64{100}
	vals, counts = a.CorruptCounts(0, vals, counts, vals, r(6))
	if len(vals) != 1 || counts[0] != 100 {
		t.Fatalf("single-bin corrupted: %v %v", vals, counts)
	}
}

func TestFuncAdversary(t *testing.T) {
	called := 0
	a := NewFunc("probe", Fixed(1), func(round int, state []model.Value, allowed []model.Value, r model.Rand) {
		called++
		state[0] = 42
	})
	if a.Name() != "probe" || a.Budget(10) != 1 {
		t.Fatal("metadata")
	}
	state := []model.Value{1, 2}
	a.CorruptBalls(0, state, nil, r(1))
	if called != 1 || state[0] != 42 {
		t.Fatal("func not invoked")
	}
}

func TestStringHelper(t *testing.T) {
	if got := String(nil, 100); got != "none" {
		t.Fatalf("nil: %q", got)
	}
	if got := String(NewHider(Sqrt(1), 3), 10000); got != "hider(T=100)" {
		t.Fatalf("hider: %q", got)
	}
}

func TestAddBinKeepsSorted(t *testing.T) {
	vals := []model.Value{2, 5, 9}
	counts := []int64{1, 2, 3}
	vals, counts, idx := addBin(vals, counts, 7)
	want := []model.Value{2, 5, 7, 9}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals %v", vals)
		}
	}
	if idx != 2 || counts[2] != 0 {
		t.Fatalf("idx %d counts %v", idx, counts)
	}
	// Existing value: no duplicate.
	vals2, counts2, idx2 := addBin(vals, counts, 5)
	if len(vals2) != 4 || idx2 != 1 || counts2[1] != 2 {
		t.Fatalf("dup insert: %v %v %d", vals2, counts2, idx2)
	}
}

func TestBalancerCorruptAfter(t *testing.T) {
	// The post-round view (Theorem 10 timing) must re-balance the freshly
	// computed state exactly like the pre-round view.
	a := NewBalancer(Fixed(10), 1, 2)
	next := make([]Value, 0, 100)
	for i := 0; i < 70; i++ {
		next = append(next, 1)
	}
	for i := 0; i < 30; i++ {
		next = append(next, 2)
	}
	a.CorruptAfter(0, next, []Value{1, 2}, rng.NewXoshiro256(1))
	var c1, c2 int
	for _, v := range next {
		if v == 1 {
			c1++
		} else {
			c2++
		}
	}
	// diff = 40, move = min(20, 10) = 10: 60 vs 40.
	if c1 != 60 || c2 != 40 {
		t.Fatalf("after CorruptAfter: %d/%d, want 60/40", c1, c2)
	}
}

func TestBalancerIsPostRoundAdversary(t *testing.T) {
	var a model.Adversary = NewBalancer(Sqrt(1), 1, 2)
	if _, ok := a.(model.PostRoundAdversary); !ok {
		t.Fatal("Balancer must implement model.PostRoundAdversary")
	}
}

func TestBalancerAutoTargetsBalls(t *testing.T) {
	// low == high == 0 defers target selection to the two heaviest bins
	// at first corruption (exercising distOf + resolveTargets).
	a := NewBalancer(Fixed(50), 0, 0)
	state := make([]Value, 0, 100)
	for i := 0; i < 60; i++ {
		state = append(state, 5)
	}
	for i := 0; i < 30; i++ {
		state = append(state, 9)
	}
	for i := 0; i < 10; i++ {
		state = append(state, 7)
	}
	a.CorruptBalls(0, state, []Value{5, 7, 9}, r(1))
	if a.Low != 5 || a.High != 9 {
		t.Fatalf("auto targets = (%d, %d), want (5, 9)", a.Low, a.High)
	}
	var c5, c9 int
	for _, v := range state {
		switch v {
		case 5:
			c5++
		case 9:
			c9++
		}
	}
	// diff 30, move 15: 45 vs 45.
	if c5 != 45 || c9 != 45 {
		t.Fatalf("after balancing: %d/%d, want 45/45", c5, c9)
	}
}

func TestBalancerAutoTargetsCounts(t *testing.T) {
	a := NewBalancer(Fixed(10), 0, 0)
	vals := []Value{1, 2, 3}
	counts := []int64{70, 20, 10}
	vals, counts = a.CorruptCounts(0, vals, counts, vals, r(2))
	if a.Low != 1 || a.High != 2 {
		t.Fatalf("auto targets = (%d, %d), want (1, 2)", a.Low, a.High)
	}
	// diff 50, move min(25, 10) = 10: 60 vs 30.
	i1, _ := findBin(vals, 1)
	i2, _ := findBin(vals, 2)
	if counts[i1] != 60 || counts[i2] != 30 {
		t.Fatalf("after balancing: %d/%d, want 60/30", counts[i1], counts[i2])
	}
}

func TestBalancerRevivesExtinctTargetBin(t *testing.T) {
	// The balancer's point is keeping both groups alive: when a target
	// bin has died out it must be re-created.
	a := NewBalancer(Fixed(8), 1, 2)
	vals := []Value{2}
	counts := []int64{100}
	vals, counts = a.CorruptCounts(0, vals, counts, []Value{1, 2}, r(3))
	i1, ok := findBin(vals, 1)
	if !ok {
		t.Fatal("extinct target bin 1 was not re-created")
	}
	if counts[i1] == 0 {
		t.Fatal("re-created bin stayed empty")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("ball count changed: %d", total)
	}
}

func TestBalancerZeroBudgetIsInert(t *testing.T) {
	a := NewBalancer(Fixed(0), 1, 2)
	state := []Value{1, 1, 2}
	want := []Value{1, 1, 2}
	a.CorruptBalls(0, state, []Value{1, 2}, r(4))
	for i := range state {
		if state[i] != want[i] {
			t.Fatal("zero-budget balancer modified state")
		}
	}
	vals, counts := a.CorruptCounts(0, []Value{1, 2}, []int64{2, 1}, []Value{1, 2}, r(5))
	if counts[0] != 2 || counts[1] != 1 || len(vals) != 2 {
		t.Fatal("zero-budget balancer modified counts")
	}
}

func TestBalancerAlreadyBalancedNoOp(t *testing.T) {
	a := NewBalancer(Fixed(10), 1, 2)
	state := []Value{1, 1, 2, 2}
	a.CorruptBalls(0, state, []Value{1, 2}, r(6))
	var c1 int
	for _, v := range state {
		if v == 1 {
			c1++
		}
	}
	if c1 != 2 {
		t.Fatalf("balanced state disturbed: %d ones", c1)
	}
}

func TestNewBalancerSwapsTargets(t *testing.T) {
	a := NewBalancer(Fixed(1), 9, 4) // reversed order must be normalised
	if a.Low != 4 || a.High != 9 {
		t.Fatalf("targets (%d, %d), want (4, 9)", a.Low, a.High)
	}
}

func TestReviverCorruptCountsRevives(t *testing.T) {
	// Count-level view: once the target is extinct for longer than the
	// delay, one ball is taken from the heaviest bin.
	a := NewReviver(1, 2)
	vals := []Value{2, 3}
	counts := []int64{80, 20}
	for round := 0; round < 2; round++ { // extinctFor reaches 2 <= delay
		vals, counts = a.CorruptCounts(round, vals, counts, []Value{1, 2, 3}, r(7))
		if _, ok := findBin(vals, 1); ok {
			t.Fatalf("revived too early at round %d", round)
		}
	}
	vals, counts = a.CorruptCounts(2, vals, counts, []Value{1, 2, 3}, r(8))
	i1, ok := findBin(vals, 1)
	if !ok || counts[i1] != 1 {
		t.Fatal("target not revived after delay")
	}
	if a.Injections != 1 {
		t.Fatalf("Injections = %d, want 1", a.Injections)
	}
	// Present target resets the extinction counter.
	vals, counts = a.CorruptCounts(3, vals, counts, []Value{1, 2, 3}, r(9))
	if a.Injections != 1 {
		t.Fatal("reviver acted while target present")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("ball count changed: %d", total)
	}
}

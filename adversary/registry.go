package adversary

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Params carries the numeric parameters of an adversary strategy (target
// values, delays) in a JSON-friendly form. Constructors reject unknown keys.
type Params map[string]float64

// BudgetSpec is the serializable form of a BudgetFunc: the three budget
// families the paper's analysis distinguishes, scaled by a factor.
//
//	{"kind":"fixed","factor":5}    → Fixed(5)
//	{"kind":"sqrt","factor":1}     → Sqrt(1), the canonical ⌊√n⌋ budget
//	{"kind":"sqrtlog","factor":.5} → SqrtLog(0.5), the stalling regime
type BudgetSpec struct {
	Kind   string  `json:"kind"`
	Factor float64 `json:"factor"`
}

// Func resolves the spec to a BudgetFunc.
func (s BudgetSpec) Func() (BudgetFunc, error) {
	if s.Factor < 0 {
		return nil, fmt.Errorf("adversary: negative budget factor %v", s.Factor)
	}
	switch s.Kind {
	case "fixed":
		if s.Factor != float64(int(s.Factor)) {
			return nil, fmt.Errorf("adversary: fixed budget needs an integer factor, got %v", s.Factor)
		}
		return Fixed(int(s.Factor)), nil
	case "sqrt":
		return Sqrt(s.Factor), nil
	case "sqrtlog":
		return SqrtLog(s.Factor), nil
	default:
		return nil, fmt.Errorf("adversary: unknown budget kind %q (known: fixed, sqrt, sqrtlog)", s.Kind)
	}
}

// Constructor builds a fresh adversary from a budget and parameters. A fresh
// value per call matters: strategies carry per-run state (Balancer's resolved
// targets, Reviver's extinction clock), so instances must never be shared
// between runs.
type Constructor func(budget BudgetFunc, p Params) (model.Adversary, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Constructor{}
)

// Register adds a named strategy constructor, panicking on duplicates.
func Register(name string, c Constructor) {
	if name == "" || c == nil {
		panic("adversary: Register with empty name or nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("adversary: duplicate registration of %q", name))
	}
	registry[name] = c
}

// New constructs the named adversary with the given budget spec and
// parameters (nil for parameterless strategies).
func New(name string, budget BudgetSpec, p Params) (model.Adversary, error) {
	regMu.RLock()
	c, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("adversary: unknown adversary %q (known: %v)", name, Names())
	}
	bf, err := budget.Func()
	if err != nil {
		return nil, err
	}
	return c(bf, p)
}

// Ref is the serializable reference to a registered adversary strategy:
// its name, budget family and parameters — the "adversary" block of run
// specs.
type Ref struct {
	Name   string     `json:"name"`
	Budget BudgetSpec `json:"budget"`
	Params Params     `json:"params,omitempty"`
}

// New constructs a fresh instance of the referenced adversary (adversaries
// carry per-run state, so instances must never be shared between runs).
func (r Ref) New() (model.Adversary, error) { return New(r.Name, r.Budget, r.Params) }

// Names returns the registered strategy names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// intParam extracts an integral parameter with a default, consuming it from
// the residue map used for unknown-key detection.
func intParam(name string, residue map[string]float64, key string, def int64) (int64, error) {
	v, ok := residue[key]
	if !ok {
		return def, nil
	}
	delete(residue, key)
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("adversary: %s parameter %q must be an integer, got %v", name, key, v)
	}
	return int64(v), nil
}

// residueOf copies p so parameters can be consumed key by key.
func residueOf(p Params) map[string]float64 {
	m := make(map[string]float64, len(p))
	for k, v := range p {
		m[k] = v
	}
	return m
}

func rejectResidue(name string, residue map[string]float64) error {
	for k := range residue {
		return fmt.Errorf("adversary: %s does not know parameter %q", name, k)
	}
	return nil
}

func init() {
	Register("balancer", func(budget BudgetFunc, p Params) (model.Adversary, error) {
		res := residueOf(p)
		low, err := intParam("balancer", res, "low", 0)
		if err != nil {
			return nil, err
		}
		high, err := intParam("balancer", res, "high", 0)
		if err != nil {
			return nil, err
		}
		if err := rejectResidue("balancer", res); err != nil {
			return nil, err
		}
		return NewBalancer(budget, Value(low), Value(high)), nil
	})
	Register("reviver", func(budget BudgetFunc, p Params) (model.Adversary, error) {
		// Reviver always runs with budget 1 (it never needs more); the
		// budget spec is accepted for uniformity and ignored.
		res := residueOf(p)
		target, err := intParam("reviver", res, "target", 1)
		if err != nil {
			return nil, err
		}
		delay, err := intParam("reviver", res, "delay", 0)
		if err != nil {
			return nil, err
		}
		if delay < 0 {
			return nil, fmt.Errorf("adversary: reviver delay must be >= 0, got %d", delay)
		}
		if err := rejectResidue("reviver", res); err != nil {
			return nil, err
		}
		return NewReviver(Value(target), int(delay)), nil
	})
	Register("hider", func(budget BudgetFunc, p Params) (model.Adversary, error) {
		res := residueOf(p)
		held, err := intParam("hider", res, "held", 1)
		if err != nil {
			return nil, err
		}
		if err := rejectResidue("hider", res); err != nil {
			return nil, err
		}
		return NewHider(budget, Value(held)), nil
	})
	Register("flipper", func(budget BudgetFunc, p Params) (model.Adversary, error) {
		res := residueOf(p)
		a, err := intParam("flipper", res, "a", 1)
		if err != nil {
			return nil, err
		}
		b, err := intParam("flipper", res, "b", 2)
		if err != nil {
			return nil, err
		}
		if err := rejectResidue("flipper", res); err != nil {
			return nil, err
		}
		return NewFlipper(budget, Value(a), Value(b)), nil
	})
	Register("random-noise", func(budget BudgetFunc, p Params) (model.Adversary, error) {
		if err := rejectResidue("random-noise", residueOf(p)); err != nil {
			return nil, err
		}
		return NewRandomNoise(budget), nil
	})
	Register("median-splitter", func(budget BudgetFunc, p Params) (model.Adversary, error) {
		if err := rejectResidue("median-splitter", residueOf(p)); err != nil {
			return nil, err
		}
		return NewMedianSplitter(budget), nil
	})
}

// Package adversary implements T-bounded adversaries for the stabilizing
// consensus protocol (paper Section 1.1): at the beginning of each round an
// adversary may rewrite the state of up to T processes, restricted to the
// initial value set (values are assumed signed by an outside authority).
//
// The strategies provided are the ones the paper discusses or that its
// analysis identifies as extremal:
//
//   - Balancer — the tightness strategy for Theorems 2–4: keep two value
//     groups in perfect balance. With budget Ω̃(√n) it stalls the median
//     rule for polynomially long (the paper's remark after Theorem 2); with
//     budget ≤ √n it fails, which experiment E1/E5 measures.
//   - Reviver — the introduction's attack on the minimum rule: wait until a
//     small value has gone extinct, then re-inject it, restarting the
//     epidemic. One corruption per epoch suffices, so the minimum rule has
//     unbounded stabilization time even under a 1-bounded adversary.
//   - Hider — pins T processes to a fixed minority value forever ("hiding
//     values for an unbounded amount of time", which the paper notes is
//     ineffective against the median rule).
//   - Flipper — alternates T processes between the two extreme values each
//     round ("switching values").
//   - RandomNoise — rewrites T random processes with random initial values;
//     the unbiased baseline.
//   - MedianSplitter — mass-balances the two sides of the current median to
//     fight the gravity drift of Section 4.2.
//
// Budgets are expressed as functions of n so the paper's √n-bounded
// adversary and the Ω(√(n log n)) lower-bound adversary are both one-line
// constructions.
package adversary

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
)

// Value aliases the shared process-value type (int64).
type Value = model.Value

// Rand aliases the engine randomness interface.
type Rand = model.Rand

// BudgetFunc maps the population size n to the per-round corruption budget T.
type BudgetFunc func(n int) int

// Fixed returns a constant budget.
func Fixed(t int) BudgetFunc {
	if t < 0 {
		panic("adversary: negative budget")
	}
	return func(int) int { return t }
}

// Sqrt returns the paper's canonical budget ⌊factor·√n⌋.
func Sqrt(factor float64) BudgetFunc {
	if factor < 0 {
		panic("adversary: negative factor")
	}
	return func(n int) int { return int(factor * math.Sqrt(float64(n))) }
}

// SqrtLog returns ⌊factor·√(n·ln n)⌋ — the Ω̃(√n) regime in which the
// balancing strategy provably stalls the median rule.
func SqrtLog(factor float64) BudgetFunc {
	if factor < 0 {
		panic("adversary: negative factor")
	}
	return func(n int) int {
		if n < 2 {
			return 0
		}
		return int(factor * math.Sqrt(float64(n)*math.Log(float64(n))))
	}
}

// base carries the name and budget shared by all strategies.
type base struct {
	name   string
	budget BudgetFunc
}

func (b base) Name() string     { return b.name }
func (b base) Budget(n int) int { return b.budget(n) }

// findBin locates v in the sorted vals slice, returning (index, true) or the
// insertion point and false.
func findBin(vals []Value, v Value) (int, bool) {
	i := sort.Search(len(vals), func(i int) bool { return vals[i] >= v })
	if i < len(vals) && vals[i] == v {
		return i, true
	}
	return i, false
}

// addBin inserts value v with count 0 at its sorted position, returning the
// extended slices and the index of the new bin.
func addBin(vals []Value, counts []int64, v Value) ([]Value, []int64, int) {
	i, ok := findBin(vals, v)
	if ok {
		return vals, counts, i
	}
	vals = append(vals, 0)
	copy(vals[i+1:], vals[i:])
	vals[i] = v
	counts = append(counts, 0)
	copy(counts[i+1:], counts[i:])
	counts[i] = 0
	return vals, counts, i
}

// totalBalls sums a count vector.
func totalBalls(counts []int64) int64 {
	var n int64
	for _, k := range counts {
		n += k
	}
	return n
}

// Balancer keeps the loads of two target values as equal as possible by
// moving up to T balls per round from the heavier to the lighter bin. If the
// targets are unset it locks onto the two heaviest bins the first time it
// acts. This is the strategy showing the √n budget bound of Theorems 2–4 is
// essentially tight.
type Balancer struct {
	base
	// Low and High are the two target values. Zero-valued targets are
	// resolved to the two heaviest bins on first corruption.
	Low, High Value
	resolved  bool
}

// NewBalancer returns a balancing adversary with the given budget and
// target pair. Pass low == high == 0 to auto-select targets.
func NewBalancer(budget BudgetFunc, low, high Value) *Balancer {
	if low > high {
		low, high = high, low
	}
	return &Balancer{
		base: base{name: "balancer", budget: budget},
		Low:  low, High: high,
		resolved: low != high,
	}
}

// CorruptCounts implements model.CountAdversary.
func (a *Balancer) CorruptCounts(round int, vals []Value, counts []int64, allowed []Value, r Rand) ([]Value, []int64) {
	n := int(totalBalls(counts))
	t := int64(a.Budget(n))
	if t == 0 || len(vals) == 0 {
		return vals, counts
	}
	if !a.resolved {
		a.resolveTargets(vals, counts)
	}
	li, lok := findBin(vals, a.Low)
	hi, hok := findBin(vals, a.High)
	// (Re-)create an extinct target bin if the budget allows: the
	// balancer's whole point is to keep both groups alive.
	if !lok {
		vals, counts, li = addBin(vals, counts, a.Low)
		hi, hok = findBin(vals, a.High)
	}
	if !hok {
		vals, counts, hi = addBin(vals, counts, a.High)
		li, _ = findBin(vals, a.Low)
	}
	diff := counts[li] - counts[hi]
	move := diff / 2
	if move < 0 {
		move = -move
	}
	if move > t {
		move = t
	}
	if diff > 0 {
		counts[li] -= move
		counts[hi] += move
	} else if diff < 0 {
		counts[hi] -= move
		counts[li] += move
	}
	return vals, counts
}

func (a *Balancer) resolveTargets(vals []Value, counts []int64) {
	// Two heaviest bins.
	first, second := -1, -1
	for i := range counts {
		if first == -1 || counts[i] > counts[first] {
			second = first
			first = i
		} else if second == -1 || counts[i] > counts[second] {
			second = i
		}
	}
	if second == -1 {
		second = first
	}
	a.Low, a.High = vals[first], vals[second]
	if a.Low > a.High {
		a.Low, a.High = a.High, a.Low
	}
	a.resolved = true
}

// CorruptBalls implements model.BallAdversary by scanning the state vector.
func (a *Balancer) CorruptBalls(round int, state []Value, allowed []Value, r Rand) {
	n := len(state)
	t := a.Budget(n)
	if t == 0 || n == 0 {
		return
	}
	if !a.resolved {
		d := distOf(state)
		a.resolveTargets(d.vals, d.counts)
	}
	var cl, ch int
	for _, v := range state {
		switch v {
		case a.Low:
			cl++
		case a.High:
			ch++
		}
	}
	diff := cl - ch
	move := diff / 2
	if move < 0 {
		move = -move
	}
	if move > t {
		move = t
	}
	if move == 0 {
		return
	}
	from, to := a.Low, a.High
	if diff < 0 {
		from, to = a.High, a.Low
	}
	for i := range state {
		if move == 0 {
			break
		}
		if state[i] == from {
			state[i] = to
			move--
		}
	}
}

// CorruptAfter implements model.PostRoundAdversary: the Section 3 /
// Theorem 10 timing, where the adversary "is allowed to change the choices
// of at most √n balls" after they are made. Rewriting a ball's freshly
// computed value to the other target bin is exactly the reach of a choice
// manipulation in the two-bin case, so the post-state balancing move is
// the same as the pre-state one.
func (a *Balancer) CorruptAfter(round int, next []Value, allowed []Value, r Rand) {
	a.CorruptBalls(round, next, allowed, r)
}

// Reviver attacks rules without stability: it watches a target value and,
// whenever the value has been extinct for Delay consecutive rounds,
// re-injects it into a single random process. Against the minimum rule one
// injection restarts global convergence, so the rule never stabilizes; the
// median rule absorbs the injection in O(1) expected rounds.
type Reviver struct {
	base
	// Target is the value to keep resurrecting.
	Target Value
	// Delay is the number of extinct rounds to wait before re-injecting
	// (the paper's adversary "may delay this arbitrarily long").
	Delay int

	extinctFor int
	// Injections counts how many times the target was re-injected.
	Injections int
}

// NewReviver returns a reviver with budget 1 (it never needs more).
func NewReviver(target Value, delay int) *Reviver {
	if delay < 0 {
		panic("adversary: negative delay")
	}
	return &Reviver{
		base:   base{name: "reviver", budget: Fixed(1)},
		Target: target,
		Delay:  delay,
	}
}

// CorruptBalls implements model.BallAdversary.
func (a *Reviver) CorruptBalls(round int, state []Value, allowed []Value, r Rand) {
	present := false
	for _, v := range state {
		if v == a.Target {
			present = true
			break
		}
	}
	if present {
		a.extinctFor = 0
		return
	}
	a.extinctFor++
	if a.extinctFor > a.Delay {
		state[r.Intn(len(state))] = a.Target
		a.extinctFor = 0
		a.Injections++
	}
}

// CorruptCounts implements model.CountAdversary.
func (a *Reviver) CorruptCounts(round int, vals []Value, counts []int64, allowed []Value, r Rand) ([]Value, []int64) {
	i, ok := findBin(vals, a.Target)
	if ok && counts[i] > 0 {
		a.extinctFor = 0
		return vals, counts
	}
	a.extinctFor++
	if a.extinctFor > a.Delay {
		// Take one ball from the heaviest bin.
		hv := 0
		for j := range counts {
			if counts[j] > counts[hv] {
				hv = j
			}
		}
		if counts[hv] == 0 {
			return vals, counts
		}
		counts[hv]--
		vals, counts, i = addBin(vals, counts, a.Target)
		counts[i]++
		a.extinctFor = 0
		a.Injections++
	}
	return vals, counts
}

// Hider pins up to T processes at a fixed value every round, the "hiding
// values for an unbounded amount of time" strategy.
type Hider struct {
	base
	// Held is the value the hidden processes are pinned to.
	Held Value
}

// NewHider returns a hider pinning budget-many processes to held.
func NewHider(budget BudgetFunc, held Value) *Hider {
	return &Hider{base: base{name: "hider", budget: budget}, Held: held}
}

// CorruptBalls implements model.BallAdversary: the first T processes whose
// value differs from Held are rewritten.
func (a *Hider) CorruptBalls(round int, state []Value, allowed []Value, r Rand) {
	t := a.Budget(len(state))
	for i := range state {
		if t == 0 {
			return
		}
		if state[i] != a.Held {
			state[i] = a.Held
			t--
		}
	}
}

// CorruptCounts implements model.CountAdversary.
func (a *Hider) CorruptCounts(round int, vals []Value, counts []int64, allowed []Value, r Rand) ([]Value, []int64) {
	n := int(totalBalls(counts))
	t := int64(a.Budget(n))
	if t == 0 {
		return vals, counts
	}
	vals, counts, hi := addBin(vals, counts, a.Held)
	deficit := t // pin up to t balls drawn from other bins
	for j := range counts {
		if deficit == 0 {
			break
		}
		if j == hi || counts[j] == 0 {
			continue
		}
		take := counts[j]
		if take > deficit {
			take = deficit
		}
		counts[j] -= take
		counts[hi] += take
		deficit -= take
	}
	return vals, counts
}

// Flipper alternates T processes between two values round by round — the
// "switching values" counter-strategy.
type Flipper struct {
	base
	// A and B are the two values flipped between.
	A, B Value
}

// NewFlipper returns a flipper alternating between a and b.
func NewFlipper(budget BudgetFunc, a, b Value) *Flipper {
	return &Flipper{base: base{name: "flipper", budget: budget}, A: a, B: b}
}

// CorruptBalls implements model.BallAdversary.
func (f *Flipper) CorruptBalls(round int, state []Value, allowed []Value, r Rand) {
	v := f.A
	if round%2 == 1 {
		v = f.B
	}
	t := f.Budget(len(state))
	for i := 0; i < len(state) && t > 0; i++ {
		if state[i] != v {
			state[i] = v
			t--
		}
	}
}

// RandomNoise rewrites T uniformly chosen processes with uniformly chosen
// allowed values. It is the unbiased corruption baseline.
type RandomNoise struct {
	base
}

// NewRandomNoise returns a random-noise adversary.
func NewRandomNoise(budget BudgetFunc) *RandomNoise {
	return &RandomNoise{base: base{name: "random-noise", budget: budget}}
}

// CorruptBalls implements model.BallAdversary.
func (a *RandomNoise) CorruptBalls(round int, state []Value, allowed []Value, r Rand) {
	if len(allowed) == 0 {
		return
	}
	t := a.Budget(len(state))
	for i := 0; i < t; i++ {
		state[r.Intn(len(state))] = allowed[r.Intn(len(allowed))]
	}
}

// CorruptCounts implements model.CountAdversary.
func (a *RandomNoise) CorruptCounts(round int, vals []Value, counts []int64, allowed []Value, r Rand) ([]Value, []int64) {
	if len(allowed) == 0 {
		return vals, counts
	}
	n := totalBalls(counts)
	if n == 0 {
		return vals, counts
	}
	t := int64(a.Budget(int(n)))
	for i := int64(0); i < t; i++ {
		// Pick a uniform ball: walk the cumulative counts.
		target := int64(r.Intn(int(n)))
		var acc int64
		src := -1
		for j, k := range counts {
			acc += k
			if target < acc {
				src = j
				break
			}
		}
		if src == -1 || counts[src] == 0 {
			continue
		}
		counts[src]--
		v := allowed[r.Intn(len(allowed))]
		var di int
		vals, counts, di = addBin(vals, counts, v)
		counts[di]++
	}
	return vals, counts
}

// MedianSplitter balances the total mass strictly left and strictly right of
// the current median bin, spending its budget to cancel the gravity drift of
// Section 4.2 that concentrates mass at the median.
type MedianSplitter struct {
	base
}

// NewMedianSplitter returns a median-splitting adversary.
func NewMedianSplitter(budget BudgetFunc) *MedianSplitter {
	return &MedianSplitter{base: base{name: "median-splitter", budget: budget}}
}

// CorruptCounts implements model.CountAdversary.
func (a *MedianSplitter) CorruptCounts(round int, vals []Value, counts []int64, allowed []Value, r Rand) ([]Value, []int64) {
	n := totalBalls(counts)
	if n == 0 || len(vals) < 2 {
		return vals, counts
	}
	t := int64(a.Budget(int(n)))
	if t == 0 {
		return vals, counts
	}
	mi := medianBin(counts, n)
	var left, right int64
	for j := range counts {
		switch {
		case j < mi:
			left += counts[j]
		case j > mi:
			right += counts[j]
		}
	}
	// Move balls from the median bin to the lighter flank to starve the
	// median's gravity advantage.
	move := t
	if counts[mi] < move {
		move = counts[mi]
	}
	if move == 0 {
		return vals, counts
	}
	dst := mi - 1
	if right < left {
		dst = mi + 1
	}
	if dst < 0 || dst >= len(counts) {
		return vals, counts
	}
	counts[mi] -= move
	counts[dst] += move
	return vals, counts
}

// medianBin returns the index of the median bin per Section 2.1.
func medianBin(counts []int64, n int64) int {
	var below int64
	for j, k := range counts {
		above := n - below - k
		if 2*below <= n && 2*above <= n {
			return j
		}
		below += k
	}
	return len(counts) - 1
}

// distView is a scratch count view used by ball-level scans.
type distView struct {
	vals   []Value
	counts []int64
}

func distOf(state []Value) distView {
	m := make(map[Value]int64)
	for _, v := range state {
		m[v]++
	}
	d := distView{
		vals:   make([]Value, 0, len(m)),
		counts: make([]int64, 0, len(m)),
	}
	for v := range m {
		d.vals = append(d.vals, v)
	}
	sort.Slice(d.vals, func(i, j int) bool { return d.vals[i] < d.vals[j] })
	for _, v := range d.vals {
		d.counts = append(d.counts, m[v])
	}
	return d
}

// Func adapts a plain function into a ball-level adversary; intended for
// tests and custom experiment strategies.
type Func struct {
	base
	F func(round int, state []Value, allowed []Value, r Rand)
}

// NewFunc wraps f as a named adversary with the given budget. The wrapper
// does not enforce the budget; f is trusted (use in tests).
func NewFunc(name string, budget BudgetFunc, f func(round int, state []Value, allowed []Value, r Rand)) *Func {
	return &Func{base: base{name: name, budget: budget}, F: f}
}

// CorruptBalls implements model.BallAdversary.
func (a *Func) CorruptBalls(round int, state []Value, allowed []Value, r Rand) {
	a.F(round, state, allowed, r)
}

// String renders an adversary for logs.
func String(a model.Adversary, n int) string {
	if a == nil {
		return "none"
	}
	return fmt.Sprintf("%s(T=%d)", a.Name(), a.Budget(n))
}

package adversary

import "testing"

func TestBudgetSpec(t *testing.T) {
	f, err := BudgetSpec{Kind: "fixed", Factor: 5}.Func()
	if err != nil || f(10000) != 5 {
		t.Fatalf("fixed budget: %v", err)
	}
	f, err = BudgetSpec{Kind: "sqrt", Factor: 1}.Func()
	if err != nil || f(10000) != 100 {
		t.Fatalf("sqrt budget: %v", err)
	}
	f, err = BudgetSpec{Kind: "sqrtlog", Factor: 1}.Func()
	if err != nil || f(10000) <= 100 {
		t.Fatalf("sqrtlog budget must exceed sqrt: %v", err)
	}
	for _, bad := range []BudgetSpec{
		{Kind: "cubic", Factor: 1},
		{Kind: "sqrt", Factor: -1},
		{Kind: "fixed", Factor: 1.5},
	} {
		if _, err := bad.Func(); err == nil {
			t.Fatalf("budget %+v must error", bad)
		}
	}
}

func TestRegistryConstructs(t *testing.T) {
	budget := BudgetSpec{Kind: "sqrt", Factor: 1}
	for _, name := range Names() {
		a, err := New(name, budget, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
	}
	a, err := New("balancer", budget, Params{"low": 1, "high": 9})
	if err != nil {
		t.Fatal(err)
	}
	b := a.(*Balancer)
	if b.Low != 1 || b.High != 9 {
		t.Fatalf("balancer targets: %+v", b)
	}
	r, err := New("reviver", budget, Params{"target": 7, "delay": 3})
	if err != nil {
		t.Fatal(err)
	}
	if rv := r.(*Reviver); rv.Target != 7 || rv.Delay != 3 {
		t.Fatalf("reviver params: %+v", rv)
	}
}

// TestRegistryFreshInstances: adversaries carry per-run state, so the
// registry must hand out a new instance every call.
func TestRegistryFreshInstances(t *testing.T) {
	budget := BudgetSpec{Kind: "sqrt", Factor: 1}
	a1, err := New("balancer", budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New("balancer", budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.(*Balancer) == a2.(*Balancer) {
		t.Fatal("registry returned a shared adversary instance")
	}
}

func TestRegistryErrors(t *testing.T) {
	budget := BudgetSpec{Kind: "sqrt", Factor: 1}
	if _, err := New("nope", budget, nil); err == nil {
		t.Fatal("unknown adversary must error")
	}
	if _, err := New("balancer", BudgetSpec{Kind: "bad"}, nil); err == nil {
		t.Fatal("bad budget must error")
	}
	if _, err := New("balancer", budget, Params{"mid": 1}); err == nil {
		t.Fatal("unknown parameter must error")
	}
	if _, err := New("hider", budget, Params{"held": 1.5}); err == nil {
		t.Fatal("fractional value parameter must error")
	}
	if _, err := New("reviver", budget, Params{"delay": -1}); err == nil {
		t.Fatal("negative delay must error")
	}
}

// Command expolint reads a Prometheus text exposition (format 0.0.4) on
// stdin and lints it: every metric family must have paired HELP/TYPE
// lines before its samples, names and label syntax must be valid, no
// family or sample may repeat, and histograms must be coherent (sorted
// cumulative le buckets ending in +Inf, _count matching the +Inf
// bucket). Exit status is 1 when any finding is reported, so it can
// gate a scrape in CI:
//
//	curl -s -H 'Accept: text/plain' localhost:8645/v1/metrics | expolint
package main

import (
	"fmt"
	"os"

	"repro/obs"
)

func main() {
	errs := obs.Lint(os.Stdin)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "expolint:", err)
	}
	if n := len(errs); n > 0 {
		fmt.Fprintf(os.Stderr, "expolint: %d finding(s)\n", n)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "expolint: ok")
}

// Command consensuslint is the multichecker for the repository's custom
// static-analysis suite (internal/lint): determinism of canonical
// encodings, the engine registration contract, hot-path allocation
// freedom, observer-driven cancellation, and seed hygiene.
//
// Usage:
//
//	go run ./cmd/consensuslint [-analyzers a,b] [-list] [packages...]
//
// With no package arguments it checks ./... . Diagnostics print as
//
//	path/file.go:line:col: message [analyzer]
//
// Exit codes (the CI lint job depends on these):
//
//	0  no findings
//	1  one or more findings
//	2  usage or load error (packages failed to parse or type-check)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "print the analyzer catalogue and exit")
	)
	flag.Parse()

	analyzers := lint.ByName(*names)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "consensuslint: no analyzers match %q\n", *names)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	world, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensuslint: %v\n", err)
		return 2
	}

	// Diagnostics need their analyzer attribution; re-run per analyzer so
	// the suffix tag is known, then merge in position order.
	type tagged struct {
		analysis.Diagnostic
		name string
	}
	var diags []tagged
	for _, a := range analyzers {
		ds, err := analysis.RunAnalyzers(world, []*analysis.Analyzer{a})
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensuslint: %v\n", err)
			return 2
		}
		for _, d := range ds {
			diags = append(diags, tagged{d, a.Name})
		}
	}
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", world.Fset.Position(d.Pos), d.Message, d.name)
	}
	return 1
}

package main

import (
	"strings"
	"testing"
)

const oldOut = `goos: linux
BenchmarkMultidimEngines/process/n=4096-8    	     100	   1000000 ns/op	  120 B/op
BenchmarkMultidimEngines/count/n=4096-8      	    1000	    100000 ns/op
BenchmarkMultidimEngines/gone/n=1-8          	    1000	     50000 ns/op
PASS
`

const newOut = `goos: linux
BenchmarkMultidimEngines/process/n=4096-16   	     100	   1300000 ns/op
BenchmarkMultidimEngines/count/n=4096-16     	    1000	    105000 ns/op
BenchmarkMultidimEngines/fresh/n=2-16        	    1000	      9000 ns/op
PASS
`

// TestParse: bench lines parse to name→ns/op with the -GOMAXPROCS suffix
// stripped, so differently-sized machines still pair up.
func TestParse(t *testing.T) {
	b, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(b), b)
	}
	if v := b["BenchmarkMultidimEngines/process/n=4096"]; v != 1e6 {
		t.Fatalf("process ns/op = %v, want 1e6 (proc suffix must be stripped)", v)
	}
}

// TestParseKeepsMinimum: repeated names (e.g. -count=3) keep the fastest
// run.
func TestParseKeepsMinimum(t *testing.T) {
	out := `BenchmarkX-8 10 300 ns/op
BenchmarkX-8 10 100 ns/op
BenchmarkX-8 10 200 ns/op
`
	b, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if v := b["BenchmarkX"]; v != 100 {
		t.Fatalf("repeated benchmark kept %v, want the minimum 100", v)
	}
}

// TestReport: a >20% ns/op growth is a regression with a ::warning::
// annotation; small drift, new and vanished benchmarks are not.
func TestReport(t *testing.T) {
	oldBench, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	newBench, err := parse(strings.NewReader(newOut))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	regressions := report(&buf, oldBench, newBench, 20)
	out := buf.String()
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (process +30%%):\n%s", regressions, out)
	}
	if !strings.Contains(out, "::warning title=bench regression::BenchmarkMultidimEngines/process/n=4096") {
		t.Fatalf("missing GitHub warning annotation:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") && strings.Contains(out, "count/n=4096: REGRESSION") {
		t.Fatalf("5%% drift must not be a regression:\n%s", out)
	}
	if !strings.Contains(out, "fresh/n=2: new benchmark") || !strings.Contains(out, "gone/n=1: vanished") {
		t.Fatalf("new/vanished benchmarks must be noted:\n%s", out)
	}

	// A looser threshold clears it.
	if r := report(&strings.Builder{}, oldBench, newBench, 50); r != 0 {
		t.Fatalf("50%% threshold: regressions = %d, want 0", r)
	}
}

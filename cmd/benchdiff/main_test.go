package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const oldOut = `goos: linux
BenchmarkMultidimEngines/process/n=4096-8    	     100	   1000000 ns/op	  120 B/op	       3 allocs/op
BenchmarkMultidimEngines/count/n=4096-8      	    1000	    100000 ns/op
BenchmarkMultidimEngines/gone/n=1-8          	    1000	     50000 ns/op
BenchmarkCountRound/multidim/n=1e+09-8       	  100000	      9000 ns/op	       0 B/op	       0 allocs/op
PASS
`

const newOut = `goos: linux
BenchmarkMultidimEngines/process/n=4096-16   	     100	   1300000 ns/op
BenchmarkMultidimEngines/count/n=4096-16     	    1000	    105000 ns/op
BenchmarkMultidimEngines/fresh/n=2-16        	    1000	      9000 ns/op
BenchmarkCountRound/multidim/n=1e+09-16      	  100000	      9100 ns/op	       8 B/op	       2 allocs/op
PASS
`

// TestParse: bench lines parse to name→measurements with the -GOMAXPROCS
// suffix stripped, so differently-sized machines still pair up, and the
// -benchmem allocs column captured when present.
func TestParse(t *testing.T) {
	b, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(b), b)
	}
	proc := b["BenchmarkMultidimEngines/process/n=4096"]
	if proc.NsOp != 1e6 {
		t.Fatalf("process ns/op = %v, want 1e6 (proc suffix must be stripped)", proc.NsOp)
	}
	if proc.AllocsOp == nil || *proc.AllocsOp != 3 {
		t.Fatalf("process allocs/op = %v, want 3", proc.AllocsOp)
	}
	if cnt := b["BenchmarkMultidimEngines/count/n=4096"]; cnt.AllocsOp != nil {
		t.Fatalf("no -benchmem column must parse as nil allocs, got %v", *cnt.AllocsOp)
	}
	if zero := b["BenchmarkCountRound/multidim/n=1e+09"]; zero.AllocsOp == nil || *zero.AllocsOp != 0 {
		t.Fatalf("zero allocs column must parse as 0, got %v", zero.AllocsOp)
	}
}

// TestParseKeepsMinimum: repeated names (e.g. -count=3) keep the fastest
// ns/op and the largest allocs/op.
func TestParseKeepsMinimum(t *testing.T) {
	out := `BenchmarkX-8 10 300 ns/op	0 B/op	0 allocs/op
BenchmarkX-8 10 100 ns/op	16 B/op	2 allocs/op
BenchmarkX-8 10 200 ns/op
`
	b, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if v := b["BenchmarkX"]; v.NsOp != 100 {
		t.Fatalf("repeated benchmark kept %v ns/op, want the minimum 100", v.NsOp)
	}
	if v := b["BenchmarkX"]; v.AllocsOp == nil || *v.AllocsOp != 2 {
		t.Fatalf("repeated benchmark kept %v allocs/op, want the maximum 2", v.AllocsOp)
	}
}

// TestReport: a >20% ns/op growth is a regression with a ::warning::
// annotation; small drift, new and vanished benchmarks are not.
func TestReport(t *testing.T) {
	oldBench, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	newBench, err := parse(strings.NewReader(newOut))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	regressions, gated := report(&buf, oldBench, newBench, 20, nil)
	out := buf.String()
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (process +30%%):\n%s", regressions, out)
	}
	if gated != 0 {
		t.Fatalf("gated = %d, want 0 without -fail-match:\n%s", gated, out)
	}
	if !strings.Contains(out, "::warning title=bench regression::BenchmarkMultidimEngines/process/n=4096") {
		t.Fatalf("missing GitHub warning annotation:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") && strings.Contains(out, "count/n=4096: REGRESSION") {
		t.Fatalf("5%% drift must not be a regression:\n%s", out)
	}
	if !strings.Contains(out, "fresh/n=2: new benchmark") || !strings.Contains(out, "gone/n=1: vanished") {
		t.Fatalf("new/vanished benchmarks must be noted:\n%s", out)
	}

	// A looser threshold clears it.
	if r, _ := report(&strings.Builder{}, oldBench, newBench, 50, nil); r != 0 {
		t.Fatalf("50%% threshold: regressions = %d, want 0", r)
	}
}

// TestReportFailMatch: names matching the gate turn their regressions into
// hard failures — a matched ns/op regression is gated, and a matched
// benchmark whose 0 allocs/op baseline now allocates is gated even when
// its ns/op is within the noise threshold.
func TestReportFailMatch(t *testing.T) {
	oldBench, _ := parse(strings.NewReader(oldOut))
	newBench, _ := parse(strings.NewReader(newOut))

	var buf strings.Builder
	_, gated := report(&buf, oldBench, newBench, 20, regexp.MustCompile(`^BenchmarkCountRound`))
	out := buf.String()
	if gated != 1 {
		t.Fatalf("gated = %d, want 1 (0 allocs/op broken):\n%s", gated, out)
	}
	if !strings.Contains(out, "ALLOC REGRESSION 0 -> 2 allocs/op") {
		t.Fatalf("missing alloc regression line:\n%s", out)
	}

	// Gating the noisy process benchmark turns its ns/op regression into
	// a failure too.
	if _, g := report(&strings.Builder{}, oldBench, newBench, 20, regexp.MustCompile(`process`)); g != 1 {
		t.Fatalf("gated = %d, want 1 for the matched ns/op regression", g)
	}
}

// TestBaselineRoundTrip: -json writes a baseline a later diff can consume
// in place of raw bench output, preserving both columns.
func TestBaselineRoundTrip(t *testing.T) {
	benches, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_BASELINE.json")
	if err := writeBaseline(path, benches); err != nil {
		t.Fatal(err)
	}
	back, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(benches) {
		t.Fatalf("round-trip lost benchmarks: %d -> %d", len(benches), len(back))
	}
	zero := back["BenchmarkCountRound/multidim/n=1e+09"]
	if zero.NsOp != 9000 || zero.AllocsOp == nil || *zero.AllocsOp != 0 {
		t.Fatalf("round-trip mangled measurements: %+v", zero)
	}
	// Omitted allocs stay omitted (not conflated with measured zero).
	if cnt := back["BenchmarkMultidimEngines/count/n=4096"]; cnt.AllocsOp != nil {
		t.Fatalf("nil allocs became %v after round-trip", *cnt.AllocsOp)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), `"benchmarks"`) {
		t.Fatalf("baseline schema missing benchmarks key:\n%s", data)
	}
}

// Command benchdiff compares two `go test -bench` outputs and flags
// regressions. CI uses it to diff the current BenchmarkMultidim* run
// against the previous run's bench-multidim artifact:
//
//	benchdiff -old prev/bench-multidim.txt -new bench-multidim.txt -warn-pct 20
//
// Benchmarks are matched by name with the trailing -GOMAXPROCS suffix
// stripped, so runs on machines with different core counts still pair
// up. A benchmark whose ns/op grew by more than -warn-pct percent is
// reported as a regression — as a plain line and as a GitHub Actions
// ::warning:: annotation — but the exit code stays 0 unless -fail is set:
// CI benchmarks on shared runners are too noisy to gate merges on, so
// the default mode surfaces regressions without blocking them.
//
// -fail-match carves out an exception for benchmarks that *should* gate:
// names matching the regexp fail the run on a ns/op regression beyond
// -warn-pct, and on any break of a zero-allocs/op baseline (alloc counts
// are deterministic, not runner noise — the count engines' 0 allocs/op
// is a hard invariant, so `-fail-match '^BenchmarkCount'` turns their
// -benchmem columns into a merge gate).
//
// -json writes the parsed new run as a baseline artifact (ns/op and
// allocs/op per benchmark); a .json file is accepted anywhere a bench
// output is, so a committed BENCH_BASELINE.json can seed the first diff
// of a fresh repository before any artifact exists.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "previous bench output (.txt or .json baseline)")
	newPath := flag.String("new", "", "current bench output (.txt or .json baseline)")
	warnPct := flag.Float64("warn-pct", 20, "warn when ns/op grew by more than this percentage")
	failOnRegress := flag.Bool("fail", false, "exit 1 when a regression beyond -warn-pct is found")
	failMatch := flag.String("fail-match", "", "regexp of benchmark names whose regressions (ns/op beyond -warn-pct, or 0 allocs/op broken) exit 1 even without -fail")
	jsonOut := flag.String("json", "", "write the parsed -new run to this path as a JSON baseline")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: nothing to do: need -old to diff or -json to emit a baseline")
		os.Exit(2)
	}
	var gate *regexp.Regexp
	if *failMatch != "" {
		var err error
		if gate, err = regexp.Compile(*failMatch); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad -fail-match:", err)
			os.Exit(2)
		}
	}
	newBench, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeBaseline(*jsonOut, newBench); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if *oldPath == "" {
		return
	}
	oldBench, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions, gated := report(os.Stdout, oldBench, newBench, *warnPct, gate)
	if gated > 0 || (*failOnRegress && regressions > 0) {
		os.Exit(1)
	}
}

// bench is one benchmark's parsed measurements. AllocsOp is nil when the
// run was not taken with -benchmem.
type bench struct {
	NsOp     float64  `json:"ns_op"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub-8   	     100	  12345678 ns/op	 ...
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+\d+\s+([0-9.]+)\s+ns/op`)

// allocsCol matches the -benchmem allocs column anywhere in a line.
var allocsCol = regexp.MustCompile(`([0-9.]+)\s+allocs/op`)

// procSuffix is the trailing -GOMAXPROCS tag go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parse reads bench output into name → measurements. A name that appears
// more than once (e.g. -count > 1) keeps the minimum ns/op (the
// conventional noise-resistant summary of repeated runs) and the maximum
// allocs/op (the conservative summary of a deterministic count).
func parse(r io.Reader) (map[string]bench, error) {
	out := map[string]bench{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := bench{NsOp: ns}
		if am := allocsCol.FindStringSubmatch(line); am != nil {
			if a, err := strconv.ParseFloat(am[1], 64); err == nil {
				b.AllocsOp = &a
			}
		}
		if prev, dup := out[name]; dup {
			if prev.NsOp < b.NsOp {
				b.NsOp = prev.NsOp
			}
			if prev.AllocsOp != nil && (b.AllocsOp == nil || *prev.AllocsOp > *b.AllocsOp) {
				b.AllocsOp = prev.AllocsOp
			}
		}
		out[name] = b
	}
	return out, sc.Err()
}

// baseline is the JSON artifact schema -json emits and parseFile accepts.
type baseline struct {
	Benchmarks map[string]bench `json:"benchmarks"`
}

func parseFile(path string) (map[string]bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b map[string]bench
	if strings.HasSuffix(path, ".json") {
		var base baseline
		if err := json.NewDecoder(f).Decode(&base); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		b = base.Benchmarks
	} else if b, err = parse(f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return b, nil
}

// writeBaseline emits the parsed run as a sorted JSON baseline artifact.
func writeBaseline(path string, benches map[string]bench) error {
	data, err := json.MarshalIndent(baseline{Benchmarks: benches}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// report prints a per-benchmark comparison and returns the number of
// ns/op regressions beyond warnPct plus the number of *gated* failures:
// regressions on names matching gate, and gate-matched benchmarks whose
// 0 allocs/op baseline now allocates. New and vanished benchmarks are
// noted but never counted.
func report(w io.Writer, oldBench, newBench map[string]bench, warnPct float64, gate *regexp.Regexp) (regressions, gated int) {
	names := make([]string, 0, len(newBench))
	for name := range newBench {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nv := newBench[name]
		ov, ok := oldBench[name]
		if !ok {
			fmt.Fprintf(w, "%s: new benchmark (%.1f ns/op), nothing to compare\n", name, nv.NsOp)
			continue
		}
		pct := (nv.NsOp - ov.NsOp) / ov.NsOp * 100
		switch {
		case pct > warnPct:
			regressions++
			fmt.Fprintf(w, "%s: REGRESSION %+.1f%% ns/op (%.1f -> %.1f)\n", name, pct, ov.NsOp, nv.NsOp)
			fmt.Fprintf(w, "::warning title=bench regression::%s ns/op %+.1f%% (%.1f -> %.1f)\n", name, pct, ov.NsOp, nv.NsOp)
			if gate != nil && gate.MatchString(name) {
				gated++
				fmt.Fprintf(w, "::error title=gated bench regression::%s matches -fail-match\n", name)
			}
		default:
			fmt.Fprintf(w, "%s: %+.1f%% ns/op (%.1f -> %.1f)\n", name, pct, ov.NsOp, nv.NsOp)
		}
		if gate != nil && gate.MatchString(name) &&
			ov.AllocsOp != nil && *ov.AllocsOp == 0 &&
			nv.AllocsOp != nil && *nv.AllocsOp > 0 {
			gated++
			fmt.Fprintf(w, "%s: ALLOC REGRESSION 0 -> %g allocs/op\n", name, *nv.AllocsOp)
			fmt.Fprintf(w, "::error title=zero-alloc invariant broken::%s went 0 -> %g allocs/op\n", name, *nv.AllocsOp)
		}
	}
	for name := range oldBench {
		if _, ok := newBench[name]; !ok {
			fmt.Fprintf(w, "%s: vanished (was %.1f ns/op)\n", name, oldBench[name].NsOp)
		}
	}
	return regressions, gated
}

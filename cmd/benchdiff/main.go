// Command benchdiff compares two `go test -bench` outputs and flags
// regressions. CI uses it to diff the current BenchmarkMultidim* run
// against the previous run's bench-multidim artifact:
//
//	benchdiff -old prev/bench-multidim.txt -new bench-multidim.txt -warn-pct 20
//
// Benchmarks are matched by name with the trailing -GOMAXPROCS suffix
// stripped, so runs on machines with different core counts still pair
// up. A benchmark whose ns/op grew by more than -warn-pct percent is
// reported as a regression — as a plain line and as a GitHub Actions
// ::warning:: annotation — but the exit code stays 0 unless -fail is set:
// CI benchmarks on shared runners are too noisy to gate merges on, so
// the default mode surfaces regressions without blocking them.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "previous bench output file")
	newPath := flag.String("new", "", "current bench output file")
	warnPct := flag.Float64("warn-pct", 20, "warn when ns/op grew by more than this percentage")
	failOnRegress := flag.Bool("fail", false, "exit 1 when a regression beyond -warn-pct is found")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -old and -new are required")
		os.Exit(2)
	}
	oldBench, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newBench, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions := report(os.Stdout, oldBench, newBench, *warnPct)
	if *failOnRegress && regressions > 0 {
		os.Exit(1)
	}
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub-8   	     100	  12345678 ns/op	 ...
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+\d+\s+([0-9.]+)\s+ns/op`)

// procSuffix is the trailing -GOMAXPROCS tag go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parse reads bench output into name → ns/op. A name that appears more
// than once (e.g. -count > 1) keeps the minimum, the conventional
// noise-resistant summary of repeated runs.
func parse(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, dup := out[name]; !dup || v < prev {
			out[name] = v
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return b, nil
}

// report prints a per-benchmark comparison and returns the number of
// regressions beyond warnPct. New and vanished benchmarks are noted but
// never counted as regressions.
func report(w io.Writer, oldBench, newBench map[string]float64, warnPct float64) int {
	names := make([]string, 0, len(newBench))
	for name := range newBench {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		nv := newBench[name]
		ov, ok := oldBench[name]
		if !ok {
			fmt.Fprintf(w, "%s: new benchmark (%.1f ns/op), nothing to compare\n", name, nv)
			continue
		}
		pct := (nv - ov) / ov * 100
		switch {
		case pct > warnPct:
			regressions++
			fmt.Fprintf(w, "%s: REGRESSION %+.1f%% ns/op (%.1f -> %.1f)\n", name, pct, ov, nv)
			fmt.Fprintf(w, "::warning title=bench regression::%s ns/op %+.1f%% (%.1f -> %.1f)\n", name, pct, ov, nv)
		default:
			fmt.Fprintf(w, "%s: %+.1f%% ns/op (%.1f -> %.1f)\n", name, pct, ov, nv)
		}
	}
	for name := range oldBench {
		if _, ok := newBench[name]; !ok {
			fmt.Fprintf(w, "%s: vanished (was %.1f ns/op)\n", name, oldBench[name])
		}
	}
	return regressions
}

package main

import (
	"testing"

	"repro/consensus"
)

func TestParseRuleAll(t *testing.T) {
	for _, name := range []string{"median", "majority", "minimum", "maximum", "mean", "voter", "kmedian2"} {
		r, err := parseRule(name)
		if err != nil {
			t.Fatalf("parseRule(%q): %v", name, err)
		}
		if name != "kmedian2" && r.Name() != name {
			t.Fatalf("parseRule(%q) returned rule %q", name, r.Name())
		}
	}
	if _, err := parseRule("nonsense"); err == nil {
		t.Fatal("unknown rule must error")
	}
}

func TestParseBudget(t *testing.T) {
	for s, n1000 := range map[string]int{"sqrt": 31, "sqrtlog": 83, "7": 7, "0": 0} {
		b, err := parseBudget(s)
		if err != nil {
			t.Fatalf("parseBudget(%q): %v", s, err)
		}
		if got := b(1000); got != n1000 {
			t.Fatalf("budget %q at n=1000: %d, want %d", s, got, n1000)
		}
	}
	for _, bad := range []string{"-3", "x", ""} {
		if _, err := parseBudget(bad); err == nil {
			t.Fatalf("parseBudget(%q) must error", bad)
		}
	}
}

func TestParseAdversary(t *testing.T) {
	if a, err := parseAdversary("none", "sqrt"); err != nil || a != nil {
		t.Fatal("none must parse to nil adversary")
	}
	for _, name := range []string{"balancer", "reviver", "hider", "flipper", "noise", "splitter"} {
		a, err := parseAdversary(name, "sqrt")
		if err != nil || a == nil {
			t.Fatalf("parseAdversary(%q): %v", name, err)
		}
	}
	if _, err := parseAdversary("balancer", "bad"); err == nil {
		t.Fatal("bad budget must propagate")
	}
	if _, err := parseAdversary("nonsense", "sqrt"); err == nil {
		t.Fatal("unknown adversary must error")
	}
}

func TestParseInit(t *testing.T) {
	for kind, check := range map[string]func([]consensus.Value) bool{
		"distinct": func(v []consensus.Value) bool { return len(v) == 10 && v[9] == 10 },
		"uniform":  func(v []consensus.Value) bool { return len(v) == 10 },
		"twovalue": func(v []consensus.Value) bool { return len(v) == 10 && v[0] == 1 && v[9] == 2 },
		"blocks":   func(v []consensus.Value) bool { return len(v) == 10 },
	} {
		vals, err := parseInit(kind, 10, 4, 1)
		if err != nil {
			t.Fatalf("parseInit(%q): %v", kind, err)
		}
		if !check(vals) {
			t.Fatalf("parseInit(%q) shape wrong: %v", kind, vals)
		}
	}
	if _, err := parseInit("nonsense", 10, 4, 1); err == nil {
		t.Fatal("unknown init must error")
	}
	// m <= 0 defaults to n.
	vals, err := parseInit("blocks", 6, 0, 1)
	if err != nil || len(vals) != 6 {
		t.Fatalf("m=0 default: %v %v", vals, err)
	}
}

func TestParseEngine(t *testing.T) {
	want := map[string]consensus.Engine{
		"auto": consensus.EngineAuto, "ball": consensus.EngineBall,
		"count": consensus.EngineCount, "twobin": consensus.EngineTwoBin,
		"gossip": consensus.EngineGossip,
	}
	for s, e := range want {
		got, err := parseEngine(s)
		if err != nil || got != e {
			t.Fatalf("parseEngine(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseEngine("nonsense"); err == nil {
		t.Fatal("unknown engine must error")
	}
}

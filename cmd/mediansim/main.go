// Command mediansim runs a single stabilizing-consensus simulation from
// command-line flags and prints the per-round trajectory and the outcome.
//
// Examples:
//
//	mediansim -n 100000                       # median rule, worst case
//	mediansim -n 10000 -m 16 -init uniform    # average case, 16 values
//	mediansim -n 10000 -rule minimum -adversary reviver
//	mediansim -n 1000000 -init twovalue -engine twobin -adversary balancer -budget sqrt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/plot"
	"repro/rules"
)

func main() {
	n := flag.Int("n", 10000, "number of processes")
	m := flag.Int("m", 0, "number of initial values (0 = n, all distinct)")
	initKind := flag.String("init", "distinct", "initial state: distinct, uniform, twovalue, blocks")
	ruleName := flag.String("rule", "median", "rule: median, majority, minimum, maximum, mean, voter, kmedian2")
	advName := flag.String("adversary", "none", "adversary: none, balancer, reviver, hider, flipper, noise, splitter")
	budget := flag.String("budget", "sqrt", "adversary budget: sqrt, sqrtlog, or an integer")
	engine := flag.String("engine", "auto", "engine: auto, ball, count, twobin, gossip")
	seed := flag.Uint64("seed", 1, "random seed")
	maxRounds := flag.Int("rounds", 0, "round cap (0 = default)")
	slack := flag.Int("slack", -1, "almost-stable slack (-1 = 3*sqrt(n) when adversarial, else none)")
	trace := flag.Bool("trace", false, "print the per-round distribution")
	workers := flag.Int("workers", 0, "parallel workers for the ball engine")
	flag.Parse()

	rule, err := parseRule(*ruleName)
	if err != nil {
		fatal(err)
	}
	adv, err := parseAdversary(*advName, *budget)
	if err != nil {
		fatal(err)
	}
	values, err := parseInit(*initKind, *n, *m, *seed)
	if err != nil {
		fatal(err)
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	almostSlack := 0
	if *slack >= 0 {
		almostSlack = *slack
	} else if adv != nil {
		almostSlack = 3 * adversaryBudget(adv, *n)
	}

	cfg := consensus.Config{
		Values:      values,
		Rule:        rule,
		Adversary:   adv,
		Seed:        *seed,
		MaxRounds:   *maxRounds,
		AlmostSlack: almostSlack,
		Engine:      eng,
		Workers:     *workers,
	}
	var supportSeries, pluralitySeries []float64
	if *trace {
		cfg.Observer = func(round int, vals []consensus.Value, counts []int64) {
			var top, total int64
			for _, c := range counts {
				total += c
				if c > top {
					top = c
				}
			}
			supportSeries = append(supportSeries, float64(len(vals)))
			pluralitySeries = append(pluralitySeries, float64(top)/float64(total))
			var parts []string
			shown := len(vals)
			if shown > 8 {
				shown = 8
			}
			for i := 0; i < shown; i++ {
				parts = append(parts, fmt.Sprintf("%d:%d", vals[i], counts[i]))
			}
			suffix := ""
			if len(vals) > shown {
				suffix = fmt.Sprintf(" …(+%d bins)", len(vals)-shown)
			}
			fmt.Printf("round %4d  support %5d  %s%s\n", round, len(vals), strings.Join(parts, " "), suffix)
		}
	}

	fmt.Printf("n=%d rule=%s adversary=%s engine=%v seed=%d\n",
		*n, rule.Name(), adversary.String(adv, *n), *engine, *seed)
	res := consensus.Run(cfg)
	fmt.Println(res)
	if *trace && len(supportSeries) > 1 {
		fmt.Printf("\ndistinct values per round:   %s\n", plot.Spark(supportSeries))
		fmt.Printf("plurality share per round:   %s\n", plot.Spark(pluralitySeries))
		fmt.Println("\nplurality share trajectory:")
		for _, row := range plot.LabeledLine(pluralitySeries, 60, 8) {
			fmt.Println("  " + row)
		}
	}
	if res.Messages.RequestsSent > 0 {
		fmt.Printf("gossip: %d requests, %d dropped, max in-degree %d\n",
			res.Messages.RequestsSent, res.Messages.RequestsDropped, res.Messages.MaxInDegree)
	}
}

func adversaryBudget(a consensus.Adversary, n int) int { return a.Budget(n) }

func parseRule(name string) (consensus.Rule, error) {
	switch name {
	case "median":
		return rules.Median{}, nil
	case "majority":
		return rules.Majority{}, nil
	case "minimum":
		return rules.Minimum{}, nil
	case "maximum":
		return rules.Maximum{}, nil
	case "mean":
		return rules.Mean{}, nil
	case "voter":
		return rules.Voter{}, nil
	case "kmedian2":
		return rules.NewKMedian(2), nil
	}
	return nil, fmt.Errorf("unknown rule %q", name)
}

func parseBudget(s string) (adversary.BudgetFunc, error) {
	switch s {
	case "sqrt":
		return adversary.Sqrt(1), nil
	case "sqrtlog":
		return adversary.SqrtLog(1), nil
	}
	var t int
	if _, err := fmt.Sscanf(s, "%d", &t); err != nil || t < 0 {
		return nil, fmt.Errorf("bad budget %q (want sqrt, sqrtlog or a non-negative integer)", s)
	}
	return adversary.Fixed(t), nil
}

func parseAdversary(name, budget string) (consensus.Adversary, error) {
	if name == "none" {
		return nil, nil
	}
	b, err := parseBudget(budget)
	if err != nil {
		return nil, err
	}
	switch name {
	case "balancer":
		return adversary.NewBalancer(b, 0, 0), nil
	case "reviver":
		return adversary.NewReviver(1, 20), nil
	case "hider":
		return adversary.NewHider(b, 1), nil
	case "flipper":
		return adversary.NewFlipper(b, 1, 2), nil
	case "noise":
		return adversary.NewRandomNoise(b), nil
	case "splitter":
		return adversary.NewMedianSplitter(b), nil
	}
	return nil, fmt.Errorf("unknown adversary %q", name)
}

func parseInit(kind string, n, m int, seed uint64) ([]consensus.Value, error) {
	if m <= 0 {
		m = n
	}
	switch kind {
	case "distinct":
		return consensus.AllDistinct(n), nil
	case "uniform":
		return consensus.UniformRandom(n, m, seed), nil
	case "twovalue":
		return consensus.TwoValue(n, n/2, 1, 2), nil
	case "blocks":
		return consensus.EvenBlocks(n, m), nil
	}
	return nil, fmt.Errorf("unknown init %q", kind)
}

func parseEngine(s string) (consensus.Engine, error) {
	switch s {
	case "auto":
		return consensus.EngineAuto, nil
	case "ball":
		return consensus.EngineBall, nil
	case "count":
		return consensus.EngineCount, nil
	case "twobin":
		return consensus.EngineTwoBin, nil
	case "gossip":
		return consensus.EngineGossip, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mediansim:", err)
	os.Exit(2)
}

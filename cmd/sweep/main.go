// Command sweep measures convergence rounds over a population-size grid and
// prints an aligned table (or CSV) plus the growth-law fit — the generic
// workhorse behind the Figure 1 reproductions.
//
// Sweeps are batches: the flags build a service.BatchRequest — a template
// spec plus an "n" axis (or, for adversarial sweeps whose almost-stable
// slack depends on n, an explicit per-cell spec list) — and the same
// expansion that backs POST /v1/batches turns it into canonical per-cell
// specs. By default the cells run through an in-process service — the
// daemon's worker pool and cache dedupe, minus the HTTP hop; with -server
// they stream from a consensusd daemon instead. Either way -json emits
// exactly the machine-readable records
// the service API returns (one NDJSON RunRecord per repetition), so any
// sweep row can be re-submitted over HTTP verbatim.
//
// Examples:
//
//	sweep -ns 1e3,1e4,1e5,1e6 -reps 25
//	sweep -ns 1e3,1e4,1e5 -rule median -adversary balancer -fit logn
//	sweep -ns 1e4 -m 16 -init uniform -csv
//	sweep -ns 1e4,1e5 -reps 10 -server http://localhost:8645
//	sweep -ns 1e4 -reps 5 -json | consensusctl submit -spec -
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/experiment"
	"repro/internal/stats"
	"repro/rules"
	"repro/service"
	"repro/service/client"
)

func main() {
	nsFlag := flag.String("ns", "1e3,1e4,1e5", "comma-separated population sizes")
	m := flag.Int("m", 2, "number of initial values (init twovalue ignores)")
	initKind := flag.String("init", "twovalue", "initial state: distinct, uniform, twovalue, blocks")
	ruleName := flag.String("rule", "median", "rule: median, majority, minimum, maximum, mean, voter")
	advName := flag.String("adversary", "none", "adversary: none, balancer, noise, splitter, hider")
	reps := flag.Int("reps", 10, "repetitions per grid point")
	maxRounds := flag.Int("rounds", 100000, "round cap")
	fit := flag.String("fit", "logn", "growth-law fit: logn, loglogn, linear, none")
	seed := flag.Uint64("seed", 1, "base seed")
	workers := flag.Int("workers", 2, "local execution worker pool size")
	server := flag.String("server", "", "run cells on a consensusd daemon instead of locally (base URL)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit NDJSON service run records instead of a table (overrides -csv, suppresses -fit)")
	flag.Parse()

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fatal(err)
	}
	// Validate the rule and adversary names up front, before the sweep.
	if _, err := parseRule(*ruleName); err != nil {
		fatal(err)
	}
	if _, err := parseAdversary(*advName); err != nil {
		fatal(err)
	}

	req, err := batchRequest(ns, *m, *initKind, *ruleName, *advName, *maxRounds, *seed, *reps)
	if err != nil {
		fatal(err)
	}
	var records []service.RunRecord
	if *server != "" {
		records, err = runRemote(*server, req)
	} else {
		records, err = runLocal(req, *workers)
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, rec := range records {
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
		}
		return
	}
	cells := summarize(ns, *reps, records)
	tab := experiment.CellsTable(
		fmt.Sprintf("rounds to consensus: rule=%s init=%s adversary=%s", *ruleName, *initKind, *advName),
		[]string{"n"}, cells)
	if *csv {
		tab.CSV(os.Stdout)
	} else {
		tab.Render(os.Stdout)
	}
	if *fit != "none" && len(cells) >= 2 {
		var law experiment.GrowthLaw
		switch *fit {
		case "logn":
			law = experiment.LawLogN
		case "loglogn":
			law = experiment.LawLogLogN
		case "linear":
			law = experiment.LawLinear
		default:
			fatal(fmt.Errorf("unknown fit %q", *fit))
		}
		_, desc := experiment.DescribeFit(cells, law)
		fmt.Println("fit:", desc)
	}
}

// batchRequest assembles the sweep as a batch: a template plus an "n"
// axis — the form POST /v1/batches expands server-side. Adversarial sweeps
// pin the almost-stable slack to ~3·budget(n); that n-dependent field is a
// server-side derive rule now (almost_slack = ⌊3·√n⌋ per cell), so they
// ride the same grid path instead of enumerating explicit specs.
func batchRequest(ns []float64, m int, initKind, ruleName, advName string, maxRounds int, seed uint64, reps int) (service.BatchRequest, error) {
	tmpl, err := buildSpec(m, initKind, ruleName, advName, maxRounds, seed)
	if err != nil {
		return service.BatchRequest{}, err
	}
	req := service.BatchRequest{
		Template: tmpl,
		Axes:     []service.Axis{{Param: "n", Values: ns}},
		Reps:     reps,
	}
	if advName != "none" {
		req.Derive = []service.DeriveRule{
			{Param: "almost_slack", From: "n", Func: "sqrt", Factor: 3},
		}
	}
	return req, nil
}

// runLocal expands the batch with the shared expansion rules and runs the
// cells through an in-process service — the same pool, cache dedupe and
// in-order emission the daemon path uses, minus the HTTP hop.
func runLocal(req service.BatchRequest, workers int) ([]service.RunRecord, error) {
	cells, err := service.ExpandBatch(req, service.BatchLimits{})
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	svc, err := service.New(service.Options{
		Workers: workers,
		// Sweeps only need results, not round streams, and the CLI has no
		// server to protect: keep per-job record storage minimal and do
		// not impose the daemon's population cap.
		MaxRecords: 1,
		MaxN:       1 << 62,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	records := make([]service.RunRecord, 0, len(cells))
	err = svc.RunBatch(context.Background(), cells, func(rec service.BatchCellRecord) error {
		if rec.Status != service.StatusDone || rec.Result == nil {
			return fmt.Errorf("cell %d (%s): status %s: %s", rec.Index, rec.SpecHash, rec.Status, rec.Error)
		}
		records = append(records, service.RunRecord{Spec: rec.Spec, SpecHash: rec.SpecHash, Result: *rec.Result})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

// runRemote streams the batch from a consensusd daemon.
func runRemote(server string, req service.BatchRequest) ([]service.RunRecord, error) {
	var records []service.RunRecord
	err := client.New(server).Batch(context.Background(), req, func(rec service.BatchCellRecord) error {
		if rec.Status != service.StatusDone || rec.Result == nil {
			return fmt.Errorf("cell %d (%s): status %s: %s", rec.Index, rec.SpecHash, rec.Status, rec.Error)
		}
		records = append(records, service.RunRecord{Spec: rec.Spec, SpecHash: rec.SpecHash, Result: *rec.Result})
		return nil
	})
	return records, err
}

// summarize groups the flat record list (reps consecutive records per grid
// point, in expansion order) back into experiment cells.
func summarize(ns []float64, reps int, records []service.RunRecord) []experiment.Cell {
	if reps < 1 {
		reps = 1
	}
	cells := make([]experiment.Cell, len(ns))
	for i, n := range ns {
		raw := make([]float64, 0, reps)
		for r := 0; r < reps && i*reps+r < len(records); r++ {
			raw = append(raw, float64(records[i*reps+r].Result.Rounds))
		}
		cells[i] = experiment.Cell{Params: []float64{n}, Summary: stats.Summarize(raw), Raw: raw}
	}
	return cells
}

// buildSpec assembles the batch template (the "n" axis patches the
// population per cell). The CLI keeps its historical short names; they
// resolve to registry names here.
func buildSpec(m int, initKind, ruleName, advName string, maxRounds int, seed uint64) (service.Spec, error) {
	init, err := initSpec(initKind, 0, m, seed)
	if err != nil {
		return service.Spec{}, err
	}
	payload := &service.MedianSpec{
		Init: init,
		Rule: service.RuleSpec{Name: ruleName},
	}
	if advName != "none" {
		payload.Adversary, err = adversarySpec(advName)
		if err != nil {
			return service.Spec{}, err
		}
	}
	return service.Spec{
		Kind:      service.KindMedian,
		Seed:      seed,
		MaxRounds: maxRounds,
		Payload:   payload,
	}, nil
}

// adversarySpec is the single source for the CLI's adversary description:
// both the up-front validation (parseAdversary) and the executed spec
// (buildSpec) derive from it, so they cannot drift apart.
func adversarySpec(name string) (*service.AdversarySpec, error) {
	regName, ok := advRegistryNames[name]
	if !ok {
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
	return &service.AdversarySpec{
		Name:   regName,
		Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
	}, nil
}

func parseNs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad population size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -ns")
	}
	return out, nil
}

// sweepRules is the subset of registered rules the CLI exposes.
var sweepRules = map[string]bool{
	"median": true, "majority": true, "minimum": true,
	"maximum": true, "mean": true, "voter": true,
}

func parseRule(name string) (consensus.Rule, error) {
	if !sweepRules[name] {
		return nil, fmt.Errorf("unknown rule %q", name)
	}
	return rules.New(name, nil)
}

// advRegistryNames maps the CLI's short adversary names to registry names.
var advRegistryNames = map[string]string{
	"balancer": "balancer",
	"noise":    "random-noise",
	"splitter": "median-splitter",
	"hider":    "hider",
}

func parseAdversary(name string) (consensus.Adversary, error) {
	if name == "none" {
		return nil, nil
	}
	spec, err := adversarySpec(name)
	if err != nil {
		return nil, err
	}
	return adversary.New(spec.Name, spec.Budget, spec.Params)
}

// initSpec maps the CLI's init names onto registry init specs ("blocks"
// historically means even blocks). n == 0 leaves the population for the
// batch "n" axis to patch, so m is passed through unclamped (cell
// normalization clamps it against the real n).
func initSpec(kind string, n, m int, seed uint64) (consensus.InitSpec, error) {
	if n > 0 && (m <= 0 || m > n) {
		m = n
	}
	switch kind {
	case "distinct":
		return consensus.InitSpec{Kind: "distinct", N: n}, nil
	case "uniform":
		return consensus.InitSpec{Kind: "uniform", N: n, M: m, Seed: seed}, nil
	case "twovalue":
		return consensus.InitSpec{Kind: "twovalue", N: n}, nil
	case "blocks":
		return consensus.InitSpec{Kind: "evenblocks", N: n, M: m}, nil
	}
	return consensus.InitSpec{}, fmt.Errorf("unknown init %q", kind)
}

// parseInit materializes a CLI init description — kept as the testable
// seam for the CLI→registry mapping.
func parseInit(kind string, n, m int, seed uint64) ([]consensus.Value, error) {
	s, err := initSpec(kind, n, m, seed)
	if err != nil {
		return nil, err
	}
	return consensus.BuildInit(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(2)
}

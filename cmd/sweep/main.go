// Command sweep measures convergence rounds over a population-size grid and
// prints an aligned table (or CSV) plus the growth-law fit — the generic
// workhorse behind the Figure 1 reproductions.
//
// Every grid cell is executed through a service.Spec, the same serializable
// run description the consensusd daemon accepts, so -json emits exactly the
// machine-readable records the service API returns (one NDJSON RunRecord
// per repetition) and any sweep row can be re-submitted over HTTP verbatim.
//
// Routing through the service fixes engine auto-selection to the
// observer-present variant (two-value cells use the count or ball engine,
// never twobin), so identical flags+seed produce identical results whether
// a cell runs here or on a daemon. Round counts therefore differ from
// pre-service releases of this command, whose seeds fed the twobin engine.
//
// Examples:
//
//	sweep -ns 1e3,1e4,1e5,1e6 -reps 25
//	sweep -ns 1e3,1e4,1e5 -rule median -adversary balancer -fit logn
//	sweep -ns 1e4 -m 16 -init uniform -csv
//	sweep -ns 1e4 -reps 5 -json | consensusctl submit -spec -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/experiment"
	"repro/rules"
	"repro/service"
)

func main() {
	nsFlag := flag.String("ns", "1e3,1e4,1e5", "comma-separated population sizes")
	m := flag.Int("m", 2, "number of initial values (init twovalue ignores)")
	initKind := flag.String("init", "twovalue", "initial state: distinct, uniform, twovalue, blocks")
	ruleName := flag.String("rule", "median", "rule: median, majority, minimum, maximum, mean, voter")
	advName := flag.String("adversary", "none", "adversary: none, balancer, noise, splitter, hider")
	reps := flag.Int("reps", 10, "repetitions per grid point")
	maxRounds := flag.Int("rounds", 100000, "round cap")
	fit := flag.String("fit", "logn", "growth-law fit: logn, loglogn, linear, none")
	seed := flag.Uint64("seed", 1, "base seed")
	workers := flag.Int("workers", 2, "sweep worker pool size")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit NDJSON service run records instead of a table (overrides -csv, suppresses -fit)")
	flag.Parse()

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fatal(err)
	}
	// Validate the rule and adversary names up front, before the sweep.
	if _, err := parseRule(*ruleName); err != nil {
		fatal(err)
	}
	if _, err := parseAdversary(*advName); err != nil {
		fatal(err)
	}

	task := experiment.Task{
		Name: "sweep",
		Keys: []string{"n"},
		Grid: experiment.Grid1(ns...),
		Reps: *reps,
		RunDetail: func(p []float64, s uint64) (float64, any) {
			n := int(p[0])
			spec, err := buildSpec(n, *m, *initKind, *ruleName, *advName, *maxRounds, s)
			if err != nil {
				fatal(err)
			}
			res, err := service.Execute(spec, nil, nil)
			if err != nil {
				fatal(err)
			}
			hash, err := spec.Hash()
			if err != nil {
				fatal(err)
			}
			return float64(res.Rounds), service.RunRecord{Spec: spec.Normalize(), SpecHash: hash, Result: res}
		},
	}
	cells := experiment.Sweep(task, *seed, *workers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, c := range cells {
			for _, d := range c.Details {
				if err := enc.Encode(d); err != nil {
					fatal(err)
				}
			}
		}
		return
	}
	tab := experiment.CellsTable(
		fmt.Sprintf("rounds to consensus: rule=%s init=%s adversary=%s", *ruleName, *initKind, *advName),
		task.Keys, cells)
	if *csv {
		tab.CSV(os.Stdout)
	} else {
		tab.Render(os.Stdout)
	}
	if *fit != "none" && len(cells) >= 2 {
		var law experiment.GrowthLaw
		switch *fit {
		case "logn":
			law = experiment.LawLogN
		case "loglogn":
			law = experiment.LawLogLogN
		case "linear":
			law = experiment.LawLinear
		default:
			fatal(fmt.Errorf("unknown fit %q", *fit))
		}
		_, desc := experiment.DescribeFit(cells, law)
		fmt.Println("fit:", desc)
	}
}

// buildSpec assembles the service spec for one repetition. The CLI keeps its
// historical short names; they resolve to registry names here.
func buildSpec(n, m int, initKind, ruleName, advName string, maxRounds int, seed uint64) (service.Spec, error) {
	init, err := initSpec(initKind, n, m, seed)
	if err != nil {
		return service.Spec{}, err
	}
	spec := service.Spec{
		Init:      init,
		Rule:      service.RuleSpec{Name: ruleName},
		Seed:      seed,
		MaxRounds: maxRounds,
	}
	if advName != "none" {
		adv, err := adversarySpec(advName)
		if err != nil {
			return service.Spec{}, err
		}
		spec.Adversary = adv
		bf, err := adv.Budget.Func()
		if err != nil {
			return service.Spec{}, err
		}
		spec.AlmostSlack = 3 * bf(n)
	}
	return spec, nil
}

// adversarySpec is the single source for the CLI's adversary description:
// both the up-front validation (parseAdversary) and the executed spec
// (buildSpec) derive from it, so they cannot drift apart.
func adversarySpec(name string) (*service.AdversarySpec, error) {
	regName, ok := advRegistryNames[name]
	if !ok {
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
	return &service.AdversarySpec{
		Name:   regName,
		Budget: adversary.BudgetSpec{Kind: "sqrt", Factor: 1},
	}, nil
}

func parseNs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad population size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -ns")
	}
	return out, nil
}

// sweepRules is the subset of registered rules the CLI exposes.
var sweepRules = map[string]bool{
	"median": true, "majority": true, "minimum": true,
	"maximum": true, "mean": true, "voter": true,
}

func parseRule(name string) (consensus.Rule, error) {
	if !sweepRules[name] {
		return nil, fmt.Errorf("unknown rule %q", name)
	}
	return rules.New(name, nil)
}

// advRegistryNames maps the CLI's short adversary names to registry names.
var advRegistryNames = map[string]string{
	"balancer": "balancer",
	"noise":    "random-noise",
	"splitter": "median-splitter",
	"hider":    "hider",
}

func parseAdversary(name string) (consensus.Adversary, error) {
	if name == "none" {
		return nil, nil
	}
	spec, err := adversarySpec(name)
	if err != nil {
		return nil, err
	}
	return adversary.New(spec.Name, spec.Budget, spec.Params)
}

// initSpec maps the CLI's init names onto registry init specs ("blocks"
// historically means even blocks).
func initSpec(kind string, n, m int, seed uint64) (consensus.InitSpec, error) {
	if m <= 0 || m > n {
		m = n
	}
	switch kind {
	case "distinct":
		return consensus.InitSpec{Kind: "distinct", N: n}, nil
	case "uniform":
		return consensus.InitSpec{Kind: "uniform", N: n, M: m, Seed: seed}, nil
	case "twovalue":
		return consensus.InitSpec{Kind: "twovalue", N: n}, nil
	case "blocks":
		return consensus.InitSpec{Kind: "evenblocks", N: n, M: m}, nil
	}
	return consensus.InitSpec{}, fmt.Errorf("unknown init %q", kind)
}

// parseInit materializes a CLI init description — kept as the testable
// seam for the CLI→registry mapping.
func parseInit(kind string, n, m int, seed uint64) ([]consensus.Value, error) {
	s, err := initSpec(kind, n, m, seed)
	if err != nil {
		return nil, err
	}
	return consensus.BuildInit(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(2)
}

// Command sweep measures convergence rounds over a population-size grid and
// prints an aligned table (or CSV) plus the growth-law fit — the generic
// workhorse behind the Figure 1 reproductions.
//
// Examples:
//
//	sweep -ns 1e3,1e4,1e5,1e6 -reps 25
//	sweep -ns 1e3,1e4,1e5 -rule median -adversary balancer -fit logn
//	sweep -ns 1e4 -m 16 -init uniform -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/experiment"
	"repro/rules"
)

func main() {
	nsFlag := flag.String("ns", "1e3,1e4,1e5", "comma-separated population sizes")
	m := flag.Int("m", 2, "number of initial values (init twovalue ignores)")
	initKind := flag.String("init", "twovalue", "initial state: distinct, uniform, twovalue, blocks")
	ruleName := flag.String("rule", "median", "rule: median, majority, minimum, maximum, mean, voter")
	advName := flag.String("adversary", "none", "adversary: none, balancer, noise, splitter, hider")
	reps := flag.Int("reps", 10, "repetitions per grid point")
	maxRounds := flag.Int("rounds", 100000, "round cap")
	fit := flag.String("fit", "logn", "growth-law fit: logn, loglogn, linear, none")
	seed := flag.Uint64("seed", 1, "base seed")
	workers := flag.Int("workers", 2, "sweep worker pool size")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fatal(err)
	}
	rule, err := parseRule(*ruleName)
	if err != nil {
		fatal(err)
	}

	task := experiment.Task{
		Name: "sweep",
		Keys: []string{"n"},
		Grid: experiment.Grid1(ns...),
		Reps: *reps,
		Run: func(p []float64, s uint64) float64 {
			n := int(p[0])
			adv, err := parseAdversary(*advName)
			if err != nil {
				fatal(err)
			}
			slack := 0
			if adv != nil {
				slack = 3 * adv.Budget(n)
			}
			values, err := parseInit(*initKind, n, *m, s)
			if err != nil {
				fatal(err)
			}
			return float64(consensus.Run(consensus.Config{
				Values:      values,
				Rule:        rule,
				Adversary:   adv,
				Seed:        s,
				MaxRounds:   *maxRounds,
				AlmostSlack: slack,
			}).Rounds)
		},
	}
	cells := experiment.Sweep(task, *seed, *workers)
	tab := experiment.CellsTable(
		fmt.Sprintf("rounds to consensus: rule=%s init=%s adversary=%s", *ruleName, *initKind, *advName),
		task.Keys, cells)
	if *csv {
		tab.CSV(os.Stdout)
	} else {
		tab.Render(os.Stdout)
	}
	if *fit != "none" && len(cells) >= 2 {
		var law experiment.GrowthLaw
		switch *fit {
		case "logn":
			law = experiment.LawLogN
		case "loglogn":
			law = experiment.LawLogLogN
		case "linear":
			law = experiment.LawLinear
		default:
			fatal(fmt.Errorf("unknown fit %q", *fit))
		}
		_, desc := experiment.DescribeFit(cells, law)
		fmt.Println("fit:", desc)
	}
}

func parseNs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad population size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -ns")
	}
	return out, nil
}

func parseRule(name string) (consensus.Rule, error) {
	switch name {
	case "median":
		return rules.Median{}, nil
	case "majority":
		return rules.Majority{}, nil
	case "minimum":
		return rules.Minimum{}, nil
	case "maximum":
		return rules.Maximum{}, nil
	case "mean":
		return rules.Mean{}, nil
	case "voter":
		return rules.Voter{}, nil
	}
	return nil, fmt.Errorf("unknown rule %q", name)
}

func parseAdversary(name string) (consensus.Adversary, error) {
	switch name {
	case "none":
		return nil, nil
	case "balancer":
		return adversary.NewBalancer(adversary.Sqrt(1), 0, 0), nil
	case "noise":
		return adversary.NewRandomNoise(adversary.Sqrt(1)), nil
	case "splitter":
		return adversary.NewMedianSplitter(adversary.Sqrt(1)), nil
	case "hider":
		return adversary.NewHider(adversary.Sqrt(1), 1), nil
	}
	return nil, fmt.Errorf("unknown adversary %q", name)
}

func parseInit(kind string, n, m int, seed uint64) ([]consensus.Value, error) {
	if m <= 0 || m > n {
		m = n
	}
	switch kind {
	case "distinct":
		return consensus.AllDistinct(n), nil
	case "uniform":
		return consensus.UniformRandom(n, m, seed), nil
	case "twovalue":
		return consensus.TwoValue(n, n/2, 1, 2), nil
	case "blocks":
		return consensus.EvenBlocks(n, m), nil
	}
	return nil, fmt.Errorf("unknown init %q", kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(2)
}

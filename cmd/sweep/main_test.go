package main

import (
	"testing"

	"repro/service"
)

func TestParseNs(t *testing.T) {
	ns, err := parseNs("1e3, 1e4,100000")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1000, 10000, 100000}
	if len(ns) != 3 {
		t.Fatalf("%d sizes", len(ns))
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("ns[%d] = %v, want %v", i, ns[i], want[i])
		}
	}
	for _, bad := range []string{"", "x", "1", "-5", "1e3,,1e4"} {
		if _, err := parseNs(bad); err == nil {
			t.Fatalf("parseNs(%q) must error", bad)
		}
	}
}

func TestParseRule(t *testing.T) {
	for _, name := range []string{"median", "majority", "minimum", "maximum", "mean", "voter"} {
		r, err := parseRule(name)
		if err != nil || r.Name() != name {
			t.Fatalf("parseRule(%q): %v", name, err)
		}
	}
	if _, err := parseRule("kmedian2"); err == nil {
		t.Fatal("sweep does not expose kmedian; must error")
	}
}

func TestParseAdversary(t *testing.T) {
	if a, err := parseAdversary("none"); err != nil || a != nil {
		t.Fatal("none must parse to nil")
	}
	for _, name := range []string{"balancer", "noise", "splitter", "hider"} {
		a, err := parseAdversary(name)
		if err != nil || a == nil {
			t.Fatalf("parseAdversary(%q): %v", name, err)
		}
		if a.Budget(10000) != 100 {
			t.Fatalf("%s budget at n=10000: %d, want sqrt = 100", name, a.Budget(10000))
		}
	}
	if _, err := parseAdversary("reviver"); err == nil {
		t.Fatal("sweep does not expose reviver; must error")
	}
}

func TestParseInitClampsM(t *testing.T) {
	// m > n clamps to n; the blocks initialiser must still cover n balls.
	vals, err := parseInit("blocks", 5, 99, 1)
	if err != nil || len(vals) != 5 {
		t.Fatalf("clamp failed: %v %v", vals, err)
	}
	if _, err := parseInit("nonsense", 5, 2, 1); err == nil {
		t.Fatal("unknown init must error")
	}
}

func TestBatchRequestShapes(t *testing.T) {
	// Plain sweeps are a template + "n" axis (server-expandable).
	req, err := batchRequest([]float64{1000, 2000}, 2, "twovalue", "median", "none", 100, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Specs) != 0 || len(req.Axes) != 1 || req.Axes[0].Param != "n" || req.Reps != 3 {
		t.Fatalf("plain sweep must be axis-mode: %+v", req)
	}
	// Adversarial sweeps derive the n-dependent slack server-side, riding
	// the same template+axis grid path as plain sweeps.
	req, err = batchRequest([]float64{10000}, 2, "twovalue", "median", "balancer", 100, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Specs) != 0 || len(req.Axes) != 1 || len(req.Derive) != 1 {
		t.Fatalf("adversarial sweep must be axis+derive mode: %+v", req)
	}
	if d := req.Derive[0]; d.Param != "almost_slack" || d.From != "n" || d.Func != "sqrt" || d.Factor != 3 {
		t.Fatalf("bad derive rule: %+v", d)
	}
	// Both shapes expand through the shared batch expansion; the derive
	// rule pins the per-cell slack to ⌊3·√n⌋.
	cells, err := service.ExpandBatch(req, service.BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if slack := c.Spec.Payload.(*service.MedianSpec).AlmostSlack; slack != 300 {
			t.Fatalf("cell slack %d, want 3*sqrt(10000) = 300", slack)
		}
	}
	// Pin the derive semantics at a non-perfect-square n too: the slack is
	// the adversary budget family Sqrt(3), i.e. ⌊3·√n⌋ — deliberately so,
	// replacing the old explicit-spec 3·⌊√n⌋ (⌊3·√1000⌋ = 94, not 93).
	req, err = batchRequest([]float64{1000}, 2, "twovalue", "median", "balancer", 100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells, err = service.ExpandBatch(req, service.BatchLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if slack := cells[0].Spec.Payload.(*service.MedianSpec).AlmostSlack; slack != 94 {
		t.Fatalf("cell slack %d, want floor(3*sqrt(1000)) = 94", slack)
	}
}

func TestSummarizeGroupsReps(t *testing.T) {
	records := make([]service.RunRecord, 4)
	for i, rounds := range []int{10, 12, 20, 22} {
		records[i].Result.Rounds = rounds
	}
	cells := summarize([]float64{100, 200}, 2, records)
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	if cells[0].Summary.Mean != 11 || cells[1].Summary.Mean != 21 {
		t.Fatalf("means %v/%v, want 11/21", cells[0].Summary.Mean, cells[1].Summary.Mean)
	}
}

package main

import (
	"testing"
)

func TestParseNs(t *testing.T) {
	ns, err := parseNs("1e3, 1e4,100000")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1000, 10000, 100000}
	if len(ns) != 3 {
		t.Fatalf("%d sizes", len(ns))
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("ns[%d] = %v, want %v", i, ns[i], want[i])
		}
	}
	for _, bad := range []string{"", "x", "1", "-5", "1e3,,1e4"} {
		if _, err := parseNs(bad); err == nil {
			t.Fatalf("parseNs(%q) must error", bad)
		}
	}
}

func TestParseRule(t *testing.T) {
	for _, name := range []string{"median", "majority", "minimum", "maximum", "mean", "voter"} {
		r, err := parseRule(name)
		if err != nil || r.Name() != name {
			t.Fatalf("parseRule(%q): %v", name, err)
		}
	}
	if _, err := parseRule("kmedian2"); err == nil {
		t.Fatal("sweep does not expose kmedian; must error")
	}
}

func TestParseAdversary(t *testing.T) {
	if a, err := parseAdversary("none"); err != nil || a != nil {
		t.Fatal("none must parse to nil")
	}
	for _, name := range []string{"balancer", "noise", "splitter", "hider"} {
		a, err := parseAdversary(name)
		if err != nil || a == nil {
			t.Fatalf("parseAdversary(%q): %v", name, err)
		}
		if a.Budget(10000) != 100 {
			t.Fatalf("%s budget at n=10000: %d, want sqrt = 100", name, a.Budget(10000))
		}
	}
	if _, err := parseAdversary("reviver"); err == nil {
		t.Fatal("sweep does not expose reviver; must error")
	}
}

func TestParseInitClampsM(t *testing.T) {
	// m > n clamps to n; the blocks initialiser must still cover n balls.
	vals, err := parseInit("blocks", 5, 99, 1)
	if err != nil || len(vals) != 5 {
		t.Fatalf("clamp failed: %v %v", vals, err)
	}
	if _, err := parseInit("nonsense", 5, 2, 1); err == nil {
		t.Fatal("unknown init must error")
	}
}

// Command consensusctl is the consensusd client: it submits run specs of
// any kind, runs batch sweeps, fetches results, follows live round streams
// and reads service metrics.
//
//	consensusctl submit -n 100000 -rule median -wait
//	consensusctl submit -kind multidim -init random -n 2000 -d 3 -wait
//	consensusctl submit -kind robust -n 5000 -loss 0.1 -crashes 50 -wait
//	consensusctl submit -spec run.json -stream
//	consensusctl batch -axis n=1e3,1e4 -axis seed=1,2,3
//	consensusctl batch -spec batch.json
//	consensusctl get r-1
//	consensusctl watch r-1
//	consensusctl cancel r-1
//	consensusctl metrics
//
// The server is selected with -server (default http://localhost:8645) on
// every subcommand. "submit -spec -" reads one or more JSON specs from
// stdin (a single spec object, a service RunRecord, or NDJSON of either),
// so sweep -json output pipes straight back into the service. "batch"
// streams one BatchCellRecord per expanded cell as NDJSON.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/adversary"
	"repro/consensus"
	"repro/multidim"
	"repro/service"
	"repro/service/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "submit":
		err = runSubmit(args)
	case "batch":
		err = runBatch(args)
	case "get":
		err = runGet(args)
	case "watch":
		err = runWatch(args)
	case "cancel":
		err = runCancel(args)
	case "metrics":
		err = runMetrics(args)
	case "health":
		err = runHealth(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "consensusctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: consensusctl <command> [flags]

commands:
  submit    submit a run spec (flags or -spec file)
  batch     submit a batch grid and stream per-cell records
  get       print a run's state
  watch     stream a run's per-round records, then print the result
  cancel    request cancellation of a run
  metrics   print service counters
  health    probe the server`)
}

// serverFlag registers the shared -server flag on a flag set.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://localhost:8645", "consensusd base URL")
}

// specFlags is the shared flag surface that builds one Spec of any kind —
// the submit command's template and the batch command's grid template.
type specFlags struct {
	fs       *flag.FlagSet
	kind     *string
	n        *int
	m        *int
	d        *int
	initKind *string
	ruleName *string
	k        *int
	advName  *string
	budgetK  *string
	budgetF  *float64
	noiseT   *int
	loss     *float64
	crashes  *int
	mode     *string
	seed     *uint64
	rounds   *int
	slack    *int
	window   *int
	timing   *string
	engine   *string
}

func addSpecFlags(fs *flag.FlagSet) *specFlags {
	return &specFlags{
		fs:       fs,
		kind:     fs.String("kind", "median", "spec kind: median, multidim, robust"),
		n:        fs.Int("n", 100000, "population size"),
		m:        fs.Int("m", 2, "number of initial values (multidim: coordinate range)"),
		d:        fs.Int("d", 1, "point dimension (kind multidim)"),
		initKind: fs.String("init", "", "initial state kind (median/robust: consensus.InitKinds, default twovalue; multidim: multidim.InitKinds, default random)"),
		ruleName: fs.String("rule", "median", "rule registry name (kind median)"),
		k:        fs.Int("k", 0, "k parameter for the kmedian rule (0 = unset)"),
		advName:  fs.String("adversary", "", "adversary registry name ('' = none; multidim: see multidim.AdversaryNames)"),
		budgetK:  fs.String("budget", "sqrt", "adversary budget kind: fixed, sqrt, sqrtlog (kind median)"),
		budgetF:  fs.Float64("budget-factor", 1, "adversary budget factor (kind median)"),
		noiseT:   fs.Int("t", 0, "multidim adversary per-round budget (0 = default)"),
		loss:     fs.Float64("loss", 0, "per-sample loss probability (kind robust)"),
		crashes:  fs.Int("crashes", 0, "crashed processes (kind robust)"),
		mode:     fs.String("mode", "", "crash fault mode: responsive, silent (kind robust)"),
		seed:     fs.Uint64("seed", 0, "run seed (0 = derived from the spec hash)"),
		rounds:   fs.Int("rounds", 0, "round cap (0 = engine default)"),
		slack:    fs.Int("slack", 0, "almost-stable slack (0 = off; kind median)"),
		window:   fs.Int("window", 0, "stability window (0 = default; kind median)"),
		timing:   fs.String("timing", "", "adversary timing: before-round, after-choices (kind median)"),
		engine:   fs.String("engine", "", "engine: auto, ball, count, twobin, gossip (kind median)"),
	}
}

// kindOwnedFlags lists the spec flags each kind interprets beyond the
// shared kind/n/m/init/seed/rounds set. A flag explicitly set for a
// foreign kind is an error — mirroring the server-side Validate
// strictness — instead of silently running without it.
var kindOwnedFlags = map[string]map[string]bool{
	service.KindMedian: {"rule": true, "k": true, "adversary": true, "budget": true,
		"budget-factor": true, "slack": true, "window": true, "timing": true, "engine": true},
	service.KindMultidim: {"d": true, "adversary": true, "t": true},
	service.KindRobust:   {"loss": true, "crashes": true, "mode": true},
}

// checkKindFlags rejects explicitly-set flags another kind owns.
func (f *specFlags) checkKindFlags(kind string) error {
	allowed := kindOwnedFlags[kind]
	var bad []string
	f.fs.Visit(func(fl *flag.Flag) {
		if allowed[fl.Name] {
			return
		}
		for _, owned := range kindOwnedFlags {
			if owned[fl.Name] {
				bad = append(bad, "-"+fl.Name)
				return
			}
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("flags %s do not apply to kind %s", strings.Join(bad, ", "), kind)
	}
	return nil
}

// spec assembles the Spec the flags describe. Kinds that ignore a field
// never embed it — an irrelevant m (or seed) would change the canonical
// hash and defeat the result cache.
func (f *specFlags) spec() (service.Spec, error) {
	kind := *f.kind
	if kind == "" {
		kind = service.KindMedian
	}
	switch kind {
	case service.KindMedian, service.KindMultidim, service.KindRobust:
	default:
		return service.Spec{}, fmt.Errorf("unknown spec kind %q (known: %v)", *f.kind, service.Kinds())
	}
	if err := f.checkKindFlags(kind); err != nil {
		return service.Spec{}, err
	}
	switch kind {
	case service.KindMultidim:
		return f.multidimSpec()
	case service.KindRobust:
		return f.robustSpec()
	default:
		return f.medianSpec()
	}
}

// scalarInit builds the shared scalar init spec of the median and robust
// kinds.
func (f *specFlags) scalarInit() consensus.InitSpec {
	kind := *f.initKind
	if kind == "" {
		kind = "twovalue"
	}
	init := consensus.InitSpec{Kind: kind, N: *f.n}
	switch kind {
	case "uniform":
		init.M = *f.m
		init.Seed = *f.seed
	case "evenblocks":
		init.M = *f.m
	}
	return init
}

func (f *specFlags) medianSpec() (service.Spec, error) {
	spec := service.Spec{
		Init:        f.scalarInit(),
		Rule:        service.RuleSpec{Name: *f.ruleName},
		Seed:        *f.seed,
		MaxRounds:   *f.rounds,
		AlmostSlack: *f.slack,
		Window:      *f.window,
		Timing:      *f.timing,
		Engine:      *f.engine,
	}
	if *f.k > 0 {
		spec.Rule.Params = map[string]float64{"k": float64(*f.k)}
	}
	if *f.advName != "" && *f.advName != "none" {
		spec.Adversary = &service.AdversarySpec{
			Name:   *f.advName,
			Budget: adversary.BudgetSpec{Kind: *f.budgetK, Factor: *f.budgetF},
		}
	}
	return spec, nil
}

func (f *specFlags) multidimSpec() (service.Spec, error) {
	kind := *f.initKind
	if kind == "" {
		kind = "random"
	}
	init := multidim.InitSpec{Kind: kind, N: *f.n, D: *f.d}
	if kind == "random" {
		init.M = *f.m
		init.Seed = *f.seed
	}
	spec := service.Spec{
		Kind:      service.KindMultidim,
		Seed:      *f.seed,
		MaxRounds: *f.rounds,
		Multidim:  &service.MultidimSpec{Init: init},
	}
	if *f.advName != "" && *f.advName != "none" {
		adv := &service.MultidimAdversarySpec{Name: *f.advName}
		if *f.noiseT > 0 {
			adv.Params = multidim.Params{"t": float64(*f.noiseT)}
		}
		spec.Multidim.Adversary = adv
	}
	return spec, nil
}

func (f *specFlags) robustSpec() (service.Spec, error) {
	spec := service.Spec{
		Kind:      service.KindRobust,
		Init:      f.scalarInit(),
		Seed:      *f.seed,
		MaxRounds: *f.rounds,
	}
	if *f.loss != 0 || *f.crashes != 0 || *f.mode != "" {
		spec.Robust = &service.RobustSpec{
			LossProb: *f.loss,
			Crashes:  *f.crashes,
			Mode:     *f.mode,
		}
	}
	return spec, nil
}

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverFlag(fs)
	specPath := fs.String("spec", "", "read the spec from a JSON file ('-' = stdin, NDJSON accepted) instead of flags")
	sf := addSpecFlags(fs)
	wait := fs.Bool("wait", false, "block until the run finishes and print the result")
	stream := fs.Bool("stream", false, "stream round records while waiting (implies -wait)")
	fs.Parse(args)

	c := client.New(*server)
	ctx := context.Background()

	var specs []service.Spec
	if *specPath != "" {
		var err error
		specs, err = readSpecs(*specPath)
		if err != nil {
			return err
		}
	} else {
		spec, err := sf.spec()
		if err != nil {
			return err
		}
		specs = []service.Spec{spec}
	}

	for _, spec := range specs {
		view, err := c.Submit(ctx, spec)
		if err != nil {
			return err
		}
		if !*wait && !*stream {
			printJSON(view)
			continue
		}
		if *stream {
			if err := streamRun(ctx, c, view.ID); err != nil {
				return err
			}
		}
		final, err := c.Wait(ctx, view.ID, 100*time.Millisecond)
		if err != nil {
			return err
		}
		printJSON(final)
	}
	return nil
}

// axisFlags accumulates repeated -axis param=v1,v2,... flags.
type axisFlags []service.Axis

func (a *axisFlags) String() string {
	parts := make([]string, len(*a))
	for i, ax := range *a {
		parts[i] = ax.Param
	}
	return strings.Join(parts, ",")
}

func (a *axisFlags) Set(s string) error {
	param, list, ok := strings.Cut(s, "=")
	if !ok || param == "" || list == "" {
		return fmt.Errorf("axis must look like param=v1,v2,..., got %q", s)
	}
	var values []float64
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad axis value %q in %q", part, s)
		}
		values = append(values, v)
	}
	*a = append(*a, service.Axis{Param: param, Values: values})
	return nil
}

func runBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	server := serverFlag(fs)
	specPath := fs.String("spec", "", "read a BatchRequest from a JSON file ('-' = stdin) instead of flags")
	reps := fs.Int("reps", 1, "repetitions per grid cell")
	var axes axisFlags
	fs.Var(&axes, "axis", "sweep axis param=v1,v2,... (repeatable; cartesian product)")
	sf := addSpecFlags(fs)
	fs.Parse(args)

	var req service.BatchRequest
	if *specPath != "" {
		if err := readJSONFile(*specPath, &req); err != nil {
			return err
		}
	} else {
		if len(axes) == 0 {
			return fmt.Errorf("batch needs at least one -axis (or -spec)")
		}
		tmpl, err := sf.spec()
		if err != nil {
			return err
		}
		req = service.BatchRequest{Template: tmpl, Axes: axes, Reps: *reps}
	}
	enc := json.NewEncoder(os.Stdout)
	return client.New(*server).Batch(context.Background(), req, func(rec service.BatchCellRecord) error {
		return enc.Encode(rec)
	})
}

// readJSONFile strictly decodes one JSON document from a file or stdin.
func readJSONFile(path string, v any) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad JSON in %s: %w", path, err)
	}
	return nil
}

// readSpecs parses a file of specs: a single Spec object or RunRecord
// (pretty-printed JSON included), or a stream of them (NDJSON or simply
// concatenated objects).
func readSpecs(path string) ([]service.Spec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var specs []service.Spec
	dec := json.NewDecoder(r)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("bad spec JSON in %s: %w", path, err)
		}
		spec, err := decodeSpec(raw)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs in %s", path)
	}
	return specs, nil
}

// decodeSpec accepts either a bare Spec or a RunRecord wrapper. Both are
// decoded strictly: a misspelled field must fail here, not be silently
// dropped, re-marshalled clean and accepted by the server.
func decodeSpec(raw []byte) (service.Spec, error) {
	var rec service.RunRecord
	if err := strictUnmarshal(raw, &rec); err == nil && rec.SpecHash != "" &&
		(rec.Spec.Rule.Name != "" || rec.Spec.Kind != "") {
		return rec.Spec, nil
	}
	var spec service.Spec
	if err := strictUnmarshal(raw, &spec); err != nil {
		return service.Spec{}, fmt.Errorf("bad spec: %w", err)
	}
	return spec, nil
}

func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func runGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "get")
	if err != nil {
		return err
	}
	view, err := client.New(*server).Get(context.Background(), id)
	if err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "watch")
	if err != nil {
		return err
	}
	c := client.New(*server)
	ctx := context.Background()
	if err := streamRun(ctx, c, id); err != nil {
		return err
	}
	final, err := c.Wait(ctx, id, 100*time.Millisecond)
	if err != nil {
		return err
	}
	printJSON(final)
	return nil
}

func streamRun(ctx context.Context, c *client.Client, id string) error {
	enc := json.NewEncoder(os.Stdout)
	return c.Stream(ctx, id, func(rec service.RoundRecord) error {
		return enc.Encode(rec)
	})
}

func runCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "cancel")
	if err != nil {
		return err
	}
	view, err := client.New(*server).Cancel(context.Background(), id)
	if err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	m, err := client.New(*server).Metrics(context.Background())
	if err != nil {
		return err
	}
	printJSON(m)
	return nil
}

func runHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	if err := client.New(*server).Health(context.Background()); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func oneArg(fs *flag.FlagSet, cmd string) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("%s needs exactly one run id", cmd)
	}
	return fs.Arg(0), nil
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Command consensusctl is the consensusd client: it submits run specs,
// fetches results, follows live round streams and reads service metrics.
//
//	consensusctl submit -n 100000 -rule median -wait
//	consensusctl submit -spec run.json -stream
//	consensusctl get r-1
//	consensusctl watch r-1
//	consensusctl cancel r-1
//	consensusctl metrics
//
// The server is selected with -server (default http://localhost:8645) on
// every subcommand. "submit -spec -" reads one or more JSON specs from
// stdin (a single spec object, a service RunRecord, or NDJSON of either),
// so sweep -json output pipes straight back into the service.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/adversary"
	"repro/consensus"
	"repro/service"
	"repro/service/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "submit":
		err = runSubmit(args)
	case "get":
		err = runGet(args)
	case "watch":
		err = runWatch(args)
	case "cancel":
		err = runCancel(args)
	case "metrics":
		err = runMetrics(args)
	case "health":
		err = runHealth(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "consensusctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: consensusctl <command> [flags]

commands:
  submit    submit a run spec (flags or -spec file)
  get       print a run's state
  watch     stream a run's per-round records, then print the result
  cancel    request cancellation of a run
  metrics   print service counters
  health    probe the server`)
}

// serverFlag registers the shared -server flag on a flag set.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://localhost:8645", "consensusd base URL")
}

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverFlag(fs)
	specPath := fs.String("spec", "", "read the spec from a JSON file ('-' = stdin, NDJSON accepted) instead of flags")
	n := fs.Int("n", 100000, "population size")
	m := fs.Int("m", 2, "number of initial values")
	initKind := fs.String("init", "twovalue", "initial state kind (see consensus.InitKinds)")
	ruleName := fs.String("rule", "median", "rule registry name")
	k := fs.Int("k", 0, "k parameter for the kmedian rule (0 = unset)")
	advName := fs.String("adversary", "", "adversary registry name ('' = none)")
	budgetKind := fs.String("budget", "sqrt", "adversary budget kind: fixed, sqrt, sqrtlog")
	budgetFactor := fs.Float64("budget-factor", 1, "adversary budget factor")
	seed := fs.Uint64("seed", 0, "run seed (0 = derived from the spec hash)")
	maxRounds := fs.Int("rounds", 0, "round cap (0 = engine default)")
	slack := fs.Int("slack", 0, "almost-stable slack (0 = off)")
	window := fs.Int("window", 0, "stability window (0 = default)")
	timing := fs.String("timing", "", "adversary timing: before-round, after-choices")
	engine := fs.String("engine", "", "engine: auto, ball, count, twobin, gossip")
	wait := fs.Bool("wait", false, "block until the run finishes and print the result")
	stream := fs.Bool("stream", false, "stream round records while waiting (implies -wait)")
	fs.Parse(args)

	c := client.New(*server)
	ctx := context.Background()

	var specs []service.Spec
	if *specPath != "" {
		var err error
		specs, err = readSpecs(*specPath)
		if err != nil {
			return err
		}
	} else {
		spec := service.Spec{
			Init:        consensus.InitSpec{Kind: *initKind, N: *n},
			Rule:        service.RuleSpec{Name: *ruleName},
			Seed:        *seed,
			MaxRounds:   *maxRounds,
			AlmostSlack: *slack,
			Window:      *window,
			Timing:      *timing,
			Engine:      *engine,
		}
		// Only kinds that use a field get it: an irrelevant m (or seed)
		// would change the canonical hash and defeat the result cache.
		switch *initKind {
		case "uniform":
			spec.Init.M = *m
			spec.Init.Seed = *seed
		case "evenblocks":
			spec.Init.M = *m
		}
		if *k > 0 {
			spec.Rule.Params = map[string]float64{"k": float64(*k)}
		}
		if *advName != "" && *advName != "none" {
			spec.Adversary = &service.AdversarySpec{
				Name:   *advName,
				Budget: adversary.BudgetSpec{Kind: *budgetKind, Factor: *budgetFactor},
			}
		}
		specs = []service.Spec{spec}
	}

	for _, spec := range specs {
		view, err := c.Submit(ctx, spec)
		if err != nil {
			return err
		}
		if !*wait && !*stream {
			printJSON(view)
			continue
		}
		if *stream {
			if err := streamRun(ctx, c, view.ID); err != nil {
				return err
			}
		}
		final, err := c.Wait(ctx, view.ID, 100*time.Millisecond)
		if err != nil {
			return err
		}
		printJSON(final)
	}
	return nil
}

// readSpecs parses a file of specs: a single Spec object or RunRecord
// (pretty-printed JSON included), or a stream of them (NDJSON or simply
// concatenated objects).
func readSpecs(path string) ([]service.Spec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var specs []service.Spec
	dec := json.NewDecoder(r)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("bad spec JSON in %s: %w", path, err)
		}
		spec, err := decodeSpec(raw)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs in %s", path)
	}
	return specs, nil
}

// decodeSpec accepts either a bare Spec or a RunRecord wrapper. Both are
// decoded strictly: a misspelled field must fail here, not be silently
// dropped, re-marshalled clean and accepted by the server.
func decodeSpec(raw []byte) (service.Spec, error) {
	var rec service.RunRecord
	if err := strictUnmarshal(raw, &rec); err == nil && rec.Spec.Rule.Name != "" && rec.SpecHash != "" {
		return rec.Spec, nil
	}
	var spec service.Spec
	if err := strictUnmarshal(raw, &spec); err != nil {
		return service.Spec{}, fmt.Errorf("bad spec: %w", err)
	}
	return spec, nil
}

func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func runGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "get")
	if err != nil {
		return err
	}
	view, err := client.New(*server).Get(context.Background(), id)
	if err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "watch")
	if err != nil {
		return err
	}
	c := client.New(*server)
	ctx := context.Background()
	if err := streamRun(ctx, c, id); err != nil {
		return err
	}
	final, err := c.Wait(ctx, id, 100*time.Millisecond)
	if err != nil {
		return err
	}
	printJSON(final)
	return nil
}

func streamRun(ctx context.Context, c *client.Client, id string) error {
	enc := json.NewEncoder(os.Stdout)
	return c.Stream(ctx, id, func(rec service.RoundRecord) error {
		return enc.Encode(rec)
	})
}

func runCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "cancel")
	if err != nil {
		return err
	}
	view, err := client.New(*server).Cancel(context.Background(), id)
	if err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	m, err := client.New(*server).Metrics(context.Background())
	if err != nil {
		return err
	}
	printJSON(m)
	return nil
}

func runHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	if err := client.New(*server).Health(context.Background()); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func oneArg(fs *flag.FlagSet, cmd string) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("%s needs exactly one run id", cmd)
	}
	return fs.Arg(0), nil
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

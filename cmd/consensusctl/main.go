// Command consensusctl is the consensusd client: it submits run specs of
// any registered kind, runs batch sweeps, fetches results, follows live
// round streams, discovers the server's engines and reads service metrics.
//
//	consensusctl submit -n 100000 -rule median -wait
//	consensusctl submit -kind gossip -n 5000 -selector drop-value:1 -stream
//	consensusctl submit -kind multidim -init random -n 2000 -d 3 -wait
//	consensusctl submit -kind robust -n 5000 -loss 0.1 -crashes 50 -wait
//	consensusctl submit -kind exact -n 60 -start 20 -wait
//	consensusctl submit -spec run.json -stream
//	consensusctl batch -axis n=1e3,1e4 -axis seed=1,2,3
//	consensusctl batch -axis n=1e3,1e4 -zip crashes=10,100 -reps 5
//	consensusctl batch -spec batch.json
//	consensusctl engines
//	consensusctl get r-1
//	consensusctl watch r-1        # one run's round records
//	consensusctl watch            # the service-wide live event stream
//	consensusctl watch -replay 50 # ... preceded by recent history
//	consensusctl top -interval 2s # live polling metrics view
//	consensusctl cancel r-1
//	consensusctl metrics
//
// The server is selected with -server (default http://localhost:8645) on
// every subcommand; $CONSENSUS_TOKEN, when set, is sent as a bearer token
// (required by servers started with -auth-token). "submit -spec -" reads
// one or more JSON specs from stdin (a single spec object, a service
// RunRecord, or NDJSON of either), so sweep -json output pipes straight
// back into the service. "batch" streams one BatchCellRecord per expanded
// cell as NDJSON.
//
// The per-kind flag surface is validated against engine descriptors: a
// flag that maps to a parameter the selected kind does not declare, or a
// value outside the parameter's enum/bounds, is rejected client-side with
// a descriptor-sourced error before anything reaches the server. The
// descriptors come from the configured server's GET /v1/engines document
// when it answers (validation then reflects what that server registered),
// and from the local registry otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/adversary"
	"repro/engine"
	"repro/internal/buildinfo"
	"repro/multidim"
	"repro/obs"
	"repro/rules"
	"repro/service"
	"repro/service/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "version", "-version", "--version":
		fmt.Println("consensusctl", buildinfo.String())
		return
	case "submit":
		err = runSubmit(args)
	case "batch":
		err = runBatch(args)
	case "engines":
		err = runEngines(args)
	case "get":
		err = runGet(args)
	case "watch":
		err = runWatch(args)
	case "cancel":
		err = runCancel(args)
	case "top":
		err = runTop(args)
	case "metrics":
		err = runMetrics(args)
	case "health":
		err = runHealth(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "consensusctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: consensusctl <command> [flags]

commands:
  submit    submit a run spec (flags or -spec file)
  batch     submit a batch grid and stream per-cell records
  engines   list the server's registered engines and their parameters
  get       print a run's state
  watch     with a run id: stream its per-round records, then print the
            result; without: tail the service's live event stream (NDJSON)
  top       live metrics view, refreshed every -interval
  cancel    request cancellation of a run
  metrics   print service counters
  health    probe the server
  version   print version and exit`)
}

// serverFlag registers the shared -server flag on a flag set.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://localhost:8645", "consensusd base URL")
}

// newClient builds the API client, attaching $CONSENSUS_TOKEN as the
// bearer token when set.
func newClient(server string) *client.Client {
	c := client.New(server)
	c.Token = os.Getenv("CONSENSUS_TOKEN")
	return c
}

// specFlags is the shared flag surface that builds one Spec of any kind —
// the submit command's template and the batch command's grid template.
type specFlags struct {
	fs        *flag.FlagSet
	kind      *string
	n         *int
	m         *int
	d         *int
	initKind  *string
	ruleName  *string
	k         *int
	advName   *string
	budgetK   *string
	budgetF   *float64
	noiseT    *int
	loss      *float64
	crashes   *int
	mode      *string
	capFactor *float64
	selector  *string
	start     *int
	seed      *uint64
	rounds    *int
	slack     *int
	window    *int
	timing    *string
	engine    *string
}

func addSpecFlags(fs *flag.FlagSet) *specFlags {
	return &specFlags{
		fs:        fs,
		kind:      fs.String("kind", "median", "spec kind (see consensusctl engines)"),
		n:         fs.Int("n", 100000, "population size"),
		m:         fs.Int("m", 2, "number of initial values (multidim: coordinate range)"),
		d:         fs.Int("d", 1, "point dimension (kind multidim)"),
		initKind:  fs.String("init", "", "initial state kind (scalar kinds: consensus.InitKinds, default twovalue; multidim: multidim.InitKinds, default random)"),
		ruleName:  fs.String("rule", "median", "rule registry name (kinds median, gossip)"),
		k:         fs.Int("k", 0, "k parameter for the kmedian rule (0 = unset)"),
		advName:   fs.String("adversary", "", "adversary registry name ('' = none; multidim: see multidim.AdversaryNames)"),
		budgetK:   fs.String("budget", "sqrt", "adversary budget kind: fixed, sqrt, sqrtlog"),
		budgetF:   fs.Float64("budget-factor", 1, "adversary budget factor"),
		noiseT:    fs.Int("t", 0, "multidim adversary per-round budget (0 = default)"),
		loss:      fs.Float64("loss", 0, "per-sample loss probability (kind robust)"),
		crashes:   fs.Int("crashes", 0, "crashed processes (kind robust)"),
		mode:      fs.String("mode", "", "crash fault mode: responsive, silent (kind robust)"),
		capFactor: fs.Float64("cap-factor", 0, "per-round request capacity scale (kind gossip; 0 = default, negative = unlimited)"),
		selector:  fs.String("selector", "", "drop selector: fair, drop-value:<victim> (kind gossip)"),
		start:     fs.Int("start", 0, "initial left-bin count (kind exact; 0 = n/2)"),
		seed:      fs.Uint64("seed", 0, "run seed (0 = derived from the spec hash)"),
		rounds:    fs.Int("rounds", 0, "round cap (0 = engine default)"),
		slack:     fs.Int("slack", 0, "almost-stable slack (0 = off)"),
		window:    fs.Int("window", 0, "stability window (0 = default)"),
		timing:    fs.String("timing", "", "adversary timing: before-round, after-choices (kind median)"),
		engine:    fs.String("engine", "", "simulation engine: auto, ball, count, twobin (kind median); auto, process, count (kind multidim)"),
	}
}

// flagParams maps each kind-specific flag to the descriptor parameter it
// sets. A flag is legal for a kind exactly when the kind's descriptor
// declares that parameter — so a newly registered engine's flag surface
// follows from its Descriptor(), with no table to edit here. Shared flags
// (kind, n, m, init, seed, rounds) are absent: they are legal everywhere.
var flagParams = map[string]string{
	"rule":          "rule.name",
	"k":             "rule.params.k",
	"adversary":     "adversary.name",
	"budget":        "adversary.budget.kind",
	"budget-factor": "adversary.budget.factor",
	"t":             "adversary.params.t",
	"slack":         "almost_slack",
	"window":        "window",
	"timing":        "timing",
	"engine":        "engine",
	"d":             "init.d",
	"loss":          "loss_prob",
	"crashes":       "crashes",
	"mode":          "mode",
	"cap-factor":    "cap_factor",
	"selector":      "selector",
	"start":         "start",
}

// sharedFlagParams maps the flags that are legal for every kind to the
// descriptor parameter carrying their enum/bounds, so their *values* are
// still validated (applicability never is — every kind declares them).
var sharedFlagParams = map[string]string{
	"n":    "init.n",
	"m":    "init.m",
	"init": "init.kind",
}

// paramsOf indexes a descriptor's parameter names.
func paramsOf(d engine.Descriptor) map[string]bool {
	out := make(map[string]bool, len(d.Params))
	for _, p := range d.Params {
		out[p.Name] = true
	}
	return out
}

// checkKindFlags rejects explicitly-set flags whose parameter the kind's
// descriptor does not declare — mirroring the server-side strict decode —
// instead of silently running without them.
func (f *specFlags) checkKindFlags(d engine.Descriptor) error {
	params := paramsOf(d)
	var bad []string
	f.fs.Visit(func(fl *flag.Flag) {
		param, owned := flagParams[fl.Name]
		if owned && !params[param] {
			bad = append(bad, "-"+fl.Name)
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("flags %s do not apply to kind %s", strings.Join(bad, ", "), d.Kind)
	}
	return nil
}

// checkFlagValues validates explicitly-set flag values against the
// descriptor's enums and bounds, so a bad value surfaces as a
// descriptor-sourced client error instead of a server 400 (or, worse, a
// round-trip to a server that is down).
func (f *specFlags) checkFlagValues(d engine.Descriptor) error {
	byName := make(map[string]engine.Param, len(d.Params))
	for _, p := range d.Params {
		byName[p.Name] = p
	}
	var errs []string
	f.fs.Visit(func(fl *flag.Flag) {
		param, owned := flagParams[fl.Name]
		if !owned {
			param, owned = sharedFlagParams[fl.Name]
		}
		if !owned {
			return
		}
		raw := fl.Value.String()
		if fl.Name == "adversary" && (raw == "" || raw == "none") {
			return // "none" is the flag surface's spelling of "no adversary"
		}
		p, known := byName[param]
		if !known {
			// Kinds without the scalar init block declare shared flags as
			// bare parameters (exact: "n", "init") rather than the dotted
			// "init.n"/"init.kind" — validate against those when present.
			if p, known = byName[fl.Name]; !known {
				return // checkKindFlags already rejected kind-foreign flags
			}
		}
		if err := checkParamValue(p, raw); err != nil {
			errs = append(errs, fmt.Sprintf("-%s: %v", fl.Name, err))
		}
	})
	if len(errs) > 0 {
		return fmt.Errorf("per the %s engine descriptor: %s", d.Kind, strings.Join(errs, "; "))
	}
	return nil
}

// checkParamValue enforces one descriptor parameter's enum and bounds on
// a raw flag value.
func checkParamValue(p engine.Param, raw string) error {
	switch p.Type {
	case "string":
		if raw == "" || len(p.Enum) == 0 {
			return nil
		}
		for _, ok := range p.Enum {
			if raw == ok {
				return nil
			}
		}
		return fmt.Errorf("value %q for parameter %s not in enum %v", raw, p.Name, p.Enum)
	case "int", "uint", "float":
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("parameter %s needs a %s value, got %q", p.Name, p.Type, raw)
		}
		if p.Min != nil && v < *p.Min {
			return fmt.Errorf("value %v for parameter %s below its minimum %v", v, p.Name, *p.Min)
		}
		if p.Max != nil && v > *p.Max {
			return fmt.Errorf("value %v for parameter %s above its maximum %v", v, p.Name, *p.Max)
		}
	}
	return nil
}

// descriptorFor resolves the kind's descriptor for client-side
// validation: from the server's /v1/engines document when a server is
// configured and answers — so validation reflects what *that* server
// registered, not what this binary was built with — from the local
// registry otherwise.
func descriptorFor(c *client.Client, kind string) (engine.Descriptor, error) {
	if c != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if ds, err := c.Engines(ctx); err == nil {
			for _, d := range ds {
				if d.Kind == kind {
					return d, nil
				}
			}
			return engine.Descriptor{}, fmt.Errorf("kind %s is not registered on the server (see consensusctl engines)", kind)
		}
	}
	eng, err := engine.Lookup(kind)
	if err != nil {
		return engine.Descriptor{}, err
	}
	return eng.Descriptor(), nil
}

// spec assembles the Spec the flags describe, validated (applicability
// and values) against the kind's descriptor — c's server document when it
// answers, the local registry otherwise; nil c always validates locally.
// Kinds that ignore a field never embed it — an irrelevant m (or seed)
// would change the canonical hash and defeat the result cache.
func (f *specFlags) spec(c *client.Client) (service.Spec, error) {
	kind := *f.kind
	d, err := descriptorFor(c, kind)
	if err != nil {
		return service.Spec{}, err
	}
	if err := f.checkKindFlags(d); err != nil {
		return service.Spec{}, err
	}
	if err := f.checkFlagValues(d); err != nil {
		return service.Spec{}, err
	}
	spec := service.Spec{Kind: d.Kind, Seed: *f.seed, MaxRounds: *f.rounds}
	switch d.Kind {
	case service.KindMultidim:
		spec.Payload = f.multidimPayload()
	case service.KindRobust:
		spec.Payload = f.robustPayload()
	case service.KindGossip:
		spec.Payload = f.gossipPayload()
	case service.KindMedian:
		spec.Payload = f.medianPayload()
	case service.KindExact:
		spec.Payload = f.exactPayload()
	default:
		return service.Spec{}, fmt.Errorf("kind %s has no flag surface; submit it with -spec", d.Kind)
	}
	return spec, nil
}

// scalarInit builds the shared scalar init spec of the median, gossip and
// robust kinds.
func (f *specFlags) scalarInit() service.InitSpec {
	kind := *f.initKind
	if kind == "" {
		kind = "twovalue"
	}
	init := service.InitSpec{Kind: kind, N: *f.n}
	switch kind {
	case "uniform":
		init.M = *f.m
		init.Seed = *f.seed
	case "evenblocks":
		init.M = *f.m
	}
	return init
}

// scalarAdversary builds the adversary block shared by the median and
// gossip kinds (nil = none).
func (f *specFlags) scalarAdversary() *service.AdversarySpec {
	if *f.advName == "" || *f.advName == "none" {
		return nil
	}
	return &service.AdversarySpec{
		Name:   *f.advName,
		Budget: adversary.BudgetSpec{Kind: *f.budgetK, Factor: *f.budgetF},
	}
}

func (f *specFlags) ruleRef() service.RuleSpec {
	rule := service.RuleSpec{Name: *f.ruleName}
	if *f.k > 0 {
		rule.Params = rules.Params{"k": float64(*f.k)}
	}
	return rule
}

func (f *specFlags) medianPayload() *service.MedianSpec {
	return &service.MedianSpec{
		Init:        f.scalarInit(),
		Rule:        f.ruleRef(),
		Adversary:   f.scalarAdversary(),
		AlmostSlack: *f.slack,
		Window:      *f.window,
		Timing:      *f.timing,
		Engine:      *f.engine,
	}
}

func (f *specFlags) gossipPayload() *service.GossipSpec {
	return &service.GossipSpec{
		Init:        f.scalarInit(),
		Rule:        f.ruleRef(),
		Adversary:   f.scalarAdversary(),
		CapFactor:   *f.capFactor,
		Selector:    *f.selector,
		AlmostSlack: *f.slack,
		Window:      *f.window,
	}
}

func (f *specFlags) multidimPayload() *service.MultidimSpec {
	kind := *f.initKind
	if kind == "" {
		kind = "random"
	}
	init := multidim.InitSpec{Kind: kind, N: *f.n, D: *f.d}
	if kind == "random" {
		init.M = *f.m
		init.Seed = *f.seed
	}
	payload := &service.MultidimSpec{Init: init, Engine: *f.engine}
	if *f.advName != "" && *f.advName != "none" {
		adv := &service.MultidimAdversarySpec{Name: *f.advName}
		if *f.noiseT > 0 {
			adv.Params = multidim.Params{"t": float64(*f.noiseT)}
		}
		payload.Adversary = adv
	}
	return payload
}

// exactPayload builds the analytic kind's payload. -init here selects the
// exact kind's start distribution ("point"/"uniform"), not a scalar init.
func (f *specFlags) exactPayload() *service.ExactSpec {
	return &service.ExactSpec{N: *f.n, Init: *f.initKind, Start: *f.start}
}

func (f *specFlags) robustPayload() *service.RobustSpec {
	return &service.RobustSpec{
		Init:     f.scalarInit(),
		LossProb: *f.loss,
		Crashes:  *f.crashes,
		Mode:     *f.mode,
	}
}

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverFlag(fs)
	specPath := fs.String("spec", "", "read the spec from a JSON file ('-' = stdin, NDJSON accepted) instead of flags")
	sf := addSpecFlags(fs)
	wait := fs.Bool("wait", false, "block until the run finishes and print the result")
	stream := fs.Bool("stream", false, "stream round records while waiting (implies -wait)")
	fs.Parse(args)

	c := newClient(*server)
	ctx := context.Background()

	var specs []service.Spec
	if *specPath != "" {
		var err error
		specs, err = readSpecs(*specPath)
		if err != nil {
			return err
		}
	} else {
		spec, err := sf.spec(c)
		if err != nil {
			return err
		}
		specs = []service.Spec{spec}
	}

	for _, spec := range specs {
		view, err := c.Submit(ctx, spec)
		if err != nil {
			return err
		}
		if !*wait && !*stream {
			printJSON(view)
			continue
		}
		if *stream {
			if err := streamRun(ctx, c, view.ID); err != nil {
				return err
			}
		}
		final, err := c.Wait(ctx, view.ID, 100*time.Millisecond)
		if err != nil {
			return err
		}
		printJSON(final)
	}
	return nil
}

// axisFlags accumulates repeated -axis (or -zip) param=v1,v2,... flags.
type axisFlags []service.Axis

func (a *axisFlags) String() string {
	parts := make([]string, len(*a))
	for i, ax := range *a {
		parts[i] = ax.Param
	}
	return strings.Join(parts, ",")
}

func (a *axisFlags) Set(s string) error {
	param, list, ok := strings.Cut(s, "=")
	if !ok || param == "" || list == "" {
		return fmt.Errorf("axis must look like param=v1,v2,..., got %q", s)
	}
	var values []float64
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad axis value %q in %q", part, s)
		}
		values = append(values, v)
	}
	*a = append(*a, service.Axis{Param: param, Values: values})
	return nil
}

// checkAxes validates axis params against the template's kind before the
// request leaves the client, using the same descriptor data the server
// enforces.
func checkAxes(tmpl service.Spec, groups ...[]service.Axis) error {
	for _, axes := range groups {
		for _, ax := range axes {
			if !tmpl.AxisOK(ax.Param) {
				return fmt.Errorf("kind %s has no batch axis %q (see consensusctl engines)",
					tmpl.Normalize().Kind, ax.Param)
			}
		}
	}
	return nil
}

func runBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	server := serverFlag(fs)
	specPath := fs.String("spec", "", "read a BatchRequest from a JSON file ('-' = stdin) instead of flags")
	reps := fs.Int("reps", 1, "repetitions per grid cell")
	var axes, zips axisFlags
	fs.Var(&axes, "axis", "sweep axis param=v1,v2,... (repeatable; cartesian product)")
	fs.Var(&zips, "zip", "zipped axis param=v1,v2,... (repeatable; all advance together, equal lengths)")
	sf := addSpecFlags(fs)
	fs.Parse(args)

	c := newClient(*server)
	var req service.BatchRequest
	if *specPath != "" {
		if err := readJSONFile(*specPath, &req); err != nil {
			return err
		}
	} else {
		if len(axes) == 0 && len(zips) == 0 {
			return fmt.Errorf("batch needs at least one -axis or -zip (or -spec)")
		}
		tmpl, err := sf.spec(c)
		if err != nil {
			return err
		}
		if err := checkAxes(tmpl, axes, zips); err != nil {
			return err
		}
		req = service.BatchRequest{Template: tmpl, Axes: axes, Zip: zips, Reps: *reps}
	}
	enc := json.NewEncoder(os.Stdout)
	return c.Batch(context.Background(), req, func(rec service.BatchCellRecord) error {
		return enc.Encode(rec)
	})
}

// runEngines prints the server's engine discovery document — the
// registered spec kinds with their parameter schemas and batch axes.
func runEngines(args []string) error {
	fs := flag.NewFlagSet("engines", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	descriptors, err := newClient(*server).Engines(context.Background())
	if err != nil {
		return err
	}
	printJSON(descriptors)
	return nil
}

// readJSONFile strictly decodes one JSON document from a file or stdin.
func readJSONFile(path string, v any) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad JSON in %s: %w", path, err)
	}
	return nil
}

// readSpecs parses a file of specs: a single Spec object or RunRecord
// (pretty-printed JSON included), or a stream of them (NDJSON or simply
// concatenated objects).
func readSpecs(path string) ([]service.Spec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var specs []service.Spec
	dec := json.NewDecoder(r)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("bad spec JSON in %s: %w", path, err)
		}
		spec, err := decodeSpec(raw)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs in %s", path)
	}
	return specs, nil
}

// decodeSpec accepts either a bare Spec or a RunRecord wrapper. Both are
// decoded strictly (the spec codec rejects unknown fields for the spec's
// kind), so a misspelled field must fail here, not be silently dropped,
// re-marshalled clean and accepted by the server.
func decodeSpec(raw []byte) (service.Spec, error) {
	var rec service.RunRecord
	if err := strictUnmarshal(raw, &rec); err == nil && rec.SpecHash != "" && rec.Spec.Payload != nil {
		return rec.Spec, nil
	}
	var spec service.Spec
	if err := strictUnmarshal(raw, &spec); err != nil {
		return service.Spec{}, fmt.Errorf("bad spec: %w", err)
	}
	return spec, nil
}

func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func runGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "get")
	if err != nil {
		return err
	}
	view, err := newClient(*server).Get(context.Background(), id)
	if err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := serverFlag(fs)
	replay := fs.Int("replay", 0, "events to replay from the server's ring buffer before following (event-stream form)")
	fs.Parse(args)
	c := newClient(*server)
	ctx := context.Background()
	if fs.NArg() == 0 {
		// No run id: tail the service-wide event stream until the server
		// goes away or we are interrupted.
		enc := json.NewEncoder(os.Stdout)
		return c.Events(ctx, *replay, func(ev obs.Event) error {
			return enc.Encode(ev)
		})
	}
	id, err := oneArg(fs, "watch")
	if err != nil {
		return err
	}
	if err := streamRun(ctx, c, id); err != nil {
		return err
	}
	final, err := c.Wait(ctx, id, 100*time.Millisecond)
	if err != nil {
		return err
	}
	printJSON(final)
	return nil
}

func streamRun(ctx context.Context, c *client.Client, id string) error {
	enc := json.NewEncoder(os.Stdout)
	return c.Stream(ctx, id, func(rec service.RoundRecord) error {
		return enc.Encode(rec)
	})
}

func runCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := oneArg(fs, "cancel")
	if err != nil {
		return err
	}
	view, err := newClient(*server).Cancel(context.Background(), id)
	if err != nil {
		return err
	}
	printJSON(view)
	return nil
}

// runTop polls /v1/metrics and renders a compact live view — enough to
// see pool saturation, cache behavior and event-stream health at a glance
// without a Prometheus stack.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	server := serverFlag(fs)
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	iterations := fs.Int("n", 0, "refreshes before exiting (0 = until interrupted)")
	fs.Parse(args)
	c := newClient(*server)
	ctx := context.Background()
	clear := false
	if st, err := os.Stdout.Stat(); err == nil {
		clear = st.Mode()&os.ModeCharDevice != 0
	}
	for i := 0; ; i++ {
		m, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		if clear {
			fmt.Print("\033[H\033[2J")
		}
		printTop(m)
		if *iterations > 0 && i+1 >= *iterations {
			return nil
		}
		time.Sleep(*interval)
	}
}

func printTop(m service.MetricsSnapshot) {
	util := 0.0
	if m.Workers > 0 {
		util = 100 * float64(m.WorkersBusy) / float64(m.Workers)
	}
	fmt.Printf("consensusd  up %s  workers %d/%d (%.0f%%)  queue %d\n",
		(time.Duration(m.UptimeSeconds) * time.Second).String(), m.WorkersBusy, m.Workers, util, m.QueueDepth)
	fmt.Printf("jobs    submitted %-8d done %-8d failed %-6d cancelled %-6d coalesced %d\n",
		m.JobsSubmitted, m.JobsCompleted, m.JobsFailed, m.JobsCancelled, m.JobsCoalesced)
	fmt.Printf("cache   hits %-8d misses %-8d rate-limited %d\n",
		m.CacheHits, m.CacheMisses, m.RateLimited)
	fmt.Printf("batch   run %-8d cells %-8d cached %-6d coalesced %d\n",
		m.BatchesRun, m.BatchCellsExpanded, m.BatchCellsCached, m.BatchCellsCoalesced)
	fmt.Printf("store   loaded %-8d appended %-8d bytes %-10d errors %d\n",
		m.StoreRecordsLoaded, m.StoreRecordsAppended, m.StoreBytes, m.StoreAppendErrors)
	fmt.Printf("events  published %-8d dropped %-8d subscribers %d\n",
		m.EventsPublished, m.EventsDropped, m.EventSubscribers)
}

func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	m, err := newClient(*server).Metrics(context.Background())
	if err != nil {
		return err
	}
	printJSON(m)
	return nil
}

func runHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	if err := newClient(*server).Health(context.Background()); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func oneArg(fs *flag.FlagSet, cmd string) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("%s needs exactly one run id", cmd)
	}
	return fs.Arg(0), nil
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package main

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/engine"
	"repro/service"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadSpecsPrettyPrinted(t *testing.T) {
	specs, err := readSpecs(writeTemp(t, `{
  "init": {"kind": "twovalue", "n": 100},
  "rule": {"name": "median"},
  "seed": 7
}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Seed != 7 {
		t.Fatalf("bad parse: %+v", specs)
	}
	if p := specs[0].Payload.(*service.MedianSpec); p.Rule.Name != "median" {
		t.Fatalf("bad payload: %+v", p)
	}
}

func TestReadSpecsNDJSONRunRecords(t *testing.T) {
	specs, err := readSpecs(writeTemp(t,
		`{"spec":{"init":{"kind":"twovalue","n":10},"rule":{"name":"median"},"seed":1},"spec_hash":"abc","result":{"rounds":3,"reason":"consensus","winner":1,"winner_count":10,"stable_since":3,"seed":1}}
{"init":{"kind":"twovalue","n":20},"rule":{"name":"voter"},"seed":2}
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs, want 2", len(specs))
	}
	if p := specs[0].Payload.(*service.MedianSpec); p.Init.N != 10 || p.Rule.Name != "median" {
		t.Fatalf("RunRecord wrapper not unwrapped: %+v", p)
	}
	if p := specs[1].Payload.(*service.MedianSpec); p.Init.N != 20 || p.Rule.Name != "voter" {
		t.Fatalf("bare spec line mis-parsed: %+v", p)
	}
}

func TestReadSpecsErrors(t *testing.T) {
	if _, err := readSpecs(writeTemp(t, "")); err == nil {
		t.Fatal("empty file must error")
	}
	if _, err := readSpecs(writeTemp(t, "{not json")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestReadSpecsRejectsUnknownFields(t *testing.T) {
	// A typo'd field must fail loudly, not be dropped and submitted clean.
	_, err := readSpecs(writeTemp(t,
		`{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"maxrounds":500}`))
	if err == nil {
		t.Fatal("misspelled field must be rejected")
	}
}

func TestReadSpecsKindedRecords(t *testing.T) {
	// multidim, robust and gossip specs have no median payload; the
	// RunRecord wrapper must still be recognized, and bare kinded specs
	// parse through the registry codec.
	specs, err := readSpecs(writeTemp(t,
		`{"spec":{"kind":"multidim","seed":1,"init":{"kind":"distinct","n":10,"d":2}},"spec_hash":"abc","result":{"rounds":3,"reason":"consensus","winner":0,"winner_count":10,"stable_since":0,"seed":1}}
{"kind":"robust","init":{"kind":"twovalue","n":20},"loss_prob":0.1,"crashes":2}
{"kind":"gossip","init":{"kind":"twovalue","n":20},"selector":"drop-value:1"}
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if p := specs[0].Payload.(*service.MultidimSpec); specs[0].Kind != "multidim" || p.Init.N != 10 {
		t.Fatalf("kinded RunRecord wrapper not unwrapped: %+v", specs[0])
	}
	if p := specs[1].Payload.(*service.RobustSpec); specs[1].Kind != "robust" || p.Crashes != 2 {
		t.Fatalf("bare robust spec mis-parsed: %+v", specs[1])
	}
	if p := specs[2].Payload.(*service.GossipSpec); specs[2].Kind != "gossip" || p.Selector != "drop-value:1" {
		t.Fatalf("bare gossip spec mis-parsed: %+v", specs[2])
	}
}

func TestAxisFlags(t *testing.T) {
	var axes axisFlags
	if err := axes.Set("n=1e3,2e3"); err != nil {
		t.Fatal(err)
	}
	if err := axes.Set("seed=1,2,3"); err != nil {
		t.Fatal(err)
	}
	if len(axes) != 2 || axes[0].Param != "n" || len(axes[0].Values) != 2 ||
		axes[0].Values[1] != 2000 || axes[1].Param != "seed" || len(axes[1].Values) != 3 {
		t.Fatalf("bad axes: %+v", axes)
	}
	for _, bad := range []string{"", "n", "n=", "=1,2", "n=x"} {
		var a axisFlags
		if err := a.Set(bad); err == nil {
			t.Errorf("Set(%q) must error", bad)
		}
	}
}

func TestSpecFlagKinds(t *testing.T) {
	// Each kind builds a valid spec from defaults, with the family
	// payload populated and foreign fields left out.
	for _, kind := range []string{"median", "gossip", "multidim", "robust", "exact"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		sf := addSpecFlags(fs)
		if err := fs.Parse([]string{"-kind", kind, "-n", "100"}); err != nil {
			t.Fatal(err)
		}
		spec, err := sf.spec(nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: built spec invalid: %v", kind, err)
		}
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sf := addSpecFlags(fs)
	if err := fs.Parse([]string{"-kind", "warp"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestSpecFlagsRejectForeignKindFlags(t *testing.T) {
	// A flag another kind owns must error, not silently drop — e.g.
	// -loss on a median submit would otherwise run a fault-free
	// simulation while the user believes faults were injected.
	cases := [][]string{
		{"-loss", "0.1"},                         // robust flag, median kind
		{"-crashes", "5"},                        // robust flag, median kind
		{"-kind", "multidim", "-rule", "voter"},  // median flag, multidim kind
		{"-kind", "robust", "-d", "3"},           // multidim flag, robust kind
		{"-kind", "robust", "-engine", "gossip"}, // median flag, robust kind
		{"-kind", "multidim", "-mode", "silent"}, // robust flag, multidim kind
	}
	for _, args := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		sf := addSpecFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := sf.spec(nil); err == nil {
			t.Errorf("args %v must be rejected", args)
		}
	}
	// Flags the kind owns (and shared flags) still pass.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sf := addSpecFlags(fs)
	if err := fs.Parse([]string{"-kind", "multidim", "-adversary", "noise", "-t", "2", "-n", "50"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.spec(nil); err != nil {
		t.Fatalf("multidim-owned flags rejected: %v", err)
	}
}

func TestGossipFlags(t *testing.T) {
	// The gossip kind's flag surface follows its descriptor: selector and
	// cap-factor are gossip-owned, median's engine flag is rejected.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sf := addSpecFlags(fs)
	if err := fs.Parse([]string{"-kind", "gossip", "-n", "100", "-selector", "drop-value:2", "-cap-factor", "0.5", "-rule", "median"}); err != nil {
		t.Fatal(err)
	}
	spec, err := sf.spec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("gossip flag spec invalid: %v", err)
	}
	p := spec.Payload.(*service.GossipSpec)
	if p.Selector != "drop-value:2" || p.CapFactor != 0.5 {
		t.Fatalf("gossip flags not applied: %+v", p)
	}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	sf = addSpecFlags(fs)
	if err := fs.Parse([]string{"-kind", "gossip", "-engine", "ball"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("-engine must be rejected for kind gossip")
	}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	sf = addSpecFlags(fs)
	if err := fs.Parse([]string{"-selector", "fair"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("-selector must be rejected for kind median")
	}
}

func TestExactFlags(t *testing.T) {
	// The exact kind's flag surface: -n/-init/-start map onto its bare
	// descriptor parameters, everything simulation-specific is foreign.
	sf := parseSpecFlags(t, "-kind", "exact", "-n", "60", "-start", "20")
	spec, err := sf.spec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("exact flag spec invalid: %v", err)
	}
	p := spec.Payload.(*service.ExactSpec)
	if p.N != 60 || p.Start != 20 {
		t.Fatalf("exact flags not applied: %+v", p)
	}
	// -start belongs to the exact kind only.
	sf = parseSpecFlags(t, "-start", "20")
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("-start must be rejected for kind median")
	}
	// Values are validated against the exact descriptor's bare params:
	// -init against its enum, -n against its O(n³) bound.
	sf = parseSpecFlags(t, "-kind", "exact", "-init", "gaussian")
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("-init gaussian must be rejected for kind exact")
	}
	sf = parseSpecFlags(t, "-kind", "exact", "-n", "5000")
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("-n above the exact kind's bound must be rejected")
	}
	// Simulation flags stay foreign.
	sf = parseSpecFlags(t, "-kind", "exact", "-rule", "voter")
	if _, err := sf.spec(nil); err == nil {
		t.Fatal("-rule must be rejected for kind exact")
	}
}

// parseSpecFlags builds a specFlags over freshly parsed args.
func parseSpecFlags(t *testing.T, args ...string) *specFlags {
	t.Helper()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	sf := addSpecFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf
}

func TestFlagValueValidationLocal(t *testing.T) {
	// With no reachable server, flag values are validated against the
	// local registry's descriptors: enum and bound violations surface as
	// descriptor-sourced client errors, never as a server 400.
	bad := []struct {
		args []string
		want string // substring the error must carry
	}{
		{[]string{"-kind", "multidim", "-engine", "warp"}, "enum"},
		{[]string{"-kind", "multidim", "-d", "0"}, "minimum"},
		{[]string{"-kind", "multidim", "-n", "0"}, "minimum"},
		{[]string{"-kind", "multidim", "-init", "twovalue"}, "enum"}, // scalar init kind on multidim
		{[]string{"-kind", "robust", "-mode", "quantum"}, "enum"},
		{[]string{"-kind", "robust", "-loss", "1.5"}, "maximum"},
		{[]string{"-kind", "robust", "-crashes", "-1"}, "minimum"},
		{[]string{"-engine", "warp"}, "enum"}, // median kind default
		{[]string{"-timing", "sideways"}, "enum"},
	}
	for _, c := range bad {
		sf := parseSpecFlags(t, c.args...)
		_, err := sf.spec(nil)
		if err == nil {
			t.Errorf("args %v must be rejected", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) || !strings.Contains(err.Error(), "descriptor") {
			t.Errorf("args %v: error %q must name the descriptor and the %s violation", c.args, err, c.want)
		}
	}
	// Legal values (including the "none" adversary spelling and template
	// selectors with no enum) still pass.
	good := [][]string{
		{"-kind", "multidim", "-engine", "count", "-d", "2", "-n", "64"},
		{"-kind", "multidim", "-engine", "auto"},
		{"-adversary", "none"},
		{"-kind", "gossip", "-selector", "drop-value:3"},
		{"-kind", "robust", "-mode", "silent", "-loss", "0.5"},
	}
	for _, args := range good {
		sf := parseSpecFlags(t, args...)
		if _, err := sf.spec(nil); err != nil {
			t.Errorf("args %v: unexpected error %v", args, err)
		}
	}
}

func TestMultidimEngineFlagApplied(t *testing.T) {
	// The validated -engine value must actually land in the payload: a
	// dropped field would silently submit engine=auto (and, since the
	// engine is part of the cache key, alias distinct runs in the cache).
	sf := parseSpecFlags(t, "-kind", "multidim", "-engine", "count", "-n", "64")
	spec, err := sf.spec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := spec.Payload.(*service.MultidimSpec); p.Engine != "count" {
		t.Fatalf("-engine count not applied to the multidim payload: %+v", p)
	}
}

// engineDoc serves a /v1/engines document and counts run submissions, so
// tests can prove validation happened client-side against the *server's*
// descriptors.
func engineDoc(t *testing.T, doctor func([]engine.Descriptor) []engine.Descriptor) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var submits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/engines", func(w http.ResponseWriter, r *http.Request) {
		ds := engine.Descriptors()
		if doctor != nil {
			ds = doctor(ds)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"engines": ds})
	})
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"r-1","status":"done"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &submits
}

func TestFlagValueValidationUsesServerDescriptors(t *testing.T) {
	// The server's /v1/engines document, not the local registry, is the
	// validation source when the server answers: a multidim descriptor
	// doctored to drop "count" from the engine enum must reject -engine
	// count even though the local registry allows it — and the bad submit
	// must never reach the server.
	ts, submits := engineDoc(t, func(ds []engine.Descriptor) []engine.Descriptor {
		for i := range ds {
			if ds[i].Kind != "multidim" {
				continue
			}
			for j := range ds[i].Params {
				if ds[i].Params[j].Name == "engine" {
					ds[i].Params[j].Enum = []string{"auto", "process"}
				}
			}
		}
		return ds
	})
	err := runSubmit([]string{"-server", ts.URL, "-kind", "multidim", "-engine", "count"})
	if err == nil || !strings.Contains(err.Error(), "enum") || !strings.Contains(err.Error(), "descriptor") {
		t.Fatalf("doctored server enum not enforced: %v", err)
	}
	if n := submits.Load(); n != 0 {
		t.Fatalf("invalid spec reached the server (%d submits)", n)
	}
	// A value the server's document allows goes through to submission.
	if err := runSubmit([]string{"-server", ts.URL, "-kind", "multidim", "-engine", "process"}); err != nil {
		t.Fatalf("valid submit failed: %v", err)
	}
	if n := submits.Load(); n != 1 {
		t.Fatalf("valid spec not submitted (%d submits)", n)
	}
}

func TestFlagValueValidationServerUnknownKind(t *testing.T) {
	// A kind the server does not register is rejected with a pointer at
	// the discovery document, even when the local registry knows it.
	ts, submits := engineDoc(t, func(ds []engine.Descriptor) []engine.Descriptor {
		out := ds[:0]
		for _, d := range ds {
			if d.Kind != "multidim" {
				out = append(out, d)
			}
		}
		return out
	})
	err := runSubmit([]string{"-server", ts.URL, "-kind", "multidim"})
	if err == nil || !strings.Contains(err.Error(), "not registered on the server") {
		t.Fatalf("server-unknown kind: %v", err)
	}
	if n := submits.Load(); n != 0 {
		t.Fatalf("unknown-kind spec reached the server (%d submits)", n)
	}
}

func TestBuildFlagSpecOmitsIrrelevantFields(t *testing.T) {
	// Mirrors the hash-stability requirement: kinds that ignore m/seed
	// must not embed them (see runSubmit). Tested via the sweep-side
	// equivalent initSpec builder in cmd/sweep; here we just pin the
	// decodeSpec fallback ordering.
	spec, err := decodeSpec([]byte(`{"init":{"kind":"twovalue","n":5},"rule":{"name":"median"}}`))
	if err != nil {
		t.Fatalf("decodeSpec: %v", err)
	}
	if p := spec.Payload.(*service.MedianSpec); p.Init.N != 5 {
		t.Fatalf("decodeSpec: %+v", p)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadSpecsPrettyPrinted(t *testing.T) {
	specs, err := readSpecs(writeTemp(t, `{
  "init": {"kind": "twovalue", "n": 100},
  "rule": {"name": "median"},
  "seed": 7
}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Rule.Name != "median" || specs[0].Seed != 7 {
		t.Fatalf("bad parse: %+v", specs)
	}
}

func TestReadSpecsNDJSONRunRecords(t *testing.T) {
	specs, err := readSpecs(writeTemp(t,
		`{"spec":{"init":{"kind":"twovalue","n":10},"rule":{"name":"median"},"seed":1},"spec_hash":"abc","result":{"rounds":3,"reason":"consensus","winner":1,"winner_count":10,"stable_since":3,"seed":1}}
{"init":{"kind":"twovalue","n":20},"rule":{"name":"voter"},"seed":2}
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs, want 2", len(specs))
	}
	if specs[0].Init.N != 10 || specs[0].Rule.Name != "median" {
		t.Fatalf("RunRecord wrapper not unwrapped: %+v", specs[0])
	}
	if specs[1].Init.N != 20 || specs[1].Rule.Name != "voter" {
		t.Fatalf("bare spec line mis-parsed: %+v", specs[1])
	}
}

func TestReadSpecsErrors(t *testing.T) {
	if _, err := readSpecs(writeTemp(t, "")); err == nil {
		t.Fatal("empty file must error")
	}
	if _, err := readSpecs(writeTemp(t, "{not json")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestReadSpecsRejectsUnknownFields(t *testing.T) {
	// A typo'd field must fail loudly, not be dropped and submitted clean.
	_, err := readSpecs(writeTemp(t,
		`{"init":{"kind":"twovalue","n":100},"rule":{"name":"median"},"maxrounds":500}`))
	if err == nil {
		t.Fatal("misspelled field must be rejected")
	}
}

func TestBuildFlagSpecOmitsIrrelevantFields(t *testing.T) {
	// Mirrors the hash-stability requirement: kinds that ignore m/seed
	// must not embed them (see runSubmit). Tested via the sweep-side
	// equivalent initSpec builder in cmd/sweep; here we just pin the
	// decodeSpec fallback ordering.
	spec, err := decodeSpec([]byte(`{"init":{"kind":"twovalue","n":5},"rule":{"name":"median"}}`))
	if err != nil || spec.Init.N != 5 {
		t.Fatalf("decodeSpec: %+v %v", spec, err)
	}
}

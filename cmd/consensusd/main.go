// Command consensusd is the simulation daemon: it serves the service
// package's HTTP JSON API so runs can be submitted, cached, streamed and
// monitored over the network.
//
//	consensusd -addr :8645 -service-workers 8
//	consensusd -addr :8645 -auth-token s3cret   # 401 on unauthenticated writes
//	consensusd -addr :8645 -store /var/lib/consensusd/runs.store
//
// With -store, completed runs are committed to the file-backed store
// (package service/store) and reloaded on startup, so a restarted daemon
// serves previously computed results as cache hits without re-running
// them.
//
// Endpoints (see package service for details):
//
//	POST   /v1/runs             submit a run spec (any registered kind:
//	                            median, gossip, multidim, robust)
//	GET    /v1/runs             list runs
//	GET    /v1/runs/{id}        run status + result
//	DELETE /v1/runs/{id}        cancel a run (mid-simulation, any engine)
//	GET    /v1/runs/{id}/stream per-round NDJSON records
//	POST   /v1/batches          expand + run a grid (cartesian + zipped
//	                            axes, derived fields), NDJSON per cell
//	GET    /v1/engines          registered spec kinds + param schemas
//	GET    /v1/healthz          liveness
//	GET    /v1/metrics          job/cache/worker/batch counters (JSON, or
//	                            Prometheus text via Accept negotiation)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/service"
)

func main() {
	addr := flag.String("addr", ":8645", "listen address")
	workers := flag.Int("service-workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 256, "max queued jobs before submissions are rejected")
	cacheSize := flag.Int("cache", 1024, "result cache size in entries")
	maxRecords := flag.Int("max-records", 1<<16, "max stored round records per job")
	maxJobs := flag.Int("max-jobs", 4096, "max in-memory job history before terminal jobs are evicted")
	maxN := flag.Int64("max-n", 1<<27, "max population a submitted spec may materialize")
	maxBatchCells := flag.Int("max-batch-cells", 4096, "max cells one batch request may expand to")
	maxBody := flag.Int64("max-body", 1<<20, "max HTTP request body in bytes (413 beyond)")
	submitRate := flag.Float64("submit-rate", 0, "submit requests per second admitted (0 = unlimited; 429 beyond)")
	submitBurst := flag.Int("submit-burst", 0, "submit rate limiter burst (0 = default)")
	authToken := flag.String("auth-token", "", "bearer token required on mutating endpoints ('' = no auth)")
	storePath := flag.String("store", "", "path of the persistent job/result store; completed runs survive restarts ('' = in-memory only)")
	flag.Parse()

	svc, err := service.New(service.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		MaxRecords:    *maxRecords,
		MaxJobs:       *maxJobs,
		MaxN:          *maxN,
		MaxBatchCells: *maxBatchCells,
		MaxBodyBytes:  *maxBody,
		SubmitRate:    *submitRate,
		SubmitBurst:   *submitBurst,
		AuthToken:     *authToken,
		StorePath:     *storePath,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "consensusd:", err)
		os.Exit(1)
	}
	if *storePath != "" {
		m := svc.Metrics()
		fmt.Fprintf(os.Stderr, "consensusd: store %s: %d records reloaded (%d dropped, %d compactions)\n",
			*storePath, m.StoreRecordsLoaded, m.StoreRecordsDropped, m.StoreCompactions)
	}
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "consensusd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "consensusd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "consensusd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = server.Shutdown(shutdownCtx)
	svc.Close()
}

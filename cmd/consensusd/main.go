// Command consensusd is the simulation daemon: it serves the service
// package's HTTP JSON API so runs can be submitted, cached, streamed and
// monitored over the network.
//
//	consensusd -addr :8645 -service-workers 8
//	consensusd -addr :8645 -auth-token s3cret   # 401 on unauthenticated writes
//	consensusd -addr :8645 -store /var/lib/consensusd/runs.store
//	consensusd -store runs.store -store-max-bytes 1073741824 -store-max-age 2160h
//	consensusd -auth-token s3cret -quota-file quotas.json
//	consensusd -tls-cert server.crt -tls-key server.key
//
// With -store, completed runs are committed to the file-backed store
// (package service/store) and reloaded on startup, so a restarted daemon
// serves previously computed results as cache hits without re-running
// them. -store-max-bytes and -store-max-age bound the store's retention
// for sustained traffic: the newest runs within the byte budget and age
// bound are kept, older ones are garbage-collected (at open and by
// background compaction) and evicted from the cache in step. -quota-file
// loads per-token submit quotas (JSON: token → {"rate": r, "burst": b});
// quota tokens authenticate like -auth-token but each meters its own
// bucket. -tls-cert/-tls-key serve the API over TLS.
//
// Endpoints (see package service for details):
//
//	POST   /v1/runs             submit a run spec (any registered kind:
//	                            median, gossip, multidim, robust)
//	GET    /v1/runs             list runs
//	GET    /v1/runs/{id}        run status + result
//	DELETE /v1/runs/{id}        cancel a run (mid-simulation, any engine)
//	GET    /v1/runs/{id}/stream per-round NDJSON records
//	POST   /v1/batches          expand + run a grid (cartesian + zipped
//	                            axes, derived fields), NDJSON per cell
//	GET    /v1/engines          registered spec kinds + param schemas
//	GET    /v1/events           live job/store lifecycle events (NDJSON)
//	GET    /v1/healthz          liveness
//	GET    /v1/metrics          job/cache/worker/batch counters plus
//	                            latency histograms (JSON, or Prometheus
//	                            text via Accept negotiation)
//
// With -debug-addr, a second listener off the public mux serves
// net/http/pprof under /debug/pprof/ and the Prometheus text exposition
// under /debug/metrics, so profiling and scraping can be firewalled
// separately from the API. Every response carries an X-Request-Id
// (propagated or generated) that also appears in the structured access
// log on stderr and on job events.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/service"
)

func main() {
	addr := flag.String("addr", ":8645", "listen address")
	workers := flag.Int("service-workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 256, "max queued jobs before submissions are rejected")
	cacheSize := flag.Int("cache", 1024, "result cache size in entries")
	maxRecords := flag.Int("max-records", 1<<16, "max stored round records per job")
	maxJobs := flag.Int("max-jobs", 4096, "max in-memory job history before terminal jobs are evicted")
	maxN := flag.Int64("max-n", 1<<27, "max population a submitted spec may materialize")
	maxBatchCells := flag.Int("max-batch-cells", 4096, "max cells one batch request may expand to")
	maxBody := flag.Int64("max-body", 1<<20, "max HTTP request body in bytes (413 beyond)")
	submitRate := flag.Float64("submit-rate", 0, "submit requests per second admitted (0 = unlimited; 429 beyond)")
	submitBurst := flag.Int("submit-burst", 0, "submit rate limiter burst (0 = default)")
	authToken := flag.String("auth-token", "", "bearer token required on mutating endpoints ('' = no auth)")
	quotaFile := flag.String("quota-file", "", "JSON file mapping bearer tokens to per-token submit quotas ('' = disabled)")
	storePath := flag.String("store", "", "path of the persistent job/result store; completed runs survive restarts ('' = in-memory only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "store retention byte budget: newest runs that fit are kept (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "store retention age bound: runs finished longer ago are dropped (0 = unbounded)")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file; with -tls-key, serve the API over TLS ('' = plain HTTP)")
	tlsKey := flag.String("tls-key", "", "TLS private key file (paired with -tls-cert)")
	debugAddr := flag.String("debug-addr", "", "separate debug listener serving net/http/pprof and /debug/metrics ('' = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("consensusd", buildinfo.String())
		return
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "consensusd: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "consensusd: -tls-cert and -tls-key must be set together")
		os.Exit(2)
	}
	var quotas map[string]service.Quota
	if *quotaFile != "" {
		var err error
		if quotas, err = service.LoadQuotaFile(*quotaFile); err != nil {
			logger.Error("loading quota file failed", "error", err)
			os.Exit(1)
		}
	}

	svc, err := service.New(service.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		MaxRecords:    *maxRecords,
		MaxJobs:       *maxJobs,
		MaxN:          *maxN,
		MaxBatchCells: *maxBatchCells,
		MaxBodyBytes:  *maxBody,
		SubmitRate:    *submitRate,
		SubmitBurst:   *submitBurst,
		AuthToken:     *authToken,
		Quotas:        quotas,
		StorePath:     *storePath,
		StoreMaxBytes: *storeMaxBytes,
		StoreMaxAge:   *storeMaxAge,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	if *storePath != "" {
		m := svc.Metrics()
		logger.Info("store reloaded", "path", *storePath,
			"records", m.StoreRecordsLoaded, "dropped", m.StoreRecordsDropped,
			"compactions", m.StoreCompactions)
	}
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	// The debug listener is deliberately a separate mux on a separate
	// port: pprof handlers and the raw metric exposition never appear on
	// the public API surface.
	var debugServer *http.Server
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			svc.WriteMetricsText(w)
		})
		debugServer = &http.Server{Addr: *debugAddr, Handler: dbg}
		go func() {
			if err := debugServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		logger.Info("debug listener started", "addr", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			errc <- server.ListenAndServeTLS(*tlsCert, *tlsKey)
		} else {
			errc <- server.ListenAndServe()
		}
	}()
	logger.Info("listening", "addr", *addr, "version", buildinfo.Version, "tls", *tlsCert != "")

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = server.Shutdown(shutdownCtx)
	if debugServer != nil {
		_ = debugServer.Shutdown(shutdownCtx)
	}
	svc.Close()
}

// Root benchmark harness: one benchmark per paper table row, figure,
// theorem and lemma experiment (DESIGN.md §5, IDs E1–E17), plus ablation
// benchmarks for the architectural decisions of DESIGN.md §6.
//
// Two kinds of benchmarks live here:
//
//   - Series benchmarks (BenchmarkFig1_*, BenchmarkThm*, BenchmarkLemma*)
//     run one simulation of the experiment's workload per iteration and
//     report the convergence round count via b.ReportMetric("rounds/op"),
//     regenerating the paper's series: run with -bench and compare the
//     rounds/op column across the n (or m) sub-benchmarks to read off the
//     growth shape the paper claims.
//   - Report benchmarks (BenchmarkReport_*) time the full papereval
//     experiment (sweep + fit + verdict) at quick scale, exercising the
//     exact code path cmd/experiments uses for EXPERIMENTS.md.
//
// Absolute times are machine-dependent; the shape of the rounds/op series
// is the reproduction target.
package repro_test

import (
	"fmt"
	"math"
	"testing"

	"repro/adversary"
	"repro/consensus"
	"repro/internal/analysis"
	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/markov"
	"repro/internal/papereval"
	"repro/internal/rng"
	"repro/multidim"
	"repro/robust"
	"repro/rules"
)

// benchScale is the scale report benchmarks run at: one size smaller than
// papereval.Quick so `go test -bench=.` stays laptop-friendly.
var benchScale = papereval.Scale{
	Ns:        []float64{1e3, 1e4},
	Ms:        []float64{2, 4, 8},
	Reps:      3,
	MaxRounds: 20000,
	Workers:   2,
}

// runSeries executes cfg once per iteration and reports the mean round
// count as the "rounds" metric.
func runSeries(b *testing.B, mk func(seed uint64) consensus.Config) {
	b.Helper()
	var rounds, winners int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := consensus.Run(mk(uint64(i + 1)))
		rounds += int64(res.Rounds)
		winners += res.WinnerCount
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(winners)/float64(b.N), "agree/op")
}

// --- E1: Figure 1 row 1 / Theorem 10 — worst-case two bins ----------------

func BenchmarkFig1_TwoBinsNoAdversary(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values: consensus.TwoValue(n, n/2, 1, 2),
					Rule:   rules.Median{},
					Seed:   seed,
					Engine: consensus.EngineTwoBin,
				}
			})
		})
	}
}

func BenchmarkFig1_TwoBinsWithAdversary(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values: consensus.TwoValue(n, n/2, 1, 2),
					Rule:   rules.Median{},
					// 0.5·√n: the theorem's constant (see E1/E5 notes).
					Adversary:   adversary.NewBalancer(adversary.Sqrt(0.5), 1, 2),
					AlmostSlack: 3 * int(math.Sqrt(float64(n))),
					Seed:        seed,
					Engine:      consensus.EngineTwoBin,
				}
			})
		})
	}
}

// --- E2: Figure 1 row 2 / Theorems 1 & 3 — worst-case m bins --------------

func BenchmarkFig1_MBinsNoAdversary(b *testing.B) {
	// All-distinct start (m = n), the finest configuration: Theorem 1's
	// O(log n) claim is read off the rounds/op growth across this sweep.
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values: consensus.AllDistinct(n),
					Rule:   rules.Median{},
					Seed:   seed,
					Engine: consensus.EngineCount,
				}
			})
		})
	}
}

func BenchmarkFig1_MBinsWithAdversary(b *testing.B) {
	// m sweep at fixed n with a √n median-splitter: Theorem 3's
	// O(log m log log n + log n).
	const n = 100_000
	for _, m := range []int{2, 8, 64, 512} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values:      consensus.EvenBlocks(n, m),
					Rule:        rules.Median{},
					Adversary:   adversary.NewMedianSplitter(adversary.Sqrt(1)),
					AlmostSlack: 3 * int(math.Sqrt(float64(n))),
					Seed:        seed,
					Engine:      consensus.EngineCount,
				}
			})
		})
	}
}

// --- E3: Figure 1 row 3 / Theorem 21 & Corollary 22 — average case --------

func BenchmarkFig1_AvgCase(b *testing.B) {
	// The parity effect: odd m converges in O(log m + log log n), even m
	// needs Θ(log n). Compare rounds/op between the odd/even pairs.
	const n = 100_000
	for _, m := range []int{15, 16, 63, 64} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values: consensus.UniformRandom(n, m, seed),
					Rule:   rules.Median{},
					Seed:   seed,
					Engine: consensus.EngineCount,
				}
			})
		})
	}
}

// --- E4: Theorem 2 — constant number of values + √n adversary -------------

func BenchmarkThm2_ConstValues(b *testing.B) {
	const n = 100_000
	for _, m := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values:      consensus.EvenBlocks(n, m),
					Rule:        rules.Median{},
					Adversary:   adversary.NewMedianSplitter(adversary.Sqrt(1)),
					AlmostSlack: 3 * int(math.Sqrt(float64(n))),
					Seed:        seed,
					Engine:      consensus.EngineCount,
				}
			})
		})
	}
}

// --- E5: tightness of T — an Ω̃(√n) balancer stalls the median rule -------

func BenchmarkLowerBound_Balancer(b *testing.B) {
	// With budget c·√(n·ln n) the balancer keeps two equal bins level for
	// the whole round cap; rounds/op pegging at maxRounds is the measured
	// stall (contrast with BenchmarkFig1_TwoBinsWithAdversary where the
	// √n budget loses).
	const n, maxRounds = 10_000, 2_000
	runSeries(b, func(seed uint64) consensus.Config {
		return consensus.Config{
			Values:      consensus.TwoValue(n, n/2, 1, 2),
			Rule:        rules.Median{},
			Adversary:   adversary.NewBalancer(adversary.SqrtLog(2), 1, 2),
			AlmostSlack: 3 * int(math.Sqrt(float64(n))),
			MaxRounds:   maxRounds,
			Seed:        seed,
			Engine:      consensus.EngineTwoBin,
		}
	})
}

// --- E6: the minimum rule is non-stabilizing; the median rule is not ------

func BenchmarkMinimumRuleAttack(b *testing.B) {
	const n, maxRounds = 10_000, 2_000
	for _, tc := range []struct {
		name string
		rule consensus.Rule
	}{{"minimum", rules.Minimum{}}, {"median", rules.Median{}}} {
		b.Run(tc.name, func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values:      consensus.TwoValue(n, 50, 1, 2),
					Rule:        tc.rule,
					Adversary:   adversary.NewReviver(1, 64),
					AlmostSlack: 3 * int(math.Sqrt(float64(n))),
					MaxRounds:   maxRounds,
					Seed:        seed,
					Engine:      consensus.EngineBall,
				}
			})
		})
	}
}

// --- E7: validity — the mean rule leaves the initial value set ------------

func BenchmarkMeanVsMedianValidity(b *testing.B) {
	const n = 10_000
	initial := make(map[consensus.Value]bool)
	values := consensus.Blocks([]int64{n / 4, n / 4, n / 4, n / 4})
	for _, v := range values {
		initial[v] = true
	}
	for _, tc := range []struct {
		name string
		rule consensus.Rule
	}{{"mean", rules.Mean{}}, {"median", rules.Median{}}} {
		b.Run(tc.name, func(b *testing.B) {
			valid := 0
			for i := 0; i < b.N; i++ {
				vals := make([]consensus.Value, len(values))
				copy(vals, values)
				res := consensus.Run(consensus.Config{
					Values: vals,
					Rule:   tc.rule,
					Seed:   uint64(i + 1),
					Engine: consensus.EngineBall,
				})
				if initial[res.Winner] {
					valid++
				}
			}
			b.ReportMetric(float64(valid)/float64(b.N), "validity/op")
		})
	}
}

// --- E8: Equation 1 — gravity g(i) = 6(n−i)i/n² + O(1/n) ------------------

func BenchmarkGravity(b *testing.B) {
	const n = 1_000_000
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, pos := range []int64{1, n / 4, n / 2, 3 * n / 4, n} {
			d := math.Abs(analysis.GravityExact(n, pos) - analysis.GravityApprox(n, pos))
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst*float64(n), "n*err/op") // O(1/n) ⇒ n·err = O(1)
}

// --- E9: Lemma 15 — Pr[Δ_{t+1} ≥ (4/3)Δ_t] ≥ 1 − exp(−Θ(Δ²/n)) ------------

func BenchmarkLemma15Drift(b *testing.B) {
	const n = 1_000_000
	delta := int64(4 * math.Sqrt(n))
	g := rng.NewXoshiro256(99)
	hits := 0
	for i := 0; i < b.N; i++ {
		e := core.NewTwoBinEngine(n, n/2-delta, 1, 2, nil, g.Uint64(), core.Options{})
		e.Step()
		l, r := e.Counts()
		if (r-l)/2 >= delta*4/3 {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "drift-hit/op")
}

// --- E10: Lemma 14 — CLT kick-start from a perfectly balanced state -------

func BenchmarkLemma14CLT(b *testing.B) {
	const n = 1_000_000
	c := 0.25
	g := rng.NewXoshiro256(77)
	hits := 0
	for i := 0; i < b.N; i++ {
		e := core.NewTwoBinEngine(n, n/2, 1, 2, nil, g.Uint64(), core.Options{})
		e.Step()
		l, r := e.Counts()
		psi := float64(r-l) / 2
		if psi >= c*math.Sqrt(n) {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "kick-hit/op")
}

// --- E11: Theorem 20 — phase halving under an adversary -------------------

func BenchmarkThm20Phases(b *testing.B) {
	const n, m = 100_000, 64
	for i := 0; i < b.N; i++ {
		tracker := analysis.NewPhaseTracker(m, n, 1)
		cfg := consensus.Config{
			Values:      consensus.EvenBlocks(n, m),
			Rule:        rules.Median{},
			Adversary:   adversary.NewMedianSplitter(adversary.Sqrt(1)),
			AlmostSlack: 3 * int(math.Sqrt(float64(n))),
			Seed:        uint64(i + 1),
			Engine:      consensus.EngineCount,
			Observer: func(round int, vals []consensus.Value, counts []int64) {
				full := make([]int64, m)
				for k, v := range vals {
					if v >= 1 && int(v) <= m {
						full[v-1] = counts[k]
					}
				}
				tracker.Observe(full)
			},
		}
		res := consensus.Run(cfg)
		b.ReportMetric(float64(res.Rounds), "rounds/op")
	}
}

// --- E12: model conformance — gossip simulator vs balls-and-bins ----------

func BenchmarkGossipConformance(b *testing.B) {
	const n = 2_048
	for _, engine := range []struct {
		name string
		e    consensus.Engine
	}{{"gossip", consensus.EngineGossip}, {"ball", consensus.EngineBall}} {
		b.Run(engine.name, func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values: consensus.UniformRandom(n, 8, seed),
					Rule:   rules.Median{},
					Seed:   seed,
					Engine: engine.e,
				}
			})
		})
	}
}

// --- E13: Lemma 17 — fineness coupling under shared randomness ------------

func BenchmarkLemma17Coupling(b *testing.B) {
	const n = 4_096
	fine := assign.Config(consensus.AllDistinct(n))
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		fe := core.NewBallEngine(fine, rules.Median{}, nil, seed, core.Options{})
		rf := fe.Run()
		b.ReportMetric(float64(rf.Rounds), "fine-rounds/op")
	}
}

// --- E14: Lemmas 8/9 — absorbing-chain hitting times -----------------------

func BenchmarkMarkovHitting(b *testing.B) {
	const m = 1 << 20
	g := rng.NewXoshiro256(4242)
	c := markov.NewGrowthChain(1.5, 0.4, 0.6, m)
	var total int64
	for i := 0; i < b.N; i++ {
		steps := markov.HittingTime(c, 0, m, 64*20, g)
		total += int64(steps)
	}
	b.ReportMetric(float64(total)/float64(b.N), "steps/op")
}

// --- E15: Lemma 11 — Δ0 ≥ cn collapses in O(log log n) rounds --------------

func BenchmarkLemma11LogLog(b *testing.B) {
	for _, n := range []int64{1e6, 1e9, 1e12} {
		b.Run(fmt.Sprintf("n=%g", float64(n)), func(b *testing.B) {
			g := rng.NewXoshiro256(5511)
			var rounds int64
			for i := 0; i < b.N; i++ {
				e := core.NewTwoBinEngine(n, n/4, 1, 2, nil, g.Uint64(), core.Options{})
				res := e.Run()
				rounds += int64(res.Rounds)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// BenchmarkAblation_KChoices: convergence speed vs message cost for the
// k-choices median generalisation (E16).
func BenchmarkAblation_KChoices(b *testing.B) {
	const n = 50_000
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("choices=%d", 2*k), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values: consensus.AllDistinct(n),
					Rule:   rules.NewKMedian(k),
					Seed:   seed,
					Engine: consensus.EngineCount,
				}
			})
		})
	}
}

// BenchmarkAblation_InPlace compares synchronous double-buffered updates
// (the paper's model) with the asynchronous in-place variant.
func BenchmarkAblation_InPlace(b *testing.B) {
	const n = 50_000
	cfg := assign.Config(consensus.AllDistinct(n))
	for _, tc := range []struct {
		name    string
		inPlace bool
	}{{"synchronous", false}, {"in-place", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				e := core.NewBallEngine(cfg, rules.Median{}, nil, uint64(i+1),
					core.Options{InPlace: tc.inPlace})
				rounds += int64(e.Run().Rounds)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkAblation_Engines measures per-round throughput of the three
// count-compatible engines on the same workload.
func BenchmarkAblation_Engines(b *testing.B) {
	const n = 100_000
	for _, tc := range []struct {
		name   string
		engine consensus.Engine
		values []consensus.Value
	}{
		{"ball", consensus.EngineBall, consensus.TwoValue(n, n/3, 1, 2)},
		{"count", consensus.EngineCount, consensus.TwoValue(n, n/3, 1, 2)},
		{"twobin", consensus.EngineTwoBin, consensus.TwoValue(n, n/3, 1, 2)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				vals := make([]consensus.Value, len(tc.values))
				copy(vals, tc.values)
				return consensus.Config{
					Values: vals,
					Rule:   rules.Median{},
					Seed:   seed,
					Engine: tc.engine,
				}
			})
		})
	}
}

// BenchmarkAblation_Workers measures the sharded parallel ball engine.
func BenchmarkAblation_Workers(b *testing.B) {
	const n = 200_000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runSeries(b, func(seed uint64) consensus.Config {
				return consensus.Config{
					Values:  consensus.AllDistinct(n),
					Rule:    rules.Median{},
					Seed:    seed,
					Engine:  consensus.EngineBall,
					Workers: w,
				}
			})
		})
	}
}

// BenchmarkRuleUpdate measures raw per-update cost of each rule.
func BenchmarkRuleUpdate(b *testing.B) {
	sampled := []consensus.Value{7, 3}
	for _, r := range []consensus.Rule{
		rules.Median{}, rules.Majority{}, rules.Minimum{}, rules.Mean{},
		rules.NewKMedian(2), rules.Voter{},
	} {
		var buf []consensus.Value
		if r.Samples() > 2 {
			buf = []consensus.Value{7, 3, 9, 1}
		} else {
			buf = sampled[:r.Samples()]
		}
		b.Run(r.Name(), func(b *testing.B) {
			var v consensus.Value
			for i := 0; i < b.N; i++ {
				v = r.Update(5, buf)
			}
			_ = v
		})
	}
}

// --- Report benchmarks: the exact EXPERIMENTS.md code paths ---------------

func BenchmarkReport_E1TwoBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		papereval.E1Fig1TwoBins(benchScale)
	}
}

func BenchmarkReport_E3AvgCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		papereval.E3Fig1AvgCase(benchScale)
	}
}

func BenchmarkReport_E8Gravity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		papereval.E8Gravity(benchScale)
	}
}

// --- E18: Section 6 future work — d-dimensional median dynamics -----------

func BenchmarkMultidimFutureWork(b *testing.B) {
	const n = 10_000
	for _, d := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var rounds, fabricated int64
			for i := 0; i < b.N; i++ {
				e := multidim.NewEngine(multidim.DistinctPoints(n, d), nil,
					uint64(i+1), multidim.Options{})
				res := e.Run()
				rounds += int64(res.Rounds)
				if !res.TupleValid {
					fabricated++
				}
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(fabricated)/float64(b.N), "fabricated/op")
		})
	}
}

// BenchmarkMultidimEngines compares per-run cost of the per-process and
// count-level multidim engines on a small-support workload (the count
// engine's home regime: few distinct tuples, large n). The count engine's
// win here is memory (O(k·d) vs O(n·d) state), so wall-clock parity at
// equal n is the expectation; the CI bench job archives this output to
// track the trajectory.
func BenchmarkMultidimEngines(b *testing.B) {
	const n, d, m = 20_000, 2, 4
	pts := multidim.RandomPoints(n, d, m, 1)
	b.Run("process", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			res := multidim.NewEngine(pts, nil, uint64(i+1), multidim.Options{}).Run()
			rounds += int64(res.Rounds)
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})
	b.Run("count", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			res := multidim.NewCountEngine(pts, nil, uint64(i+1), multidim.CountOptions{}).Run()
			rounds += int64(res.Rounds)
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})
}

// --- E19: exact-chain validation benches -----------------------------------

func BenchmarkExactChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := exact.NewChain(120)
		_ = c.AbsorptionTimes()
		_ = c.WinProbabilities()
	}
}

// --- E20: Section 6 future work — robustness outside the clean model ------

func BenchmarkRobustness(b *testing.B) {
	const n = 10_000
	for _, tc := range []struct {
		name string
		opts robust.Options
	}{
		{"async", robust.Options{}},
		{"loss=30%", robust.Options{LossProb: 0.3}},
		{"crashes=sqrt(n)", robust.Options{Crashes: 100}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var pt float64
			var dissent int64
			for i := 0; i < b.N; i++ {
				res := robust.NewEngine(assign.AllDistinct(n), tc.opts, uint64(i+1)).Run()
				pt += res.ParallelTime
				dissent += int64(res.Dissenters)
			}
			b.ReportMetric(pt/float64(b.N), "ptime/op")
			b.ReportMetric(float64(dissent)/float64(b.N), "dissent/op")
		})
	}
}

// --- E21: the n ~ 10⁹ hot path — count-level init and round loops ---------

// BenchmarkMultidimInit compares materializing a multidim initial state
// per-process (O(n·d) points) against count-native (one multinomial draw
// over the m^d cells, O(k·d)): the same spec, but the count builder's cost
// is independent of n. The per-process path at n=10⁹ would allocate
// ~16 GiB and is skipped — that gap is the benchmark's finding.
func BenchmarkMultidimInit(b *testing.B) {
	for _, n := range []int{100_000, 10_000_000, 1_000_000_000} {
		spec := multidim.InitSpec{Kind: "random", N: n, D: 2, M: 4, Seed: 1}
		b.Run(fmt.Sprintf("point/n=%.0e", float64(n)), func(b *testing.B) {
			if n > 10_000_000 {
				b.Skip("per-process init at n=1e9 allocates ~16 GiB")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := multidim.BuildInit(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("count/n=%.0e", float64(n)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := multidim.BuildInitCounts(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountInit measures the count-native init builders at the
// acceptance scale n = 10⁹ for both hot paths: the scalar uniform
// distribution (one multinomial over m bins) and the multidim random cell
// distribution (one multinomial over m^d cells).
func BenchmarkCountInit(b *testing.B) {
	const n = 1_000_000_000
	b.Run("scalar-uniform", func(b *testing.B) {
		spec := consensus.InitSpec{Kind: "uniform", N: n, M: 64, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := consensus.BuildInitDist(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multidim-random", func(b *testing.B) {
		spec := multidim.InitSpec{Kind: "random", N: n, D: 3, M: 4, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := multidim.BuildInitCounts(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCountRound measures the steady-state per-round cost of the
// count engines under a noise adversary (so the chain never absorbs and
// every iteration does a full round's work). The headline is the
// allocs/op column: zero, whatever n — the round loops reuse engine-owned
// scratch (TestCountEngineStepAllocs and TestCountEngineRoundAllocs pin
// this as a regression). The scalar engine samples per ball — Θ(n) work
// per round, so it stops at 10⁷ — while the multidim engine's
// block-multinomial mode is O(k³) independent of n and runs the
// acceptance scale 10⁹ directly.
func BenchmarkCountRound(b *testing.B) {
	for _, n := range []int{100_000, 10_000_000} {
		b.Run(fmt.Sprintf("scalar/n=%.0e", float64(n)), func(b *testing.B) {
			d := assign.Dist{Vals: []core.Value{1, 2, 3, 4, 5}, Counts: []int64{int64(n) / 5, int64(n) / 5, int64(n) / 5, int64(n) / 5, int64(n) - 4*(int64(n)/5)}}
			eng := core.NewCountEngineDist(d, rules.Median{}, adversary.NewRandomNoise(adversary.Fixed(2)), 1, core.Options{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
	for _, n := range []int{100_000, 1_000_000_000} {
		b.Run(fmt.Sprintf("multidim/n=%.0e", float64(n)), func(b *testing.B) {
			tuples := []multidim.Point{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
			counts := []int64{int64(n) / 4, int64(n) / 4, int64(n) / 4, int64(n) - 3*(int64(n)/4)}
			eng := multidim.NewCountEngineDist(tuples, counts, &multidim.NoiseAdversary{T: 2}, 1, multidim.CountOptions{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Engine is one registered simulation family: a Descriptor that makes the
// kind self-describing over the wire (GET /v1/engines) and a factory for
// its typed spec payload.
type Engine interface {
	// Descriptor describes the kind. It is recomputed on every call so
	// enum lists that reference other registries (rules, adversaries,
	// init kinds) stay current regardless of registration order.
	Descriptor() Descriptor
	// NewPayload returns a fresh zero payload for the codec to decode
	// into. It must return a pointer to a struct.
	NewPayload() Payload
}

// entry is one registered family plus its axis set, captured once at
// Register time so the per-cell batch path never rebuilds descriptors
// (descriptor enums may be recomputed freely, but the axis set of a kind
// is static).
type entry struct {
	engine Engine
	axes   map[string]bool
}

var (
	regMu       sync.RWMutex
	registry    = map[string]entry{}
	defaultKind string
)

// Register adds a simulation family under its Descriptor().Kind, panicking
// on duplicates, empty kinds and a second default. It is meant to be called
// from package init functions.
func Register(e Engine) {
	d := e.Descriptor()
	if d.Kind == "" {
		panic("engine: Register with empty descriptor kind")
	}
	// Advertised capabilities must exist: a descriptor that declares batch
	// axes on a payload that cannot apply them would pass AxisOK and then
	// fail every cell at patch time.
	if len(d.Axes) > 0 {
		if _, ok := e.NewPayload().(AxisApplier); !ok {
			panic(fmt.Sprintf("engine: kind %q declares axes %v but its payload does not implement AxisApplier", d.Kind, d.Axes))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Kind]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of kind %q", d.Kind))
	}
	if d.Default {
		if defaultKind != "" {
			panic(fmt.Sprintf("engine: kinds %q and %q both claim to be the default", defaultKind, d.Kind))
		}
		defaultKind = d.Kind
	}
	axes := make(map[string]bool, len(d.Axes))
	for _, a := range d.Axes {
		axes[a] = true
	}
	registry[d.Kind] = entry{engine: e, axes: axes}
}

// Lookup resolves a kind name. "" resolves to the default kind (the one
// whose Descriptor sets Default), so omitted spec kinds keep working.
func Lookup(kind string) (Engine, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if kind == "" {
		kind = defaultKind
	}
	e, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("engine: unknown spec kind %q (known: %v)", kind, kindsLocked())
	}
	return e.engine, nil
}

// axisAllowed reports whether the kind registered the named batch axis,
// from the set captured at Register time — the per-cell hot path of batch
// expansion, so no descriptor is rebuilt here.
func axisAllowed(kind, param string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	if kind == "" {
		kind = defaultKind
	}
	return registry[kind].axes[param]
}

// DefaultKind returns the kind "" normalizes to ("" if none is registered).
func DefaultKind() string {
	regMu.RLock()
	defer regMu.RUnlock()
	return defaultKind
}

// Kinds returns the registered kinds in sorted order.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return kindsLocked()
}

func kindsLocked() []string {
	out := make([]string, 0, len(registry))
	for kind := range registry {
		out = append(out, kind)
	}
	sort.Strings(out)
	return out
}

// Descriptors returns every registered kind's descriptor, sorted by kind —
// the discovery document GET /v1/engines serves. The order is independent
// of registration order.
func Descriptors() []Descriptor {
	regMu.RLock()
	engines := make([]Engine, 0, len(registry))
	for _, e := range registry {
		engines = append(engines, e.engine)
	}
	regMu.RUnlock()
	out := make([]Descriptor, 0, len(engines))
	for _, e := range engines {
		out = append(out, e.Descriptor())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

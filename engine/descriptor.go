package engine

import "encoding/json"

// Descriptor is a simulation family's self-description: the document
// GET /v1/engines serves so clients can discover kinds, generate per-kind
// flags and reject unknown parameters before a spec ever reaches the
// server. Param names use dotted paths into the spec JSON ("init.kind",
// "rule.name", "adversary.budget.factor"); the envelope's shared fields
// (kind, seed, max_rounds) belong to every kind and are not repeated here.
type Descriptor struct {
	// Kind is the spec kind the family registers under.
	Kind string `json:"kind"`
	// Default marks the kind an empty "kind" field normalizes to. At most
	// one registered kind may set it.
	Default bool `json:"default,omitempty"`
	// Summary is a one-line human description.
	Summary string `json:"summary"`
	// Params is the payload's parameter schema, sorted by name.
	Params []Param `json:"params"`
	// Axes lists the parameter names the family accepts as batch sweep
	// axes (POST /v1/batches), beyond the shared "seed" and "max_rounds".
	Axes []string `json:"axes,omitempty"`
	// Example is a tiny valid spec payload for the kind (the flattened
	// fields only; no envelope), small enough to execute in milliseconds
	// and guaranteed to run for at least one round. It is served on
	// /v1/engines as a copy-paste starting point and drives the
	// conformance suite (engine/conformance), so every registered kind
	// should provide one.
	Example json.RawMessage `json:"example,omitempty"`
}

// Param documents one payload parameter.
type Param struct {
	// Name is the dotted path of the field in the spec JSON.
	Name string `json:"name"`
	// Type is the JSON type: "string", "int", "uint", "float", "bool",
	// "object" or "array".
	Type string `json:"type"`
	// Default renders the value an omitted field normalizes to ("" when
	// the zero value simply stays zero).
	Default string `json:"default,omitempty"`
	// Enum lists the legal values of closed string sets (registry names).
	Enum []string `json:"enum,omitempty"`
	// Min and Max bound numeric parameters when set.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Doc is a one-line description.
	Doc string `json:"doc,omitempty"`
}

// Bound returns a *float64 for Param.Min/Max literals.
func Bound(v float64) *float64 { return &v }

// RuleRefParams describes the shared rule-reference block ("rule.*", a
// rules.Ref) under the given Enum of rule names and default. The median
// and gossip kinds both embed it.
func RuleRefParams(names []string, def string) []Param {
	return []Param{
		{Name: "rule.name", Type: "string", Default: def, Enum: names, Doc: "update rule"},
		{Name: "rule.params", Type: "object", Doc: "rule parameters (numeric, rule-specific)"},
		{Name: "rule.params.k", Type: "int", Min: Bound(1), Doc: "k parameter of the kmedian rule"},
	}
}

// AdversaryRefParams describes the shared adversary-reference block
// ("adversary.*", an adversary.Ref) under the given Enum of strategy
// names. The median and gossip kinds both embed it.
func AdversaryRefParams(names []string) []Param {
	return []Param{
		{Name: "adversary.name", Type: "string", Enum: names, Doc: "T-bounded adversary strategy (omit the block for none)"},
		{Name: "adversary.budget.kind", Type: "string", Enum: []string{"fixed", "sqrt", "sqrtlog"}, Doc: "budget family"},
		{Name: "adversary.budget.factor", Type: "float", Min: Bound(0), Doc: "budget scale factor"},
		{Name: "adversary.params", Type: "object", Doc: "strategy parameters (numeric, strategy-specific)"},
	}
}

// ScalarInitParams describes the shared scalar init block (the
// internal/initspec registry) under the given Enum of init kinds — the
// median, robust and gossip kinds all embed it as "init.*".
func ScalarInitParams(kinds []string) []Param {
	return []Param{
		{Name: "init.kind", Type: "string", Default: "", Enum: kinds, Doc: "initial-state generator"},
		{Name: "init.n", Type: "int", Min: Bound(1), Doc: "population size (all kinds except blocks)"},
		{Name: "init.m", Type: "int", Doc: "number of initial values (uniform, evenblocks; 0 = n)"},
		{Name: "init.n_low", Type: "int", Doc: "low-bin population for twovalue (0 = n/2)"},
		{Name: "init.low", Type: "int", Doc: "low value of twovalue (0,0 = 1,2)"},
		{Name: "init.high", Type: "int", Doc: "high value of twovalue"},
		{Name: "init.seed", Type: "uint", Doc: "seed of randomized generators (uniform)"},
		{Name: "init.counts", Type: "array", Doc: "count vector for blocks"},
	}
}

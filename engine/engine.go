// Package engine is the self-describing plugin API every simulation family
// in this repository implements. It pins down the contract that was implicit
// across the service layer's per-kind switches:
//
//   - a family registers an Engine — a named factory with a Descriptor
//     (parameter schema, batch axes) and a typed spec Payload;
//   - a Payload normalizes to a canonical form (so equivalent specs hash
//     identically), validates without materializing O(n) state, reports its
//     population for admission control, and runs;
//   - every run reports one Record per executed round through the
//     RunContext's Observe hook — the hook doubles as the cancellation
//     point: Execute's observer panics with a private sentinel when the
//     cancel flag is set, unwinding the engine mid-simulation;
//   - seedless specs derive their seed from the canonical spec hash
//     (DeriveSeed), so every run is deterministic and cacheable.
//
// The Spec envelope (kind + seed + max_rounds + the family payload) and its
// JSON codec, canonical hash and Execute dispatcher all resolve the family
// through the registry — adding a simulation family to the service is a
// Register call, not an edit to a switch. consensus (median), multidim,
// robust and internal/gossip register themselves in their package init.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Record is one line of a run's round-by-round stream: the distribution
// summary every engine reports through its Observe hook. Engines observe the
// state once before the first round and once after every executed round, so
// a run of R rounds yields R+1 records and record 0 is the initial state.
type Record struct {
	// Round is the number of rounds executed before this snapshot
	// (parallel rounds, for robust runs).
	Round int `json:"round"`
	// N is the population size.
	N int64 `json:"n"`
	// Support is the number of distinct values (tuples, for multidim
	// runs) still alive.
	Support int `json:"support"`
	// Leader is the current plurality value; LeaderCount its population.
	Leader      int64 `json:"leader"`
	LeaderCount int64 `json:"leader_count"`
	// LeaderPoint is the plurality tuple of a multidim run (Leader is 0).
	LeaderPoint []int64 `json:"leader_point,omitempty"`
	// Absorbed is the exact kind's analytic telemetry: the probability
	// that the chain has reached consensus (been absorbed) by this round —
	// the absorption CDF at Round. Simulation kinds leave it zero.
	Absorbed float64 `json:"absorbed,omitempty"`
}

// Result is the serializable outcome of a run of any kind, plus the
// effective seed the run used, so any cached result can be reproduced. The
// scalar fields (Winner, WinnerCount) are shared by every family; the
// optional fields are the shared telemetry vocabulary families draw from —
// a new engine reuses them where they fit and extends the struct (one
// place) only for genuinely new telemetry.
type Result struct {
	// Rounds is the number of (parallel, for robust runs) rounds executed.
	Rounds      int    `json:"rounds"`
	Reason      string `json:"reason"`
	Winner      int64  `json:"winner"`
	WinnerCount int64  `json:"winner_count"`
	StableSince int    `json:"stable_since"`
	// Seed is the effective run seed; Execute fills it in, engines need not.
	Seed uint64 `json:"seed"`
	// Messages holds message-level telemetry (gossip kind).
	Messages *MessageStats `json:"messages,omitempty"`
	// WinnerPoint is the winning tuple of a multidim run (Winner is 0).
	WinnerPoint []int64 `json:"winner_point,omitempty"`
	// TupleValid / CoordValid report multidim validity (see
	// multidim.Result).
	TupleValid *bool `json:"tuple_valid,omitempty"`
	CoordValid *bool `json:"coord_valid,omitempty"`
	// Steps and ParallelTime report robust-run timing (Rounds is the
	// parallel time rounded up).
	Steps        int     `json:"steps,omitempty"`
	ParallelTime float64 `json:"parallel_time,omitempty"`
	// Dissenters counts processes (crashed included) not holding Winner
	// at the end of a robust run.
	Dissenters int `json:"dissenters,omitempty"`
	// Exact carries the analytic output of the exact kind: closed-form
	// absorption statistics with no simulation behind them.
	Exact *ExactStats `json:"exact,omitempty"`
	// Timing is the service-side lifecycle breakdown of the run. It is
	// set by the service layer after a job finishes, never by an engine:
	// Run output must stay deterministic in (payload, seed), and wall
	// clocks are not.
	Timing *RunTiming `json:"timing,omitempty"`
}

// ExactStats is the exact kind's analytic result: absorption statistics of
// the paper's two-bin median chain computed by linear algebra rather than
// Monte-Carlo — the ground truth the differential tests pin the simulation
// engines against.
type ExactStats struct {
	// ExpectedRounds is E[rounds to consensus] from the start state
	// (averaged over the start distribution for init "uniform").
	ExpectedRounds float64 `json:"expected_rounds"`
	// WinProbability is the exact probability that the left (low) value
	// wins the dynamics.
	WinProbability float64 `json:"win_probability"`
	// AbsorbedByEnd is the absorption CDF at the last emitted round;
	// 1 − AbsorbedByEnd is the probability mass still unabsorbed when the
	// record stream ends.
	AbsorbedByEnd float64 `json:"absorbed_by_end"`
}

// RunTiming is the wall-clock breakdown of one job's lifecycle (accepted →
// queued → started → done) plus the derived throughput, recorded by the
// service when the job reaches a terminal state and persisted with the
// result.
type RunTiming struct {
	// QueueWaitSeconds is the time between acceptance and a worker
	// picking the job up.
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	// RunSeconds is the time spent executing the engine.
	RunSeconds float64 `json:"run_seconds"`
	// TotalSeconds is acceptance to finish.
	TotalSeconds float64 `json:"total_seconds"`
	// RecordsEmitted is the number of round records captured;
	// RecordsTruncated the rounds beyond the server's record bound.
	RecordsEmitted   int `json:"records_emitted"`
	RecordsTruncated int `json:"records_truncated,omitempty"`
	// RoundsPerSec is Rounds/RunSeconds (0 for immeasurably fast runs).
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
}

// MessageStats is the gossip kind's message-level telemetry.
type MessageStats struct {
	RequestsSent    int64 `json:"requests_sent"`
	RequestsDropped int64 `json:"requests_dropped"`
	MaxInDegree     int   `json:"max_in_degree"`
}

// RunContext carries the envelope-level inputs of one run into a payload's
// Run method.
type RunContext struct {
	// Seed is the effective run seed (explicit or hash-derived; never the
	// raw spec field).
	Seed uint64
	// MaxRounds caps the run (0 = the family's default). Families with a
	// different natural unit document the mapping (robust: parallel
	// rounds, so the step cap is MaxRounds·n).
	MaxRounds int
	// Observe receives one Record per executed round, plus one for the
	// initial state. It is never nil and MUST be called once per round:
	// it is the run's cancellation point — it panics to unwind the engine
	// when the run is cancelled (Execute recovers the sentinel). Engines
	// must not swallow panics raised inside it.
	Observe func(Record)
}

// Payload is a family's typed spec body — everything below the Spec
// envelope's shared kind/seed/max_rounds fields. A payload must be a
// pointer to a plain JSON-serializable struct: the codec decodes into it
// strictly (unknown fields are errors) and clones it by marshal round-trip.
type Payload interface {
	// Normalize rewrites the payload in place to its canonical form:
	// defaulted fields made explicit, empty parameter maps dropped — so
	// equivalent specs share one canonical encoding (and hash). It is
	// only called on a fresh clone, never on a caller-held payload.
	Normalize()
	// Validate checks that every registry reference resolves and every
	// parameter is in range, without materializing the O(n) state — it
	// runs on every API request.
	Validate() error
	// Population reports the population the run would materialize, for
	// admission control. 0 means unknown.
	Population() int64
	// Run executes the simulation synchronously. It must be deterministic
	// in (payload, ctx.Seed) and must call ctx.Observe once per round.
	Run(ctx RunContext) (Result, error)
}

// Materializer is implemented by payloads whose runtime footprint can be
// far below Population(): count-level engines hold the value distribution,
// O(support), never the O(n) per-process vector. Admission control charges
// MaterializedSize() when available, so a count-engine run over n = 10⁹
// processes is admitted while a per-process run of the same n is rejected.
type Materializer interface {
	// MaterializedSize reports the number of per-process states the run
	// will actually allocate. 0 means unknown (callers fall back to
	// Population).
	MaterializedSize() int64
}

// AxisApplier is implemented by payloads that support server-side batch
// axes beyond the envelope's shared "seed" and "max_rounds": ApplyAxis
// patches the named parameter (one of Descriptor.Axes) with the axis value.
type AxisApplier interface {
	ApplyAxis(param string, v float64) error
}

// SeedFollower is implemented by payloads whose initial state consumes its
// own seed (e.g. the "uniform" scalar init): the batch expander calls
// FollowSeed with each cell's run seed so repetitions draw distinct initial
// states.
type SeedFollower interface {
	FollowSeed(seed uint64)
}

// LeaderRecord summarizes a per-round value distribution (parallel vals
// and counts slices, as the scalar engines' observers report it) into a
// Record — the shared observer wiring of the median and gossip kinds. With
// sorted vals the first maximal count wins, the same tie-break plurality
// uses.
func LeaderRecord(round int, n int64, vals, counts []int64) Record {
	rec := Record{Round: round, N: n, Support: len(vals)}
	for i, c := range counts {
		if c > rec.LeaderCount {
			rec.Leader, rec.LeaderCount = vals[i], c
		}
	}
	return rec
}

// ErrCancelled is returned by Execute when the cancelled callback fired.
var ErrCancelled = errors.New("engine: run cancelled")

// cancelSignal is the panic sentinel the observer uses to unwind a running
// engine; Execute recovers it. The engines have no cancellation hook of
// their own, but every family's engine calls its observer once per round,
// which is exactly the granularity a cancel needs.
type cancelSignal struct{}

// Execute runs a spec of any registered kind synchronously. observe, when
// non-nil, receives one Record per executed round. cancelled, when non-nil,
// is polled once per round; returning true aborts the run with ErrCancelled.
// Any engine panic (e.g. an invalid engine/state combination that Validate
// cannot see) is converted into an error so a bad spec can never take down
// the serving process.
func Execute(spec Spec, observe func(Record), cancelled func() bool) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(cancelSignal); ok {
				err = ErrCancelled
				return
			}
			err = fmt.Errorf("engine: run panicked: %v", r)
		}
	}()
	spec = spec.Normalize()
	e, err := Lookup(spec.Kind)
	if err != nil {
		return Result{}, err
	}
	p, err := spec.payloadFor(e)
	if err != nil {
		return Result{}, err
	}
	seed := spec.Seed
	if seed == 0 {
		// The spec is already normalized, so its plain encoding is the
		// canonical one — skip EffectiveSeed's re-normalization.
		canonical, err := json.Marshal(spec)
		if err != nil {
			return Result{}, err
		}
		seed = DeriveSeed(HashBytes(canonical))
	}
	ctx := RunContext{
		Seed:      seed,
		MaxRounds: spec.MaxRounds,
		Observe: func(rec Record) {
			if cancelled != nil && cancelled() {
				panic(cancelSignal{})
			}
			if observe != nil {
				observe(rec)
			}
		},
	}
	res, err = p.Run(ctx)
	if err != nil {
		return Result{}, err
	}
	res.Seed = seed
	return res, nil
}

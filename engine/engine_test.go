package engine_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/engine"
)

// fakeSpec is a minimal payload: n rounds of nothing, observable and
// axis-patchable.
type fakeSpec struct {
	N      int     `json:"n,omitempty"`
	Rounds int     `json:"rounds_to_run,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
}

func (f *fakeSpec) Normalize() {
	if f.Rounds == 0 {
		f.Rounds = 2
	}
}

func (f *fakeSpec) Validate() error {
	if f.N <= 0 {
		return fmt.Errorf("fake: n must be positive")
	}
	return nil
}

func (f *fakeSpec) Population() int64 { return int64(f.N) }

func (f *fakeSpec) Run(ctx engine.RunContext) (engine.Result, error) {
	rounds := f.Rounds
	if ctx.MaxRounds > 0 && ctx.MaxRounds < rounds {
		rounds = ctx.MaxRounds
	}
	for r := 0; r <= rounds; r++ {
		ctx.Observe(engine.Record{Round: r, N: int64(f.N), Support: 1, LeaderCount: int64(f.N)})
	}
	return engine.Result{Rounds: rounds, Reason: "consensus", WinnerCount: int64(f.N)}, nil
}

func (f *fakeSpec) ApplyAxis(param string, v float64) error {
	switch param {
	case "n":
		n, err := engine.IntAxis(param, v)
		if err != nil {
			return err
		}
		f.N = n
	case "rate":
		f.Rate = v
	default:
		return fmt.Errorf("fake: unknown axis %q", param)
	}
	return nil
}

type fakeEngine struct {
	kind string
	dflt bool
}

func (e fakeEngine) NewPayload() engine.Payload { return &fakeSpec{} }

func (e fakeEngine) Descriptor() engine.Descriptor {
	return engine.Descriptor{
		Kind:    e.kind,
		Default: e.dflt,
		Summary: "test-only fake engine",
		Params: []engine.Param{
			{Name: "n", Type: "int", Min: engine.Bound(1), Doc: "population"},
			{Name: "rounds_to_run", Type: "int", Default: "2", Doc: "rounds to simulate"},
			{Name: "rate", Type: "float", Doc: "a float axis"},
		},
		Axes: []string{"n", "rate"},
	}
}

// The fake engines registered once for the whole test package. The engine
// package's own tests run with an otherwise empty registry (no family
// package is imported), so the default-kind mechanics are exercised on
// "fake" itself.
func init() {
	engine.Register(fakeEngine{kind: "fake", dflt: true})
	engine.Register(fakeEngine{kind: "fake2"})
}

func TestRegistryBasics(t *testing.T) {
	if got := engine.Kinds(); !reflect.DeepEqual(got, []string{"fake", "fake2"}) {
		t.Fatalf("kinds %v", got)
	}
	if engine.DefaultKind() != "fake" {
		t.Fatalf("default kind %q", engine.DefaultKind())
	}
	// "" resolves to the default kind.
	e, err := engine.Lookup("")
	if err != nil || e.Descriptor().Kind != "fake" {
		t.Fatalf("Lookup(\"\"): %v %v", e, err)
	}
	if _, err := engine.Lookup("warp"); err == nil {
		t.Fatal("unknown kind must error")
	}
	ds := engine.Descriptors()
	if len(ds) != 2 || ds[0].Kind != "fake" || ds[1].Kind != "fake2" {
		t.Fatalf("descriptors %v", ds)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate kind", func() { engine.Register(fakeEngine{kind: "fake"}) })
	mustPanic("second default", func() { engine.Register(fakeEngine{kind: "fake3", dflt: true}) })
	mustPanic("empty kind", func() { engine.Register(fakeEngine{kind: ""}) })
	mustPanic("axes without AxisApplier", func() { engine.Register(noAxisEngine{}) })
}

// noAxisEngine advertises axes on a payload that cannot apply them.
type noAxisEngine struct{}

type inertSpec struct{}

func (*inertSpec) Normalize()                                   {}
func (*inertSpec) Validate() error                              { return nil }
func (*inertSpec) Population() int64                            { return 0 }
func (*inertSpec) Run(engine.RunContext) (engine.Result, error) { return engine.Result{}, nil }
func (noAxisEngine) NewPayload() engine.Payload                 { return &inertSpec{} }
func (noAxisEngine) Descriptor() engine.Descriptor {
	return engine.Descriptor{Kind: "inert", Summary: "x", Axes: []string{"n"}}
}

func TestSpecCodec(t *testing.T) {
	spec := engine.Spec{Kind: "fake", Seed: 9, MaxRounds: 5, Payload: &fakeSpec{N: 10, Rate: 0.5}}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope and payload share one flat object with sorted keys.
	want := `{"kind":"fake","max_rounds":5,"n":10,"rate":0.5,"seed":9}`
	if string(buf) != want {
		t.Fatalf("marshal: got %s, want %s", buf, want)
	}
	var back engine.Spec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Fatalf("round trip changed the spec: %+v vs %+v", back, spec)
	}
	// Kindless JSON decodes as the default kind.
	var dflt engine.Spec
	if err := json.Unmarshal([]byte(`{"n":3}`), &dflt); err != nil {
		t.Fatal(err)
	}
	if dflt.Kind != "" || dflt.Payload.(*fakeSpec).N != 3 {
		t.Fatalf("kindless decode: %+v", dflt)
	}
	// Unknown fields for the kind are rejected, naming the kind.
	err = json.Unmarshal([]byte(`{"kind":"fake","warp":1}`), &back)
	if err == nil || !strings.Contains(err.Error(), "fake") {
		t.Fatalf("unknown field: %v", err)
	}
	// Unknown kinds are rejected at decode time.
	if err := json.Unmarshal([]byte(`{"kind":"warp"}`), &back); err == nil {
		t.Fatal("unknown kind must fail to decode")
	}
}

func TestSpecNormalizeDoesNotMutateCaller(t *testing.T) {
	p := &fakeSpec{N: 10}
	spec := engine.Spec{Payload: p}
	norm := spec.Normalize()
	if norm.Kind != "fake" {
		t.Fatalf("normalize must make the default kind explicit, got %q", norm.Kind)
	}
	if norm.Payload.(*fakeSpec).Rounds != 2 {
		t.Fatal("normalize must fill payload defaults")
	}
	if p.Rounds != 0 {
		t.Fatal("normalize mutated the caller's payload")
	}
	// Normalized and raw forms hash identically.
	h1, _ := spec.Hash()
	h2, _ := norm.Hash()
	if h1 == "" || h1 != h2 {
		t.Fatalf("hash not canonical: %q vs %q", h1, h2)
	}
}

func TestSpecCloneIsDeep(t *testing.T) {
	spec := engine.Spec{Kind: "fake", Payload: &fakeSpec{N: 10}}
	clone := spec.Clone()
	clone.Payload.(*fakeSpec).N = 99
	if spec.Payload.(*fakeSpec).N != 10 {
		t.Fatal("clone shares the payload")
	}
}

func TestApplyAxis(t *testing.T) {
	spec := engine.Spec{Kind: "fake", Payload: &fakeSpec{N: 1}}
	for param, v := range map[string]float64{"n": 7, "rate": 0.25, "seed": 3, "max_rounds": 9} {
		if err := spec.ApplyAxis(param, v); err != nil {
			t.Fatalf("ApplyAxis(%s): %v", param, err)
		}
	}
	p := spec.Payload.(*fakeSpec)
	if p.N != 7 || p.Rate != 0.25 || spec.Seed != 3 || spec.MaxRounds != 9 {
		t.Fatalf("axes not applied: %+v %+v", spec, p)
	}
	if err := spec.ApplyAxis("warp", 1); err == nil {
		t.Fatal("non-descriptor axis must be rejected")
	}
	if err := spec.ApplyAxis("n", 1.5); err == nil {
		t.Fatal("non-integral int axis must be rejected")
	}
	if !spec.AxisOK("n") || !spec.AxisOK("seed") || spec.AxisOK("warp") {
		t.Fatal("AxisOK disagrees with the descriptor")
	}
}

func TestExecuteObservesAndCancels(t *testing.T) {
	spec := engine.Spec{Kind: "fake", Seed: 1, Payload: &fakeSpec{N: 4, Rounds: 10}}
	var recs []engine.Record
	res, err := engine.Execute(spec, func(r engine.Record) { recs = append(recs, r) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 10 || res.Seed != 1 || len(recs) != 11 {
		t.Fatalf("result %+v, %d records", res, len(recs))
	}
	// Seedless specs get the hash-derived seed stamped into the result.
	seedless := engine.Spec{Kind: "fake", Payload: &fakeSpec{N: 4}}
	res, err = engine.Execute(seedless, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := seedless.EffectiveSeed()
	if res.Seed != want || res.Seed == 0 {
		t.Fatalf("derived seed %d, want %d", res.Seed, want)
	}
	// Cancellation unwinds through the observer after a bounded number of
	// rounds.
	calls := 0
	_, err = engine.Execute(spec, nil, func() bool { calls++; return calls > 3 })
	if err != engine.ErrCancelled {
		t.Fatalf("cancelled run returned %v", err)
	}
}

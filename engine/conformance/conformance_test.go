package conformance_test

import (
	"testing"

	"repro/engine/conformance"

	// Registering a family here is what buys it contract coverage: the
	// suite walks engine.Kinds() at run time, so every kind the service
	// serves must be imported by this test binary.
	_ "repro/consensus"       // median (the default kind)
	_ "repro/internal/exact"  // exact (analytic, no simulation)
	_ "repro/internal/gossip" // gossip
	_ "repro/multidim"        // multidim
	_ "repro/robust"          // robust
)

// TestConformance runs the descriptor-driven contract suite over every
// registered kind. A future `engine.Register` call is covered by adding
// its package to the import list above — the suite itself never changes.
func TestConformance(t *testing.T) {
	conformance.RunAll(t)
}

// Package conformance is the descriptor-driven contract suite for engine
// plugins: for every registered kind it decodes a spec from the kind's
// Descriptor Example, then asserts the invariants every part of the
// service stack leans on — Normalize is idempotent, Validate accepts the
// normalized spec, the canonical encoding round-trips byte-identically,
// descriptor defaults really are what omitted fields normalize to,
// Execute of the tiny example observes at least one round, is
// deterministic, and honors mid-run cancellation — and the run's outcome
// survives the persistent store codec (service/store) byte-identically,
// so every kind's results are safe to write through to disk and reload.
//
// The suite discovers kinds through engine.Kinds() at run time, so a new
// family gets contract coverage by being registered (imported) in the
// test binary — see conformance_test.go, which imports every built-in
// family. A registered kind without a Descriptor Example fails the suite:
// the example is what makes the contract checkable.
package conformance

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"repro/engine"
	"repro/obs"
	"repro/service/store"
)

// RunAll runs the conformance suite for every registered kind, one
// subtest per kind.
func RunAll(t *testing.T) {
	kinds := engine.Kinds()
	if len(kinds) == 0 {
		t.Fatal("conformance: no kinds registered; import the family packages")
	}
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) { RunKind(t, kind) })
	}
}

// RunKind runs the conformance suite for one registered kind.
func RunKind(t *testing.T, kind string) {
	e, err := engine.Lookup(kind)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	d := e.Descriptor()
	if len(d.Example) == 0 {
		t.Fatalf("kind %s has no Descriptor Example; the conformance suite needs a tiny valid spec", kind)
	}
	spec := decodeExample(t, kind, d.Example)

	norm := spec.Normalize()
	canonical := canonicalOf(t, norm)

	// Normalize is idempotent: normalizing the normalized spec changes
	// nothing, byte for byte.
	if again := canonicalOf(t, norm.Normalize()); !bytes.Equal(canonical, again) {
		t.Errorf("Normalize not idempotent:\n once  %s\n twice %s", canonical, again)
	}

	// Validate accepts the normalized spec.
	if err := norm.Validate(); err != nil {
		t.Errorf("normalized example fails Validate: %v", err)
	}

	// The canonical encoding round-trips byte-identically through the
	// codec — decode(canonical) re-encodes to the same canonical bytes.
	var back engine.Spec
	if err := json.Unmarshal(canonical, &back); err != nil {
		t.Fatalf("canonical encoding does not decode: %v", err)
	}
	if round := canonicalOf(t, back); !bytes.Equal(canonical, round) {
		t.Errorf("canonical encoding does not round-trip:\n sent %s\n got  %s", canonical, round)
	}

	checkDefaults(t, d, spec, norm)
	res, recs := checkExecution(t, spec)
	checkInstrumented(t, spec, res, recs)
	checkPersistence(t, norm, res, recs)
}

// decodeExample merges the kind discriminant into the example payload and
// decodes it through the strict registry codec.
func decodeExample(t *testing.T, kind string, example json.RawMessage) engine.Spec {
	t.Helper()
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(example, &fields); err != nil {
		t.Fatalf("descriptor Example is not a JSON object: %v", err)
	}
	fields["kind"], _ = json.Marshal(kind)
	raw, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	var spec engine.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		t.Fatalf("descriptor Example does not decode as a %s spec: %v", kind, err)
	}
	return spec
}

func canonicalOf(t *testing.T, s engine.Spec) []byte {
	t.Helper()
	c, err := s.Canonical()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	return c
}

// checkDefaults asserts that every descriptor parameter carrying a
// Default and omitted by the example normalizes to exactly that default:
// the dotted path must resolve in the canonical JSON to the declared
// value. Paths absent from the canonical form are skipped — a default
// that stays at the zero value is simply dropped by omitempty.
func checkDefaults(t *testing.T, d engine.Descriptor, raw, norm engine.Spec) {
	t.Helper()
	var example, canonical map[string]json.RawMessage
	rawBuf, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawBuf, &example); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(canonicalOf(t, norm), &canonical); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Params {
		if p.Default == "" {
			continue
		}
		if _, set := resolvePath(example, p.Name); set {
			continue // the example sets it explicitly; nothing to check
		}
		got, ok := resolvePath(canonical, p.Name)
		if !ok {
			continue // zero-valued default elided by omitempty
		}
		if !defaultMatches(p, got) {
			t.Errorf("param %s: canonical value %s does not match descriptor default %q", p.Name, got, p.Default)
		}
	}
}

// resolvePath walks a dotted parameter name through nested JSON objects.
func resolvePath(obj map[string]json.RawMessage, path string) (json.RawMessage, bool) {
	for {
		dot := -1
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			v, ok := obj[path]
			return v, ok
		}
		raw, ok := obj[path[:dot]]
		if !ok {
			return nil, false
		}
		var next map[string]json.RawMessage
		if json.Unmarshal(raw, &next) != nil {
			return nil, false
		}
		obj, path = next, path[dot+1:]
	}
}

// defaultMatches compares a canonical JSON value against the descriptor's
// rendered default, per the parameter's declared type.
func defaultMatches(p engine.Param, got json.RawMessage) bool {
	switch p.Type {
	case "string":
		var s string
		return json.Unmarshal(got, &s) == nil && s == p.Default
	case "int", "uint", "float":
		want, err := strconv.ParseFloat(p.Default, 64)
		if err != nil {
			return false
		}
		var v float64
		return json.Unmarshal(got, &v) == nil && v == want
	case "bool":
		var b bool
		return json.Unmarshal(got, &b) == nil && strconv.FormatBool(b) == p.Default
	default:
		// Composite types render their default as raw JSON.
		return string(got) == p.Default
	}
}

// checkExecution runs the example through Execute: the run must observe
// the initial state plus at least one executed round, repeat identically
// (determinism is what makes results cacheable), and abort with
// ErrCancelled when the cancel poll fires mid-run. It returns the result
// and records for the persistence check.
func checkExecution(t *testing.T, spec engine.Spec) (engine.Result, []engine.Record) {
	t.Helper()
	var recs []engine.Record
	res, err := engine.Execute(spec, func(r engine.Record) { recs = append(recs, r) }, nil)
	if err != nil {
		t.Fatalf("example run failed: %v", err)
	}
	if res.Rounds < 1 {
		t.Errorf("example run finished in %d rounds; examples must execute at least one", res.Rounds)
	}
	if len(recs) < 2 {
		t.Fatalf("example run observed %d records; want the initial state plus ≥1 round", len(recs))
	}
	if recs[0].Round != 0 {
		t.Errorf("first record is round %d, want 0 (the initial state)", recs[0].Round)
	}
	for i, rec := range recs {
		if rec.N <= 0 || rec.Support < 1 {
			t.Errorf("record %d malformed: %+v", i, rec)
		}
	}

	var recs2 []engine.Record
	res2, err := engine.Execute(spec, func(r engine.Record) { recs2 = append(recs2, r) }, nil)
	if err != nil {
		t.Fatalf("repeat run failed: %v", err)
	}
	if !reflect.DeepEqual(res, res2) || !reflect.DeepEqual(recs, recs2) {
		t.Errorf("example run is not deterministic:\n first  %+v (%d records)\n second %+v (%d records)",
			res, len(recs), res2, len(recs2))
	}

	calls := 0
	_, err = engine.Execute(spec, nil, func() bool { calls++; return calls > 1 })
	if err != engine.ErrCancelled {
		t.Errorf("cancellation mid-run returned %v, want engine.ErrCancelled", err)
	}
	return res, recs
}

// checkInstrumented re-runs the example under the exact per-round
// instrumentation the service wraps around every job's observer — an
// obs.RunTracker with a per-kind rounds counter and a live event bus with
// an attached subscriber (the worst case: throttled progress events are
// actually constructed and published). The instrumented run must produce a
// deep-equal result and byte-identical record JSON: observation may meter
// the hot loop but never perturb it. The tracker must also have seen every
// record, so the rounds-executed metrics the service exports are exact.
func checkInstrumented(t *testing.T, spec engine.Spec, res engine.Result, recs []engine.Record) {
	t.Helper()
	reg := obs.NewRegistry()
	rounds := reg.Counter("rounds_total", "rounds", "rounds observed")
	bus := obs.NewBus(16, nil, nil)
	defer bus.Close()
	sub := bus.Subscribe(16, 0)
	defer sub.Close()
	tracker := obs.NewRunTracker(rounds, bus, 2,
		obs.Event{Type: "job.progress", Job: "conformance", Kind: spec.Kind})
	var got []engine.Record
	res2, err := engine.Execute(spec, func(r engine.Record) {
		tracker.Tick(r.Round)
		got = append(got, r)
	}, nil)
	if err != nil {
		t.Fatalf("instrumented run failed: %v", err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Errorf("instrumentation changed the result:\n bare         %+v\n instrumented %+v", res, res2)
	}
	want, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gotJSON) {
		t.Errorf("instrumentation changed the records:\n bare         %s\n instrumented %s", want, gotJSON)
	}
	if tracker.Ticks() != uint64(len(got)) {
		t.Errorf("tracker observed %d ticks, want %d (one per record)", tracker.Ticks(), len(got))
	}
	if rounds.Value() != int64(len(got)) {
		t.Errorf("rounds counter = %d, want %d", rounds.Value(), len(got))
	}
}

// checkPersistence runs the example's outcome through the persistent
// store codec (service/store): the framed Run payload must decode back
// and re-encode byte-identically, and the decoded result and records must
// deep-equal the originals. This is the contract the durable service
// state leans on — a kind whose Result or Record payloads carry
// non-serializable state (NaN floats, unexported or lossy fields) would
// silently corrupt the cache it is reloaded into, and fails here instead.
func checkPersistence(t *testing.T, norm engine.Spec, res engine.Result, recs []engine.Record) {
	t.Helper()
	hash, err := norm.Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	run := store.Run{ID: "r-1", SpecHash: hash, Spec: norm, Result: res, Records: recs}
	buf, err := store.EncodeRun(run)
	if err != nil {
		t.Fatalf("result does not persist: %v", err)
	}
	back, err := store.DecodeRun(buf)
	if err != nil {
		t.Fatalf("persisted run does not decode: %v", err)
	}
	again, err := store.EncodeRun(back)
	if err != nil {
		t.Fatalf("decoded run does not re-encode: %v", err)
	}
	if !bytes.Equal(buf, again) {
		t.Errorf("store codec round-trip not byte-identical:\n first  %s\n second %s", buf, again)
	}
	if !reflect.DeepEqual(back.Result, res) {
		t.Errorf("result changed through the store codec:\n got  %+v\n want %+v", back.Result, res)
	}
	if !reflect.DeepEqual(back.Records, recs) {
		t.Errorf("records changed through the store codec (%d vs %d)", len(back.Records), len(recs))
	}
	if canonical, err := back.Spec.Canonical(); err != nil {
		t.Errorf("reloaded spec lost its canonical form: %v", err)
	} else if reloadedHash := engine.HashBytes(canonical); reloadedHash != hash {
		t.Errorf("reloaded spec hashes to %s, stored under %s — the cache key would dangle", reloadedHash, hash)
	}
}

package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"

	"repro/internal/rng"
)

// SpecVersion is the version of the canonical spec encoding, stamped into
// every normalized spec as the envelope field "v". The canonical encoding
// is what the cache key, the derived seed and the persistent store are
// defined over, and the store outlives any one binary — so a change to the
// encoding that is not purely additive must bump SpecVersion. Decoding
// rejects specs carrying a different version (ErrSpecVersion), which is
// what lets the persistent store preserve frames written under another
// codec opaquely instead of serving stale entries under drifted keys.
//
// Version history:
//
//	1: the first explicitly versioned encoding. Specs encoded before
//	   versioning carry no "v" field and decode with V == 0; persistence
//	   layers treat them as a foreign version.
const SpecVersion = 1

// ErrSpecVersion marks a spec whose "v" field names a canonical-encoding
// version this binary does not speak. Persistence layers match it with
// errors.Is to preserve such records opaquely rather than dropping them.
var ErrSpecVersion = errors.New("engine: unsupported spec version")

// Spec is the serializable description of one simulation run: the envelope
// fields every family shares plus the family's typed payload, selected by
// Kind and resolved through the registry.
//
// On the wire the payload is flattened into the envelope object —
//
//	{"kind":"median","seed":5,"init":{...},"rule":{...}}
//	{"kind":"gossip","init":{...},"cap_factor":2,"selector":"drop-value:1"}
//
// — and decoding is strict: an unknown field (for the spec's kind) is an
// error, never silently dropped. Decode, Normalize, Validate, Population,
// the canonical hash and Execute all dispatch through the registry; no code
// in this package knows any family by name.
type Spec struct {
	// Kind selects the simulation family ("" = the registry's default
	// kind, median).
	Kind string `json:"-"`
	// Seed makes the run reproducible. 0 means "derive from the spec
	// hash" (see DeriveSeed), so seedless specs are still deterministic.
	Seed uint64 `json:"-"`
	// MaxRounds caps the run (0 = engine default). Families with another
	// natural unit document the mapping (robust counts parallel rounds:
	// the step cap is MaxRounds·n).
	MaxRounds int `json:"-"`
	// Payload is the family's typed spec body (nil behaves like the
	// family's zero payload).
	Payload Payload `json:"-"`
	// V is the canonical-encoding version ("v" on the wire). 0 means the
	// spec has not been normalized yet (or was decoded from a pre-version
	// encoding); Normalize stamps SpecVersion. Decoding rejects any other
	// value with ErrSpecVersion.
	V int `json:"-"`
}

// envelope names the Spec fields that live beside the flattened payload.
var envelopeFields = []string{"kind", "seed", "max_rounds", "v"}

// MarshalJSON flattens the payload's fields into the envelope object. Map
// encoding sorts keys lexicographically, so the output — and therefore the
// canonical encoding Hash is defined over — is deterministic.
func (s Spec) MarshalJSON() ([]byte, error) {
	fields := map[string]json.RawMessage{}
	if s.Payload != nil {
		buf, err := json.Marshal(s.Payload)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(buf, &fields); err != nil {
			return nil, fmt.Errorf("engine: %s payload is not a JSON object: %w", s.kind(), err)
		}
		for _, key := range envelopeFields {
			if _, clash := fields[key]; clash {
				return nil, fmt.Errorf("engine: %s payload redefines the envelope field %q", s.kind(), key)
			}
		}
	}
	if s.Kind != "" {
		fields["kind"], _ = json.Marshal(s.Kind)
	}
	if s.Seed != 0 {
		fields["seed"], _ = json.Marshal(s.Seed)
	}
	if s.MaxRounds != 0 {
		fields["max_rounds"], _ = json.Marshal(s.MaxRounds)
	}
	if s.V != 0 {
		fields["v"], _ = json.Marshal(s.V)
	}
	return json.Marshal(fields)
}

// UnmarshalJSON splits the envelope fields off and strictly decodes the
// rest into the kind's payload type, resolved through the registry. An
// unknown kind, or a field the kind's payload does not define, is an error
// — a misspelled or foreign-family field is never silently dropped.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(data, &fields); err != nil {
		return err
	}
	var env struct {
		Kind      string `json:"kind"`
		Seed      uint64 `json:"seed"`
		MaxRounds int    `json:"max_rounds"`
		V         int    `json:"v"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return err
	}
	// An absent "v" (V == 0, the pre-version encoding) is accepted for
	// compatibility with existing clients; any explicit version other than
	// ours is a spec this binary must not reinterpret under its own codec.
	if env.V != 0 && env.V != SpecVersion {
		return fmt.Errorf("%w: spec has v%d, this binary speaks v%d", ErrSpecVersion, env.V, SpecVersion)
	}
	e, err := Lookup(env.Kind)
	if err != nil {
		return err
	}
	for _, key := range envelopeFields {
		delete(fields, key)
	}
	rest, err := json.Marshal(fields)
	if err != nil {
		return err
	}
	p := e.NewPayload()
	if err := strictDecode(rest, p); err != nil {
		return fmt.Errorf("engine: bad %s spec: %w", kindOrDefault(env.Kind), err)
	}
	*s = Spec{Kind: env.Kind, Seed: env.Seed, MaxRounds: env.MaxRounds, Payload: p, V: env.V}
	return nil
}

func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// kind resolves the family discriminant ("" means the registered default).
func (s Spec) kind() string { return kindOrDefault(s.Kind) }

func kindOrDefault(kind string) string {
	if kind == "" {
		return DefaultKind()
	}
	return kind
}

// payloadFor resolves s.Payload as e's payload type. The Kind/Payload
// pair is a caller contract: a payload whose concrete type is not the
// kind's own is rejected outright — never converted through the codec,
// where a foreign family whose JSON fields happen to be a subset of the
// kind's would silently run the wrong simulation. A nil payload resolves
// to the family's zero payload.
func (s Spec) payloadFor(e Engine) (Payload, error) {
	p := e.NewPayload()
	if s.Payload == nil {
		return p, nil
	}
	if reflect.TypeOf(s.Payload) != reflect.TypeOf(p) {
		return nil, fmt.Errorf("engine: payload %T does not belong to spec kind %s", s.Payload, s.kind())
	}
	return s.Payload, nil
}

// Clone returns a deep copy: the payload is round-tripped through its own
// JSON encoding, so patching one batch cell can never leak into the
// template or a sibling cell. A payload the kind's codec cannot decode
// strictly (a foreign family's payload) is left in place, shared — it can
// never pass Validate, which every Clone consumer runs before using the
// copy, so it must not be silently truncated into a valid-looking spec of
// the wrong family here.
func (s Spec) Clone() Spec {
	e, err := Lookup(s.kind())
	if err != nil || s.Payload == nil {
		return s
	}
	buf, err := json.Marshal(s.Payload)
	if err != nil {
		return s
	}
	p := e.NewPayload()
	if strictDecode(buf, p) != nil {
		return s
	}
	s.Payload = p
	return s
}

// Normalize returns a copy with the kind made explicit, the spec-codec
// version stamped (V = SpecVersion, the "v" of the canonical encoding) and
// the payload rewritten to its canonical form (defaulted fields explicit,
// empty parameter maps dropped), so equivalent specs share one canonical
// encoding. Specs of unknown kinds pass through otherwise untouched —
// Validate, not Normalize, rejects them.
func (s Spec) Normalize() Spec {
	kind := s.kind()
	e, err := Lookup(kind)
	if err != nil {
		s.Kind = kind
		s.V = SpecVersion
		return s
	}
	p, err := s.payloadFor(e)
	if err != nil {
		// A foreign payload cannot be canonicalized; leave it for
		// Validate to reject.
		s.Kind = kind
		s.V = SpecVersion
		return s
	}
	if p == s.Payload {
		// Never normalize a caller-held payload in place.
		clone := s.Clone()
		p = clone.Payload
	}
	p.Normalize()
	return Spec{Kind: kind, Seed: s.Seed, MaxRounds: s.MaxRounds, Payload: p, V: SpecVersion}
}

// Validate checks that the kind is registered, the payload belongs to it,
// every registry reference resolves and every parameter is in range,
// without materializing the O(n) initial state — it is safe to call on
// every API request.
func (s Spec) Validate() error {
	if s.MaxRounds < 0 {
		return fmt.Errorf("engine: negative max_rounds")
	}
	if s.V != 0 && s.V != SpecVersion {
		return fmt.Errorf("%w: spec has v%d, this binary speaks v%d", ErrSpecVersion, s.V, SpecVersion)
	}
	e, err := Lookup(s.kind())
	if err != nil {
		return err
	}
	p, err := s.payloadFor(e)
	if err != nil {
		return err
	}
	return p.Validate()
}

// Population reports the population the spec would materialize, for
// admission control. 0 means unknown.
func (s Spec) Population() int64 {
	e, err := Lookup(s.kind())
	if err != nil {
		return 0
	}
	p, err := s.payloadFor(e)
	if err != nil {
		return 0
	}
	return p.Population()
}

// MaterializedSize reports the number of per-process states the run will
// actually allocate: the payload's MaterializedSize when it implements
// Materializer (and knows the answer), else Population. This is the
// quantity admission control should bound — a count-level run over a huge
// population only ever holds its O(support) distribution.
func (s Spec) MaterializedSize() int64 {
	e, err := Lookup(s.kind())
	if err != nil {
		return 0
	}
	p, err := s.payloadFor(e)
	if err != nil {
		return 0
	}
	if m, ok := p.(Materializer); ok {
		if sz := m.MaterializedSize(); sz > 0 {
			return sz
		}
	}
	return p.Population()
}

// Canonical returns the canonical JSON encoding of the normalized spec —
// the byte string the hash, cache and seed derivation are defined over.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s.Normalize())
}

// Hash returns the canonical spec hash as a hex string.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return HashBytes(c), nil
}

// HashBytes digests a canonical encoding into the spec hash. It lets bulk
// callers that hold an already-normalized spec (the batch expander) hash
// json.Marshal(spec) directly instead of paying Hash's re-normalization
// round-trip per cell; Hash(s) == HashBytes(s.Canonical()).
func HashBytes(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return fmt.Sprintf("%x", sum[:])
}

// DeriveSeed maps a canonical spec hash to a run seed via the splitmix64
// finalizer, so seedless specs get a deterministic, well-mixed seed.
func DeriveSeed(hash string) uint64 {
	sum := sha256.Sum256([]byte(hash))
	return rng.Mix64(binary.LittleEndian.Uint64(sum[:8]))
}

// EffectiveSeed returns the seed a run of this spec will actually use.
func (s Spec) EffectiveSeed() (uint64, error) {
	if s.Seed != 0 {
		return s.Seed, nil
	}
	h, err := s.Hash()
	if err != nil {
		return 0, err
	}
	return DeriveSeed(h), nil
}

// ApplyAxis patches the named sweep parameter: the shared envelope axes
// ("seed", "max_rounds") directly, everything else through the payload's
// AxisApplier — the name must be one of the kind's Descriptor().Axes.
func (s *Spec) ApplyAxis(param string, v float64) error {
	switch param {
	case "seed":
		sv, err := intAxis(param, v)
		if err != nil {
			return err
		}
		s.SetSeed(uint64(sv))
		return nil
	case "max_rounds":
		mr, err := intAxis(param, v)
		if err != nil {
			return err
		}
		s.MaxRounds = int(mr)
		return nil
	}
	e, err := Lookup(s.kind())
	if err != nil {
		return err
	}
	if !axisAllowed(s.kind(), param) {
		return fmt.Errorf("engine: kind %s has no batch axis %q", s.kind(), param)
	}
	p, err := s.payloadFor(e)
	if err != nil {
		return err
	}
	a, ok := p.(AxisApplier)
	if !ok {
		return fmt.Errorf("engine: kind %s payload does not apply axes", s.kind())
	}
	if err := a.ApplyAxis(param, v); err != nil {
		return err
	}
	s.Payload = p
	return nil
}

// SetSeed sets the run seed and keeps seed-consuming init kinds in step
// with it (SeedFollower), so batch repetitions draw distinct initial
// states.
func (s *Spec) SetSeed(seed uint64) {
	s.Seed = seed
	if f, ok := s.Payload.(SeedFollower); ok {
		f.FollowSeed(seed)
	}
}

// AxisOK reports whether the kind supports the named batch axis (shared
// envelope axes included).
func (s Spec) AxisOK(param string) bool {
	if param == "seed" || param == "max_rounds" {
		return true
	}
	return axisAllowed(s.kind(), param)
}

// intAxis rejects non-integral axis values for integer parameters — shared
// by the envelope axes here and the family AxisAppliers.
func intAxis(param string, v float64) (int64, error) {
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("engine: batch axis %q needs integer values, got %v", param, v)
	}
	return int64(v), nil
}

// IntAxis rejects non-integral axis values for integer parameters; exported
// for the family packages' AxisApplier implementations.
func IntAxis(param string, v float64) (int, error) {
	sv, err := intAxis(param, v)
	return int(sv), err
}

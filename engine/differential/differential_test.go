package differential

import (
	"math"
	"sort"
	"testing"

	"repro/consensus"
	"repro/engine"
	"repro/internal/exact"
	"repro/rules"
)

// The absorption-time fixture: n and the low-bin start count of the
// twovalue init, which is exactly the exact chain's start state.
const (
	timeN      = 60
	timeStart  = 21
	timeTrials = 600
)

// The win-probability fixture uses a smaller, closer-to-balanced chain so
// the exact win probability is moderate (≈ 0.19) and a few thousand
// Bernoulli trials resolve it tightly.
const (
	winN      = 40
	winStart  = 18
	winTrials = 2000
)

// sigmas is the band half-width in standard errors. Seeds are fixed, so
// this is not a flake budget: 5σ would be exceeded by chance once in ~10⁶
// re-rolls of the seed list, and never by re-running the same seeds.
const sigmas = 5

// simTrials runs `trials` fixed-seed runs of one count-level median-kind
// engine over the twovalue init and returns each run's rounds-to-consensus
// plus the number of runs the low value won.
func simTrials(t *testing.T, engineName string, n, nLow, trials int) (rounds []int, lowWins int) {
	t.Helper()
	rounds = make([]int, 0, trials)
	for seed := 1; seed <= trials; seed++ {
		spec := engine.Spec{
			Kind: "median",
			Seed: uint64(seed),
			Payload: &consensus.Spec{
				Init:   consensus.InitSpec{Kind: "twovalue", N: n, NLow: nLow},
				Rule:   rules.Ref{Name: "median"},
				Engine: engineName,
			},
		}
		res, err := engine.Execute(spec, nil, nil)
		if err != nil {
			t.Fatalf("%s seed %d: %v", engineName, seed, err)
		}
		rounds = append(rounds, res.Rounds)
		if res.Winner == exact.ValueLeft {
			lowWins++
		}
	}
	return rounds, lowWins
}

// meanStd returns the sample mean and standard deviation.
func meanStd(xs []int) (mean, sd float64) {
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := float64(x) - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)-1))
	return mean, sd
}

// TestDifferentialAbsorptionTime: each engine's mean rounds-to-consensus
// must sit inside a 5σ confidence band around the chain's exact expected
// absorption time. A bias in the binomial update (twobin) or the sampling
// loop (count) shifts the mean and trips the band.
func TestDifferentialAbsorptionTime(t *testing.T) {
	want := exact.NewChain(timeN).AbsorptionTimes()[timeStart]
	for _, engineName := range []string{"twobin", "count"} {
		rounds, _ := simTrials(t, engineName, timeN, timeStart, timeTrials)
		mean, sd := meanStd(rounds)
		band := sigmas*sd/math.Sqrt(float64(len(rounds))) + 0.05
		t.Logf("%s: mean %0.4f ± %0.4f vs exact %0.4f over %d trials",
			engineName, mean, band, want, len(rounds))
		if math.Abs(mean-want) > band {
			t.Errorf("%s mean absorption time %0.4f outside exact %0.4f ± %0.4f",
				engineName, mean, want, band)
		}
	}
}

// TestDifferentialWinProbability: each engine's empirical low-value win
// rate must sit inside a 5σ Bernoulli band around the chain's exact win
// probability — the sharpest test of the dynamics' bias, since any
// asymmetry in tie-breaking or sampling moves it.
func TestDifferentialWinProbability(t *testing.T) {
	want := exact.NewChain(winN).WinProbabilities()[winStart]
	for _, engineName := range []string{"twobin", "count"} {
		_, wins := simTrials(t, engineName, winN, winStart, winTrials)
		got := float64(wins) / winTrials
		band := sigmas*math.Sqrt(want*(1-want)/winTrials) + 0.01
		t.Logf("%s: win rate %0.4f ± %0.4f vs exact %0.4f over %d trials",
			engineName, got, band, want, winTrials)
		if math.Abs(got-want) > band {
			t.Errorf("%s win rate %0.4f outside exact %0.4f ± %0.4f",
				engineName, got, want, band)
		}
	}
}

// TestDifferentialAbsorptionCDF: the empirical distribution of
// rounds-to-consensus must track the chain's absorption CDF pointwise (a
// per-quantile check, sharper than the mean: a variance bug leaves the
// mean intact and trips this). Probe rounds are chosen where the exact
// CDF is informative.
func TestDifferentialAbsorptionCDF(t *testing.T) {
	c := exact.NewChain(timeN)
	maxRounds := 200
	cdf := c.AbsorptionCDF(timeStart, maxRounds)
	for _, engineName := range []string{"twobin", "count"} {
		rounds, _ := simTrials(t, engineName, timeN, timeStart, timeTrials)
		sort.Ints(rounds)
		for _, probe := range []int{4, 7, 10, 15, 25} {
			want := cdf[probe]
			// Empirical CDF: fraction of runs absorbed by round probe.
			got := float64(sort.SearchInts(rounds, probe+1)) / float64(len(rounds))
			band := sigmas*math.Sqrt(want*(1-want)/float64(len(rounds))) + 0.01
			if math.Abs(got-want) > band {
				t.Errorf("%s CDF at round %d: empirical %0.4f outside exact %0.4f ± %0.4f",
					engineName, probe, got, want, band)
			}
		}
	}
}

// TestDifferentialExactKindSelfConsistent closes the loop: the registered
// exact kind must agree with the chain it wraps bit-for-bit, so the two
// tests above really compare simulation against the analytic spec the
// service serves, not against a drifted copy.
func TestDifferentialExactKindSelfConsistent(t *testing.T) {
	res, err := engine.Execute(engine.Spec{
		Kind:    "exact",
		Payload: &exact.Spec{N: timeN, Start: timeStart},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := exact.NewChain(timeN)
	if got, want := res.Exact.ExpectedRounds, c.AbsorptionTimes()[timeStart]; got != want {
		t.Errorf("exact kind ExpectedRounds %v != chain %v", got, want)
	}
	if got, want := res.Exact.WinProbability, c.WinProbabilities()[timeStart]; got != want {
		t.Errorf("exact kind WinProbability %v != chain %v", got, want)
	}
}

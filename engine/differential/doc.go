// Package differential is the exact-vs-simulation gate: its test suite
// pins the Monte-Carlo engines' empirical statistics inside confidence
// bands of the analytic two-bin Markov chain (internal/exact), so the
// closed-form Section 3 results enforce simulation correctness on every
// change.
//
// The two-value scalar dynamics and the exact chain describe the same
// process — a run of the median kind over a twovalue init IS a sample of
// the chain, so its rounds-to-consensus is a draw of the chain's
// absorption time and its winner a Bernoulli draw of the chain's win
// probability. The suite runs fixed-seed trial batches of each count-level
// engine (twobin, count) through engine.Execute and requires:
//
//   - the mean absorption time within a 5σ band of the exact expectation,
//   - the win rate within a 5σ band of the exact win probability,
//   - the empirical absorption CDF within a 5σ band of the exact CDF at
//     probe rounds.
//
// Seeds are fixed, so every band check is deterministic: a failure is a
// genuine statistical discrepancy (an engine bug or a changed sampling
// path), never flakiness — which is what lets CI treat this suite as a
// hard gate (the differential job in ci.yml).
//
// The package has no non-test API; this file exists so the suite is part
// of the ordinary build and `go test ./...` tier-1 surface.
package differential

package obs

import (
	"testing"
	"time"
)

// BenchmarkObsHistogram measures the histogram's hot path: Observe must
// stay a few atomic adds with zero allocations, since the service calls
// it on every completed run and HTTP request. Tracked by cmd/benchdiff in
// CI so instrumentation-overhead regressions surface as bench warnings.
func BenchmarkObsHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench_seconds", "help", 1e-9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkObsHistogramDuration includes the time.Since call the service
// pays per observation.
func BenchmarkObsHistogramDuration(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_dur_seconds", "bench_dur_seconds", "help", 1e-9)
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

// BenchmarkObsTrackerTick is the per-round instrumentation cost of a run:
// one counter add plus the throttle check, with no subscribers attached.
func BenchmarkObsTrackerTick(b *testing.B) {
	r := NewRegistry()
	rounds := r.Counter("rounds_total", "rounds", "help")
	bus := NewBus(256, nil, nil)
	tr := NewRunTracker(rounds, bus, 256, Event{Type: "job.progress", Job: "r-1"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Tick(i)
	}
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one entry of the service's live event stream: a job or store
// lifecycle transition, or a throttled round-progress tick. Events are
// NDJSON lines on GET /v1/events.
type Event struct {
	// Seq is the bus-assigned, strictly increasing sequence number —
	// gaps tell a consumer it was too slow and events were dropped.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Type names the transition: job.submitted, job.coalesced,
	// job.started, job.progress, job.done, job.failed, job.cancelled,
	// batch.started, batch.done, store.appended, store.error.
	Type string `json:"type"`
	// Job is the job id ("r-17") for job.* events.
	Job string `json:"job,omitempty"`
	// Kind is the spec kind of the job.
	Kind string `json:"kind,omitempty"`
	// SpecHash is the job's canonical spec hash.
	SpecHash string `json:"spec_hash,omitempty"`
	// RequestID is the X-Request-Id of the submission that created the
	// job, when it arrived over HTTP.
	RequestID string `json:"request_id,omitempty"`
	// Round is the last executed round (job.progress events).
	Round int `json:"round,omitempty"`
	// Status carries the terminal status or cache-hit marker.
	Status string `json:"status,omitempty"`
	// Elapsed is the seconds spent running (terminal job events).
	Elapsed float64 `json:"elapsed_seconds,omitempty"`
	// Detail is free-form context (error messages, cell counts).
	Detail string `json:"detail,omitempty"`
}

// Bus is a subscribable ring-buffer event bus. Publish never blocks: the
// ring keeps the most recent events for replay to new subscribers, and a
// subscriber that cannot keep up has events dropped (counted per
// subscriber and on the bus-wide dropped counter) rather than slowing the
// publisher.
type Bus struct {
	published *Counter // may be nil
	dropped   *Counter // may be nil

	nsubs atomic.Int32

	mu     sync.Mutex
	ring   []Event // fixed-capacity circular buffer
	next   int     // ring index of the next write
	filled bool
	seq    uint64
	subs   map[*Subscriber]struct{}
	closed bool
}

// NewBus returns a bus whose ring retains the ringCap most recent events
// (ringCap <= 0 defaults to 256). published and dropped, when non-nil,
// count every published event and every per-subscriber drop.
func NewBus(ringCap int, published, dropped *Counter) *Bus {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &Bus{
		published: published,
		dropped:   dropped,
		ring:      make([]Event, ringCap),
		subs:      make(map[*Subscriber]struct{}),
	}
}

// HasSubscribers reports whether anyone is listening — a single atomic
// load, cheap enough to gate event construction on a hot-ish path.
func (b *Bus) HasSubscribers() bool { return b.nsubs.Load() > 0 }

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int { return int(b.nsubs.Load()) }

// Publish assigns the event a sequence number and timestamp (when unset),
// appends it to the ring and fans it out to every subscriber without
// blocking. Publishing on a closed bus is a no-op.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.ring[b.next] = ev
	b.next++
	if b.next == len(b.ring) {
		b.next, b.filled = 0, true
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			if b.dropped != nil {
				b.dropped.Inc()
			}
		}
	}
	b.mu.Unlock()
	if b.published != nil {
		b.published.Inc()
	}
}

// Subscriber is one bus subscription. Read events from C; the channel is
// closed when the bus closes. Call Close to detach.
type Subscriber struct {
	// C delivers events in publish order (minus drops).
	C       <-chan Event
	ch      chan Event
	bus     *Bus
	dropped atomic.Int64
	once    sync.Once
}

// Dropped returns the number of events this subscriber was too slow to
// receive.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscriber from the bus and closes C, so a consumer
// can drain buffered events with a range loop. Safe to call more than once
// and safe against a concurrent Bus.Close.
func (s *Subscriber) Close() {
	b := s.bus
	b.mu.Lock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		b.nsubs.Add(-1)
	}
	b.mu.Unlock()
	// Closing happens strictly after detaching: publishers only send to
	// subscribers present in b.subs while holding b.mu.
	s.once.Do(func() { close(s.ch) })
}

// Subscribe attaches a subscriber with a delivery buffer of buf events
// (buf <= 0 defaults to 64). replay > 0 preloads up to that many of the
// most recent ring events (capped by the buffer size) so a new consumer
// sees recent history before the live stream. Returns nil if the bus is
// closed.
func (b *Bus) Subscribe(buf, replay int) *Subscriber {
	if buf <= 0 {
		buf = 64
	}
	s := &Subscriber{ch: make(chan Event, buf), bus: b}
	s.C = s.ch
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	if replay > buf {
		replay = buf
	}
	if replay > 0 {
		for _, ev := range b.tailLocked(replay) {
			s.ch <- ev
		}
	}
	b.subs[s] = struct{}{}
	b.nsubs.Add(1)
	return s
}

// tailLocked returns the n most recent ring events in publish order.
// Callers hold b.mu.
func (b *Bus) tailLocked(n int) []Event {
	size := b.next
	if b.filled {
		size = len(b.ring)
	}
	if n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := size - n; i < size; i++ {
		idx := i
		if b.filled {
			idx = (b.next + len(b.ring) - size + i) % len(b.ring)
		}
		out = append(out, b.ring[idx])
	}
	return out
}

// Close closes the bus: every subscriber's channel is closed and further
// publishes are dropped.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	detached := make([]*Subscriber, 0, len(b.subs))
	for s := range b.subs {
		detached = append(detached, s)
		delete(b.subs, s)
		b.nsubs.Add(-1)
	}
	b.mu.Unlock()
	for _, s := range detached {
		s.once.Do(func() { close(s.ch) })
	}
}

// reqIDKey is the context key RequestID helpers use.
type reqIDKey struct{}

// reqIDFallback seeds ids when crypto/rand fails (it effectively never
// does; the counter keeps ids unique regardless).
var reqIDFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqIDFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns ctx carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom extracts the request id from ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint parses a Prometheus text exposition (format 0.0.4) and returns
// every violation found: samples without a paired # HELP/# TYPE, duplicate
// metric or sample names, invalid metric/label syntax, unparseable values,
// and histograms whose cumulative buckets decrease, miss the +Inf bound or
// disagree with their _count. A nil return means the exposition is valid.
//
// It is the checker behind the service's exposition-validity test and
// cmd/expolint (which CI runs against a live daemon's /v1/metrics).
func Lint(r io.Reader) []error {
	l := &linter{
		help:    map[string]string{},
		types:   map[string]string{},
		seen:    map[string]bool{},
		sampled: map[string]bool{},
		hists:   map[string]map[string]*histCheck{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, strings.TrimRight(sc.Text(), " \t"))
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("read: %w", err))
	}
	l.finish()
	return l.errs
}

type histCheck struct {
	bounds []float64
	counts []uint64
	hasInf bool
	inf    uint64
	count  *uint64
}

type linter struct {
	errs    []error
	help    map[string]string
	types   map[string]string
	seen    map[string]bool // full sample identity (name + sorted labels)
	sampled map[string]bool // family has at least one sample
	hists   map[string]map[string]*histCheck
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, s string) {
	switch {
	case s == "":
		return
	case strings.HasPrefix(s, "# HELP "):
		rest := s[len("# HELP "):]
		name, _, _ := strings.Cut(rest, " ")
		if !validMetricName(name) {
			l.errf(n, "invalid metric name %q in HELP", name)
			return
		}
		if _, dup := l.help[name]; dup {
			l.errf(n, "duplicate # HELP for %s", name)
			return
		}
		l.help[name] = rest
	case strings.HasPrefix(s, "# TYPE "):
		fields := strings.Fields(s[len("# TYPE "):])
		if len(fields) != 2 {
			l.errf(n, "malformed TYPE line %q", s)
			return
		}
		name, typ := fields[0], fields[1]
		if !validMetricName(name) {
			l.errf(n, "invalid metric name %q in TYPE", name)
			return
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown metric type %q for %s", typ, name)
		}
		if _, dup := l.types[name]; dup {
			l.errf(n, "duplicate # TYPE for %s", name)
			return
		}
		if l.sampled[name] {
			l.errf(n, "# TYPE for %s appears after its samples", name)
		}
		l.types[name] = typ
	case strings.HasPrefix(s, "#"):
		return // other comments are legal and unchecked
	default:
		l.sample(n, s)
	}
}

// family maps a sample name to the family its HELP/TYPE pair is declared
// under: histogram (and summary) samples use suffixed series names.
func (l *linter) family(sampleName string) (string, bool) {
	if _, ok := l.types[sampleName]; ok {
		return sampleName, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sampleName, suffix); ok {
			if t := l.types[base]; t == "histogram" || t == "summary" {
				return base, true
			}
		}
	}
	return sampleName, false
}

func (l *linter) sample(n int, s string) {
	name, labels, value, err := parseSample(s)
	if err != nil {
		l.errf(n, "%v", err)
		return
	}
	fam, known := l.family(name)
	if !known {
		l.errf(n, "sample %s has no preceding # TYPE", name)
	} else {
		if _, ok := l.help[fam]; !ok {
			l.errf(n, "sample %s has # TYPE but no # HELP for %s", name, fam)
		}
	}
	l.sampled[fam] = true

	identity := name + "|" + canonicalLabels(labels)
	if l.seen[identity] {
		l.errf(n, "duplicate sample %s{%s}", name, canonicalLabels(labels))
	}
	l.seen[identity] = true

	if l.types[fam] == "histogram" {
		l.histSample(n, fam, name, labels, value)
	}
}

// histSample accumulates histogram series for the cross-line checks run
// in finish().
func (l *linter) histSample(n int, fam, name string, labels map[string]string, value float64) {
	// Key the histogram instance by its labels minus le.
	rest := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			rest[k] = v
		}
	}
	key := canonicalLabels(rest)
	if l.hists[fam] == nil {
		l.hists[fam] = map[string]*histCheck{}
	}
	h := l.hists[fam][key]
	if h == nil {
		h = &histCheck{}
		l.hists[fam][key] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le, ok := labels["le"]
		if !ok {
			l.errf(n, "%s_bucket sample without an le label", fam)
			return
		}
		if le == "+Inf" {
			h.hasInf = true
			h.inf = uint64(value)
			return
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			l.errf(n, "%s_bucket le=%q is not a number", fam, le)
			return
		}
		h.bounds = append(h.bounds, bound)
		h.counts = append(h.counts, uint64(value))
	case strings.HasSuffix(name, "_count"):
		c := uint64(value)
		h.count = &c
	}
}

func (l *linter) finish() {
	// Paired HELP/TYPE: every declared family must have both.
	var names []string
	for name := range l.help {
		names = append(names, name)
	}
	for name := range l.types {
		if _, ok := l.help[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := l.help[name]; !ok {
			l.errs = append(l.errs, fmt.Errorf("family %s has # TYPE but no # HELP", name))
		}
		if _, ok := l.types[name]; !ok {
			l.errs = append(l.errs, fmt.Errorf("family %s has # HELP but no # TYPE", name))
		}
	}
	// Histogram coherence.
	var fams []string
	for fam := range l.hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		var keys []string
		for key := range l.hists[fam] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			h := l.hists[fam][key]
			at := fam
			if key != "" {
				at = fam + "{" + key + "}"
			}
			if !h.hasInf {
				l.errs = append(l.errs, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", at))
			}
			prev := uint64(0)
			prevBound := math.Inf(-1)
			for i, b := range h.bounds {
				if b <= prevBound {
					l.errs = append(l.errs, fmt.Errorf("histogram %s buckets not sorted by le", at))
					break
				}
				if h.counts[i] < prev {
					l.errs = append(l.errs, fmt.Errorf("histogram %s cumulative counts decrease at le=%g", at, b))
					break
				}
				prev, prevBound = h.counts[i], b
			}
			if h.hasInf && h.inf < prev {
				l.errs = append(l.errs, fmt.Errorf("histogram %s +Inf bucket below its last finite bucket", at))
			}
			if h.count == nil {
				l.errs = append(l.errs, fmt.Errorf("histogram %s has no _count series", at))
			} else if h.hasInf && *h.count != h.inf {
				l.errs = append(l.errs, fmt.Errorf("histogram %s _count %d != +Inf bucket %d", at, *h.count, h.inf))
			}
		}
	}
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(s string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(s) && isNameChar(s[i], i == 0) {
		i++
	}
	name = s[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name at %q", s)
	}
	labels = map[string]string{}
	if i < len(s) && s[i] == '{' {
		rest, err2 := parseLabels(s[i+1:], labels)
		if err2 != nil {
			return "", nil, 0, fmt.Errorf("sample %s: %w", name, err2)
		}
		i = len(s) - len(rest)
	}
	rest := strings.TrimLeft(s[i:], " \t")
	if rest == "" {
		return "", nil, 0, fmt.Errorf("sample %s has no value", name)
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %s has trailing garbage %q", name, rest)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s value %q: %w", name, fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %s timestamp %q is not an integer", name, fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes `k="v",...}` and returns what follows the brace.
func parseLabels(s string, out map[string]string) (rest string, err error) {
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return s[1:], nil
		}
		i := 0
		for i < len(s) && isNameChar(s[i], i == 0) {
			i++
		}
		key := s[:i]
		if !validLabelName(key) {
			return "", fmt.Errorf("invalid label name at %q", s)
		}
		s = s[i:]
		if !strings.HasPrefix(s, `="`) {
			return "", fmt.Errorf("label %s not followed by =\"", key)
		}
		s = s[2:]
		var val strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("unterminated value for label %s", key)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return "", fmt.Errorf("dangling escape in label %s", key)
				}
				switch s[1] {
				case '\\', '"':
					val.WriteByte(s[1])
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("invalid escape \\%c in label %s", s[1], key)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		if _, dup := out[key]; dup {
			return "", fmt.Errorf("duplicate label %s", key)
		}
		out[key] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		return "", fmt.Errorf("expected , or } after label %s", key)
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + labels[k] + `"`
	}
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.Contains(s, ":") {
		return false
	}
	return validMetricName(s)
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

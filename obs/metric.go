package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Inc and Add are single
// atomic operations — safe (and intended) for hot loops.
type Counter struct {
	desc Desc
	v    atomic.Int64
}

// Inc adds one.
//
//consensus:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error; they are applied
// anyway rather than paying a branch on the hot path).
//
//consensus:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) Describe() Desc { return c.desc }
func (c *Counter) Collect() []Sample {
	return []Sample{{Value: float64(c.v.Load())}}
}

// Counter creates and registers an unlabeled counter.
func (r *Registry) Counter(name, jsonName, help string) *Counter {
	c := &Counter{desc: Desc{Name: name, JSONName: jsonName, Help: help, Type: "counter"}}
	r.Register(c)
	return c
}

// Gauge is a settable up/down metric (in-flight work, pool occupancy).
// All methods are single atomic operations.
type Gauge struct {
	desc Desc
	v    atomic.Int64
}

// Inc adds one.
//
//consensus:hotpath
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
//
//consensus:hotpath
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
//
//consensus:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
//
//consensus:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) Describe() Desc { return g.desc }
func (g *Gauge) Collect() []Sample {
	return []Sample{{Value: float64(g.v.Load())}}
}

// Gauge creates and registers an unlabeled settable gauge.
func (r *Registry) Gauge(name, jsonName, help string) *Gauge {
	g := &Gauge{desc: Desc{Name: name, JSONName: jsonName, Help: help, Type: "gauge"}}
	r.Register(g)
	return g
}

// funcMetric is a scalar whose value is computed at collect time — the
// shape of gauges derived from live state (queue depth, uptime, store
// size) and of counters owned by another subsystem (store stats).
type funcMetric struct {
	desc Desc
	fn   func() float64
}

func (g *funcMetric) Describe() Desc    { return g.desc }
func (g *funcMetric) Collect() []Sample { return []Sample{{Value: g.fn()}} }

// GaugeFunc registers a gauge computed by fn at every walk.
func (r *Registry) GaugeFunc(name, jsonName, help string, fn func() float64) {
	r.Register(&funcMetric{desc: Desc{Name: name, JSONName: jsonName, Help: help, Type: "gauge"}, fn: fn})
}

// CounterFunc registers a counter whose value another subsystem owns
// (e.g. persistent-store statistics); fn is read at every walk.
func (r *Registry) CounterFunc(name, jsonName, help string, fn func() float64) {
	r.Register(&funcMetric{desc: Desc{Name: name, JSONName: jsonName, Help: help, Type: "counter"}, fn: fn})
}

// infoMetric is a constant-1 gauge carrying identity labels
// (consensusd_build_info style).
type infoMetric struct {
	desc   Desc
	values []string
}

func (i *infoMetric) Describe() Desc    { return i.desc }
func (i *infoMetric) Collect() []Sample { return []Sample{{LabelValues: i.values, Value: 1}} }

// Info registers a constant gauge of value 1 whose labels carry build or
// runtime identity (version, go runtime).
func (r *Registry) Info(name, jsonName, help string, labels, values []string) {
	r.Register(&infoMetric{
		desc:   Desc{Name: name, JSONName: jsonName, Help: help, Type: "gauge", Labels: labels},
		values: values,
	})
}

// vec is the shared label-resolution machinery of CounterVec and
// HistogramVec: a mutex-guarded map from joined label values to the child
// metric. With is meant to be called once per run/request to resolve a
// child handle; the handle's updates are then lock-free.
type vec[T any] struct {
	mu       sync.Mutex
	children map[string]*T
	values   map[string][]string
	newChild func() *T
}

func newVec[T any](newChild func() *T) vec[T] {
	return vec[T]{children: map[string]*T{}, values: map[string][]string{}, newChild: newChild}
}

func (v *vec[T]) with(labelValues []string) *T {
	key := join(labelValues)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := v.newChild()
	v.children[key] = c
	vals := make([]string, len(labelValues))
	copy(vals, labelValues)
	v.values[key] = vals
	return c
}

// snapshot returns the children in sorted-key order, so the exposition
// (Prometheus text and JSON alike) is canonical regardless of which
// request first resolved which child.
func (v *vec[T]) snapshot() (keys []string, children []*T, values [][]string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys = make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, v.children[k])
		values = append(values, v.values[k])
	}
	return
}

// join concatenates label values with a separator that cannot appear in
// practice (0xff) so distinct value tuples cannot collide.
func join(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	n := 0
	for _, s := range values {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, 0xff)
		}
		b = append(b, s...)
	}
	return string(b)
}

// CounterVec is a labeled counter family. Resolve a child with With once,
// then update it lock-free.
type CounterVec struct {
	desc Desc
	vec  vec[Counter]
}

// With returns the child counter for the given label values (created on
// first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.vec.with(labelValues)
}

func (v *CounterVec) Describe() Desc { return v.desc }
func (v *CounterVec) Collect() []Sample {
	_, children, values := v.vec.snapshot()
	out := make([]Sample, len(children))
	for i, c := range children {
		out[i] = Sample{LabelValues: values[i], Value: float64(c.v.Load())}
	}
	return out
}

// CounterVec creates and registers a labeled counter family.
func (r *Registry) CounterVec(name, jsonName, help string, labels ...string) *CounterVec {
	v := &CounterVec{
		desc: Desc{Name: name, JSONName: jsonName, Help: help, Type: "counter", Labels: labels},
		vec:  newVec(func() *Counter { return &Counter{} }),
	}
	r.Register(v)
	return v
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestHistogramBuckets pins the log2 bucketing: values land in the bucket
// whose upper bound is the next 2^i-1, counts are cumulative, and the
// scale only affects exposition.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "test_seconds", "help", 1)
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 111 { // -5 clamps to 0
		t.Fatalf("sum = %g, want 111", h.Sum())
	}
	d := h.data()
	// Buckets: 0 → {0,-5}=2; 1 → {1,1}=2 (cum 4); ≤3 → {2,3}=2 (cum 6);
	// ≤7 → {4}=1 (cum 7); ≤127 → {100}=1 (cum 8).
	want := []Bucket{{0, 2}, {1, 4}, {3, 6}, {7, 7}, {127, 8}}
	if len(d.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", d.Buckets, want)
	}
	for i, b := range want {
		if d.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, d.Buckets[i], b)
		}
	}
}

func TestHistogramScale(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", "dur_seconds", "help", 1e-9)
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("scaled sum = %g, want 1.5", got)
	}
	d := h.data()
	if len(d.Buckets) != 1 || d.Buckets[0].UpperBound < 1.5 || d.Buckets[0].UpperBound > 4.3 {
		t.Fatalf("scaled bucket bounds wrong: %+v", d.Buckets)
	}
}

// TestHistogramOverflow: values beyond the last finite bucket appear only
// under +Inf, and the exposition stays lint-clean.
func TestHistogramOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("big", "big", "help", 1)
	h.Observe(math.MaxInt64)
	h.Observe(1)
	d := h.data()
	for _, b := range d.Buckets {
		if b.Count > 1 {
			t.Fatalf("overflow leaked into a finite bucket: %+v", d.Buckets)
		}
	}
	if d.Count != 2 {
		t.Fatalf("count = %d, want 2", d.Count)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if errs := Lint(bytes.NewReader(buf.Bytes())); len(errs) != 0 {
		t.Fatalf("overflow exposition fails lint: %v\n%s", errs, buf.String())
	}
}

// TestDualExposition: the JSON and Prometheus views of one registry carry
// exactly the same families — the anti-drift guarantee — and the text
// form passes the linter.
func TestDualExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("consensusd_things_total", "things", "Things counted.")
	c.Add(3)
	v := r.CounterVec("consensusd_kinds_total", "kinds", "Per-kind things.", "kind")
	v.With("median").Add(2)
	v.With("gossip").Inc()
	r.GaugeFunc("consensusd_depth", "depth", "A gauge.", func() float64 { return 7 })
	hv := r.HistogramVec("consensusd_lat_seconds", "lat_seconds", "Latency.", 1e-9, "kind")
	hv.With("median").ObserveDuration(3 * time.Millisecond)
	r.Info("consensusd_build_info", "build_info", "Build identity.",
		[]string{"version", "go"}, []string{"v1", "go1.24"})
	r.Histogram("consensusd_empty_seconds", "empty_seconds", "Never observed.", 1e-9)

	families := r.Gather()
	jm := r.JSONMap()
	if len(jm) != len(families) {
		t.Fatalf("JSON has %d families, walk has %d", len(jm), len(families))
	}
	for _, f := range families {
		if _, ok := jm[f.JSONName]; !ok {
			t.Fatalf("family %s missing from the JSON exposition", f.Name)
		}
	}
	var buf bytes.Buffer
	WriteFamilies(&buf, families)
	text := buf.String()
	for _, f := range families {
		if !strings.Contains(text, "# TYPE "+f.Name+" ") {
			t.Fatalf("family %s missing from the Prometheus exposition:\n%s", f.Name, text)
		}
	}
	if errs := Lint(strings.NewReader(text)); len(errs) != 0 {
		t.Fatalf("exposition fails lint: %v\n%s", errs, text)
	}
	// Spot-check shapes.
	if jm["things"].(float64) != 3 {
		t.Fatalf("things = %v", jm["things"])
	}
	kinds := jm["kinds"].(map[string]any)
	if kinds["kind=median"].(float64) != 2 || kinds["kind=gossip"].(float64) != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if !strings.Contains(text, `consensusd_kinds_total{kind="median"} 2`) {
		t.Fatalf("labeled counter missing:\n%s", text)
	}
	if !strings.Contains(text, `consensusd_build_info{version="v1",go="go1.24"} 1`) {
		t.Fatalf("info gauge missing:\n%s", text)
	}
	if !strings.Contains(text, `consensusd_lat_seconds_bucket{kind="median",le="+Inf"} 1`) {
		t.Fatalf("histogram +Inf bucket missing:\n%s", text)
	}
	// The JSON view survives a marshal round-trip (it is the /v1/metrics body).
	if _, err := json.Marshal(jm); err != nil {
		t.Fatalf("JSON exposition does not marshal: %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", "help")
	for _, dup := range []func(){
		func() { r.Counter("a_total", "a2", "help") },
		func() { r.Counter("b_total", "a", "help") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("duplicate registration must panic")
				}
			}()
			dup()
		}()
	}
}

// TestLintCatchesViolations feeds the linter known-bad expositions.
func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"missing TYPE":       "# HELP a_total help\na_total 1\n",
		"missing HELP":       "# TYPE a_total counter\na_total 1\n",
		"duplicate TYPE":     "# HELP a help\n# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate sample":   "# HELP a help\n# TYPE a counter\na 1\na 2\n",
		"bad name":           "# HELP a help\n# TYPE a counter\na 1\n0bad 2\n",
		"bad label syntax":   "# HELP a help\n# TYPE a counter\na{x=\"unterminated} 1\n",
		"bad value":          "# HELP a help\n# TYPE a counter\na pizza\n",
		"type after sample":  "a 1\n# HELP a help\n# TYPE a counter\n",
		"histogram no +Inf":  "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram shrinks":  "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count != +Inf":      "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		"duplicate label":    "# HELP a help\n# TYPE a counter\na{k=\"1\",k=\"2\"} 1\n",
		"unpaired histogram": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, body := range cases {
		if errs := Lint(strings.NewReader(body)); len(errs) == 0 {
			t.Errorf("%s: lint found nothing wrong in:\n%s", name, body)
		}
	}
	good := "# HELP a_total help text\n# TYPE a_total counter\na_total{kind=\"x y\",other=\"a\\\"b\"} 12 1700000000\n" +
		"# HELP h help\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n"
	if errs := Lint(strings.NewReader(good)); len(errs) != 0 {
		t.Errorf("lint rejected a valid exposition: %v", errs)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	r := NewRegistry()
	pub := r.Counter("pub_total", "pub", "published")
	drop := r.Counter("drop_total", "drop", "dropped")
	b := NewBus(8, pub, drop)
	if b.HasSubscribers() {
		t.Fatal("fresh bus has no subscribers")
	}
	b.Publish(Event{Type: "pre.1"})
	b.Publish(Event{Type: "pre.2"})

	sub := b.Subscribe(16, 10) // replay wants more than exists: gets both
	if !b.HasSubscribers() {
		t.Fatal("subscriber not counted")
	}
	b.Publish(Event{Type: "live.1", Job: "r-1"})

	got := []Event{<-sub.C, <-sub.C, <-sub.C}
	if got[0].Type != "pre.1" || got[1].Type != "pre.2" || got[2].Type != "live.1" {
		t.Fatalf("events out of order: %+v", got)
	}
	if got[0].Seq >= got[1].Seq || got[1].Seq >= got[2].Seq {
		t.Fatalf("sequence numbers not increasing: %+v", got)
	}
	if got[2].Time.IsZero() {
		t.Fatal("publish must stamp the time")
	}
	sub.Close()
	if b.HasSubscribers() {
		t.Fatal("closed subscriber still counted")
	}
	if pub.Value() != 3 || drop.Value() != 0 {
		t.Fatalf("pub=%d drop=%d, want 3/0", pub.Value(), drop.Value())
	}
}

// TestBusSlowConsumer: a full subscriber buffer drops events (counted)
// without blocking the publisher.
func TestBusSlowConsumer(t *testing.T) {
	r := NewRegistry()
	drop := r.Counter("drop_total", "drop", "dropped")
	b := NewBus(64, nil, drop)
	sub := b.Subscribe(2, 0)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: "e"})
	}
	if sub.Dropped() != 8 || drop.Value() != 8 {
		t.Fatalf("dropped=%d counter=%d, want 8/8", sub.Dropped(), drop.Value())
	}
	// The two buffered events are still delivered; their seqs show the gap.
	first, second := <-sub.C, <-sub.C
	if first.Seq != 1 || second.Seq != 2 {
		t.Fatalf("buffered events have seqs %d,%d, want 1,2", first.Seq, second.Seq)
	}
}

func TestBusRingWraps(t *testing.T) {
	b := NewBus(4, nil, nil)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Round: i})
	}
	sub := b.Subscribe(8, 4)
	for want := 6; want < 10; want++ {
		ev := <-sub.C
		if ev.Round != want {
			t.Fatalf("replayed round %d, want %d", ev.Round, want)
		}
	}
}

func TestBusClose(t *testing.T) {
	b := NewBus(4, nil, nil)
	sub := b.Subscribe(4, 0)
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("subscriber channel must be closed")
	}
	b.Publish(Event{Type: "late"}) // must not panic
	if b.Subscribe(4, 0) != nil {
		t.Fatal("subscribe on a closed bus must return nil")
	}
}

func TestRunTrackerThrottle(t *testing.T) {
	r := NewRegistry()
	rounds := r.Counter("rounds_total", "rounds", "rounds")
	b := NewBus(64, nil, nil)
	sub := b.Subscribe(64, 0)
	tr := NewRunTracker(rounds, b, 4, Event{Type: "job.progress", Job: "r-9"})
	for i := 1; i <= 10; i++ {
		tr.Tick(i)
	}
	if rounds.Value() != 10 {
		t.Fatalf("rounds = %d, want 10", rounds.Value())
	}
	sub.Close()
	b.Close()
	var got []Event
	for ev := range sub.C {
		got = append(got, ev)
	}
	if len(got) != 2 || got[0].Round != 4 || got[1].Round != 8 {
		t.Fatalf("progress events = %+v, want rounds 4 and 8", got)
	}
	if got[0].Job != "r-9" || got[0].Type != "job.progress" {
		t.Fatalf("prototype fields lost: %+v", got[0])
	}
}

// TestRunTrackerNoSubscribersNoAllocs: the per-round hot path allocates
// nothing when no one is watching — the property BenchmarkObservedRun
// quantifies end to end.
func TestRunTrackerNoAllocs(t *testing.T) {
	r := NewRegistry()
	rounds := r.Counter("rounds_total", "rounds", "rounds")
	b := NewBus(64, nil, nil)
	tr := NewRunTracker(rounds, b, 256, Event{Type: "job.progress"})
	n := 0
	if allocs := testing.AllocsPerRun(1000, func() { n++; tr.Tick(n) }); allocs != 0 {
		t.Fatalf("Tick allocates %v per round with no subscribers", allocs)
	}
	// With a subscriber the throttled publish path must also stay
	// allocation-free: the event is copied by value into the
	// preallocated ring and channel buffer.
	sub := b.Subscribe(4096, 0)
	defer sub.Close()
	if allocs := testing.AllocsPerRun(1000, func() { n++; tr.Tick(n) }); allocs != 0 {
		t.Fatalf("Tick allocates %v per round with a subscriber", allocs)
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("request ids %q %q must be 16 hex chars and distinct", a, b)
	}
	ctx := WithRequestID(t.Context(), a)
	if RequestIDFrom(ctx) != a {
		t.Fatal("request id lost in context")
	}
	if RequestIDFrom(t.Context()) != "" {
		t.Fatal("absent request id must read empty")
	}
}

package obs

// RunTracker instruments one run's per-round observer hot loop. Tick is
// allocation-free: one counter add, one modulo, and — only when the
// throttle window elapses AND someone is subscribed to the bus — one
// event publish. The event prototype (type, job id, kind, request id) is
// assembled once at construction, never per round, so observation cannot
// perturb the loop it measures (see BenchmarkObservedRun).
type RunTracker struct {
	rounds *Counter // per-kind rounds counter, resolved once per run; may be nil
	bus    *Bus     // may be nil
	every  uint64
	ticks  uint64
	proto  Event
}

// NewRunTracker returns a tracker that adds every tick to rounds and
// publishes a copy of proto (with Round filled in) on bus every `every`
// ticks (every <= 0 defaults to 256). rounds and bus may be nil.
func NewRunTracker(rounds *Counter, bus *Bus, every int, proto Event) *RunTracker {
	if every <= 0 {
		every = 256
	}
	return &RunTracker{rounds: rounds, bus: bus, every: uint64(every), proto: proto}
}

// Tick records one observed round. round is the engine-reported round
// number carried on throttled progress events.
//
//consensus:hotpath
func (t *RunTracker) Tick(round int) {
	if t.rounds != nil {
		t.rounds.Inc()
	}
	t.ticks++
	if t.bus == nil || t.ticks%t.every != 0 || !t.bus.HasSubscribers() {
		return
	}
	ev := t.proto
	ev.Round = round
	t.bus.Publish(ev)
}

// Ticks returns the number of rounds observed so far.
func (t *RunTracker) Ticks() uint64 { return t.ticks }

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the number of log2 buckets a histogram carries. Bucket 0
// holds the value 0; bucket i (i >= 1) holds values v with
// 2^(i-1) <= v < 2^i; everything at or beyond 2^(numBuckets-1) lands in
// the last bucket (rendered only under +Inf). 40 buckets cover about 18
// minutes at nanosecond resolution — and 2^39 rounds — before overflow.
const numBuckets = 40

// Histogram is a lock-free log2-bucketed histogram over non-negative
// int64 values. Observe is three atomic adds and zero allocations, safe
// for hot paths. Values are raw integers (nanoseconds for durations,
// plain counts for things like rounds per run); the configured scale is
// applied only at exposition time, so a duration histogram scrapes in
// seconds while observing in nanoseconds.
type Histogram struct {
	desc    Desc
	scale   float64
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (negative values clamp to 0).
//
//consensus:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= numBuckets {
		i = numBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// ObserveDuration records a duration in nanoseconds; pair it with scale
// 1e-9 so the exposition reads in seconds.
//
//consensus:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the scaled sum of observations.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) * h.scale }

// data snapshots the histogram into sparse cumulative buckets. The last
// bucket (overflow) is intentionally folded into +Inf only.
func (h *Histogram) data() *HistogramData {
	d := &HistogramData{Count: h.count.Load(), Sum: float64(h.sum.Load()) * h.scale}
	cum := uint64(0)
	for i := 0; i < numBuckets-1; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		// Upper bound of bucket i is 2^i - 1 (inclusive), scaled.
		d.Buckets = append(d.Buckets, Bucket{
			UpperBound: float64(uint64(1)<<uint(i)-1) * h.scale,
			Count:      cum,
		})
	}
	return d
}

func (h *Histogram) Describe() Desc { return h.desc }
func (h *Histogram) Collect() []Sample {
	return []Sample{{Hist: h.data()}}
}

// Histogram creates and registers an unlabeled histogram. scale converts
// raw observed values to the exposed unit (1e-9 for ns→s; 1 for counts).
func (r *Registry) Histogram(name, jsonName, help string, scale float64) *Histogram {
	h := &Histogram{desc: Desc{Name: name, JSONName: jsonName, Help: help, Type: "histogram"}, scale: scale}
	r.Register(h)
	return h
}

// HistogramVec is a labeled histogram family. Resolve a child with With
// once per run/request, then Observe lock-free.
type HistogramVec struct {
	desc  Desc
	scale float64
	vec   vec[Histogram]
}

// With returns the child histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.vec.with(labelValues)
}

func (v *HistogramVec) Describe() Desc { return v.desc }
func (v *HistogramVec) Collect() []Sample {
	_, children, values := v.vec.snapshot()
	out := make([]Sample, len(children))
	for i, h := range children {
		out[i] = Sample{LabelValues: values[i], Hist: h.data()}
	}
	return out
}

// HistogramVec creates and registers a labeled histogram family.
func (r *Registry) HistogramVec(name, jsonName, help string, scale float64, labels ...string) *HistogramVec {
	v := &HistogramVec{
		desc:  Desc{Name: name, JSONName: jsonName, Help: help, Type: "histogram", Labels: labels},
		scale: scale,
		vec:   newVec(func() *Histogram { return &Histogram{scale: scale} }),
	}
	r.Register(v)
	return v
}

// Package obs is the service's observability toolkit: a metric registry
// whose JSON and Prometheus text expositions are both rendered from one
// registry walk (a metric cannot appear in one format and not the other),
// lock-free log-bucketed latency histograms, labeled counter and gauge
// vectors, a subscribable ring-buffer event bus for live NDJSON streams,
// an allocation-free per-run observer tracker, request-id helpers, and a
// Prometheus exposition linter. It depends only on the standard library
// and carries no knowledge of the service's job model — the service
// package composes these pieces.
//
// The design constraint throughout is that observation may not perturb
// the hot loop: every per-round code path (Counter.Inc, Histogram.Observe,
// RunTracker.Tick) is a handful of atomic operations with zero
// allocations; map lookups, label resolution and locking happen once per
// run or once per scrape, never once per round.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Desc describes one metric family: its Prometheus family name, the key it
// appears under in the JSON exposition, its help text, its type and its
// label names (nil for unlabeled metrics).
type Desc struct {
	Name     string
	JSONName string
	Help     string
	Type     string // "counter", "gauge" or "histogram"
	Labels   []string
}

// Sample is one measured point of a family: the label values (aligned with
// Desc.Labels) and either a scalar value or histogram data.
type Sample struct {
	LabelValues []string
	Value       float64
	Hist        *HistogramData
}

// HistogramData is a histogram sample's state: total count, scaled sum and
// the sparse cumulative buckets (sorted by ascending upper bound, only
// boundaries with direct hits included — cumulative counts stay valid).
type HistogramData struct {
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Bucket is one cumulative histogram bucket: the count of observations at
// or below UpperBound.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// Family is one metric family with its current samples — the unit of a
// registry walk. Both expositions render from the same []Family.
type Family struct {
	Desc
	Samples []Sample
}

// Collector is anything the registry can walk: it describes one family and
// reports its current samples.
type Collector interface {
	Describe() Desc
	Collect() []Sample
}

// Registry holds the registered metric families. The zero value is not
// usable; create with NewRegistry. Registration is typically done once at
// startup; Gather may be called concurrently with metric updates.
type Registry struct {
	mu     sync.Mutex
	byName map[string]Collector
	byJSON map[string]Collector
	order  []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]Collector),
		byJSON: make(map[string]Collector),
	}
}

// Register adds a collector. It panics on a duplicate family or JSON name:
// duplicates are a programming error that would corrupt both expositions.
func (r *Registry) Register(c Collector) {
	d := c.Describe()
	if d.Name == "" || d.JSONName == "" {
		panic("obs: metric registered without a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Name]; dup {
		panic("obs: duplicate metric name " + d.Name)
	}
	if _, dup := r.byJSON[d.JSONName]; dup {
		panic("obs: duplicate metric JSON name " + d.JSONName)
	}
	r.byName[d.Name] = c
	r.byJSON[d.JSONName] = c
	r.order = append(r.order, c)
}

// Gather walks every registered collector and returns the families sorted
// by name — the single source both expositions render from.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	collectors := make([]Collector, len(r.order))
	copy(collectors, r.order)
	r.mu.Unlock()
	out := make([]Family, 0, len(collectors))
	for _, c := range collectors {
		out = append(out, Family{Desc: c.Describe(), Samples: c.Collect()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistogramJSON is the JSON exposition of one histogram sample.
type HistogramJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets maps each upper bound (formatted like the Prometheus le
	// label) to its cumulative count.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// JSONMap renders one registry walk as the JSON exposition: every family
// keyed by its JSON name. Unlabeled scalars become numbers; labeled
// scalars become objects keyed by "label=value[,label2=value2]"; histograms
// become HistogramJSON objects (nested one level for labeled histograms).
// Families with no samples yet still appear (scalars as 0, vectors as
// empty objects), so the JSON view always lists the full catalogue.
func (r *Registry) JSONMap() map[string]any {
	return familiesJSON(r.Gather())
}

func familiesJSON(families []Family) map[string]any {
	out := make(map[string]any, len(families))
	for _, f := range families {
		if len(f.Labels) == 0 {
			if f.Type == "histogram" {
				var h HistogramData
				if len(f.Samples) > 0 && f.Samples[0].Hist != nil {
					h = *f.Samples[0].Hist
				}
				out[f.JSONName] = histJSON(h)
				continue
			}
			var v float64
			if len(f.Samples) > 0 {
				v = f.Samples[0].Value
			}
			out[f.JSONName] = v
			continue
		}
		m := make(map[string]any, len(f.Samples))
		for _, s := range f.Samples {
			key := labelKey(f.Labels, s.LabelValues)
			if s.Hist != nil {
				m[key] = histJSON(*s.Hist)
			} else {
				m[key] = s.Value
			}
		}
		out[f.JSONName] = m
	}
	return out
}

func histJSON(h HistogramData) HistogramJSON {
	j := HistogramJSON{Count: h.Count, Sum: h.Sum}
	if len(h.Buckets) > 0 {
		j.Buckets = make(map[string]uint64, len(h.Buckets))
		for _, b := range h.Buckets {
			j.Buckets[formatBound(b.UpperBound)] = b.Count
		}
	}
	return j
}

// labelKey renders label values as "k=v,k2=v2" — the JSON exposition's
// sample key.
func labelKey(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		if i < len(values) {
			b.WriteString(values[i])
		}
	}
	return b.String()
}

// WritePrometheus renders one registry walk in the Prometheus text
// exposition format (version 0.0.4): every family gets exactly one
// # HELP/# TYPE pair followed by its samples; histograms expand to
// _bucket{le=...}, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	WriteFamilies(w, r.Gather())
}

// WriteFamilies renders pre-gathered families as Prometheus text — split
// out so a snapshot can be rendered without a second walk.
func WriteFamilies(w io.Writer, families []Family) {
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
		if f.Type == "histogram" {
			for _, s := range f.Samples {
				writeHistSample(w, f, s)
			}
			continue
		}
		if len(f.Labels) == 0 && len(f.Samples) == 0 {
			// An unlabeled scalar always has a current value.
			fmt.Fprintf(w, "%s 0\n", f.Name)
			continue
		}
		for _, s := range f.Samples {
			fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(f.Labels, s.LabelValues, "", 0), formatValue(s.Value))
		}
	}
}

func writeHistSample(w io.Writer, f Family, s Sample) {
	if s.Hist == nil {
		return
	}
	h := s.Hist
	for _, b := range h.Buckets {
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(f.Labels, s.LabelValues, "le", b.UpperBound), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(f.Labels, s.LabelValues, "le", infBound), h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelString(f.Labels, s.LabelValues, "", 0), formatValue(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(f.Labels, s.LabelValues, "", 0), h.Count)
}

// infBound marks the +Inf bucket for labelString.
const infBound = -1

// labelString renders {k="v",...}, appending an le label when leName is
// non-empty. Empty label sets render as "" (no braces).
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		if i < len(values) {
			b.WriteString(escapeLabel(values[i]))
		}
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		if le == infBound {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatBound(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatValue(v float64) string {
	return strings.TrimSpace(fmt.Sprintf("%g", v))
}

func formatBound(v float64) string {
	return strings.TrimSpace(fmt.Sprintf("%g", v))
}

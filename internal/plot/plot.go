// Package plot renders small ASCII charts for the CLI tools: convergence
// trajectories from cmd/mediansim, growth curves from cmd/sweep, and
// distribution histograms. Pure text, no dependencies — the output is
// meant for terminals and for pasting into issue reports.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// blocks are the eighth-height bar glyphs used by Spark.
var blocks = []rune(" ▁▂▃▄▅▆▇█")

// Spark renders values as a one-line sparkline. An empty input yields an
// empty string. Non-finite values render as spaces.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > hi { // nothing finite
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			sb.WriteRune(' ')
			continue
		}
		idx := len(blocks) - 1
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// Line renders a y-versus-index line chart with the given width and
// height in character cells, returning one string per row (top first).
// Values are downsampled by bucket means when len(values) > width.
func Line(values []float64, width, height int) []string {
	if width < 1 || height < 1 {
		panic("plot: width and height must be >= 1")
	}
	if len(values) == 0 {
		return []string{strings.Repeat(" ", width)}
	}
	ys := resample(values, width)
	lo, hi := minMax(ys)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for x, v := range ys {
		level := int((v - lo) / span * float64(height-1))
		row := height - 1 - level
		grid[row][x] = '•'
	}
	out := make([]string, height)
	for r := range grid {
		out[r] = string(grid[r])
	}
	return out
}

// LabeledLine renders Line with a y-axis label gutter: the first row is
// suffixed with the maximum, the last with the minimum.
func LabeledLine(values []float64, width, height int) []string {
	rows := Line(values, width, height)
	if len(values) == 0 {
		return rows
	}
	lo, hi := minMax(resample(values, width))
	for i := range rows {
		switch i {
		case 0:
			rows[i] = fmt.Sprintf("%s ┤ %.4g", rows[i], hi)
		case len(rows) - 1:
			rows[i] = fmt.Sprintf("%s ┤ %.4g", rows[i], lo)
		default:
			rows[i] = rows[i] + " │"
		}
	}
	return rows
}

// Histogram renders counts as horizontal bars, one line per bucket, each
// scaled to at most width cells: "label │█████ count".
func Histogram(labels []string, counts []int64, width int) []string {
	if len(labels) != len(counts) {
		panic("plot: labels and counts must have equal length")
	}
	if width < 1 {
		panic("plot: width must be >= 1")
	}
	var max int64 = 1
	labelW := 0
	for i, c := range counts {
		if c > max {
			max = c
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	out := make([]string, len(labels))
	for i, c := range counts {
		bar := int(float64(c) / float64(max) * float64(width))
		if c > 0 && bar == 0 {
			bar = 1
		}
		out[i] = fmt.Sprintf("%-*s │%s %d", labelW, labels[i], strings.Repeat("█", bar), c)
	}
	return out
}

// resample reduces values to exactly width points by bucket means (or
// repeats them when fewer).
func resample(values []float64, width int) []float64 {
	n := len(values)
	out := make([]float64, width)
	if n == 0 {
		return out
	}
	for x := 0; x < width; x++ {
		lo := x * n / width
		hi := (x + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[x] = sum / float64(hi-lo)
	}
	return out
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSparkBasics(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Fatalf("empty input: %q", got)
	}
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length %d, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != ' ' || runes[3] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	// Flat series renders at the top block (span 0).
	flat := []rune(Spark([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '█' {
			t.Fatalf("flat series: %q", string(flat))
		}
	}
}

func TestSparkNonFinite(t *testing.T) {
	s := []rune(Spark([]float64{1, math.NaN(), 2, math.Inf(1)}))
	if s[1] != ' ' || s[3] != ' ' {
		t.Fatalf("non-finite values must render as spaces: %q", string(s))
	}
}

func TestSparkMonotone(t *testing.T) {
	// A nondecreasing series must produce nondecreasing glyph levels.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		var acc float64
		for i, r := range raw {
			acc += float64(r)
			vals[i] = acc
		}
		prev := -1
		for _, r := range []rune(Spark(vals)) {
			level := strings.IndexRune(string(blocks), r)
			if level < prev {
				return false
			}
			prev = level
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineDimensions(t *testing.T) {
	rows := Line([]float64{1, 2, 3, 4, 5, 4, 3, 2, 1}, 20, 5)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if len([]rune(r)) != 20 {
			t.Fatalf("row width %d, want 20", len([]rune(r)))
		}
	}
	// The peak must appear on the top row, the valley on the bottom.
	if !strings.Contains(rows[0], "•") || !strings.Contains(rows[4], "•") {
		t.Fatalf("extremes not plotted:\n%s", strings.Join(rows, "\n"))
	}
}

func TestLineEmptyAndPanics(t *testing.T) {
	rows := Line(nil, 10, 3)
	if len(rows) != 1 || rows[0] != strings.Repeat(" ", 10) {
		t.Fatalf("empty input: %#v", rows)
	}
	assertPanics(t, func() { Line([]float64{1}, 0, 3) })
	assertPanics(t, func() { Line([]float64{1}, 3, 0) })
}

func TestLabeledLine(t *testing.T) {
	rows := LabeledLine([]float64{0, 10}, 8, 3)
	if !strings.Contains(rows[0], "10") {
		t.Fatalf("top row missing max label: %q", rows[0])
	}
	if !strings.Contains(rows[len(rows)-1], "0") {
		t.Fatalf("bottom row missing min label: %q", rows[len(rows)-1])
	}
}

func TestHistogram(t *testing.T) {
	rows := Histogram([]string{"a", "bb"}, []int64{4, 2}, 8)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(rows[0], "████████") {
		t.Fatalf("max bucket not full width: %q", rows[0])
	}
	if !strings.Contains(rows[1], "████") || strings.Contains(rows[1], "█████") {
		t.Fatalf("half bucket wrong: %q", rows[1])
	}
	if !strings.HasPrefix(rows[1], "bb") || !strings.HasPrefix(rows[0], "a ") {
		t.Fatalf("labels not aligned: %q / %q", rows[0], rows[1])
	}
	// Non-zero counts always show at least one cell.
	tiny := Histogram([]string{"x", "y"}, []int64{1000, 1}, 10)
	if !strings.Contains(tiny[1], "█") {
		t.Fatalf("tiny bucket invisible: %q", tiny[1])
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics(t, func() { Histogram([]string{"a"}, []int64{1, 2}, 5) })
	assertPanics(t, func() { Histogram([]string{"a"}, []int64{1}, 0) })
}

func TestResample(t *testing.T) {
	// Downsampling preserves the overall mean.
	vals := make([]float64, 100)
	var want float64
	for i := range vals {
		vals[i] = float64(i)
		want += float64(i)
	}
	want /= 100
	out := resample(vals, 10)
	if len(out) != 10 {
		t.Fatalf("%d points", len(out))
	}
	var got float64
	for _, v := range out {
		got += v
	}
	got /= 10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("resampled mean %v, want %v", got, want)
	}
	// Upsampling repeats values, never zero-fills.
	up := resample([]float64{7}, 4)
	for _, v := range up {
		if v != 7 {
			t.Fatalf("upsample: %v", up)
		}
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

package gossip

import (
	"math"
	"testing"

	"repro/adversary"
	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/rules"
)

func TestNetworkConverges(t *testing.T) {
	cfg := assign.AllDistinct(300)
	nw := New(cfg, rules.Median{}, nil, 1, Options{MaxRounds: 2000})
	res := nw.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("no consensus: %+v", res)
	}
	if res.Winner < 1 || res.Winner > 300 {
		t.Fatalf("validity violated: %d", res.Winner)
	}
}

func TestNetworkConsensusIsFixedPoint(t *testing.T) {
	cfg := assign.Config{4, 4, 4}
	nw := New(cfg, rules.Median{}, nil, 2, Options{})
	res := nw.Run()
	if res.Reason != model.StopConsensus || res.Rounds != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestNetworkDeterministic(t *testing.T) {
	cfg := assign.EvenBlocks(150, 3)
	a := New(cfg, rules.Median{}, nil, 7, Options{}).Run()
	b := New(cfg, rules.Median{}, nil, 7, Options{}).Run()
	if a.Rounds != b.Rounds || a.Winner != b.Winner {
		t.Fatalf("not reproducible: %+v vs %+v", a, b)
	}
}

func TestNetworkCapDefault(t *testing.T) {
	cfg := assign.AllDistinct(256)
	nw := New(cfg, rules.Median{}, nil, 1, Options{})
	want := int(math.Ceil(DefaultCapFactor * math.Log2(256)))
	if nw.Cap() != want {
		t.Fatalf("cap %d want %d", nw.Cap(), want)
	}
}

func TestNetworkUnlimitedCap(t *testing.T) {
	cfg := assign.AllDistinct(100)
	nw := New(cfg, rules.Median{}, nil, 1, Options{CapFactor: -1})
	nw.Run()
	if nw.Stats().RequestsDropped != 0 {
		t.Fatalf("dropped %d requests despite unlimited cap", nw.Stats().RequestsDropped)
	}
}

func TestNetworkDropsAreRare(t *testing.T) {
	// With the default capacity 4·log2(n), the max in-degree of 2n uniform
	// requests should essentially never exceed the cap.
	cfg := assign.AllDistinct(500)
	nw := New(cfg, rules.Median{}, nil, 3, Options{MaxRounds: 500})
	nw.Run()
	st := nw.Stats()
	if st.RequestsSent == 0 {
		t.Fatal("no requests recorded")
	}
	dropRate := float64(st.RequestsDropped) / float64(st.RequestsSent)
	if dropRate > 0.001 {
		t.Fatalf("drop rate %v too high (max in-degree %d, cap %d)",
			dropRate, st.MaxInDegree, nw.Cap())
	}
}

func TestNetworkTinyCapStillConverges(t *testing.T) {
	// Even a brutal capacity of 1 only slows the protocol (dropped samples
	// fall back to own values), it cannot wedge it.
	cfg := assign.EvenBlocks(200, 2)
	nw := New(cfg, rules.Median{}, nil, 5, Options{CapFactor: 1e-9, MaxRounds: 20000})
	if nw.Cap() != 1 {
		t.Fatalf("cap %d want 1", nw.Cap())
	}
	res := nw.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("no consensus under cap=1: %+v", res)
	}
	if nw.Stats().RequestsDropped == 0 {
		t.Fatal("expected drops under cap=1; test vacuous")
	}
}

// Conformance (experiment E12): convergence-round distributions of the
// message-level simulator and the balls-and-bins ball engine agree.
func TestNetworkMatchesBallEngine(t *testing.T) {
	cfg := assign.EvenBlocks(300, 3)
	var net, ball []float64
	for s := uint64(0); s < 15; s++ {
		net = append(net, float64(New(cfg, rules.Median{}, nil, s, Options{}).Run().Rounds))
		ball = append(ball, float64(core.NewBallEngine(cfg, rules.Median{}, nil, s+99, core.Options{}).Run().Rounds))
	}
	mn, mb := stats.Mean(net), stats.Mean(ball)
	if math.Abs(mn-mb) > 0.4*(mn+mb)/2+2 {
		t.Fatalf("network %.2f vs ball %.2f mean rounds", mn, mb)
	}
}

func TestNetworkWithAdversaryAlmostStable(t *testing.T) {
	cfg := assign.TwoValue(300, 30, 1, 2)
	adv := adversary.NewHider(adversary.Fixed(5), 1)
	nw := New(cfg, rules.Median{}, adv, 11, Options{AlmostSlack: 10, Window: 5, MaxRounds: 5000})
	res := nw.Run()
	if res.Reason != model.StopAlmostStable {
		t.Fatalf("expected almost-stable: %+v", res)
	}
	if res.Winner != 2 {
		t.Fatalf("winner %d", res.Winner)
	}
}

func TestKeepFirstSelector(t *testing.T) {
	ks := KeepFirst{}
	reqs := []int32{5, 6, 7, 8}
	kept := ks.Select(0, reqs, 2, nil)
	if len(kept) != 2 || kept[0] != 5 || kept[1] != 6 {
		t.Fatalf("kept %v", kept)
	}
	kept = ks.Select(0, reqs, 10, nil)
	if len(kept) != 4 {
		t.Fatalf("under-cap trimmed: %v", kept)
	}
}

func TestDropValueSelectorPrefersDroppingVictims(t *testing.T) {
	d := &DropValue{Victim: 9, state: []Value{9, 1, 9, 1, 1}}
	reqs := []int32{0, 1, 2, 3, 4} // values: 9,1,9,1,1
	kept := d.Select(0, reqs, 3, rng.NewXoshiro256(1))
	if len(kept) != 3 {
		t.Fatalf("kept %d", len(kept))
	}
	for _, q := range kept {
		if d.state[q] == 9 {
			t.Fatalf("victim request kept while non-victims available: %v", kept)
		}
	}
	// When capacity exceeds non-victims, victims fill the remainder.
	kept = d.Select(0, reqs, 4, rng.NewXoshiro256(1))
	victims := 0
	for _, q := range kept {
		if d.state[q] == 9 {
			victims++
		}
	}
	if len(kept) != 4 || victims != 1 {
		t.Fatalf("kept %v victims %d", kept, victims)
	}
}

func TestDropValueAdversarialSelectorDoesNotWedgeMedian(t *testing.T) {
	// Even an adversarial drop selector targeting the minority's requests
	// cannot stop convergence (the paper's cap-with-adversarial-selection
	// model): dropped samples become own values, slowing, not blocking.
	cfg := assign.TwoValue(200, 60, 1, 2)
	nw := New(cfg, rules.Median{}, nil, 13, Options{
		CapFactor: 0.3, // aggressive cap to force drops
		Selector:  &DropValue{Victim: 2},
		MaxRounds: 30000,
	})
	res := nw.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("no consensus: %+v", res)
	}
}

func TestNetworkPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty: expected panic")
			}
		}()
		New(nil, rules.Median{}, nil, 1, Options{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rule: expected panic")
			}
		}()
		New(assign.AllDistinct(5), nil, nil, 1, Options{})
	}()
}

func TestPrivateNumberingsArePermutations(t *testing.T) {
	cfg := assign.AllDistinct(50)
	nw := New(cfg, rules.Median{}, nil, 21, Options{})
	for i, perm := range nw.perms {
		seen := make([]bool, 50)
		for _, v := range perm {
			if v < 0 || int(v) >= 50 || seen[v] {
				t.Fatalf("process %d: invalid numbering %v", i, perm)
			}
			seen[v] = true
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	cfg := assign.AllDistinct(64)
	nw := New(cfg, rules.Median{}, nil, 5, Options{})
	nw.Step()
	nw.Step()
	st := nw.Stats()
	if st.RequestsSent != 2*2*64 {
		t.Fatalf("requests sent %d, want %d", st.RequestsSent, 2*2*64)
	}
	if st.MaxInDegree < 1 {
		t.Fatal("no in-degree recorded")
	}
}

func TestAccessors(t *testing.T) {
	nw := New(assign.EvenBlocks(64, 2), rules.Median{}, nil, 1, Options{})
	if nw.Round() != 0 {
		t.Fatal("fresh network must be at round 0")
	}
	if len(nw.Values()) != 64 {
		t.Fatalf("Values() has %d entries", len(nw.Values()))
	}
	nw.Step()
	if nw.Round() != 1 {
		t.Fatal("Round() must count steps")
	}
}

// TestObserverSeesEveryRound: the observer receives the initial state plus
// one sorted distribution per executed round, and watching a run does not
// change its trajectory — the property the service layer's cancellation
// and streaming hooks rest on.
func TestObserverSeesEveryRound(t *testing.T) {
	cfg := assign.AllDistinct(256)
	var rounds []int
	var lastVals []Value
	var lastCounts []int64
	observed := New(cfg, rules.Median{}, nil, 9, Options{
		Observer: func(round int, vals []Value, counts []int64) {
			rounds = append(rounds, round)
			lastVals = append(lastVals[:0], vals...)
			lastCounts = append(lastCounts[:0], counts...)
			var n int64
			for i := 1; i < len(vals); i++ {
				if vals[i-1] >= vals[i] {
					t.Fatalf("round %d: observed values not sorted: %v", round, vals)
				}
			}
			for _, c := range counts {
				n += c
			}
			if n != 256 {
				t.Fatalf("round %d: observed counts sum to %d", round, n)
			}
		},
	}).Run()
	blind := New(cfg, rules.Median{}, nil, 9, Options{}).Run()
	if observed.Rounds != blind.Rounds || observed.Winner != blind.Winner {
		t.Fatalf("observer changed the trajectory: %+v vs %+v", observed, blind)
	}
	if len(rounds) != observed.Rounds+1 {
		t.Fatalf("observer fired %d times, want rounds+1 = %d", len(rounds), observed.Rounds+1)
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("observation %d reported round %d", i, r)
		}
	}
	if len(lastVals) != 1 || lastVals[0] != observed.Winner || lastCounts[0] != 256 {
		t.Fatalf("final observation %v/%v does not match the consensus", lastVals, lastCounts)
	}
}

// TestObserverPanicUnwindsRun: a panic raised inside the observer escapes
// Run mid-simulation — the mechanism service cancellation uses.
func TestObserverPanicUnwindsRun(t *testing.T) {
	type sentinel struct{}
	nw := New(assign.AllDistinct(128), rules.Median{}, nil, 3, Options{
		Observer: func(round int, _ []Value, _ []int64) {
			if round == 2 {
				panic(sentinel{})
			}
		},
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("observer panic must unwind Run")
		} else if _, ok := r.(sentinel); !ok {
			t.Fatalf("unexpected panic %v", r)
		}
		if nw.Round() != 2 {
			t.Fatalf("run unwound at round %d, want 2", nw.Round())
		}
	}()
	nw.Run()
}

// TestDistIntoAllocs pins the observer aggregation path: distInto reuses
// the network-owned map and sorts in place, so once the map has seen the
// support, observing a round appends into caller scratch and allocates
// nothing else.
func TestDistIntoAllocs(t *testing.T) {
	nw := New(assign.EvenBlocks(400, 4), rules.Median{}, nil, 1, Options{})
	vals := make([]Value, 0, 8)
	counts := make([]int64, 0, 8)
	vals, counts = nw.distInto(vals[:0], counts[:0]) // warm the map
	if len(vals) != 4 || len(counts) != 4 {
		t.Fatalf("distInto: %v %v", vals, counts)
	}
	avg := testing.AllocsPerRun(50, func() {
		vals, counts = nw.distInto(vals[:0], counts[:0])
	})
	if avg != 0 {
		t.Fatalf("steady-state observation allocates (%v allocs/round)", avg)
	}
}

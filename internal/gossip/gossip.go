// Package gossip implements the paper's process-level communication model
// (Section 1.1) — as opposed to the balls-and-bins abstraction used by
// internal/core:
//
//   - n processes are completely interconnected in an *anonymous* network:
//     no global IDs; each process addresses peers through its own private
//     numbering (a private permutation of the others).
//   - Time proceeds in synchronized rounds. In each round every process
//     contacts at most a logarithmic number of other processes and exchanges
//     a logarithmic number of bits with each.
//   - A process with more than a logarithmic number of incoming requests
//     receives only a logarithmic number of them, *possibly selected by an
//     adversary*, and the others are dropped.
//
// The median rule runs on top: each process requests the values of two
// uniformly random peers (possibly itself); dropped requests are substituted
// with the requester's own value (median(v, v, x) = v, so a dropped sample
// conservatively keeps the requester's value — it never invents one).
//
// The conformance experiments (E12) show this message-level simulator and
// the balls-and-bins engines produce statistically indistinguishable
// convergence behaviour: with the default capacity c·⌈log₂ n⌉ the drop rate
// is negligible because the in-degree of 2n uniform requests concentrates
// near 2.
package gossip

import (
	"math"
	"slices"

	"repro/internal/assign"
	"repro/internal/model"
	"repro/internal/rng"
)

// Value aliases the shared process-value type.
type Value = model.Value

// DropSelector decides which incoming requests a saturated process answers.
// Given the requester indices (internal numbering) and the capacity, it
// returns the subset (length ≤ cap) to answer. The paper allows this choice
// to be adversarial.
type DropSelector interface {
	// Select returns the requests to keep. It may reorder requesters but
	// must return a subset of them with length at most cap.
	Select(target int, requesters []int32, cap int, r model.Rand) []int32
}

// KeepFirst answers requests in arrival order (arrival order is already
// random because requesters draw targets independently).
type KeepFirst struct{}

// Select implements DropSelector.
func (KeepFirst) Select(_ int, requesters []int32, cap int, _ model.Rand) []int32 {
	if len(requesters) <= cap {
		return requesters
	}
	return requesters[:cap]
}

// DropValue is an adversarial selector that prefers to drop requests from
// processes holding a designated value, starving them of samples.
type DropValue struct {
	// Victim is the value whose holders' requests are dropped first.
	Victim Value
	// state gives the selector read access to current values; wired by the
	// network each round.
	state []Value
}

// Select implements DropSelector.
func (d *DropValue) Select(_ int, requesters []int32, cap int, _ model.Rand) []int32 {
	if len(requesters) <= cap {
		return requesters
	}
	kept := make([]int32, 0, cap)
	// First pass: keep non-victims.
	for _, q := range requesters {
		if len(kept) == cap {
			return kept
		}
		if d.state == nil || d.state[q] != d.Victim {
			kept = append(kept, q)
		}
	}
	// Fill remaining slots with victims if capacity remains.
	for _, q := range requesters {
		if len(kept) == cap {
			break
		}
		if d.state != nil && d.state[q] == d.Victim {
			kept = append(kept, q)
		}
	}
	return kept
}

// Options configures the network simulation.
type Options struct {
	// CapFactor scales the per-round incoming-request capacity
	// ⌈CapFactor·log₂ n⌉. 0 means DefaultCapFactor. Set a negative value
	// for unlimited capacity (the pure abstraction).
	CapFactor float64
	// Selector decides which requests saturated processes answer;
	// nil means KeepFirst.
	Selector DropSelector
	// MaxRounds caps Run; 0 means DefaultMaxRounds.
	MaxRounds int
	// AlmostSlack and Window mirror core.Options: almost-stable detection.
	AlmostSlack int
	Window      int
	// Observer, when non-nil, receives the sorted value distribution once
	// before the first round and after every executed round — the same
	// per-round hook the balls-and-bins engines expose. It is the service
	// layer's cancellation point: a panic raised inside the observer
	// unwinds Run mid-simulation. Slices are reused; observers must copy
	// what they keep. Observation never touches the RNG, so a run's
	// trajectory is independent of whether anyone is watching.
	Observer func(round int, vals []Value, counts []int64)
}

// DefaultCapFactor is the capacity multiplier when Options.CapFactor is 0.
const DefaultCapFactor = 4

// DefaultMaxRounds caps runs whose Options.MaxRounds is zero.
const DefaultMaxRounds = 1 << 18

// Stats accumulates message-level telemetry across a run.
type Stats struct {
	// RequestsSent counts value requests issued by all processes.
	RequestsSent int64
	// RequestsDropped counts requests dropped at saturated targets.
	RequestsDropped int64
	// MaxInDegree is the largest per-round request load observed at any
	// single process.
	MaxInDegree int
}

// Network is the message-passing simulator.
type Network struct {
	values  []Value
	next    []Value
	perms   [][]int32 // private numbering per process: perms[i][k] = global id
	rule    model.Rule
	adv     model.Adversary
	allowed []Value
	opts    Options
	g       *rng.Xoshiro256
	cap     int
	round   int
	stats   Stats

	// scratch per round
	reqFrom [][]int32       // requests received by each target
	pending [][]int32       // requester -> granted sample sources
	distm   map[Value]int64 // observer distribution aggregation
}

// New builds a network of len(cfg) processes initialised with cfg. The
// private numberings are sampled once at construction (they are fixed
// wiring, not per-round randomness).
func New(cfg assign.Config, rule model.Rule, adv model.Adversary, seed uint64, opts Options) *Network {
	n := len(cfg)
	if n == 0 {
		panic("gossip: empty configuration")
	}
	if rule == nil {
		panic("gossip: nil rule")
	}
	g := rng.NewXoshiro256(seed)
	nw := &Network{
		values:  cfg.Clone(),
		next:    make([]Value, n),
		perms:   make([][]int32, n),
		rule:    rule,
		adv:     adv,
		opts:    opts,
		g:       g,
		allowed: allowedOf(cfg),
		reqFrom: make([][]int32, n),
	}
	for i := range nw.perms {
		p := g.Perm(n)
		row := make([]int32, n)
		for k, v := range p {
			row[k] = int32(v)
		}
		nw.perms[i] = row
	}
	cf := opts.CapFactor
	switch {
	case cf == 0:
		cf = DefaultCapFactor
	case cf < 0:
		nw.cap = n // effectively unlimited
	}
	if nw.cap == 0 {
		nw.cap = int(math.Ceil(cf * math.Log2(float64(n))))
		if nw.cap < 1 {
			nw.cap = 1
		}
	}
	return nw
}

func allowedOf(cfg assign.Config) []Value {
	d := cfg.Dist()
	return append([]Value(nil), d.Vals...)
}

// Values returns the live value vector (not a copy).
func (nw *Network) Values() []Value { return nw.values }

// Stats returns the accumulated message statistics.
func (nw *Network) Stats() Stats { return nw.stats }

// Cap returns the per-round incoming-request capacity in force.
func (nw *Network) Cap() int { return nw.cap }

// Round returns the number of rounds executed.
func (nw *Network) Round() int { return nw.round }

// Step executes one synchronous round of the message-passing protocol.
func (nw *Network) Step() {
	n := len(nw.values)
	s := nw.rule.Samples()

	// 1. Adversary rewrites states at the beginning of the round.
	if nw.adv != nil {
		if ba, ok := nw.adv.(model.BallAdversary); ok {
			ba.CorruptBalls(nw.round, nw.values, nw.allowed, nw.g)
		}
	}
	// Give value-aware drop selectors visibility of the post-corruption state.
	if dv, ok := nw.opts.Selector.(*DropValue); ok {
		dv.state = nw.values
	}

	// 2. Each process issues s requests through its private numbering.
	//    targets[i*s+k] is the k-th target of process i.
	for t := range nw.reqFrom {
		nw.reqFrom[t] = nw.reqFrom[t][:0]
	}
	targets := make([]int32, n*s)
	for i := 0; i < n; i++ {
		for k := 0; k < s; k++ {
			// A uniform index into the private numbering is a uniform
			// peer; index n-? : perm has length n including self at some
			// position, so self-sampling occurs naturally.
			t := nw.perms[i][nw.g.Intn(n)]
			targets[i*s+k] = t
			nw.reqFrom[t] = append(nw.reqFrom[t], int32(i))
		}
	}
	nw.stats.RequestsSent += int64(n * s)

	// 3. Capacity filtering at each target.
	granted := make(map[int64]bool, n*s) // key: target<<32 | requester... see key()
	sel := nw.opts.Selector
	if sel == nil {
		sel = KeepFirst{}
	}
	for t := 0; t < n; t++ {
		reqs := nw.reqFrom[t]
		if len(reqs) > nw.stats.MaxInDegree {
			nw.stats.MaxInDegree = len(reqs)
		}
		if len(reqs) <= nw.cap {
			for _, q := range reqs {
				granted[key(t, q)] = true
			}
			continue
		}
		kept := sel.Select(t, reqs, nw.cap, nw.g)
		if len(kept) > nw.cap {
			kept = kept[:nw.cap]
		}
		nw.stats.RequestsDropped += int64(len(reqs) - len(kept))
		for _, q := range kept {
			granted[key(t, q)] = true
		}
	}

	// 4. Responses and local update. A dropped request contributes the
	//    requester's own value. Note: duplicate requests to the same target
	//    are granted together (one response serves both samples).
	sampled := make([]Value, s)
	for i := 0; i < n; i++ {
		own := nw.values[i]
		for k := 0; k < s; k++ {
			t := targets[i*s+k]
			if granted[key(int(t), int32(i))] {
				sampled[k] = nw.values[t]
			} else {
				sampled[k] = own
			}
		}
		nw.next[i] = nw.rule.Update(own, sampled)
	}
	nw.values, nw.next = nw.next, nw.values
	nw.round++
}

func key(target int, requester int32) int64 {
	return int64(target)<<32 | int64(uint32(requester))
}

// Run executes rounds until consensus / almost-stability / MaxRounds,
// mirroring core's semantics.
type Result struct {
	Rounds      int
	Reason      model.StopReason
	Winner      Value
	WinnerCount int64
	Stats       Stats
}

// Run executes the protocol until a stop condition fires.
func (nw *Network) Run() Result {
	maxRounds := nw.opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	window := nw.opts.Window
	if window <= 0 {
		window = 8
	}
	slack := int64(nw.opts.AlmostSlack)
	n := int64(len(nw.values))
	fixedPoint := nw.adv == nil

	var curWin Value
	run := 0
	// With an observer attached, the per-round distribution is already
	// computed (sorted, so the first maximal count is the smallest tied
	// value — the same tie-break plurality uses); reuse it rather than
	// aggregating the values a second time.
	var obsVals []Value
	var obsCounts []int64
	observe := func() {
		if nw.opts.Observer == nil {
			return
		}
		obsVals, obsCounts = nw.distInto(obsVals[:0], obsCounts[:0])
		nw.opts.Observer(nw.round, obsVals, obsCounts)
	}
	check := func() (Result, bool) {
		var w Value
		var c int64
		if nw.opts.Observer != nil {
			c = -1
			for i, cnt := range obsCounts {
				if cnt > c {
					w, c = obsVals[i], cnt
				}
			}
		} else {
			w, c = plurality(nw.values)
		}
		if fixedPoint && c == n {
			return Result{Rounds: nw.round, Reason: model.StopConsensus, Winner: w, WinnerCount: c, Stats: nw.stats}, true
		}
		if !fixedPoint || slack > 0 {
			if c >= n-slack {
				if run == 0 || w != curWin {
					curWin = w
					run = 1
				} else {
					run++
				}
				if run >= window {
					return Result{Rounds: nw.round, Reason: model.StopAlmostStable, Winner: w, WinnerCount: c, Stats: nw.stats}, true
				}
			} else {
				run = 0
			}
		}
		return Result{}, false
	}
	observe()
	if res, stop := check(); stop {
		return res
	}
	for nw.round < maxRounds {
		nw.Step()
		observe()
		if res, stop := check(); stop {
			return res
		}
	}
	w, c := plurality(nw.values)
	return Result{Rounds: nw.round, Reason: model.StopMaxRounds, Winner: w, WinnerCount: c, Stats: nw.stats}
}

// distInto appends the distribution of values (sorted by value, so
// observation is deterministic) onto the given scratch slices. The
// aggregation map is owned by the network and cleared per round, so an
// observed run allocates nothing after the support stabilizes.
//
//consensus:hotpath
func (nw *Network) distInto(vals []Value, counts []int64) ([]Value, []int64) {
	if nw.distm == nil {
		nw.distm = make(map[Value]int64, 16)
	} else {
		clear(nw.distm)
	}
	for _, v := range nw.values {
		nw.distm[v]++
	}
	for v := range nw.distm {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	for _, v := range vals {
		counts = append(counts, nw.distm[v])
	}
	return vals, counts
}

func plurality(values []Value) (Value, int64) {
	counts := make(map[Value]int64)
	for _, v := range values {
		counts[v]++
	}
	var best Value
	var bestC int64 = -1
	for v, c := range counts {
		if c > bestC || (c == bestC && v < best) {
			best, bestC = v, c
		}
	}
	return best, bestC
}

package gossip

import (
	"fmt"
	"strconv"
	"strings"

	"repro/adversary"
	"repro/engine"
	"repro/internal/assign"
	"repro/internal/initspec"
	"repro/internal/model"
	"repro/rules"
)

// This file registers the message-passing network simulator as the
// "gossip" spec kind of the engine plugin API (package engine) and gives
// drop selectors — previously function values no spec could express —
// addressable registry names:
//
//	"fair"                arrival order (KeepFirst), the default
//	"drop-value:<victim>" adversarial DropValue against the given value
//
// The kind used to be reachable only as the median kind's "gossip" engine
// (with no selector field at all); it is now a family of its own, with the
// network model's knobs (cap_factor, selector) as first-class parameters.

// SelectorByName resolves a serialized drop-selector name to a fresh
// DropSelector instance ("" means "fair"). DropValue selectors carry
// per-round state, so a new instance per run is required.
func SelectorByName(name string) (DropSelector, error) {
	switch {
	case name == "" || name == "fair":
		return KeepFirst{}, nil
	case strings.HasPrefix(name, "drop-value:"):
		raw := strings.TrimPrefix(name, "drop-value:")
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gossip: bad drop-value victim %q in selector %q", raw, name)
		}
		return &DropValue{Victim: Value(v)}, nil
	default:
		return nil, fmt.Errorf("gossip: unknown drop selector %q (known: %v)", name, SelectorNames())
	}
}

// SelectorNames returns the selector name forms in sorted order
// ("drop-value:<victim>" is a template: any int64 victim value is legal).
func SelectorNames() []string { return []string{"drop-value:<victim>", "fair"} }

// Spec is the gossip kind's spec payload: the scalar init and rule blocks
// the median kind uses, plus the network model's own knobs.
type Spec struct {
	// Init describes the scalar initial state.
	Init initspec.Spec `json:"init,omitzero"`
	// Rule references a registered update rule ("" = median).
	Rule rules.Ref `json:"rule,omitzero"`
	// Adversary optionally references a registered strategy (nil = none).
	Adversary *adversary.Ref `json:"adversary,omitempty"`
	// CapFactor scales the per-round request capacity ⌈CapFactor·log₂ n⌉;
	// 0 = default 4; negative = unlimited.
	CapFactor float64 `json:"cap_factor,omitempty"`
	// Selector names the drop selector saturated processes apply (see
	// SelectorByName; "" = "fair").
	Selector string `json:"selector,omitempty"`
	// AlmostSlack enables almost-stable detection; Window is the
	// stability window (0 = default).
	AlmostSlack int `json:"almost_slack,omitempty"`
	Window      int `json:"window,omitempty"`
}

// ruleOrDefault resolves the rule reference ("" means median) — the one
// place the kind's default rule is spelled, shared by Normalize, Validate
// and Run so raw (not-yet-normalized) payloads behave like canonical ones.
func (s *Spec) ruleOrDefault() rules.Ref {
	r := s.Rule
	if r.Name == "" {
		r.Name = "median"
	}
	return r
}

// Normalize implements engine.Payload.
func (s *Spec) Normalize() {
	s.Init = initspec.Normalize(s.Init)
	s.Rule = s.ruleOrDefault()
	if len(s.Rule.Params) == 0 {
		s.Rule.Params = nil
	}
	if s.Adversary != nil && len(s.Adversary.Params) == 0 {
		s.Adversary.Params = nil
	}
	if s.Selector == "" {
		s.Selector = "fair"
	}
}

// Validate implements engine.Payload.
func (s *Spec) Validate() error {
	if err := initspec.Check(s.Init); err != nil {
		return err
	}
	if _, err := s.ruleOrDefault().New(); err != nil {
		return err
	}
	if s.Adversary != nil {
		if _, err := s.Adversary.New(); err != nil {
			return err
		}
	}
	if _, err := SelectorByName(s.Selector); err != nil {
		return err
	}
	if s.AlmostSlack < 0 || s.Window < 0 {
		return fmt.Errorf("gossip: negative almost_slack or window")
	}
	return nil
}

// Population implements engine.Payload.
func (s *Spec) Population() int64 { return initspec.Size(s.Init) }

// Run implements engine.Payload.
func (s *Spec) Run(ctx engine.RunContext) (engine.Result, error) {
	values, err := initspec.Build(s.Init)
	if err != nil {
		return engine.Result{}, err
	}
	r, err := s.ruleOrDefault().New()
	if err != nil {
		return engine.Result{}, err
	}
	var adv model.Adversary
	if s.Adversary != nil {
		adv, err = s.Adversary.New()
		if err != nil {
			return engine.Result{}, err
		}
	}
	sel, err := SelectorByName(s.Selector)
	if err != nil {
		return engine.Result{}, err
	}
	n := int64(len(values))
	nw := New(assign.Config(values), r, adv, ctx.Seed, Options{
		CapFactor:   s.CapFactor,
		Selector:    sel,
		MaxRounds:   ctx.MaxRounds,
		AlmostSlack: s.AlmostSlack,
		Window:      s.Window,
		Observer: func(round int, vals []Value, counts []int64) {
			ctx.Observe(engine.LeaderRecord(round, n, vals, counts))
		},
	})
	out := nw.Run()
	return engine.Result{
		Rounds:      out.Rounds,
		Reason:      out.Reason.String(),
		Winner:      out.Winner,
		WinnerCount: out.WinnerCount,
		Messages: &engine.MessageStats{
			RequestsSent:    out.Stats.RequestsSent,
			RequestsDropped: out.Stats.RequestsDropped,
			MaxInDegree:     out.Stats.MaxInDegree,
		},
	}, nil
}

// ApplyAxis implements engine.AxisApplier.
func (s *Spec) ApplyAxis(param string, v float64) error {
	if ok, err := initspec.AxisApply(&s.Init, param, v); ok {
		return err
	}
	switch param {
	case "cap_factor":
		s.CapFactor = v
	default:
		return fmt.Errorf("gossip: unknown batch axis %q", param)
	}
	return nil
}

// FollowSeed implements engine.SeedFollower for the uniform init.
func (s *Spec) FollowSeed(seed uint64) { initspec.FollowSeed(&s.Init, seed) }

// gossipEngine registers the kind.
type gossipEngine struct{}

func (gossipEngine) NewPayload() engine.Payload { return &Spec{} }

func (gossipEngine) Descriptor() engine.Descriptor {
	params := engine.ScalarInitParams(initspec.Kinds())
	params = append(params, engine.RuleRefParams(rules.Names(), "median")...)
	params = append(params, engine.AdversaryRefParams(adversary.Names())...)
	params = append(params,
		engine.Param{Name: "cap_factor", Type: "float", Default: "4", Doc: "per-round request capacity scale ⌈cap_factor·log₂ n⌉ (negative = unlimited)"},
		engine.Param{Name: "selector", Type: "string", Default: "fair", Doc: "drop selector at saturated processes: \"fair\" or \"drop-value:<victim>\""},
		engine.Param{Name: "almost_slack", Type: "int", Min: engine.Bound(0), Doc: "almost-stable slack (0 = off)"},
		engine.Param{Name: "window", Type: "int", Min: engine.Bound(0), Default: "8", Doc: "stability window"},
	)
	return engine.Descriptor{
		Kind:    "gossip",
		Summary: "full message-passing simulation of the paper's network model: private peer numberings, per-round request caps, named drop selectors",
		Params:  params,
		Axes:    []string{"n", "m", "n_low", "cap_factor"},
		Example: []byte(`{"init":{"kind":"twovalue","n":48}}`),
	}
}

func init() { engine.Register(gossipEngine{}) }

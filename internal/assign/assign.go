// Package assign models balls-into-bins configurations — the state space of
// the paper's analysis (Section 2.1) — together with the constructors used
// by the experiments and the *fineness* partial order of Section 4.1.
//
// A Config assigns each of n balls (processes) a Value (its bin). The paper
// identifies bins with natural numbers; we use int64 so values fit the
// paper's O(log n)-bit storage assumption for every n representable on the
// machine.
//
// The fineness order: a count vector (k_i) is finer than (k̃_i) when a
// monotone map f on bins exists with k̃_i = Σ_{j ∈ f⁻¹(i)} k_j. Lemma 17
// shows the median dynamics commute with such maps (because the median of
// three commutes with monotone functions), so convergence time is monotone
// under coarsening. FinerThan reconstructs a witnessing map; Coarsen applies
// one to a configuration so coupled runs can be compared ball by ball.
package assign

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Value is a process value ("bin"). The paper restricts values to the
// initial value set; engines enforce that for adversarial writes.
type Value = int64

// Config is a per-ball assignment of values. Index = ball, entry = value.
type Config []Value

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// N returns the number of balls.
func (c Config) N() int { return len(c) }

// AllDistinct returns the paper's "all-one" assignment b_{0,i} = i: n balls
// in n distinct bins, the unique finest configuration (Section 4.1).
func AllDistinct(n int) Config {
	if n <= 0 {
		panic("assign: AllDistinct with n <= 0")
	}
	c := make(Config, n)
	for i := range c {
		c[i] = Value(i + 1)
	}
	return c
}

// Uniform places each of n balls independently and uniformly into one of the
// m bins 1..m — the paper's average-case model (Section 5).
func Uniform(n, m int, g *rng.Xoshiro256) Config {
	if n <= 0 || m <= 0 {
		panic("assign: Uniform with non-positive n or m")
	}
	c := make(Config, n)
	for i := range c {
		c[i] = Value(g.Intn(m) + 1)
	}
	return c
}

// TwoValue returns a two-bin configuration with nLow balls holding low and
// n-nLow balls holding high. It is the worst-case input family of Section 3;
// the imbalance is Δ0 = |n/2 − nLow| (for even n).
func TwoValue(n, nLow int, low, high Value) Config {
	if n <= 0 || nLow < 0 || nLow > n {
		panic("assign: TwoValue with invalid counts")
	}
	if low >= high {
		panic("assign: TwoValue needs low < high")
	}
	c := make(Config, n)
	for i := range c {
		if i < nLow {
			c[i] = low
		} else {
			c[i] = high
		}
	}
	return c
}

// Blocks builds a configuration from a count vector: counts[i] balls hold
// value i+1. Zero counts yield empty bins. The total must be positive.
func Blocks(counts []int64) Config {
	var n int64
	for _, k := range counts {
		if k < 0 {
			panic("assign: Blocks with negative count")
		}
		n += k
	}
	if n == 0 {
		panic("assign: Blocks with zero balls")
	}
	c := make(Config, 0, n)
	for i, k := range counts {
		for j := int64(0); j < k; j++ {
			c = append(c, Value(i+1))
		}
	}
	return c
}

// EvenBlocks spreads n balls over m bins as evenly as possible
// (⌈n/m⌉ in the first n mod m bins). Used as a deterministic worst-ish case
// for m-bin experiments.
func EvenBlocks(n, m int) Config {
	if n <= 0 || m <= 0 || m > n {
		panic("assign: EvenBlocks needs 0 < m <= n")
	}
	counts := make([]int64, m)
	base := int64(n / m)
	extra := n % m
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
	}
	return Blocks(counts)
}

// Dist is the count-vector view of a configuration: Vals lists the distinct
// values in increasing order and Counts[i] is the number of balls holding
// Vals[i]. All counts are positive.
type Dist struct {
	Vals   []Value
	Counts []int64
}

// Dist computes the count-vector view of c.
func (c Config) Dist() Dist {
	if len(c) == 0 {
		return Dist{}
	}
	sorted := append([]Value(nil), c...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var d Dist
	cur := sorted[0]
	cnt := int64(0)
	for _, v := range sorted {
		if v != cur {
			d.Vals = append(d.Vals, cur)
			d.Counts = append(d.Counts, cnt)
			cur, cnt = v, 0
		}
		cnt++
	}
	d.Vals = append(d.Vals, cur)
	d.Counts = append(d.Counts, cnt)
	return d
}

// Expand materializes the per-ball configuration of a distribution:
// Counts[i] consecutive balls holding Vals[i], in the distribution's
// order. It is the O(n) fallback for engines that need per-ball state
// when the initial state was built at count level.
func Expand(d Dist) Config {
	var n int64
	for _, k := range d.Counts {
		if k < 0 {
			panic("assign: Expand with negative count")
		}
		n += k
	}
	if n == 0 {
		panic("assign: Expand with zero balls")
	}
	c := make(Config, 0, n)
	for i, k := range d.Counts {
		for j := int64(0); j < k; j++ {
			c = append(c, d.Vals[i])
		}
	}
	return c
}

// N returns the total number of balls in the distribution.
func (d Dist) N() int64 {
	var n int64
	for _, k := range d.Counts {
		n += k
	}
	return n
}

// Support returns the number of non-empty bins (distinct values).
func (d Dist) Support() int { return len(d.Vals) }

// MedianValue returns the value of the median ball m_t: the smallest value v
// such that at most n/2 balls are strictly below v and at most n/2 strictly
// above (the paper's Section 2.1 definition). Panics on an empty
// distribution.
func (d Dist) MedianValue() Value {
	n := d.N()
	if n == 0 {
		panic("assign: MedianValue of empty distribution")
	}
	var below int64
	for i, k := range d.Counts {
		above := n - below - k
		if 2*below <= n && 2*above <= n {
			return d.Vals[i]
		}
		below += k
	}
	// Unreachable: the median bin always exists.
	panic("assign: no median bin found")
}

// MaxCount returns the largest bin load and its value.
func (d Dist) MaxCount() (Value, int64) {
	if len(d.Vals) == 0 {
		panic("assign: MaxCount of empty distribution")
	}
	bi := 0
	for i, k := range d.Counts {
		if k > d.Counts[bi] {
			bi = i
		}
	}
	return d.Vals[bi], d.Counts[bi]
}

// IsConsensus reports whether every ball holds the same value.
func (c Config) IsConsensus() bool {
	if len(c) == 0 {
		return true
	}
	v := c[0]
	for _, x := range c {
		if x != v {
			return false
		}
	}
	return true
}

// AgreeingWith returns how many balls hold value v.
func (c Config) AgreeingWith(v Value) int {
	n := 0
	for _, x := range c {
		if x == v {
			n++
		}
	}
	return n
}

// ValueSet returns the set of distinct values as a map for membership tests
// (the adversary's allowed write set: the initial values v_1..v_n).
func (c Config) ValueSet() map[Value]struct{} {
	s := make(map[Value]struct{})
	for _, v := range c {
		s[v] = struct{}{}
	}
	return s
}

// FinerThan decides whether the count vector fine is finer than coarse in
// the paper's Section 4.1 order, i.e. whether consecutive groups of fine
// bins sum to the coarse bins in order. On success it returns a monotone
// witness map f with f[j] = index of the coarse bin receiving fine bin j.
//
// Both arguments are count vectors over ordered bins (index = bin). Trailing
// groupings must consume all bins; total loads must match.
func FinerThan(fine, coarse []int64) ([]int, bool) {
	var sumF, sumC int64
	for _, k := range fine {
		if k < 0 {
			return nil, false
		}
		sumF += k
	}
	for _, k := range coarse {
		if k < 0 {
			return nil, false
		}
		sumC += k
	}
	if sumF != sumC {
		return nil, false
	}
	f := make([]int, len(fine))
	j := 0 // current fine bin
	for i, want := range coarse {
		var acc int64
		for acc < want {
			if j >= len(fine) {
				return nil, false
			}
			acc += fine[j]
			f[j] = i
			j++
			if acc > want {
				return nil, false // cannot split a fine bin
			}
		}
		// want == 0 consumes nothing: coarse bin i is empty.
	}
	// Any remaining fine bins must be empty; map them to the last bin.
	for ; j < len(fine); j++ {
		if fine[j] != 0 {
			return nil, false
		}
		if len(coarse) > 0 {
			f[j] = len(coarse) - 1
		}
	}
	return f, true
}

// IsMonotone reports whether f is a monotone (non-decreasing) bin map.
func IsMonotone(f []int) bool {
	for i := 1; i < len(f); i++ {
		if f[i] < f[i-1] {
			return false
		}
	}
	return true
}

// Coarsen applies a monotone value map vf to every ball of c, producing the
// coarser coupled configuration of Lemma 17. The caller is responsible for
// vf's monotonicity (CheckMonotoneOn can verify it on c's value set).
func Coarsen(c Config, vf func(Value) Value) Config {
	out := make(Config, len(c))
	for i, v := range c {
		out[i] = vf(v)
	}
	return out
}

// CheckMonotoneOn verifies that vf is non-decreasing across the distinct
// values of c, returning an error naming the violating pair otherwise.
func CheckMonotoneOn(c Config, vf func(Value) Value) error {
	d := c.Dist()
	for i := 1; i < len(d.Vals); i++ {
		a, b := d.Vals[i-1], d.Vals[i]
		if vf(a) > vf(b) {
			return fmt.Errorf("assign: map not monotone: f(%d)=%d > f(%d)=%d", a, vf(a), b, vf(b))
		}
	}
	return nil
}

// Median3 returns the median of three values. This is the paper's update
// kernel; it is resolved here so that the commutation property
// median(f(a),f(b),f(c)) == f(median(a,b,c)) for monotone f (the heart of
// Lemma 17) can be property-tested against the same code the engines use.
func Median3(a, b, c Value) Value {
	// Sort three values with a small decision tree (no allocation).
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

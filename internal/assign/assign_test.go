package assign

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAllDistinct(t *testing.T) {
	c := AllDistinct(5)
	for i, v := range c {
		if v != Value(i+1) {
			t.Fatalf("ball %d has value %d", i, v)
		}
	}
	d := c.Dist()
	if d.Support() != 5 || d.N() != 5 {
		t.Fatalf("dist %+v", d)
	}
}

func TestAllDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AllDistinct(0)
}

func TestUniformRange(t *testing.T) {
	g := rng.NewXoshiro256(1)
	c := Uniform(1000, 7, g)
	if len(c) != 1000 {
		t.Fatalf("len %d", len(c))
	}
	for _, v := range c {
		if v < 1 || v > 7 {
			t.Fatalf("value %d out of [1,7]", v)
		}
	}
	// All 7 bins should be hit for n=1000.
	if s := c.Dist().Support(); s != 7 {
		t.Fatalf("support %d", s)
	}
}

func TestUniformRoughlyBalanced(t *testing.T) {
	g := rng.NewXoshiro256(2)
	c := Uniform(70000, 7, g)
	d := c.Dist()
	for i, k := range d.Counts {
		if math.Abs(float64(k)-10000) > 500 {
			t.Fatalf("bin %d count %d, want ~10000", i, k)
		}
	}
}

func TestTwoValue(t *testing.T) {
	c := TwoValue(10, 3, 1, 2)
	if got := c.AgreeingWith(1); got != 3 {
		t.Fatalf("low count %d", got)
	}
	if got := c.AgreeingWith(2); got != 7 {
		t.Fatalf("high count %d", got)
	}
}

func TestTwoValuePanics(t *testing.T) {
	cases := []func(){
		func() { TwoValue(0, 0, 1, 2) },
		func() { TwoValue(10, 11, 1, 2) },
		func() { TwoValue(10, -1, 1, 2) },
		func() { TwoValue(10, 5, 2, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBlocks(t *testing.T) {
	c := Blocks([]int64{2, 0, 3})
	if len(c) != 5 {
		t.Fatalf("len %d", len(c))
	}
	d := c.Dist()
	if d.Support() != 2 || d.Vals[0] != 1 || d.Vals[1] != 3 {
		t.Fatalf("dist %+v", d)
	}
	if d.Counts[0] != 2 || d.Counts[1] != 3 {
		t.Fatalf("counts %+v", d.Counts)
	}
}

func TestBlocksPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative: expected panic")
			}
		}()
		Blocks([]int64{1, -1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty: expected panic")
			}
		}()
		Blocks([]int64{0, 0})
	}()
}

func TestEvenBlocks(t *testing.T) {
	c := EvenBlocks(10, 3)
	d := c.Dist()
	if d.Support() != 3 {
		t.Fatalf("support %d", d.Support())
	}
	want := []int64{4, 3, 3}
	for i, k := range d.Counts {
		if k != want[i] {
			t.Fatalf("counts %v want %v", d.Counts, want)
		}
	}
}

func TestDistSortedAndComplete(t *testing.T) {
	c := Config{5, 3, 5, 1, 3, 5}
	d := c.Dist()
	wantVals := []Value{1, 3, 5}
	wantCounts := []int64{1, 2, 3}
	for i := range wantVals {
		if d.Vals[i] != wantVals[i] || d.Counts[i] != wantCounts[i] {
			t.Fatalf("dist %+v", d)
		}
	}
	if d.N() != 6 {
		t.Fatalf("N %d", d.N())
	}
}

func TestMedianValue(t *testing.T) {
	cases := []struct {
		cfg  Config
		want Value
	}{
		{Config{1, 2, 3}, 2},
		{Config{1, 1, 2, 3}, 1}, // below(1)=0<=2, above=2<=2 → 1
		{Config{1, 2, 2, 3}, 2}, // bin 1: above=3 > 2; bin 2: below=1, above=1
		{Config{7}, 7},
		{Config{4, 4, 4, 4}, 4},
		{Config{1, 2}, 1},          // below(1)=0<=1, above(1)=1<=1
		{Config{1, 1, 5, 5, 5}, 5}, // bin 1: above=3 > 2.5; bin 5: below=2<=2.5
	}
	for _, c := range cases {
		if got := c.cfg.Dist().MedianValue(); got != c.want {
			t.Errorf("MedianValue(%v) = %d want %d", c.cfg, got, c.want)
		}
	}
}

func TestMedianValueEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dist{}.MedianValue()
}

func TestMaxCount(t *testing.T) {
	c := Config{2, 2, 9, 9, 9, 1}
	v, k := c.Dist().MaxCount()
	if v != 9 || k != 3 {
		t.Fatalf("MaxCount = (%d, %d)", v, k)
	}
}

func TestIsConsensus(t *testing.T) {
	if !(Config{3, 3, 3}).IsConsensus() {
		t.Fatal("consensus not detected")
	}
	if (Config{3, 3, 4}).IsConsensus() {
		t.Fatal("false consensus")
	}
	if !(Config{}).IsConsensus() {
		t.Fatal("empty config should be consensus")
	}
}

func TestValueSet(t *testing.T) {
	s := (Config{1, 5, 1, 9}).ValueSet()
	if len(s) != 3 {
		t.Fatalf("set size %d", len(s))
	}
	for _, v := range []Value{1, 5, 9} {
		if _, ok := s[v]; !ok {
			t.Fatalf("missing %d", v)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Config{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestFinerThanAllOneVsAny(t *testing.T) {
	// The all-one vector is finer than any vector of the same total
	// (the paper's canonical example).
	fine := []int64{1, 1, 1, 1, 1, 1, 1, 1}
	coarse := []int64{3, 2, 0, 1, 2}
	f, ok := FinerThan(fine, coarse)
	if !ok {
		t.Fatal("all-one should be finer")
	}
	if !IsMonotone(f) {
		t.Fatalf("witness not monotone: %v", f)
	}
	// Verify the witness reproduces coarse.
	rebuilt := make([]int64, len(coarse))
	for j, k := range fine {
		rebuilt[f[j]] += k
	}
	for i := range coarse {
		if rebuilt[i] != coarse[i] {
			t.Fatalf("rebuilt %v want %v", rebuilt, coarse)
		}
	}
}

func TestFinerThanRejectsSplit(t *testing.T) {
	// (3) cannot be finer than (1, 2): a fine bin cannot be split.
	if _, ok := FinerThan([]int64{3}, []int64{1, 2}); ok {
		t.Fatal("split accepted")
	}
}

func TestFinerThanRejectsTotalMismatch(t *testing.T) {
	if _, ok := FinerThan([]int64{2, 2}, []int64{3}); ok {
		t.Fatal("total mismatch accepted")
	}
}

func TestFinerThanIdentity(t *testing.T) {
	v := []int64{2, 0, 5, 1}
	f, ok := FinerThan(v, v)
	if !ok || !IsMonotone(f) {
		t.Fatal("vector should be finer than itself")
	}
}

func TestFinerThanTrailingEmpty(t *testing.T) {
	f, ok := FinerThan([]int64{2, 3, 0, 0}, []int64{5})
	if !ok || !IsMonotone(f) {
		t.Fatalf("trailing empties rejected (ok=%v f=%v)", ok, f)
	}
	if _, ok := FinerThan([]int64{2, 3, 1}, []int64{5}); ok {
		t.Fatal("nonempty trailing bin accepted")
	}
}

func TestFinerThanNegative(t *testing.T) {
	if _, ok := FinerThan([]int64{-1, 2}, []int64{1}); ok {
		t.Fatal("negative fine accepted")
	}
	if _, ok := FinerThan([]int64{1}, []int64{-1, 2}); ok {
		t.Fatal("negative coarse accepted")
	}
}

func TestCoarsenAndCheckMonotone(t *testing.T) {
	c := Config{1, 2, 3, 4}
	halve := func(v Value) Value { return (v + 1) / 2 } // 1,1,2,2
	if err := CheckMonotoneOn(c, halve); err != nil {
		t.Fatalf("monotone map rejected: %v", err)
	}
	out := Coarsen(c, halve)
	want := Config{1, 1, 2, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("coarsened %v want %v", out, want)
		}
	}
	flip := func(v Value) Value { return -v }
	if err := CheckMonotoneOn(c, flip); err == nil {
		t.Fatal("antitone map accepted")
	}
}

func TestMedian3Exhaustive(t *testing.T) {
	// All 27 orderings of a 3-element domain.
	vals := []Value{1, 2, 3}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				got := Median3(a, b, c)
				// Reference: sort and take middle.
				xs := []Value{a, b, c}
				if xs[0] > xs[1] {
					xs[0], xs[1] = xs[1], xs[0]
				}
				if xs[1] > xs[2] {
					xs[1], xs[2] = xs[2], xs[1]
				}
				if xs[0] > xs[1] {
					xs[0], xs[1] = xs[1], xs[0]
				}
				if got != xs[1] {
					t.Fatalf("Median3(%d,%d,%d) = %d want %d", a, b, c, got, xs[1])
				}
			}
		}
	}
}

// The key algebraic fact behind Lemma 17: the median of three commutes with
// monotone maps. Quick-check over random triples and random monotone
// step functions.
func TestQuickMedianCommutesWithMonotone(t *testing.T) {
	f := func(a, b, c int32, thresh int32, loRaw, hiRaw int8) bool {
		lo, hi := Value(loRaw), Value(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		step := func(v Value) Value {
			if v < Value(thresh) {
				return lo
			}
			return hi
		}
		av, bv, cv := Value(a), Value(b), Value(c)
		return Median3(step(av), step(bv), step(cv)) == step(Median3(av, bv, cv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Median3 is symmetric in its arguments.
func TestQuickMedian3Symmetric(t *testing.T) {
	f := func(a, b, c int64) bool {
		m := Median3(a, b, c)
		return m == Median3(a, c, b) && m == Median3(b, a, c) &&
			m == Median3(b, c, a) && m == Median3(c, a, b) && m == Median3(c, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Median3 returns one of its arguments (validity at the kernel
// level — the median rule can only ever output existing values).
func TestQuickMedian3Validity(t *testing.T) {
	f := func(a, b, c int64) bool {
		m := Median3(a, b, c)
		return m == a || m == b || m == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: FinerThan(allOne(n), v) succeeds for every non-negative vector v
// with total n.
func TestQuickAllOneFinest(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		coarse := make([]int64, len(raw))
		var total int64
		for i, r := range raw {
			coarse[i] = int64(r % 8)
			total += coarse[i]
		}
		if total == 0 {
			return true
		}
		fine := make([]int64, total)
		for i := range fine {
			fine[i] = 1
		}
		fmap, ok := FinerThan(fine, coarse)
		return ok && IsMonotone(fmap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// GravityExact must sum to n over all positions: every ball chooses exactly
// one median, so total gravity is the total number of balls.
func TestGravityExactSumsToN(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 5, 10, 101, 1000} {
		var sum float64
		for i := int64(1); i <= n; i++ {
			sum += GravityExact(n, i)
		}
		if math.Abs(sum-float64(n)) > 1e-6*float64(n) {
			t.Errorf("n=%d: gravities sum to %v", n, sum)
		}
	}
}

// Monte-Carlo check of GravityExact: simulate the median choices of all
// balls one round from the all-distinct state and compare per-position
// frequencies.
func TestGravityExactMonteCarlo(t *testing.T) {
	const n = 21
	const trials = 200000
	g := rng.NewXoshiro256(7)
	counts := make([]float64, n+1)
	for tr := 0; tr < trials; tr++ {
		j := int64(g.Intn(n)) + 1
		a := int64(g.Intn(n)) + 1
		b := int64(g.Intn(n)) + 1
		// median position of (j, a, b)
		lo, mid, hi := j, a, b
		if lo > mid {
			lo, mid = mid, lo
		}
		if mid > hi {
			mid = hi
		}
		if lo > mid {
			mid = lo
		}
		_ = hi
		counts[mid]++
	}
	for i := int64(1); i <= n; i++ {
		// counts[i]/trials estimates E[#balls choosing i]/n = g(i)/n.
		emp := counts[i] / trials * n
		want := GravityExact(n, i)
		se := math.Sqrt(want/n*(1-want/n)/trials) * n * 6
		if math.Abs(emp-want) > se+0.02 {
			t.Errorf("i=%d: empirical %v want %v", i, emp, want)
		}
	}
}

// Equation 1: |exact − 6(n−i)i/n²| = O(1/n).
func TestGravityApproxWithinBigO(t *testing.T) {
	for _, n := range []int64{100, 1000, 10000} {
		worst := 0.0
		for i := int64(1); i <= n; i += n / 100 {
			d := math.Abs(GravityExact(n, i) - GravityApprox(n, i))
			if d > worst {
				worst = d
			}
		}
		// The O(1/n) constant is small; 6/n is generous.
		if worst > 6/float64(n) {
			t.Errorf("n=%d: worst gap %v exceeds 6/n", n, worst)
		}
	}
}

// The gravity peak is at the median position and the peak value approaches
// 3/2 (set i = n/2 in Equation 1).
func TestGravityPeak(t *testing.T) {
	const n = 10001
	mid := int64((n + 1) / 2)
	peak := GravityExact(n, mid)
	if math.Abs(peak-1.5) > 0.01 {
		t.Fatalf("peak gravity %v, want ~1.5", peak)
	}
	for _, i := range []int64{1, n / 4, n - 1} {
		if GravityExact(n, i) > peak+1e-9 {
			t.Fatalf("gravity at %d exceeds peak", i)
		}
	}
	// Edge balls have gravity ≈ 1 (they mostly keep only themselves...
	// exact value at i=1: (n²−(n−1)²)/n² + (n−1)(2·1−1)/n² ≈ 3/n... wait:
	// the ball at position 1 is chosen as median only when sampled; its
	// gravity tends to 0? No: self term = 1−(n−1)²/n² ≈ 2/n → small.
	if g := GravityExact(n, 1); g > 0.01 {
		t.Fatalf("edge gravity %v, want ~0", g)
	}
}

func TestGravityPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GravityExact(10, 0) },
		func() { GravityExact(10, 11) },
		func() { GravityApprox(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// The Lemma 18 boundary: gravity < 4/3 implies i ≤ n/3 + O(1) (or the
// mirror image). GravityThresholdPosition(4/3) must return ~n/3.
func TestGravityThresholdPosition(t *testing.T) {
	const n = 30000
	pos, ok := GravityThresholdPosition(n, 4.0/3.0)
	if !ok {
		t.Fatal("threshold not found")
	}
	if math.Abs(float64(pos)-float64(n)/3) > float64(n)/100 {
		t.Fatalf("threshold at %d, want ~n/3 = %d", pos, n/3)
	}
	if g := GravityApprox(n, pos); g < 4.0/3.0-0.01 {
		t.Fatalf("gravity at threshold %v < 4/3", g)
	}
	// Gravity above 1.5 is unattainable.
	if _, ok := GravityThresholdPosition(n, 1.6); ok {
		t.Fatal("impossible threshold accepted")
	}
}

func TestTwoBin(t *testing.T) {
	st := TwoBin([]int64{30, 70})
	if st.Delta != 20 || st.Psi != 20 || !st.MinorityL {
		t.Fatalf("%+v", st)
	}
	st = TwoBin([]int64{70, 30})
	if st.Delta != 20 || st.Psi != -20 || st.MinorityL {
		t.Fatalf("%+v", st)
	}
	st = TwoBin([]int64{50, 50})
	if st.Delta != 0 || st.Psi != 0 {
		t.Fatalf("%+v", st)
	}
	// Odd difference: half-integer imbalance.
	st = TwoBin([]int64{50, 51})
	if st.Delta != 0.5 {
		t.Fatalf("%+v", st)
	}
}

func TestTwoBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TwoBin([]int64{1, 2, 3})
}

func TestMedianIndex(t *testing.T) {
	cases := []struct {
		counts []int64
		want   int
	}{
		{[]int64{1, 1, 1}, 1},
		{[]int64{5, 1}, 0},
		{[]int64{1, 5}, 1},
		{[]int64{3, 3}, 0}, // below=0 ≤ 3, above=3 ≤ 3 at bin 0
		{[]int64{0, 7, 0}, 1},
		{[]int64{2, 0, 2, 0, 2}, 2},
	}
	for _, c := range cases {
		if got := MedianIndex(c.counts); got != c.want {
			t.Errorf("MedianIndex(%v) = %d want %d", c.counts, got, c.want)
		}
	}
}

func TestSideMass(t *testing.T) {
	l, r := SideMass([]int64{10, 5, 20, 5, 10})
	// total 50; median bin: idx 2 (below 15 ≤ 25, above 15 ≤ 25)
	if l != 15 || r != 15 {
		t.Fatalf("side mass %d/%d", l, r)
	}
}

func TestPhi(t *testing.T) {
	if Phi(1, 10) != 1 {
		t.Fatal("tiny n")
	}
	got := Phi(10000, 1)
	want := int64(math.Ceil(math.Sqrt(10000 * math.Log(10000))))
	if got != want {
		t.Fatalf("Phi = %d want %d", got, want)
	}
}

func TestHeavyBallsFullBin(t *testing.T) {
	// Bin 1 holds everything around the middle: its heavy set saturates at
	// Φ with min gravity near the peak.
	counts := []int64{100, 800, 100}
	hs := HeavyBalls(counts, 1, 50)
	if hs.Size != 50 {
		t.Fatalf("size %d", hs.Size)
	}
	if !hs.AllAboveThreshold {
		t.Fatalf("central bin heavy set below 4/3: %+v", hs)
	}
}

func TestHeavyBallsEdgeBin(t *testing.T) {
	// Bin 0 sits entirely below n/3: all its balls have gravity < 4/3.
	counts := []int64{100, 900}
	hs := HeavyBalls(counts, 0, 50)
	if hs.Size != 50 {
		t.Fatalf("size %d", hs.Size)
	}
	if hs.AllAboveThreshold {
		t.Fatalf("edge bin heavy set above 4/3: %+v", hs)
	}
}

func TestHeavyBallsSmallBin(t *testing.T) {
	counts := []int64{10, 990}
	hs := HeavyBalls(counts, 0, 50)
	if hs.Size != 10 {
		t.Fatalf("size %d, want the full bin load", hs.Size)
	}
}

func TestHeavyBallsEmptyBin(t *testing.T) {
	counts := []int64{0, 100}
	hs := HeavyBalls(counts, 0, 50)
	if hs.Size != 0 || hs.MinGravity != 0 {
		t.Fatalf("%+v", hs)
	}
}

func TestHeavyBallsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HeavyBalls([]int64{1}, 5, 10)
}

func TestPhaseTrackerHalves(t *testing.T) {
	// 8 bins, 1000 balls. Feed count vectors in which the left meta-bin is
	// overwhelmingly heavy: the candidate interval must halve leftwards.
	p := NewPhaseTracker(8, 1000, 0.5)
	counts := []int64{900, 20, 20, 20, 10, 10, 10, 10}
	steps := 0
	for !p.Done() && steps < 100 {
		p.Observe(counts)
		steps++
	}
	if !p.Done() {
		t.Fatal("tracker never finished")
	}
	if p.Lo != 0 || p.Hi > 1 {
		t.Fatalf("candidates [%d,%d], want [0,0] or [0,1]", p.Lo, p.Hi)
	}
	if p.Phases < 2 {
		t.Fatalf("phases %d", p.Phases)
	}
	if len(p.RoundsPerPhase) != p.Phases {
		t.Fatalf("rounds-per-phase %v for %d phases", p.RoundsPerPhase, p.Phases)
	}
}

func TestPhaseTrackerWaitsBelowThreshold(t *testing.T) {
	p := NewPhaseTracker(4, 1000, 10) // threshold 10·√(1000·ln1000) ≈ 831
	balanced := []int64{250, 250, 250, 250}
	for i := 0; i < 10; i++ {
		if p.Observe(balanced) {
			t.Fatal("phase advanced on balanced state")
		}
	}
	if p.Phases != 0 {
		t.Fatalf("phases %d", p.Phases)
	}
}

func TestPhaseTrackerRightward(t *testing.T) {
	p := NewPhaseTracker(4, 100, 0.1)
	counts := []int64{1, 1, 1, 97}
	for !p.Done() {
		if !p.Observe(counts) {
			t.Fatal("phase did not advance")
		}
	}
	if p.Hi != 3 || p.Lo < 2 {
		t.Fatalf("candidates [%d,%d], want right edge", p.Lo, p.Hi)
	}
}

func TestPhaseTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPhaseTracker(0, 10, 1)
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder()
	rec.Observe(0, []Value{1, 2}, []int64{30, 70})
	rec.Observe(1, []Value{2}, []int64{100})
	if len(rec.Support.Points) != 2 || rec.Support.Points[0] != 2 || rec.Support.Points[1] != 1 {
		t.Fatalf("support %v", rec.Support.Points)
	}
	if len(rec.Delta.Points) != 1 || rec.Delta.Points[0] != 20 {
		t.Fatalf("delta %v", rec.Delta.Points)
	}
	if rec.MaxLoad.Points[1] != 100 {
		t.Fatalf("maxload %v", rec.MaxLoad.Points)
	}
	if rec.Rounds != 1 {
		t.Fatalf("rounds %d", rec.Rounds)
	}
}

// Property: gravity is symmetric: g(i) == g(n+1−i).
func TestQuickGravitySymmetry(t *testing.T) {
	f := func(nRaw uint16, iRaw uint16) bool {
		n := int64(nRaw)%5000 + 2
		i := int64(iRaw)%n + 1
		a := GravityExact(n, i)
		b := GravityExact(n, n+1-i)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact gravity lies in [0, 1.5 + o(1)].
func TestQuickGravityBounded(t *testing.T) {
	f := func(nRaw uint16, iRaw uint16) bool {
		n := int64(nRaw)%5000 + 2
		i := int64(iRaw)%n + 1
		g := GravityExact(n, i)
		return g >= 0 && g <= 1.5+3/float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: MedianIndex returns a bin satisfying the paper's definition.
func TestQuickMedianIndexDefinition(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int64, len(raw))
		var n int64
		for i, r := range raw {
			counts[i] = int64(r % 16)
			n += counts[i]
		}
		if n == 0 {
			return true
		}
		mi := MedianIndex(counts)
		var below, above int64
		for j, k := range counts {
			if j < mi {
				below += k
			}
			if j > mi {
				above += k
			}
		}
		return 2*below <= n && 2*above <= n && counts[mi] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestGravityThresholdPositionEdges(t *testing.T) {
	// g beyond the 1.5 maximum has no solution.
	if _, ok := GravityThresholdPosition(1000, 1.6); ok {
		t.Fatal("g > 3/2 cannot be reached")
	}
	// g = 0 is reached at the very first ball.
	i, ok := GravityThresholdPosition(1000, 0)
	if !ok || i != 1 {
		t.Fatalf("g=0 position = %d, %v", i, ok)
	}
	// Lemma 18's g = 4/3 boundary lands near n/3.
	i, ok = GravityThresholdPosition(3_000_000, 4.0/3)
	if !ok {
		t.Fatal("4/3 must be reachable")
	}
	if i < 990_000 || i > 1_010_000 {
		t.Fatalf("4/3 threshold at %d, want ≈ n/3 = 1e6", i)
	}
}

// Package analysis implements the observables of the paper's proofs so the
// experiments can measure exactly what the lemmas claim:
//
//   - gravity g(i) (Section 4.2, Equation 1): the expected number of balls
//     that choose ball i as their median in the next step, both the exact
//     combinatorial value and the paper's closed form 6(n−i)i/n².
//   - imbalance Δt = (Yt−Xt)/2 and labelled imbalance Ψt = (Rt−Lt)/2 of the
//     two-bin analysis (Section 3).
//   - heavy-ball sets H(t,j) (Section 4.2): the Φ = C·√(n·log n) balls of a
//     bin with the largest gravity.
//   - the phase tracker of Theorem 20: the candidate-bin set S_i that halves
//     once the meta-bin imbalance reaches C·√(n·log n).
//   - a per-round trace recorder used as an engine Observer.
package analysis

import (
	"math"

	"repro/internal/model"
)

// Value aliases the shared process-value type.
type Value = model.Value

// GravityExact returns the exact gravity of the ball at position i in the
// sorted ball ordering (1-based, per the paper's Section 4.2): the expected
// number of balls that pick position i as the median of {their own position,
// two uniform positions}. Derivation (positions are distinct by the paper's
// ordering convention):
//
//   - the ball at i itself keeps the median at i unless both samples fall
//     strictly on the same side: probability 1 − ((i−1)² + (n−i)²)/n².
//   - a ball at j < i medians to i iff it samples i and a position ≥ i:
//     (2(n−i+1) − 1)/n² each, for i−1 such balls.
//   - a ball at j > i symmetrically: (2i − 1)/n² each, for n−i balls.
func GravityExact(n int64, i int64) float64 {
	if n <= 0 || i < 1 || i > n {
		panic("analysis: GravityExact needs 1 <= i <= n")
	}
	nf := float64(n)
	fi := float64(i)
	n2 := nf * nf
	self := (n2 - (fi-1)*(fi-1) - (nf-fi)*(nf-fi)) / n2
	below := (fi - 1) * (2*(nf-fi+1) - 1) / n2
	above := (nf - fi) * (2*fi - 1) / n2
	return self + below + above
}

// GravityApprox returns the paper's Equation 1 closed form
// g(i) ≈ 6(n−i)i/n², accurate to O(1/n).
func GravityApprox(n int64, i int64) float64 {
	if n <= 0 || i < 1 || i > n {
		panic("analysis: GravityApprox needs 1 <= i <= n")
	}
	nf := float64(n)
	fi := float64(i)
	return 6 * (nf - fi) * fi / (nf * nf)
}

// GravityThresholdPosition returns the smallest 1-based position i whose
// approximate gravity reaches g — the boundary the proof of Lemma 18 uses
// with g = 4/3, which yields i ≈ n/3 (balls between n/3 and 2n/3 have
// gravity ≥ 4/3). Returns (position, ok); ok is false when no position
// reaches g (g > 1.5 asymptotically).
func GravityThresholdPosition(n int64, g float64) (int64, bool) {
	// Solve 6(n−i)i/n² = g: i = n(1 ± sqrt(1−2g/3))/2; smallest root.
	disc := 1 - 2*g/3
	if disc < 0 {
		return 0, false
	}
	i := int64(math.Ceil(float64(n) * (1 - math.Sqrt(disc)) / 2))
	if i < 1 {
		i = 1
	}
	if i > n {
		return 0, false
	}
	return i, true
}

// TwoBinState summarises a two-bin configuration per Section 3.
type TwoBinState struct {
	L, R      int64   // loads of the left (smaller value) and right bins
	Delta     float64 // imbalance Δ = (max−min)/2
	Psi       float64 // labelled imbalance Ψ = (R−L)/2
	MinorityL bool    // true when the left bin is the smaller one
}

// TwoBin computes the Section 3 statistics from a two-entry count vector.
// It panics unless exactly two bins are supplied.
func TwoBin(counts []int64) TwoBinState {
	if len(counts) != 2 {
		panic("analysis: TwoBin needs exactly two bins")
	}
	l, r := counts[0], counts[1]
	x, y := l, r
	if x > y {
		x, y = y, x
	}
	return TwoBinState{
		L: l, R: r,
		Delta:     float64(y-x) / 2,
		Psi:       float64(r-l) / 2,
		MinorityL: l <= r,
	}
}

// MedianIndex returns the index of the median bin of an ordered count
// vector (Section 2.1): the bin m with at most n/2 balls strictly below and
// at most n/2 strictly above.
func MedianIndex(counts []int64) int {
	var n int64
	for _, k := range counts {
		n += k
	}
	if n == 0 {
		panic("analysis: MedianIndex of empty distribution")
	}
	var below int64
	for j, k := range counts {
		if k == 0 {
			below += k
			continue
		}
		above := n - below - k
		if 2*below <= n && 2*above <= n {
			return j
		}
		below += k
	}
	panic("analysis: no median bin (unreachable)")
}

// SideMass returns the total loads strictly left and strictly right of the
// median bin.
func SideMass(counts []int64) (left, right int64) {
	mi := MedianIndex(counts)
	for j, k := range counts {
		switch {
		case j < mi:
			left += k
		case j > mi:
			right += k
		}
	}
	return left, right
}

// Phi returns the heavy-set size Φ = ⌈C·√(n·log n)⌉ of Section 4.2.
func Phi(n int64, c float64) int64 {
	if n < 2 {
		return 1
	}
	return int64(math.Ceil(c * math.Sqrt(float64(n)*math.Log(float64(n)))))
}

// HeavySet describes the heavy-ball set H(t,j) of one bin: the (up to) Φ
// balls of the bin whose positions have the largest gravity. Because
// gravity is unimodal with peak at ⌈n/2⌉, those are the positions of the
// bin's interval closest to the middle position.
type HeavySet struct {
	// Size is |H| ∈ [0, Φ].
	Size int64
	// MinGravity is the smallest (approximate) gravity within H; 0 when
	// the set is empty.
	MinGravity float64
	// AllAboveThreshold reports MinGravity >= 4/3 − the Lemma 19 dichotomy
	// condition for the bin to keep growing.
	AllAboveThreshold bool
}

// HeavyBalls computes H(t,j) for bin j of an ordered count vector, with
// heavy-set size Φ. Positions are assigned in bin order: bin 0 occupies
// positions 1..counts[0], and so on (the paper's ball ordering).
func HeavyBalls(counts []int64, j int, phi int64) HeavySet {
	if j < 0 || j >= len(counts) {
		panic("analysis: HeavyBalls bin out of range")
	}
	var n, lo int64
	for idx, k := range counts {
		if idx < j {
			lo += k
		}
		n += k
	}
	load := counts[j]
	if load == 0 {
		return HeavySet{}
	}
	first := lo + 1    // first position of bin j (1-based)
	last := lo + load  // last position
	mid := (n + 1) / 2 // gravity peak position
	size := phi
	if load < size {
		size = load
	}
	// The `size` positions of [first,last] closest to mid form a window;
	// its minimum gravity is attained at the window edge farthest from mid.
	var wloFirst, wloLast int64
	switch {
	case mid < first:
		wloFirst, wloLast = first, first+size-1
	case mid > last:
		wloFirst, wloLast = last-size+1, last
	default:
		// mid inside the bin: centre the window on mid, clamped.
		half := size / 2
		wloFirst = mid - half
		if wloFirst < first {
			wloFirst = first
		}
		wloLast = wloFirst + size - 1
		if wloLast > last {
			wloLast = last
			wloFirst = wloLast - size + 1
		}
	}
	gLo := GravityApprox(n, wloFirst)
	gHi := GravityApprox(n, wloLast)
	minG := gLo
	if gHi < minG {
		minG = gHi
	}
	return HeavySet{
		Size:              size,
		MinGravity:        minG,
		AllAboveThreshold: minG >= 4.0/3.0,
	}
}

// PhaseTracker follows the Theorem 20 induction: a candidate bin interval
// S_i that halves whenever the meta-bin imbalance reaches the threshold
// n/2 + C·√(n·log n). After ⌈log₂ m⌉ phases at most two candidate bins
// remain.
type PhaseTracker struct {
	// Lo and Hi delimit the current candidate interval (bin indices,
	// inclusive).
	Lo, Hi int
	// Threshold is C·√(n·log n).
	Threshold float64
	// Phases counts completed halvings.
	Phases int
	// RoundsPerPhase records how many observations each phase consumed.
	RoundsPerPhase []int
	inPhase        int
}

// NewPhaseTracker starts tracking an m-bin system of n balls with constant c.
func NewPhaseTracker(m int, n int64, c float64) *PhaseTracker {
	if m < 1 {
		panic("analysis: NewPhaseTracker needs m >= 1")
	}
	return &PhaseTracker{
		Lo: 0, Hi: m - 1,
		Threshold: c * math.Sqrt(float64(n)*math.Log(float64(n))),
	}
}

// Done reports whether at most two candidate bins remain.
func (p *PhaseTracker) Done() bool { return p.Hi-p.Lo+1 <= 2 }

// Observe consumes one round's ordered count vector (length must cover Hi)
// and advances the phase when the halving condition holds. It returns true
// if a phase completed on this observation.
func (p *PhaseTracker) Observe(counts []int64) bool {
	if p.Done() {
		return false
	}
	p.inPhase++
	var n int64
	for _, k := range counts {
		n += k
	}
	mid := (p.Lo + p.Hi) / 2
	// Meta-bin loads: everything up to mid vs everything after.
	var left int64
	for j := 0; j <= mid && j < len(counts); j++ {
		left += counts[j]
	}
	right := n - left
	half := float64(n) / 2
	switch {
	case float64(left) >= half+p.Threshold:
		p.Hi = mid
	case float64(right) >= half+p.Threshold:
		p.Lo = mid + 1
	default:
		return false
	}
	p.Phases++
	p.RoundsPerPhase = append(p.RoundsPerPhase, p.inPhase)
	p.inPhase = 0
	return true
}

// Trace records one scalar per round; Recorder assembles several.
type Trace struct {
	Name   string
	Points []float64
}

// Recorder is an engine Observer that captures the proof-level observables
// every round: support size, max load, median-bin index, side masses, and —
// for two-bin states — Δ and Ψ.
type Recorder struct {
	Support  Trace
	MaxLoad  Trace
	Median   Trace
	LeftMass Trace
	Delta    Trace
	Psi      Trace
	Rounds   int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		Support:  Trace{Name: "support"},
		MaxLoad:  Trace{Name: "max-load"},
		Median:   Trace{Name: "median-index"},
		LeftMass: Trace{Name: "left-mass"},
		Delta:    Trace{Name: "delta"},
		Psi:      Trace{Name: "psi"},
	}
}

// Observe implements the engine Observer signature.
func (rec *Recorder) Observe(round int, vals []Value, counts []int64) {
	rec.Rounds = round
	rec.Support.Points = append(rec.Support.Points, float64(len(counts)))
	var maxLoad int64
	for _, k := range counts {
		if k > maxLoad {
			maxLoad = k
		}
	}
	rec.MaxLoad.Points = append(rec.MaxLoad.Points, float64(maxLoad))
	if len(counts) > 0 {
		mi := MedianIndex(counts)
		rec.Median.Points = append(rec.Median.Points, float64(vals[mi]))
		l, _ := SideMass(counts)
		rec.LeftMass.Points = append(rec.LeftMass.Points, float64(l))
	}
	if len(counts) == 2 {
		st := TwoBin(counts)
		rec.Delta.Points = append(rec.Delta.Points, st.Delta)
		rec.Psi.Points = append(rec.Psi.Points, st.Psi)
	}
}

package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/adversary"
	"repro/internal/assign"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/rules"
)

func TestBallEngineConsensusFixedPoint(t *testing.T) {
	cfg := assign.Config{5, 5, 5, 5}
	e := NewBallEngine(cfg, rules.Median{}, nil, 1, Options{})
	res := e.Run()
	if res.Reason != model.StopConsensus || res.Rounds != 0 || res.Winner != 5 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestBallEngineMedianConverges(t *testing.T) {
	cfg := assign.AllDistinct(500)
	e := NewBallEngine(cfg, rules.Median{}, nil, 42, Options{MaxRounds: 2000})
	res := e.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Winner < 1 || res.Winner > 500 {
		t.Fatalf("winner %d violates validity", res.Winner)
	}
	if res.Rounds < 2 || res.Rounds > 200 {
		t.Fatalf("implausible round count %d for n=500", res.Rounds)
	}
}

// Validity: without an adversary the median rule can never create a value —
// every intermediate state's support is a subset of the initial support.
func TestBallEngineValidityInvariant(t *testing.T) {
	cfg := assign.Uniform(300, 9, newTestRng(7))
	initial := cfg.ValueSet()
	e := NewBallEngine(cfg, rules.Median{}, nil, 99, Options{})
	for r := 0; r < 50; r++ {
		e.Step()
		for i, v := range e.State() {
			if _, ok := initial[v]; !ok {
				t.Fatalf("round %d ball %d holds non-initial value %d", r, i, v)
			}
		}
	}
}

// The mean rule, by contrast, creates values outside the initial support
// (the paper's validity objection to [17]).
func TestMeanRuleViolatesValidity(t *testing.T) {
	cfg := assign.TwoValue(400, 200, 0, 900)
	initial := cfg.ValueSet()
	e := NewBallEngine(cfg, rules.Mean{}, nil, 5, Options{MaxRounds: 300})
	res := e.Run()
	if _, ok := initial[res.Winner]; ok && (res.Winner == 0 || res.Winner == 900) {
		// With two far-apart values and a balanced split, the mean rule
		// should settle strictly between them.
		t.Fatalf("mean rule unexpectedly preserved validity: winner %d", res.Winner)
	}
}

func TestBallEngineMinimumRuleConverges(t *testing.T) {
	cfg := assign.AllDistinct(300)
	e := NewBallEngine(cfg, rules.Minimum{}, nil, 3, Options{MaxRounds: 1000})
	res := e.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("minimum rule did not converge: %+v", res)
	}
	if res.Winner != 1 {
		t.Fatalf("minimum rule converged to %d, want 1", res.Winner)
	}
}

func TestBallEngineMaximumRuleConverges(t *testing.T) {
	cfg := assign.AllDistinct(300)
	e := NewBallEngine(cfg, rules.Maximum{}, nil, 4, Options{MaxRounds: 1000})
	res := e.Run()
	if res.Reason != model.StopConsensus || res.Winner != 300 {
		t.Fatalf("maximum rule: %+v", res)
	}
}

func TestBallEngineDeterministic(t *testing.T) {
	cfg := assign.AllDistinct(200)
	a := NewBallEngine(cfg, rules.Median{}, nil, 77, Options{}).Run()
	b := NewBallEngine(cfg, rules.Median{}, nil, 77, Options{}).Run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := NewBallEngine(cfg, rules.Median{}, nil, 78, Options{}).Run()
	if a == c && a.Rounds == c.Rounds && a.Winner == c.Winner {
		// Different seeds *may* coincide; only flag exact full equality of
		// all fields as suspicious when rounds are also equal. Tolerate.
		t.Logf("note: seeds 77 and 78 produced identical results %+v", a)
	}
}

func TestBallEngineParallelMatchesSequentialStatistically(t *testing.T) {
	// Parallel execution uses different RNG streams, so trajectories
	// differ; convergence-round distributions must agree.
	cfg := assign.EvenBlocks(400, 4)
	var seqRounds, parRounds []float64
	for s := uint64(0); s < 20; s++ {
		seqRounds = append(seqRounds, float64(NewBallEngine(cfg, rules.Median{}, nil, s, Options{}).Run().Rounds))
		parRounds = append(parRounds, float64(NewBallEngine(cfg, rules.Median{}, nil, s, Options{Workers: 4}).Run().Rounds))
	}
	ms, mp := stats.Mean(seqRounds), stats.Mean(parRounds)
	if math.Abs(ms-mp) > 0.5*(ms+mp)/2+3 {
		t.Fatalf("sequential %.2f vs parallel %.2f mean rounds", ms, mp)
	}
}

func TestBallEngineParallelDeterministicPerWorkerCount(t *testing.T) {
	cfg := assign.AllDistinct(128)
	a := NewBallEngine(cfg, rules.Median{}, nil, 5, Options{Workers: 4}).Run()
	b := NewBallEngine(cfg, rules.Median{}, nil, 5, Options{Workers: 4}).Run()
	if a != b {
		t.Fatalf("parallel not reproducible: %+v vs %+v", a, b)
	}
}

func TestBallEngineInPlaceAblation(t *testing.T) {
	cfg := assign.AllDistinct(200)
	e := NewBallEngine(cfg, rules.Median{}, nil, 11, Options{InPlace: true, MaxRounds: 2000})
	res := e.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("in-place ablation did not converge: %+v", res)
	}
}

func TestBallEngineObserverCalledEveryRound(t *testing.T) {
	cfg := assign.TwoValue(100, 50, 1, 2)
	var calls []int
	var lastTotal int64
	e := NewBallEngine(cfg, rules.Median{}, nil, 9, Options{
		Observer: func(round int, vals []Value, counts []int64) {
			calls = append(calls, round)
			lastTotal = 0
			for _, c := range counts {
				lastTotal += c
			}
		},
	})
	res := e.Run()
	if len(calls) != res.Rounds+1 {
		t.Fatalf("observer called %d times for %d rounds", len(calls), res.Rounds)
	}
	if calls[0] != 0 || calls[len(calls)-1] != res.Rounds {
		t.Fatalf("observer rounds %v", calls)
	}
	if lastTotal != 100 {
		t.Fatalf("counts sum %d, want 100", lastTotal)
	}
}

func TestBallEnginePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty cfg: expected panic")
			}
		}()
		NewBallEngine(nil, rules.Median{}, nil, 1, Options{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rule: expected panic")
			}
		}()
		NewBallEngine(assign.AllDistinct(3), nil, nil, 1, Options{})
	}()
}

func TestAlmostStableStop(t *testing.T) {
	// Hider pins 5 balls at value 1 forever; full consensus is impossible,
	// but almost-stable (slack >= 5) must trigger.
	cfg := assign.TwoValue(300, 30, 1, 2)
	adv := adversary.NewHider(adversary.Fixed(5), 1)
	e := NewBallEngine(cfg, rules.Median{}, adv, 13, Options{
		AlmostSlack: 10, Window: 5, MaxRounds: 3000,
	})
	res := e.Run()
	if res.Reason != model.StopAlmostStable {
		t.Fatalf("expected almost-stable, got %+v", res)
	}
	if res.Winner != 2 {
		t.Fatalf("winner %d, want the majority value 2", res.Winner)
	}
	if res.WinnerCount < 290 {
		t.Fatalf("winner count %d too small", res.WinnerCount)
	}
}

func TestStabilityTrackerWindowResets(t *testing.T) {
	tr := newStabilityTracker(100, false, Options{AlmostSlack: 5, Window: 3})
	// Two good rounds, then a bad one, then three good: stop at the third.
	if _, stop := tr.observe(0, 7, 96); stop {
		t.Fatal("stopped too early")
	}
	if _, stop := tr.observe(1, 7, 97); stop {
		t.Fatal("stopped too early")
	}
	if _, stop := tr.observe(2, 7, 90); stop {
		t.Fatal("stopped on bad round")
	}
	if _, stop := tr.observe(3, 7, 96); stop {
		t.Fatal("window did not reset")
	}
	if _, stop := tr.observe(4, 7, 96); stop {
		t.Fatal("window too short")
	}
	reason, stop := tr.observe(5, 7, 96)
	if !stop || reason != model.StopAlmostStable {
		t.Fatalf("expected almost-stable stop, got %v %v", reason, stop)
	}
	if tr.since != 3 {
		t.Fatalf("since = %d, want 3", tr.since)
	}
}

func TestStabilityTrackerWinnerChangeResets(t *testing.T) {
	tr := newStabilityTracker(100, false, Options{AlmostSlack: 5, Window: 3})
	tr.observe(0, 7, 96)
	tr.observe(1, 8, 96) // winner switched: run restarts at 1
	tr.observe(2, 8, 96)
	reason, stop := tr.observe(3, 8, 96)
	if !stop || reason != model.StopAlmostStable {
		t.Fatalf("expected stop, got %v %v", reason, stop)
	}
	if tr.since != 1 {
		t.Fatalf("since = %d, want 1", tr.since)
	}
}

func TestCountEngineMatchesBallEngineStatistically(t *testing.T) {
	cfg := assign.EvenBlocks(600, 3)
	var ball, count []float64
	for s := uint64(0); s < 25; s++ {
		ball = append(ball, float64(NewBallEngine(cfg, rules.Median{}, nil, s, Options{}).Run().Rounds))
		count = append(count, float64(NewCountEngine(cfg, rules.Median{}, nil, s+1000, Options{}).Run().Rounds))
	}
	mb, mc := stats.Mean(ball), stats.Mean(count)
	if math.Abs(mb-mc) > 0.35*(mb+mc)/2+2 {
		t.Fatalf("ball %.2f vs count %.2f mean rounds", mb, mc)
	}
}

func TestCountEngineConservesBalls(t *testing.T) {
	cfg := assign.Uniform(500, 11, newTestRng(3))
	e := NewCountEngine(cfg, rules.Median{}, nil, 21, Options{})
	for r := 0; r < 40; r++ {
		e.Step()
		_, counts := e.Dist()
		var total int64
		for _, c := range counts {
			total += c
		}
		if total != 500 {
			t.Fatalf("round %d: %d balls", r, total)
		}
	}
}

func TestCountEngineConverges(t *testing.T) {
	cfg := assign.AllDistinct(400)
	res := NewCountEngine(cfg, rules.Median{}, nil, 8, Options{MaxRounds: 2000}).Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("count engine did not converge: %+v", res)
	}
	if res.Winner < 1 || res.Winner > 400 {
		t.Fatalf("validity violated: winner %d", res.Winner)
	}
}

func TestCountEngineWithBalancerStallsThenReleased(t *testing.T) {
	// A balancer with a huge budget prevents convergence of a two-value
	// split; the run must end at MaxRounds with a near-even split.
	cfg := assign.TwoValue(400, 200, 1, 2)
	adv := adversary.NewBalancer(adversary.Fixed(400), 1, 2)
	res := NewCountEngine(cfg, rules.Median{}, adv, 31, Options{MaxRounds: 200}).Run()
	if res.Reason != model.StopMaxRounds {
		t.Fatalf("balancer failed to stall: %+v", res)
	}
	if res.WinnerCount > 210 {
		t.Fatalf("split %d not balanced under full-power balancer", res.WinnerCount)
	}
}

func TestTwoBinEngineConverges(t *testing.T) {
	e := NewTwoBinEngine(1000, 500, 1, 2, nil, 17, Options{MaxRounds: 5000})
	res := e.Run()
	if res.Reason != model.StopConsensus {
		t.Fatalf("two-bin did not converge: %+v", res)
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Fatalf("invalid winner %d", res.Winner)
	}
	if res.WinnerCount != 1000 {
		t.Fatalf("winner count %d", res.WinnerCount)
	}
}

func TestTwoBinEngineMatchesBallEngineStatistically(t *testing.T) {
	const n = 800
	var tb, ball []float64
	for s := uint64(0); s < 30; s++ {
		tb = append(tb, float64(NewTwoBinEngine(n, n/2, 1, 2, nil, s, Options{}).Run().Rounds))
		cfg := assign.TwoValue(n, n/2, 1, 2)
		ball = append(ball, float64(NewBallEngine(cfg, rules.Median{}, nil, s+500, Options{}).Run().Rounds))
	}
	ma, mb := stats.Mean(tb), stats.Mean(ball)
	if math.Abs(ma-mb) > 0.35*(ma+mb)/2+2 {
		t.Fatalf("two-bin %.2f vs ball %.2f mean rounds", ma, mb)
	}
}

func TestTwoBinEngineImbalance(t *testing.T) {
	e := NewTwoBinEngine(100, 20, 1, 2, nil, 1, Options{})
	if got := e.Imbalance(); got != 30 {
		t.Fatalf("imbalance %v, want 30", got)
	}
	l, r := e.Counts()
	if l != 20 || r != 80 {
		t.Fatalf("counts %d,%d", l, r)
	}
}

func TestTwoBinEnginePanics(t *testing.T) {
	cases := []func(){
		func() { NewTwoBinEngine(0, 0, 1, 2, nil, 1, Options{}) },
		func() { NewTwoBinEngine(10, 11, 1, 2, nil, 1, Options{}) },
		func() { NewTwoBinEngine(10, -1, 1, 2, nil, 1, Options{}) },
		func() { NewTwoBinEngine(10, 5, 2, 2, nil, 1, Options{}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTwoBinEngineBalancerKeepsBalance(t *testing.T) {
	// With budget n/2 (absurdly powerful) the balancer holds a perfect
	// 50/50 split indefinitely.
	const n = 10000
	adv := adversary.NewBalancer(adversary.Fixed(n/2), 1, 2)
	e := NewTwoBinEngine(n, n/2, 1, 2, adv, 3, Options{})
	for r := 0; r < 50; r++ {
		e.Step()
	}
	if d := e.Imbalance(); d > float64(n)/4 {
		t.Fatalf("imbalance %v despite full-power balancer", d)
	}
	res := NewTwoBinEngine(n, n/2, 1, 2, adversary.NewBalancer(adversary.Fixed(n/2), 1, 2), 4,
		Options{MaxRounds: 300}).Run()
	if res.Reason != model.StopMaxRounds {
		t.Fatalf("expected stall, got %+v", res)
	}
}

func TestTwoBinEngineRejectsForeignValues(t *testing.T) {
	bad := adversary.NewHider(adversary.Fixed(5), 99) // 99 is outside {1,2}
	e := NewTwoBinEngine(100, 50, 1, 2, bad, 1, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign value")
		}
	}()
	e.Step()
}

// Reviver vs minimum rule: the paper's introduction attack. The minimum
// rule converges to 2 after the adversary deletes value 1, then a single
// revival restarts global convergence toward 1 — no state is stable.
func TestReviverDefeatsMinimumRule(t *testing.T) {
	const n = 300
	cfg := assign.TwoValue(n, 10, 1, 2)
	// First, the adversary kills value 1 at round 0 (budget 10), then
	// waits 20 rounds and revives it.
	kill := adversary.NewFunc("kill-then-revive", adversary.Fixed(10),
		func(round int, state []Value, allowed []Value, r model.Rand) {
			if round == 0 {
				for i := range state {
					if state[i] == 1 {
						state[i] = 2
					}
				}
			}
			if round == 25 {
				state[0] = 1
			}
		})
	e := NewBallEngine(cfg, rules.Minimum{}, kill, 7, Options{MaxRounds: 200})
	// After the kill, all balls hold 2; consensus on 2 would be detected,
	// so step manually and verify the revival drags everyone back to 1.
	sawAllTwo := false
	for r := 0; r < 100; r++ {
		e.Step()
		d := assign.Config(e.State()).Dist()
		if d.Support() == 1 && d.Vals[0] == 2 && e.Round() < 25 {
			sawAllTwo = true
		}
	}
	if !sawAllTwo {
		t.Fatal("adversary failed to push all balls to 2")
	}
	final := assign.Config(e.State()).Dist()
	if final.Support() != 1 || final.Vals[0] != 1 {
		t.Fatalf("revival did not reconverge to 1: %+v", final)
	}
}

// The median rule shrugs off the same reviver: a single re-injected ball is
// absorbed, so the system stays almost-stable on 2.
func TestMedianRuleResistsReviver(t *testing.T) {
	const n = 300
	cfg := assign.TwoValue(n, 10, 1, 2)
	adv := adversary.NewReviver(1, 5)
	e := NewBallEngine(cfg, rules.Median{}, adv, 9, Options{MaxRounds: 400})
	for r := 0; r < 400; r++ {
		e.Step()
	}
	d := assign.Config(e.State()).Dist()
	count2 := int64(0)
	for i, v := range d.Vals {
		if v == 2 {
			count2 = d.Counts[i]
		}
	}
	if count2 < n-5 {
		t.Fatalf("median rule lost stability under reviver: %+v", d)
	}
	if adv.Injections == 0 {
		t.Fatal("reviver never acted; test vacuous")
	}
}

// Property: for any two-value initial split, the ball engine's winner is one
// of the two initial values (validity) and all balls agree at consensus.
func TestQuickTwoValueValidity(t *testing.T) {
	f := func(nRaw uint8, splitRaw uint8, seed uint16) bool {
		n := int(nRaw)%150 + 20
		split := int(splitRaw) % (n + 1)
		cfg := assign.TwoValue(n, split, 10, 20)
		res := NewBallEngine(cfg, rules.Median{}, nil, uint64(seed), Options{MaxRounds: 3000}).Run()
		if res.Reason != model.StopConsensus {
			return false
		}
		return res.Winner == 10 || res.Winner == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: TwoBinEngine counts always stay within [0, n].
func TestQuickTwoBinCountsBounded(t *testing.T) {
	f := func(seed uint16, lRaw uint16) bool {
		const n = 1000
		l := int64(lRaw) % (n + 1)
		e := NewTwoBinEngine(n, l, 1, 2, nil, uint64(seed), Options{})
		for r := 0; r < 30; r++ {
			e.Step()
			lo, hi := e.Counts()
			if lo < 0 || hi < 0 || lo+hi != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResultStringRenders(t *testing.T) {
	res := Result{Rounds: 7, Reason: model.StopConsensus, Winner: 3, WinnerCount: 10}
	s := res.String()
	if s == "" || !strings.Contains(s, "consensus") || !strings.Contains(s, "7") {
		t.Fatalf("unhelpful Result.String: %q", s)
	}
}

func TestEngineRoundAccessors(t *testing.T) {
	cfg := assign.Config(assign.EvenBlocks(100, 4))
	ce := NewCountEngine(cfg, rules.Median{}, nil, 1, Options{})
	te := NewTwoBinEngine(100, 40, 1, 2, nil, 1, Options{})
	if ce.Round() != 0 || te.Round() != 0 {
		t.Fatal("fresh engines must report round 0")
	}
	ce.Step()
	te.Step()
	if ce.Round() != 1 || te.Round() != 1 {
		t.Fatal("Round() must count executed steps")
	}
}

func TestCountEngineAfterChoicesTiming(t *testing.T) {
	// The count engine's AfterChoices hook must keep a count-level
	// balancer effective: the two target bins stay within budget of each
	// other after every step.
	cfg := assign.Config(assign.TwoValue(5000, 2500, 1, 2))
	adv := &countBalancerStub{}
	e := NewCountEngine(cfg, rules.Median{}, adv, 7, Options{Timing: AfterChoices})
	for i := 0; i < 30; i++ {
		e.Step()
	}
	if adv.calls != 30 {
		t.Fatalf("adversary called %d times, want 30", adv.calls)
	}
	vals, counts := e.Dist()
	var c1, c2 int64
	for i, v := range vals {
		switch v {
		case 1:
			c1 = counts[i]
		case 2:
			c2 = counts[i]
		}
	}
	diff := c1 - c2
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("post-round balancing left gap %d", diff)
	}
}

// countBalancerStub is an unlimited-budget count balancer used to pin the
// AfterChoices code path.
type countBalancerStub struct{ calls int }

func (s *countBalancerStub) Name() string     { return "stub-balancer" }
func (s *countBalancerStub) Budget(n int) int { return n }
func (s *countBalancerStub) CorruptCounts(round int, vals []Value, counts []int64, allowed []Value, r model.Rand) ([]Value, []int64) {
	s.calls++
	if len(counts) < 2 {
		return vals, counts
	}
	sum := counts[0] + counts[1]
	counts[0] = sum / 2
	counts[1] = sum - sum/2
	return vals, counts
}

func TestTwoBinImbalanceAtConsensus(t *testing.T) {
	e := NewTwoBinEngine(100, 0, 1, 2, nil, 1, Options{})
	if got := e.Imbalance(); got != 50 {
		t.Fatalf("one-sided imbalance Δ = %v, want 50 (= (Y−X)/2)", got)
	}
}

func TestCountEnginePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty config")
		}
	}()
	NewCountEngine(assign.Config(nil), rules.Median{}, nil, 1, Options{})
}

// TestCountEngineRoundAllocs pins the count engine's zero-allocation round
// loop: once every engine-owned workspace (weights, alias table,
// accumulator map, sample buffer, sorted vectors) has been warmed, a
// steady-state round — including a count-level adversary that keeps the
// chain from absorbing — must not touch the heap.
func TestCountEngineRoundAllocs(t *testing.T) {
	d := assign.Dist{
		Vals:   []Value{1, 2, 3, 4, 5},
		Counts: []int64{2000, 2000, 2000, 2000, 2000},
	}
	eng := NewCountEngineDist(d, rules.Median{}, adversary.NewRandomNoise(adversary.Fixed(4)), 1, Options{})
	for i := 0; i < 8; i++ {
		eng.Step()
	}
	if avg := testing.AllocsPerRun(50, func() { eng.Step() }); avg != 0 {
		t.Fatalf("steady-state count round allocates (%v allocs/round)", avg)
	}
}

// TestTwoBinObservedRoundAllocs pins the observer + adversary round path
// of the two-bin engine: the per-round (vals, counts) views handed to
// both the observer and the count adversary are engine-owned scratch
// (distView), so an observed, adversarial steady-state round must not
// touch the heap.
func TestTwoBinObservedRoundAllocs(t *testing.T) {
	tracker := newStabilityTracker(1<<20, false, Options{})
	var seen int64
	eng := NewTwoBinEngine(1<<20, 1<<19, 1, 2, adversary.NewBalancer(adversary.Fixed(64), 1, 2), 1, Options{
		Observer: func(round int, vals []Value, counts []int64) {
			seen += counts[0]
		},
	})
	for i := 0; i < 8; i++ {
		eng.Step()
		eng.check(tracker, eng.round)
	}
	avg := testing.AllocsPerRun(50, func() {
		eng.Step()
		eng.check(tracker, eng.round)
	})
	if avg != 0 {
		t.Fatalf("steady-state observed two-bin round allocates (%v allocs/round)", avg)
	}
	if seen == 0 {
		t.Fatal("observer never saw a count")
	}
}

// TestBallEngineObservedCheckAllocs pins the per-ball engine's observed
// check path: distInto reuses the engine-owned sorted view, so observing
// every round of a warmed run must not allocate.
func TestBallEngineObservedCheckAllocs(t *testing.T) {
	cfg := make(assign.Config, 512)
	for i := range cfg {
		cfg[i] = Value(i % 7)
	}
	var rounds int
	eng := NewBallEngine(cfg, rules.Median{}, nil, 1, Options{
		Observer: func(round int, vals []Value, counts []int64) {
			rounds++
		},
	})
	tracker := newStabilityTracker(int64(len(cfg)), false, Options{})
	counts := make(map[Value]int64, 16)
	eng.checkState(tracker, counts, 0)
	avg := testing.AllocsPerRun(50, func() {
		eng.checkState(tracker, counts, eng.round)
	})
	if avg != 0 {
		t.Fatalf("observed per-ball check allocates (%v allocs/check)", avg)
	}
	if rounds == 0 {
		t.Fatal("observer never fired")
	}
}

package core

import "repro/internal/rng"

// newTestRng returns a seeded generator for constructing initial
// configurations in tests.
func newTestRng(seed uint64) *rng.Xoshiro256 { return rng.NewXoshiro256(seed) }
